/**
 * @file
 * The KiBaM closed-form step as free functions over a plain value state.
 *
 * The same Manwell & McGowan constant-current step is needed in three
 * places — the standalone Kibam class, the structure-of-arrays UnitPool
 * batch kernels, and the safe-discharge bisection (which probes copies of
 * the state) — and they must agree bit for bit: the golden traces and the
 * pooled-vs-per-object identity tests both hash the resulting well levels.
 * Keeping one implementation here is what makes that identity hold by
 * construction instead of by careful duplication.
 *
 * The exp(-k't) factor is the only transcendental; it is pure, so callers
 * may supply either a memoising functor (ExpMemo) or a direct evaluation
 * (ExpDirect, required where a shared memo would race across worker
 * threads) and obtain identical results.
 */

#ifndef INSURE_BATTERY_KIBAM_MATH_HH
#define INSURE_BATTERY_KIBAM_MATH_HH

#include <algorithm>
#include <cmath>

#include "sim/units.hh"

namespace insure::battery::kibam_math {

/** Longest interval handled by a single closed-form step, seconds. */
constexpr Seconds kMaxStep = 60.0;

/**
 * Sub-step residue below which the remainder of a subdivided step is
 * dropped, seconds. Repeated `dt -= kMaxStep` leaves a ~1e-12 s floating
 * point residue for which the closed form would still run a full exp and
 * well update, injecting spurious ampere-hours; anything shorter than a
 * nanosecond is far below the physics and is snapped to zero.
 */
constexpr Seconds kResidualEps = 1e-9;

/** Plain value state of one two-well kinetic model. */
struct State {
    /** Total capacity of both wells, ampere-hours. */
    AmpHours cap = 0.0;
    /** Fraction of capacity in the available well (0 < c < 1). */
    double c = 0.0;
    /** Modified rate constant, 1/hour. */
    double kPrime = 0.0;
    /** Available-well charge, ampere-hours. */
    AmpHours y1 = 0.0;
    /** Bound-well charge, ampere-hours. */
    AmpHours y2 = 0.0;
};

/** exp(-k' t) evaluated directly — safe under concurrent callers. */
struct ExpDirect {
    double operator()(double kPrime, double tHours) const
    {
        return std::exp(-kPrime * tHours);
    }
};

/**
 * exp(-k' t) memoised on (k', t). The simulator steps every unit with the
 * same fixed dt (physics tick or rest step), so the transcendental is
 * recomputed only when the step size changes — bit-identical to calling
 * exp every time, since exp is pure. Not thread-safe; single-owner use.
 */
struct ExpMemo {
    double tHours = -1.0;
    double kPrime = 0.0;
    double value = 0.0;

    double operator()(double k, double t)
    {
        if (t != tHours || k != kPrime) {
            tHours = t;
            kPrime = k;
            value = std::exp(-k * t);
        }
        return value;
    }
};

/** Total state of charge (both wells) in [0, 1]. */
inline double
soc(const State &s)
{
    return std::clamp((s.y1 + s.y2) / s.cap, 0.0, 1.0);
}

/** Fill level of the available well in [0, 1]. */
inline double
availableFraction(const State &s)
{
    return std::clamp(s.y1 / (s.c * s.cap), 0.0, 1.0);
}

/** Force the state of charge (wells set to equilibrium split). */
inline void
setSoc(State &s, double soc)
{
    soc = std::clamp(soc, 0.0, 1.0);
    s.y1 = s.c * s.cap * soc;
    s.y2 = (1.0 - s.c) * s.cap * soc;
}

/**
 * One closed-form constant-current step (dt <= kMaxStep) with boundary
 * clipping. @p e must be exp(-k' * toHours(dt)) for this state's k'.
 * Returns the ampere-hours of requested transfer that could not be
 * honoured. Clamping both wells independently would otherwise create or
 * destroy charge at the boundaries, so the rejected charge is accounted
 * exactly from conservation.
 */
inline AmpHours
stepExact(State &s, Amperes current, Seconds dt, double e)
{
    const double t = units::toHours(dt);
    const double k = s.kPrime;
    const double q0 = s.y1 + s.y2;
    const double requested = current * t;

    const double y1 = s.y1 * e + (q0 * k * s.c - current) * (1.0 - e) / k -
                      current * s.c * (k * t - 1.0 + e) / k;
    const double y2 = s.y2 * e + q0 * (1.0 - s.c) * (1.0 - e) -
                      current * (1.0 - s.c) * (k * t - 1.0 + e) / k;

    s.y1 = std::clamp(y1, 0.0, s.c * s.cap);
    s.y2 = std::clamp(y2, 0.0, (1.0 - s.c) * s.cap);
    const double q_after = s.y1 + s.y2;

    AmpHours rejected = 0.0;
    if (current > 0.0)
        rejected = requested - (q0 - q_after);
    else if (current < 0.0)
        rejected = -requested - (q_after - q0);
    if (std::fabs(rejected) < 1e-9)
        rejected = 0.0; // numerical noise from the closed form
    return std::clamp(rejected, 0.0, std::fabs(requested));
}

/**
 * Advance by @p dt seconds at constant @p current (positive = discharge),
 * subdividing steps longer than kMaxStep: the closed form composes
 * exactly while the wells stay inside their bounds, but a single long
 * step that crosses a bound mid-interval would mis-account the clipped
 * charge, so the subdivision bounds that error to one sub-step. Residues
 * below kResidualEps (floating-point leftovers of the subtraction loop,
 * or degenerate caller-supplied steps) are dropped rather than stepped.
 *
 * @p expK is a callable (kPrime, tHours) -> exp(-kPrime * tHours).
 * @return ampere-hours of requested transfer that could NOT be honoured.
 */
template <typename ExpFn>
inline AmpHours
step(State &s, Amperes current, Seconds dt, ExpFn &&expK)
{
    if (dt <= 0.0)
        return 0.0;
    AmpHours rejected = 0.0;
    while (dt > kMaxStep) {
        rejected += stepExact(s, current, kMaxStep,
                              expK(s.kPrime, units::toHours(kMaxStep)));
        dt -= kMaxStep;
    }
    if (dt < kResidualEps)
        return rejected;
    return rejected +
           stepExact(s, current, dt, expK(s.kPrime, units::toHours(dt)));
}

/**
 * Maximum constant discharge current sustainable for @p dt seconds
 * before the available well empties.
 */
template <typename ExpFn>
inline Amperes
maxDischargeCurrent(const State &s, Seconds dt, ExpFn &&expK)
{
    if (dt <= 0.0)
        return 0.0;
    const double t = units::toHours(dt);
    const double k = s.kPrime;
    const double e = expK(k, t);
    const double q0 = s.y1 + s.y2;
    const double denom = (1.0 - e) + s.c * (k * t - 1.0 + e);
    if (denom <= 0.0)
        return 0.0;
    const double imax = (s.y1 * e * k + q0 * k * s.c * (1.0 - e)) / denom;
    return std::max(0.0, imax);
}

/**
 * Shrink total capacity by @p factor in (0, 1] (sudden capacity-fade
 * fault). Well fill levels are clipped to the new well sizes; returns
 * the ampere-hours that no longer fit.
 */
inline AmpHours
scaleCapacity(State &s, double factor)
{
    s.cap *= factor;
    const AmpHours drop1 = std::max(0.0, s.y1 - s.c * s.cap);
    const AmpHours drop2 = std::max(0.0, s.y2 - (1.0 - s.c) * s.cap);
    s.y1 -= drop1;
    s.y2 -= drop2;
    return drop1 + drop2;
}

} // namespace insure::battery::kibam_math

#endif // INSURE_BATTERY_KIBAM_MATH_HH
