/**
 * @file
 * Parameter sets for the simulated lead-acid batteries.
 *
 * The defaults model the UPG UB1280 12 V / 35 Ah AGM units used in the
 * InSURE prototype (ISCA'15, Table 4). The kinetic constants follow common
 * KiBaM fits for small AGM cells; the charge-efficiency curve is calibrated
 * so that concentrated (sequential) charging reproduces the ~50% charge-time
 * advantage over batch charging measured in the paper's Fig. 4(a) — see
 * DESIGN.md section 4 for the substitution rationale.
 */

#ifndef INSURE_BATTERY_BATTERY_PARAMS_HH
#define INSURE_BATTERY_BATTERY_PARAMS_HH

#include "sim/units.hh"

namespace insure::battery {

/** Electrical and ageing parameters for one 12 V battery unit. */
struct BatteryParams {
    /** Rated capacity at the nominal discharge rate. */
    AmpHours capacityAh = 35.0;

    /** Nominal terminal voltage. */
    Volts nominalVoltage = 12.0;

    /** KiBaM fraction of capacity held in the available well. */
    double kibamC = 0.62;

    /**
     * KiBaM modified rate constant k' (1/hour). Governs how fast bound
     * charge becomes available: larger -> faster recovery after the load
     * drops, and a higher maximum sustainable current
     * (calibrated so ~80% of capacity is extractable at a 0.55C draw,
     * matching AGM Peukert behaviour; 1C collapses early).
     */
    double kibamKPrime = 4.5;

    /** Ohmic internal resistance (charge and discharge). */
    double internalResistanceOhm = 0.022;

    /** Maximum sustained charge current (0.5C for AGM). */
    Amperes maxChargeCurrent = 17.5;

    /** Maximum sustained discharge current (1C). */
    Amperes maxDischargeCurrent = 35.0;

    /** State of charge where constant-current charging ends. */
    double absorptionSoc = 0.80;

    /** Exponential taper constant for acceptance above absorptionSoc. */
    double acceptanceTaper = 0.055;

    /** Peak coulombic efficiency of charging (at healthy C-rates). */
    double chargeEtaMax = 0.97;

    /**
     * Half-saturation C-rate of the charge-efficiency curve:
     * eta(r) = chargeEtaMax * r / (r + chargeEtaHalfRate), with r = I / C.
     * Encodes the empirically poor net charging at trickle currents
     * (gassing + self-discharge dominated) that makes budget concentration
     * profitable (paper Fig. 4-a).
     */
    double chargeEtaHalfRate = 0.045;

    /**
     * Fixed parasitic current drawn from the charging bus per connected
     * unit, not stored in the battery: gassing at the absorption voltage
     * plus converter/relay/monitoring overhead. Holding a cell at the
     * 14.4 V absorption setpoint wastes this current regardless of the
     * charge rate, which is what makes trickle-charging many units at
     * once so much slower than concentrating the budget (Fig. 4-a).
     */
    Amperes parasiticBusCurrent = 1.8;

    /** Charging bus (absorption) voltage per 12 V unit. */
    Volts absorptionVoltage = 14.4;

    /**
     * Low-voltage disconnect threshold under load, per 12 V unit. This is
     * the hardware protection (LVD) setpoint; the temporal manager acts
     * well above it (checkpoint at ~11.95 V) so InSURE rarely reaches it.
     */
    Volts cutoffVoltage = 11.3;

    /** SoC at which a charging unit is considered "charged" (paper: 90%). */
    double chargedSoc = 0.90;

    /** SoC floor below which the unit must stop discharging. */
    double minSoc = 0.20;

    /**
     * Total discharge throughput before wear-out, in ampere-hours.
     * Lead-acid throughput is roughly constant across regimes
     * (paper ref [56]); ~300 cycles x 28 Ah usable.
     */
    AmpHours lifetimeThroughputAh = 8400.0;

    /** Nominal calendar service life when unused, years. */
    double calendarLifeYears = 5.0;

    /** Self-discharge rate, fraction of capacity per day. */
    double selfDischargePerDay = 0.0015;
};

/** Parameters describing relay hardware (IDEC RR2P, Table 4). */
struct RelayParams {
    /** Contact switching time. */
    Seconds switchTime = 0.025;
    /** Rated mechanical life in switch operations. */
    double mechanicalLife = 10e6;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_BATTERY_PARAMS_HH
