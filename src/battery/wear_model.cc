#include "battery/wear_model.hh"

#include "snapshot/archive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::battery {

WearModel::WearModel(const BatteryParams &params) : params_(params)
{
}

void
WearModel::negativeThroughput(AmpHours ah) const
{
    panic("WearModel: negative throughput %f", ah);
}

double
WearModel::remainingFraction() const
{
    const double used = discharged_ / params_.lifetimeThroughputAh;
    return std::max(0.0, 1.0 - used);
}

double
WearModel::projectedLifeYears(Seconds observed) const
{
    if (observed <= 0.0 || discharged_ <= 0.0)
        return params_.calendarLifeYears;
    const double years =
        observed / (units::secPerDay * units::daysPerYear);
    const double ah_per_year = discharged_ / years;
    const double throughput_years =
        params_.lifetimeThroughputAh / ah_per_year;
    return std::min(throughput_years, params_.calendarLifeYears);
}


void
WearModel::save(snapshot::Archive &ar) const
{
    ar.section("wear");
    ar.putF64(discharged_);
    ar.putF64(charged_);
}

void
WearModel::load(snapshot::Archive &ar)
{
    ar.section("wear");
    discharged_ = ar.getF64();
    charged_ = ar.getF64();
}

} // namespace insure::battery
