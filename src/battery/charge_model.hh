/**
 * @file
 * Charging-side electrochemistry: acceptance limits and coulombic
 * efficiency.
 *
 * Acceptance: a lead-acid cell accepts its full rated charge current only
 * below the absorption threshold; above it the acceptable current tapers
 * exponentially (the constant-voltage phase of CC-CV charging).
 *
 * Efficiency: the fraction of supplied charge actually stored follows a
 * saturating curve in the C-rate. Trickle currents are dominated by gassing
 * and self-discharge losses, which is what makes *concentrating* a small
 * solar budget on few units faster than batch-charging all of them
 * (paper Fig. 4-a). The constants live in BatteryParams and are calibrated
 * against the paper's measured ~50% charge-time gap; see DESIGN.md §4.
 */

#ifndef INSURE_BATTERY_CHARGE_MODEL_HH
#define INSURE_BATTERY_CHARGE_MODEL_HH

#include <algorithm>
#include <cmath>

#include "battery/battery_params.hh"
#include "sim/units.hh"

namespace insure::battery {

/** Charging behaviour of one battery unit. */
class ChargeModel
{
  public:
    explicit ChargeModel(const BatteryParams &params);

    /**
     * Maximum current the cell will accept at state of charge @p soc
     * (rated CC current below absorption, exponential taper above).
     * Evaluated for every unit on every charging tick, so inline.
     */
    Amperes
    acceptanceCurrent(double soc) const
    {
        soc = std::clamp(soc, 0.0, 1.0);
        if (soc >= 1.0)
            return 0.0;
        if (soc <= params_.absorptionSoc)
            return params_.maxChargeCurrent;
        const double over = soc - params_.absorptionSoc;
        return params_.maxChargeCurrent *
               std::exp(-over / params_.acceptanceTaper);
    }

    /**
     * Coulombic efficiency of charging at bus current @p current: the
     * fraction of the current that ends up as stored charge.
     */
    double
    efficiency(Amperes current) const
    {
        if (current <= 0.0)
            return 0.0;
        const double rate = current / params_.capacityAh; // C-rate
        return params_.chargeEtaMax * rate /
               (rate + params_.chargeEtaHalfRate);
    }

    /**
     * Stored (effective) charging current when the bus supplies
     * @p bus_current amperes to a unit at state of charge @p soc: applies
     * the acceptance cap, the efficiency curve, and the parasitic draw.
     */
    Amperes effectiveChargeCurrent(Amperes bus_current, double soc) const;

    /**
     * Bus power consumed by a unit charging at @p bus_current (uses the
     * absorption bus voltage).
     */
    Watts busPower(Amperes bus_current) const;

    /** Peak charging power of one unit (rated current at bus voltage). */
    Watts peakChargePower() const;

  private:
    const BatteryParams params_;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_CHARGE_MODEL_HH
