/**
 * @file
 * Structure-of-arrays storage for relay contact state.
 *
 * Relays are not on the per-tick physics path (contacts move at control
 * decisions), but at 5k cabinets the per-object relay heap objects were
 * the last scattered allocation in the battery layer; pooling them keeps
 * the whole e-Buffer state in a handful of dense arrays. Relay remains
 * the API as a thin view (pool pointer + slot); a standalone-constructed
 * relay owns a private single-slot pool.
 */

#ifndef INSURE_BATTERY_RELAY_POOL_HH
#define INSURE_BATTERY_RELAY_POOL_HH

#include <cstdint>
#include <vector>

namespace insure::battery {

/** Dense contact/wear/fault state for a set of relays. */
class RelayPool
{
  public:
    RelayPool() = default;
    RelayPool(const RelayPool &) = delete;
    RelayPool &operator=(const RelayPool &) = delete;

    void
    reserve(std::size_t relays)
    {
        closed_.reserve(relays);
        operations_.reserve(relays);
        fault_.reserve(relays);
        delayedOps_.reserve(relays);
    }

    std::uint32_t
    addRelay()
    {
        const std::uint32_t i = static_cast<std::uint32_t>(size());
        closed_.push_back(0);
        operations_.push_back(0);
        fault_.push_back(0);
        delayedOps_.push_back(0);
        return i;
    }

    std::size_t size() const { return closed_.size(); }

    bool closed(std::uint32_t i) const { return closed_[i] != 0; }
    void setClosed(std::uint32_t i, bool c) { closed_[i] = c ? 1 : 0; }

    std::uint64_t operations(std::uint32_t i) const { return operations_[i]; }
    void setOperations(std::uint32_t i, std::uint64_t n) { operations_[i] = n; }
    void countOperation(std::uint32_t i) { ++operations_[i]; }

    std::uint8_t faultRaw(std::uint32_t i) const { return fault_[i]; }
    void setFaultRaw(std::uint32_t i, std::uint8_t f) { fault_[i] = f; }

    unsigned delayedOps(std::uint32_t i) const { return delayedOps_[i]; }
    void setDelayedOps(std::uint32_t i, unsigned n) { delayedOps_[i] = n; }

  private:
    std::vector<std::uint8_t> closed_;
    std::vector<std::uint64_t> operations_;
    std::vector<std::uint8_t> fault_;
    std::vector<std::uint32_t> delayedOps_;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_RELAY_POOL_HH
