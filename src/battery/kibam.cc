#include "battery/kibam.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::battery {

Kibam::Kibam(AmpHours capacityAh, double c, double kPrime, double initialSoc)
    : cap_(capacityAh), c_(c), kPrime_(kPrime)
{
    if (capacityAh <= 0.0 || c <= 0.0 || c >= 1.0 || kPrime <= 0.0)
        fatal("Kibam: invalid parameters (cap=%f c=%f k'=%f)", capacityAh, c,
              kPrime);
    setSoc(initialSoc);
}

void
Kibam::setSoc(double soc)
{
    soc = std::clamp(soc, 0.0, 1.0);
    y1_ = c_ * cap_ * soc;
    y2_ = (1.0 - c_) * cap_ * soc;
}

AmpHours
Kibam::step(Amperes current, Seconds dt)
{
    kibam_math::State s = state();
    const AmpHours rejected = kibam_math::step(s, current, dt, expMemo_);
    y1_ = s.y1;
    y2_ = s.y2;
    return rejected;
}

Amperes
Kibam::maxDischargeCurrent(Seconds dt) const
{
    return kibam_math::maxDischargeCurrent(state(), dt, expMemo_);
}


void
Kibam::save(snapshot::Archive &ar) const
{
    ar.section("kibam");
    ar.putF64(cap_);
    ar.putF64(y1_);
    ar.putF64(y2_);
}

void
Kibam::load(snapshot::Archive &ar)
{
    ar.section("kibam");
    cap_ = ar.getF64();
    y1_ = ar.getF64();
    y2_ = ar.getF64();
}

} // namespace insure::battery
