#include "battery/kibam.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::battery {

Kibam::Kibam(AmpHours capacityAh, double c, double kPrime, double initialSoc)
    : cap_(capacityAh), c_(c), kPrime_(kPrime)
{
    if (capacityAh <= 0.0 || c <= 0.0 || c >= 1.0 || kPrime <= 0.0)
        fatal("Kibam: invalid parameters (cap=%f c=%f k'=%f)", capacityAh, c,
              kPrime);
    setSoc(initialSoc);
}

void
Kibam::setSoc(double soc)
{
    soc = std::clamp(soc, 0.0, 1.0);
    y1_ = c_ * cap_ * soc;
    y2_ = (1.0 - c_) * cap_ * soc;
}

namespace {

/** Longest interval handled by a single closed-form step, seconds. */
constexpr Seconds kMaxStep = 60.0;

} // namespace

AmpHours
Kibam::step(Amperes current, Seconds dt)
{
    if (dt <= 0.0)
        return 0.0;
    AmpHours rejected = 0.0;
    while (dt > kMaxStep) {
        rejected += stepExact(current, kMaxStep);
        dt -= kMaxStep;
    }
    return rejected + stepExact(current, dt);
}

AmpHours
Kibam::stepExact(Amperes current, Seconds dt)
{
    const double t = units::toHours(dt);
    const double k = kPrime_;
    const double e = expK(t);
    const double q0 = y1_ + y2_;
    const double requested = current * t;

    // Closed-form constant-current KiBaM step (Manwell & McGowan).
    const double y1 = y1_ * e + (q0 * k * c_ - current) * (1.0 - e) / k -
                      current * c_ * (k * t - 1.0 + e) / k;
    const double y2 = y2_ * e + q0 * (1.0 - c_) * (1.0 - e) -
                      current * (1.0 - c_) * (k * t - 1.0 + e) / k;

    // Clamp both wells to their physical bounds and account the rejected
    // charge exactly from conservation: whatever the clamped state did
    // not absorb (charge) or could not supply (discharge) goes back to
    // the caller. Clamping both wells independently would otherwise
    // create or destroy charge at the boundaries.
    y1_ = std::clamp(y1, 0.0, c_ * cap_);
    y2_ = std::clamp(y2, 0.0, (1.0 - c_) * cap_);
    const double q_after = y1_ + y2_;

    AmpHours rejected = 0.0;
    if (current > 0.0)
        rejected = requested - (q0 - q_after);
    else if (current < 0.0)
        rejected = -requested - (q_after - q0);
    if (std::fabs(rejected) < 1e-9)
        rejected = 0.0; // numerical noise from the closed form
    return std::clamp(rejected, 0.0, std::fabs(requested));
}

Amperes
Kibam::maxDischargeCurrent(Seconds dt) const
{
    if (dt <= 0.0)
        return 0.0;
    const double t = units::toHours(dt);
    const double k = kPrime_;
    const double e = expK(t);
    const double q0 = y1_ + y2_;
    const double denom = (1.0 - e) + c_ * (k * t - 1.0 + e);
    if (denom <= 0.0)
        return 0.0;
    const double imax = (y1_ * e * k + q0 * k * c_ * (1.0 - e)) / denom;
    return std::max(0.0, imax);
}


void
Kibam::save(snapshot::Archive &ar) const
{
    ar.section("kibam");
    ar.putF64(cap_);
    ar.putF64(y1_);
    ar.putF64(y2_);
}

void
Kibam::load(snapshot::Archive &ar)
{
    ar.section("kibam");
    cap_ = ar.getF64();
    y1_ = ar.getF64();
    y2_ = ar.getF64();
}

} // namespace insure::battery
