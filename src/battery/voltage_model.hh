/**
 * @file
 * Terminal-voltage model for a 12 V lead-acid unit.
 *
 * Open-circuit voltage follows a piecewise-linear curve over the *available
 * well* fill level (not total SoC), so sustained high-current discharge
 * produces the fast voltage sag — and subsequent recovery — seen in the
 * paper's Fig. 4(b). An ohmic IR term is added for the loaded terminal
 * voltage.
 */

#ifndef INSURE_BATTERY_VOLTAGE_MODEL_HH
#define INSURE_BATTERY_VOLTAGE_MODEL_HH

#include "battery/battery_params.hh"
#include "sim/units.hh"

namespace insure::battery {

/** Maps electrochemical state to terminal voltage. */
class VoltageModel
{
  public:
    explicit VoltageModel(const BatteryParams &params);

    /**
     * Open-circuit voltage for an available-well fill level in [0, 1].
     */
    Volts openCircuit(double available_frac) const;

    /**
     * Loaded terminal voltage.
     * @param available_frac available-well fill level in [0, 1]
     * @param current positive = discharge, negative = charge (amperes)
     */
    Volts terminal(double available_frac, Amperes current) const;

    /** True when the loaded terminal voltage is below the cutoff. */
    bool belowCutoff(double available_frac, Amperes current) const;

    /**
     * Largest discharge current keeping the terminal voltage at or above
     * the cutoff for the given available-well level (0 when already below).
     */
    Amperes maxCurrentAboveCutoff(double available_frac) const;

  private:
    const BatteryParams params_;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_VOLTAGE_MODEL_HH
