/**
 * @file
 * Terminal-voltage model for a 12 V lead-acid unit.
 *
 * Open-circuit voltage follows a piecewise-linear curve over the *available
 * well* fill level (not total SoC), so sustained high-current discharge
 * produces the fast voltage sag — and subsequent recovery — seen in the
 * paper's Fig. 4(b). An ohmic IR term is added for the loaded terminal
 * voltage.
 */

#ifndef INSURE_BATTERY_VOLTAGE_MODEL_HH
#define INSURE_BATTERY_VOLTAGE_MODEL_HH

#include <algorithm>
#include <array>

#include "battery/battery_params.hh"
#include "sim/units.hh"

namespace insure::battery {

/** Maps electrochemical state to terminal voltage. */
class VoltageModel
{
  public:
    explicit VoltageModel(const BatteryParams &params);

    /**
     * Open-circuit voltage for an available-well fill level in [0, 1].
     * Inline: evaluated several times per unit per physics tick (loaded
     * voltage before/after a step, protection checks, telemetry).
     */
    Volts
    openCircuit(double available_frac) const
    {
        const double f = std::clamp(available_frac, 0.0, 1.0);
        // Scale the 12 V reference curve to the configured nominal
        // voltage.
        const double scale = params_.nominalVoltage / 12.0;
        for (std::size_t i = 1; i < ocvCurve.size(); ++i) {
            if (f <= ocvCurve[i].frac) {
                const auto &a = ocvCurve[i - 1];
                const auto &b = ocvCurve[i];
                const double t = (f - a.frac) / (b.frac - a.frac);
                return scale * (a.volts + t * (b.volts - a.volts));
            }
        }
        return scale * ocvCurve.back().volts;
    }

    /**
     * Loaded terminal voltage.
     * @param available_frac available-well fill level in [0, 1]
     * @param current positive = discharge, negative = charge (amperes)
     */
    Volts
    terminal(double available_frac, Amperes current) const
    {
        const Volts v = openCircuit(available_frac) -
                        current * params_.internalResistanceOhm;
        // Charging voltage is clamped by the absorption setpoint of the
        // charger.
        if (current < 0.0)
            return std::min(v, params_.absorptionVoltage);
        return v;
    }

    /** True when the loaded terminal voltage is below the cutoff. */
    bool
    belowCutoff(double available_frac, Amperes current) const
    {
        return terminal(available_frac, current) < params_.cutoffVoltage;
    }

    /**
     * Largest discharge current keeping the terminal voltage at or above
     * the cutoff for the given available-well level (0 when already below).
     */
    Amperes maxCurrentAboveCutoff(double available_frac) const;

  private:
    /** OCV anchor points (available-well fraction -> volts), AGM cells. */
    struct OcvPoint {
        double frac;
        Volts volts;
    };

    static constexpr std::array<OcvPoint, 7> ocvCurve = {{
        {0.00, 11.60},
        {0.10, 11.95},
        {0.25, 12.10},
        {0.50, 12.35},
        {0.75, 12.55},
        {0.90, 12.70},
        {1.00, 12.90},
    }};

    const BatteryParams params_;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_VOLTAGE_MODEL_HH
