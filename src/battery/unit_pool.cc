#include "battery/unit_pool.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::battery {

void
UnitPool::reserve(std::size_t units)
{
    y1_.reserve(units);
    y2_.reserve(units);
    wellCap_.reserve(units);
    c_.reserve(units);
    kPrime_.reserve(units);
    ratedCapAh_.reserve(units);
    nominalV_.reserve(units);
    selfPerDay_.reserve(units);
    restDrain_.reserve(units);
    shortMult_.reserve(units);
    exoAh_.reserve(units);
    openCircuit_.reserve(units);
    safeDt_.reserve(units);
    safeI_.reserve(units);
}

std::uint32_t
UnitPool::addUnit(const BatteryParams &params, double initialSoc)
{
    if (params.capacityAh <= 0.0 || params.kibamC <= 0.0 ||
        params.kibamC >= 1.0 || params.kibamKPrime <= 0.0) {
        fatal("Kibam: invalid parameters (cap=%f c=%f k'=%f)",
              params.capacityAh, params.kibamC, params.kibamKPrime);
    }
    const std::uint32_t i = static_cast<std::uint32_t>(size());
    if (i > 0 && uniformKinetics_) {
        uniformKinetics_ =
            params.kibamC == c_[0] && params.kibamKPrime == kPrime_[0];
    }
    wellCap_.push_back(params.capacityAh);
    c_.push_back(params.kibamC);
    kPrime_.push_back(params.kibamKPrime);
    kibam_math::State s{params.capacityAh, params.kibamC,
                        params.kibamKPrime, 0.0, 0.0};
    kibam_math::setSoc(s, initialSoc);
    y1_.push_back(s.y1);
    y2_.push_back(s.y2);
    ratedCapAh_.push_back(params.capacityAh);
    nominalV_.push_back(params.nominalVoltage);
    selfPerDay_.push_back(params.selfDischargePerDay);
    restDrain_.push_back(params.selfDischargePerDay * params.capacityAh /
                         units::hoursPerDay);
    shortMult_.push_back(1.0);
    exoAh_.push_back(0.0);
    openCircuit_.push_back(0);
    safeDt_.push_back(-1.0);
    safeI_.push_back(0.0);
    return i;
}

AmpHours
UnitPool::stepKibam(std::uint32_t i, Amperes current, Seconds dt)
{
    kibam_math::State s = state(i);
    const AmpHours rejected = kibam_math::step(s, current, dt, expMemo_);
    y1_[i] = s.y1;
    y2_[i] = s.y2;
    return rejected;
}

void
UnitPool::setShortMultiplier(std::uint32_t i, double multiplier)
{
    const bool was = shortMult_[i] > 1.0;
    shortMult_[i] = multiplier;
    const bool now = shortMult_[i] > 1.0;
    if (was != now)
        shortCount_ += now ? 1 : -1;
}

void
UnitPool::restRange(std::uint32_t begin, std::uint32_t end, Seconds dt)
{
    if (dt <= 0.0 || begin >= end)
        return;
    if (shortCount_ > 0) {
        // Internal-short faults interleave a second kinetic step per
        // slot; rather than special-casing them inside the vector
        // kernel, fall back to exact per-slot stepping when the range
        // holds any. Faults are rare, ranges with faults are few.
        bool anyShort = false;
        for (std::uint32_t i = begin; i < end && !anyShort; ++i)
            anyShort = shortMult_[i] > 1.0;
        if (anyShort) {
            for (std::uint32_t i = begin; i < end; ++i)
                restOneSlot(i, dt);
            return;
        }
    }
    // Mirror kibam_math::step's subdivision exactly, including the
    // sub-epsilon residual snap, with the range loop innermost.
    Seconds remaining = dt;
    while (remaining > kibam_math::kMaxStep) {
        restRangeExact(begin, end, kibam_math::kMaxStep);
        remaining -= kibam_math::kMaxStep;
    }
    if (remaining >= kibam_math::kResidualEps)
        restRangeExact(begin, end, remaining);
    for (std::uint32_t i = begin; i < end; ++i)
        safeDt_[i] = -1.0;
}

void
UnitPool::restRangeExact(std::uint32_t begin, std::uint32_t end,
                         Seconds dt)
{
    if (!uniformKinetics_) {
        // Mixed (c, k') populations cannot hoist the per-step scalars;
        // step each slot through the shared closed form instead. A
        // direct exp (not the memo) keeps disjoint ranges thread-safe.
        for (std::uint32_t i = begin; i < end; ++i) {
            kibam_math::State s = state(i);
            kibam_math::stepExact(
                s, restDrain_[i], dt,
                kibam_math::ExpDirect{}(kPrime_[i], units::toHours(dt)));
            y1_[i] = s.y1;
            y2_[i] = s.y2;
        }
        return;
    }

    // Uniform kinetics: every scalar subexpression of the closed form
    // that does not involve per-slot state is hoisted (pure value
    // hoisting — the per-slot arithmetic keeps the exact expression
    // tree of kibam_math::stepExact). The rejected-charge accounting is
    // skipped: rest() discards it and it does not feed the state. The
    // remaining loop body is branch-free and vectorises.
    const double t = units::toHours(dt);
    const double k = kPrime_[begin];
    const double c = c_[begin];
    const double e = std::exp(-k * t);
    const double ome = 1.0 - e;
    const double omc = 1.0 - c;
    const double ktme = k * t - 1.0 + e;
    double *__restrict y1p = y1_.data();
    double *__restrict y2p = y2_.data();
    const double *__restrict capp = wellCap_.data();
    const double *__restrict drainp = restDrain_.data();
    for (std::uint32_t i = begin; i < end; ++i) {
        const double q0 = y1p[i] + y2p[i];
        const double current = drainp[i];
        const double ny1 = y1p[i] * e + (q0 * k * c - current) * ome / k -
                           current * c * ktme / k;
        const double ny2 =
            y2p[i] * e + q0 * omc * ome - current * omc * ktme / k;
        y1p[i] = std::clamp(ny1, 0.0, c * capp[i]);
        y2p[i] = std::clamp(ny2, 0.0, omc * capp[i]);
    }
}

void
UnitPool::restOneSlot(std::uint32_t i, Seconds dt)
{
    // Replicates BatteryUnit::rest step for step (nominal drain, then
    // the internal-short extra drain with its exogenous-loss account).
    // ExpDirect instead of the shared memo keeps this callable from
    // worker threads on disjoint ranges; exp is pure, so the values
    // are identical either way.
    const Amperes drain = restDrain_[i];
    kibam_math::State s = state(i);
    kibam_math::step(s, drain, dt, kibam_math::ExpDirect{});
    if (shortMult_[i] > 1.0) {
        const Amperes extra = drain * (shortMult_[i] - 1.0);
        const AmpHours requested = units::chargeAh(extra, dt);
        const AmpHours rejected =
            kibam_math::step(s, extra, dt, kibam_math::ExpDirect{});
        exoAh_[i] += std::max(0.0, requested - rejected);
    }
    y1_[i] = s.y1;
    y2_[i] = s.y2;
    safeDt_[i] = -1.0;
}

double
UnitPool::socSumRange(std::uint32_t begin, std::uint32_t end) const
{
    double sum = 0.0;
    for (std::uint32_t i = begin; i < end; ++i)
        sum += soc(i);
    return sum;
}

WattHours
UnitPool::storedEnergyWhRange(std::uint32_t begin, std::uint32_t end) const
{
    WattHours e = 0.0;
    for (std::uint32_t i = begin; i < end; ++i)
        e += soc(i) * ratedCapAh_[i] * nominalV_[i];
    return e;
}

AmpHours
UnitPool::unitAhRange(std::uint32_t begin, std::uint32_t end) const
{
    AmpHours ah = 0.0;
    for (std::uint32_t i = begin; i < end; ++i)
        ah += soc(i) * ratedCapAh_[i];
    return ah;
}

AmpHours
UnitPool::exogenousAhRange(std::uint32_t begin, std::uint32_t end) const
{
    AmpHours ah = 0.0;
    for (std::uint32_t i = begin; i < end; ++i)
        ah += exoAh_[i];
    return ah;
}

} // namespace insure::battery
