/**
 * @file
 * Electromechanical relay model.
 *
 * Each battery cabinet is managed by a pair of relays (charge-side and
 * discharge-side) driven from the PLC's digital outputs. The model tracks
 * contact state and mechanical wear; the 25 ms switching time is far below
 * the 1 s physics tick, so transients are not modelled electrically but the
 * switch count feeds the maintenance statistics.
 */

#ifndef INSURE_BATTERY_RELAY_HH
#define INSURE_BATTERY_RELAY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "battery/battery_params.hh"
#include "battery/relay_pool.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::battery {

/**
 * Mechanical failure mode of a relay contact (fault injection). The
 * contact diverges from its commanded state; the controllers only see
 * this through the telemetry relay registers.
 */
enum class RelayFault {
    None,
    /** Contact cannot close (broken return spring / burnt coil). */
    StuckOpen,
    /** Contact welded shut, cannot open. */
    WeldedClosed,
};

/**
 * A single SPST relay contact. A thin view over a RelayPool slot: the
 * cabinet/array layer pools all relay state densely; a standalone relay
 * owns a private single-slot pool, so both construction styles behave
 * identically.
 */
class Relay
{
  public:
    /**
     * @param name identifier for logs
     * @param params mechanical parameters
     */
    explicit Relay(std::string name, RelayParams params = {});

    /** Pooled variant: state lives in a slot of @p pool. */
    Relay(std::string name, RelayPool &pool, RelayParams params = {});

    /** True when the contact is closed (conducting). */
    bool closed() const { return pool_->closed(slot_); }

    /**
     * Command the contact. Returns true if the state changed (each change
     * consumes one mechanical operation).
     */
    bool set(bool closed);

    /** Convenience: close the contact. */
    bool close() { return set(true); }

    /** Convenience: open the contact. */
    bool open() { return set(false); }

    /** Number of state changes so far. */
    std::uint64_t operations() const { return pool_->operations(slot_); }

    /** Fraction of rated mechanical life consumed. */
    double wearFraction() const;

    const std::string &name() const { return name_; }

    // ---- Fault-injection hooks (src/fault) ---------------------------

    /**
     * Inject a mechanical fault (or clear it with RelayFault::None).
     * StuckOpen drops a closed contact immediately; WeldedClosed freezes
     * the contact shut. Subsequent set() commands cannot move the
     * contact out of the faulted position.
     */
    void injectFault(RelayFault fault);

    /** Active mechanical fault. */
    RelayFault
    fault() const
    {
        return static_cast<RelayFault>(pool_->faultRaw(slot_));
    }

    /**
     * Sluggish actuation: silently drop the next @p commands state-change
     * commands (the PLC re-asserts relay states every control period, so
     * each dropped command delays the transition by one period).
     */
    void
    delayActuation(unsigned commands)
    {
        pool_->setDelayedOps(slot_, pool_->delayedOps(slot_) + commands);
    }

    /** Serialize contact state, wear count and fault state. */
    void save(snapshot::Archive &ar) const;

    /** Restore contact state, wear count and fault state. */
    void load(snapshot::Archive &ar);

  private:
    std::string name_;
    RelayParams params_;
    std::unique_ptr<RelayPool> ownPool_; // standalone construction only
    RelayPool *pool_;
    std::uint32_t slot_;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_RELAY_HH
