/**
 * @file
 * One 12 V lead-acid battery unit: kinetic charge model + voltage model +
 * charging electrochemistry + ageing, with the per-unit operating mode of
 * the InSURE e-Buffer (paper Fig. 7/8).
 *
 * The electrochemical and fault state lives in a UnitPool slot (see
 * unit_pool.hh): the cabinet/array layer pools all units densely so the
 * hot loops stream over arrays, while this class stays the API — a thin
 * view holding the name, parameters, voltage/charge/wear models and the
 * operating mode. A standalone-constructed unit owns a private
 * single-slot pool, so both construction styles behave identically.
 */

#ifndef INSURE_BATTERY_BATTERY_UNIT_HH
#define INSURE_BATTERY_BATTERY_UNIT_HH

#include <functional>
#include <memory>
#include <string>

#include "battery/battery_params.hh"
#include "battery/charge_model.hh"
#include "battery/unit_pool.hh"
#include "battery/voltage_model.hh"
#include "battery/wear_model.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::battery {

/** Operating mode of a battery unit (paper Fig. 7). */
enum class UnitMode {
    /** Disconnected from both buses (protection / over-used). */
    Offline,
    /** Connected to the charge bus. */
    Charging,
    /** Charged and ready; float, no load. */
    Standby,
    /** Connected to the load bus. */
    Discharging,
};

/** Printable name of a mode. */
const char *unitModeName(UnitMode mode);

/** Result of one charging step. */
struct ChargeResult {
    /** Ampere-hours actually stored in the cell. */
    AmpHours storedAh = 0.0;
    /** Energy drawn from the charging bus (watt-hours). */
    WattHours busEnergyWh = 0.0;
};

/** Result of one discharge step. */
struct DischargeResult {
    /** Ampere-hours actually delivered to the load bus. */
    AmpHours deliveredAh = 0.0;
    /** Energy delivered (watt-hours, at terminal voltage). */
    WattHours energyWh = 0.0;
    /** True if the unit hit its protection limits during the step. */
    bool hitProtection = false;
};

/**
 * A single battery unit. Current conventions: discharge currents are
 * positive amperes out of the cell; charge requests are positive amperes of
 * bus current into the charger.
 */
class BatteryUnit
{
  public:
    /**
     * @param name identifier (e.g. "batt0")
     * @param params electrical/ageing parameters
     * @param initialSoc starting state of charge
     */
    BatteryUnit(std::string name, const BatteryParams &params,
                double initialSoc = 0.9);

    /** Pooled variant: electrochemical state lives in a @p pool slot. */
    BatteryUnit(std::string name, const BatteryParams &params,
                UnitPool &pool, double initialSoc = 0.9);

    const std::string &name() const { return name_; }
    const BatteryParams &params() const { return params_; }

    /** The pool slot holding this unit's state. */
    std::uint32_t slot() const { return slot_; }

    /** Total state of charge in [0, 1]. */
    double soc() const { return pool_->soc(slot_); }

    /** Available-well fill level (drives terminal voltage). */
    double
    availableFraction() const
    {
        return pool_->availableFraction(slot_);
    }

    /** Terminal voltage at the given current (+ = discharge). An
     *  open-circuit-failed unit reads 0 V at the terminals (broken
     *  strap/weld): this is what the transducers sense, and the
     *  controller's quarantine plausibility check keys off it. */
    Volts
    terminalVoltage(Amperes current) const
    {
        if (pool_->openCircuit(slot_))
            return 0.0;
        return voltage_.terminal(pool_->availableFraction(slot_), current);
    }

    /** Open-circuit voltage at the present state. */
    Volts
    openCircuitVoltage() const
    {
        return voltage_.openCircuit(pool_->availableFraction(slot_));
    }

    /** Stored energy estimate at nominal voltage, watt-hours. */
    WattHours
    storedEnergyWh() const
    {
        return soc() * params_.capacityAh * params_.nominalVoltage;
    }

    /** Usable capacity of the unit, watt-hours (full to empty). */
    WattHours
    capacityWh() const
    {
        return params_.capacityAh * params_.nominalVoltage;
    }

    /**
     * Largest discharge current that is safe for @p dt seconds: respects
     * the rated limit, the KiBaM available well, the low-voltage cutoff and
     * the SoC floor.
     *
     * The result is a pure function of the electrochemical state and
     * @p dt, so it is memoised until the next state change: within one
     * physics tick the array asks several times (fast-switch headroom
     * check, per-cabinet allocation limits) with identical state.
     */
    Amperes
    safeDischargeCurrent(Seconds dt) const
    {
        if (!pool_->safeCacheValid(slot_, dt))
            pool_->storeSafeCache(slot_, dt,
                                  computeSafeDischargeCurrent(dt));
        return pool_->safeCacheCurrent(slot_);
    }

    /**
     * Discharge at @p current amperes for @p dt seconds. The current is
     * clipped to the rated maximum; if the available well empties or the
     * voltage falls below cutoff mid-step, the result flags protection.
     */
    DischargeResult discharge(Amperes current, Seconds dt);

    /**
     * Charge with @p bus_current amperes of charger output for @p dt
     * seconds. Acceptance, efficiency and parasitic losses apply.
     */
    ChargeResult charge(Amperes bus_current, Seconds dt);

    /**
     * Let the unit rest for @p dt seconds (self-discharge + recovery).
     * Every idle unit rests every physics tick, so inline.
     */
    void
    rest(Seconds dt)
    {
        if (dt <= 0.0)
            return;
        // Self-discharge expressed as a tiny drain current; also lets the
        // two wells re-equilibrate (recovery effect).
        const Amperes drain = params_.selfDischargePerDay *
                              params_.capacityAh / units::hoursPerDay;
        pool_->stepKibam(slot_, drain, dt);
        if (pool_->shortMultiplier(slot_) > 1.0) {
            // Internal-short fault: extra drain beyond the nominal
            // self-discharge, logged as exogenous inventory loss (the
            // conservation invariant only allows for the nominal rate).
            const Amperes extra =
                drain * (pool_->shortMultiplier(slot_) - 1.0);
            const AmpHours requested = units::chargeAh(extra, dt);
            const AmpHours rejected = pool_->stepKibam(slot_, extra, dt);
            pool_->addExogenousAh(slot_,
                                  std::max(0.0, requested - rejected));
        }
        pool_->invalidateSafeCache(slot_);
    }

    /** True when charged to the configured "charged" threshold. */
    bool charged() const { return soc() >= params_.chargedSoc; }

    /** True when at or below the discharge floor. */
    bool
    depleted() const
    {
        return soc() <= params_.minSoc || pool_->exhausted(slot_);
    }

    /** Ageing state. */
    const WearModel &wear() const { return wear_; }

    /** Charging electrochemistry (acceptance/efficiency queries). */
    const ChargeModel &chargeModel() const { return charge_; }

    /** Current operating mode. */
    UnitMode mode() const { return mode_; }

    /**
     * Observer invoked on every actual mode transition (from != to),
     * before the new mode takes effect. Used by the validation layer to
     * police the Fig. 8 state machine at the point every transition —
     * manager decision, fast-switch promotion, protection trip — funnels
     * through.
     */
    using ModeObserver = std::function<void(UnitMode from, UnitMode to)>;

    /** Install (or clear, with nullptr) the mode-transition observer. */
    void setModeObserver(ModeObserver obs) { modeObserver_ = std::move(obs); }

    /** Set the operating mode (transitions are policed by the managers). */
    void
    setMode(UnitMode mode)
    {
        if (modeObserver_ && mode != mode_)
            modeObserver_(mode_, mode);
        mode_ = mode;
    }

    /** Force the state of charge (testing / scenario setup). */
    void
    setSoc(double soc)
    {
        pool_->setSoc(slot_, soc);
        pool_->invalidateSafeCache(slot_);
    }

    // ---- Fault-injection hooks (src/fault) -------------------------------
    // The hooks model physical failure, not controller knowledge: the
    // managers only ever see the faults through telemetry.

    /** True when failed open-circuit (conducts no current, reads 0 V). */
    bool openCircuit() const { return pool_->openCircuit(slot_); }

    /** Fail the unit open-circuit, or clear the fault. */
    void
    setOpenCircuit(bool open)
    {
        pool_->setOpenCircuit(slot_, open);
        pool_->invalidateSafeCache(slot_);
    }

    /**
     * Sudden capacity fade: shrink the remaining capacity to @p factor of
     * its present value (clamped to [0.05, 1]). Charge that no longer
     * fits is dropped and logged as exogenous loss.
     * @return ampere-hours dropped from the inventory.
     */
    AmpHours injectCapacityFade(double factor);

    /**
     * Internal short: self-discharge accelerated to @p multiplier times
     * nominal (1 restores health). The extra drain beyond the nominal
     * rate is logged as exogenous loss each rest step.
     */
    void
    setSelfDischargeMultiplier(double multiplier)
    {
        pool_->setShortMultiplier(slot_, std::max(1.0, multiplier));
    }

    /**
     * Ampere-hours removed from this cell by fault mechanisms (capacity
     * fade, internal-short extra drain) — inventory changes outside the
     * regular discharge/charge/self-discharge paths. Monotonic; the
     * conservation invariant consumes per-tick deltas.
     */
    AmpHours exogenousAh() const { return pool_->exogenousAh(slot_); }

    /**
     * Serialize the full electrochemical + mode + fault state. The mode
     * is restored directly (no observer callback: the observer mirrors
     * live transitions, not state reconstruction).
     */
    void save(snapshot::Archive &ar) const;

    /** Restore; the safe-discharge memo is invalidated. */
    void load(snapshot::Archive &ar);

  private:
    std::string name_;
    BatteryParams params_;
    std::unique_ptr<UnitPool> ownPool_; // standalone construction only
    UnitPool *pool_;
    std::uint32_t slot_;
    VoltageModel voltage_;
    ChargeModel charge_;
    WearModel wear_;
    UnitMode mode_ = UnitMode::Standby;
    ModeObserver modeObserver_;

    Amperes computeSafeDischargeCurrent(Seconds dt) const;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_BATTERY_UNIT_HH
