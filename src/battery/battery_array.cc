#include "battery/battery_array.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::battery {

BatteryArray::BatteryArray(const BatteryParams &params,
                           unsigned cabinet_count, unsigned series_count,
                           double initialSoc)
{
    if (cabinet_count == 0)
        fatal("BatteryArray: need at least one cabinet");
    for (unsigned i = 0; i < cabinet_count; ++i) {
        cabinets_.push_back(std::make_unique<Cabinet>(
            "cab" + std::to_string(i), params, series_count, initialSoc));
    }
    touched_.assign(cabinet_count, false);
}

std::vector<unsigned>
BatteryArray::cabinetsInMode(UnitMode mode) const
{
    std::vector<unsigned> out;
    for (unsigned i = 0; i < cabinets_.size(); ++i) {
        if (cabinets_[i]->mode() == mode)
            out.push_back(i);
    }
    return out;
}

void
BatteryArray::setAllModes(UnitMode mode)
{
    for (auto &c : cabinets_)
        c->setMode(mode);
}

WattHours
BatteryArray::storedEnergyWh() const
{
    WattHours e = 0.0;
    for (const auto &c : cabinets_)
        e += c->storedEnergyWh();
    return e;
}

WattHours
BatteryArray::capacityWh() const
{
    WattHours e = 0.0;
    for (const auto &c : cabinets_)
        e += c->capacityWh();
    return e;
}

double
BatteryArray::meanSoc() const
{
    double s = 0.0;
    for (const auto &c : cabinets_)
        s += c->soc();
    return s / cabinets_.size();
}

AmpHours
BatteryArray::totalUnitAh() const
{
    AmpHours ah = 0.0;
    for (const auto &c : cabinets_)
        ah += c->unitAh();
    return ah;
}

AmpHours
BatteryArray::totalExogenousAh() const
{
    AmpHours ah = 0.0;
    for (const auto &c : cabinets_)
        ah += c->exogenousAh();
    return ah;
}

double
BatteryArray::voltageStddev() const
{
    double sum = 0.0;
    double sumSq = 0.0;
    for (const auto &c : cabinets_) {
        const double v = c->openCircuitVoltage();
        sum += v;
        sumSq += v * v;
    }
    const double n = static_cast<double>(cabinets_.size());
    const double mean = sum / n;
    const double var = sumSq / n - mean * mean;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Volts
BatteryArray::busVoltage() const
{
    return network_.busVoltage(cabinets_.front()->nominalVoltage(),
                               cabinetCount());
}

Watts
BatteryArray::maxDischargePower(Seconds dt) const
{
    Watts total = 0.0;
    for (const auto &c : cabinets_) {
        if (c->mode() != UnitMode::Discharging &&
            c->mode() != UnitMode::Standby)
            continue;
        const Amperes i = c->safeDischargeCurrent(dt);
        total += i * c->terminalVoltage(i);
    }
    return total;
}

void
BatteryArray::beginTick()
{
    std::fill(touched_.begin(), touched_.end(), false);
}

ArrayDischargeResult
BatteryArray::discharge(Watts demand, Seconds dt)
{
    ArrayDischargeResult res;
    discharge(demand, dt, res);
    return res;
}

void
BatteryArray::discharge(Watts demand, Seconds dt, ArrayDischargeResult &res)
{
    res.deliveredPower = 0.0;
    res.energyWh = 0.0;
    res.throughputAh = 0.0;
    res.tripped.clear();
    res.cabinetCurrents.assign(cabinets_.size(), 0.0);
    res.cabinetAh.assign(cabinets_.size(), 0.0);
    if (demand <= 0.0 || dt <= 0.0)
        return;

    // Online cabinets (Discharging and Standby), ascending index — the
    // same order the old collect-per-mode-then-sort produced, without
    // the temporary vectors.
    auto &active = scratchActive_;
    active.clear();
    for (unsigned i = 0; i < cabinets_.size(); ++i) {
        const UnitMode m = cabinets_[i]->mode();
        if (m == UnitMode::Discharging || m == UnitMode::Standby)
            active.push_back(i);
    }
    if (active.empty())
        return;

    // Determine per-cabinet current: equal split at the bus voltage with
    // redistribution when a cabinet saturates at its safe current.
    auto &alloc = scratchAlloc_;
    auto &limit = scratchLimit_;
    alloc.assign(active.size(), 0.0);
    limit.assign(active.size(), 0.0);
    for (std::size_t j = 0; j < active.size(); ++j)
        limit[j] = cabinets_[active[j]]->safeDischargeCurrent(dt);

    Watts remaining = demand;
    for (int pass = 0; pass < 3 && remaining > 1e-9; ++pass) {
        // Count cabinets that still have headroom.
        auto &open = scratchOpen_;
        open.clear();
        for (std::size_t j = 0; j < active.size(); ++j) {
            if (alloc[j] < limit[j] - 1e-12)
                open.push_back(j);
        }
        if (open.empty())
            break;
        const Watts share = remaining / open.size();
        for (auto j : open) {
            const Cabinet &c = *cabinets_[active[j]];
            // Two-step current estimate so the IR drop at the granted
            // current is priced into the allocation.
            const Volts v0 = c.terminalVoltage(std::max(alloc[j], 1.0));
            if (v0 <= 0.0)
                continue;
            const Amperes i_guess = alloc[j] + share / v0;
            const Volts v = c.terminalVoltage(i_guess);
            if (v <= 0.0)
                continue;
            const Amperes want = share / v;
            const Amperes grant = std::min(want, limit[j] - alloc[j]);
            alloc[j] += grant;
            remaining -= grant * v;
        }
    }

    for (std::size_t j = 0; j < active.size(); ++j) {
        const unsigned idx = active[j];
        touched_[idx] = true;
        if (alloc[j] <= 0.0) {
            cabinets_[idx]->rest(dt);
            continue;
        }
        const DischargeResult r = cabinets_[idx]->discharge(alloc[j], dt);
        res.energyWh += r.energyWh;
        res.throughputAh += r.deliveredAh;
        res.cabinetCurrents[idx] = alloc[j];
        res.cabinetAh[idx] = r.deliveredAh;
        if (r.hitProtection)
            res.tripped.push_back(idx);
    }
    res.deliveredPower = res.energyWh / units::toHours(dt);
}

ArrayChargeResult
BatteryArray::chargeCabinet(unsigned idx, Watts budget, Seconds dt,
                            bool allow_standby)
{
    ArrayChargeResult res;
    if (idx >= cabinets_.size())
        panic("BatteryArray: cabinet index %u out of range", idx);
    if (budget <= 0.0 || dt <= 0.0)
        return res;

    Cabinet &c = *cabinets_[idx];
    const bool chargeable =
        c.mode() == UnitMode::Charging ||
        (allow_standby && c.mode() == UnitMode::Standby);
    if (!chargeable)
        return res; // cabinet left the charge bus since the plan was made
    touched_[idx] = true;

    // Charger output current at the cabinet's absorption voltage, bounded
    // by the budget and by what the string accepts (plus parasitics).
    const Volts v_charge =
        c.unit(0).params().absorptionVoltage * c.seriesCount();
    const Amperes budget_current = budget / v_charge;
    const Amperes acceptance =
        c.acceptanceCurrent() + c.unit(0).params().parasiticBusCurrent;
    const Amperes bus_current = std::min(budget_current, acceptance);
    if (bus_current <= 0.0) {
        c.rest(dt);
        return res;
    }

    const ChargeResult r = c.charge(bus_current, dt);
    res.storedAh = r.storedAh;
    res.consumedPower = r.busEnergyWh / units::toHours(dt);
    return res;
}

void
BatteryArray::endTick(Seconds dt)
{
    for (unsigned i = 0; i < cabinets_.size(); ++i) {
        if (!touched_[i])
            cabinets_[i]->rest(dt);
    }
}

std::uint64_t
BatteryArray::relayOperations() const
{
    std::uint64_t ops = network_.operations();
    for (const auto &c : cabinets_)
        ops += c->relayOperations();
    return ops;
}

AmpHours
BatteryArray::totalDischargeThroughputAh() const
{
    AmpHours ah = 0.0;
    for (const auto &c : cabinets_)
        ah += c->dischargeThroughputAh();
    return ah;
}

double
BatteryArray::projectedLifeYears(Seconds observed) const
{
    double years = cabinets_.front()->projectedLifeYears(observed);
    for (const auto &c : cabinets_)
        years = std::min(years, c->projectedLifeYears(observed));
    return years;
}


void
BatteryArray::save(snapshot::Archive &ar) const
{
    ar.section("battery_array");
    ar.putSize(cabinets_.size());
    for (const auto &c : cabinets_)
        c->save(ar);
    network_.save(ar);
    ar.putSize(touched_.size());
    for (const bool t : touched_)
        ar.putBool(t);
}

void
BatteryArray::load(snapshot::Archive &ar)
{
    ar.section("battery_array");
    if (ar.getSize() != cabinets_.size())
        throw snapshot::SnapshotError(
            "BatteryArray: cabinet count differs from snapshot");
    for (auto &c : cabinets_)
        c->load(ar);
    network_.load(ar);
    touched_.assign(ar.getSize(), false);
    for (std::size_t i = 0; i < touched_.size(); ++i)
        touched_[i] = ar.getBool();
}

} // namespace insure::battery
