#include "battery/battery_array.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace insure::battery {

BatteryArray::BatteryArray(const BatteryParams &params,
                           unsigned cabinet_count, unsigned series_count,
                           double initialSoc)
    : units_(std::make_unique<UnitPool>()),
      relays_(std::make_unique<RelayPool>()), seriesCount_(series_count)
{
    units_->reserve(static_cast<std::size_t>(cabinet_count) * series_count);
    relays_->reserve(static_cast<std::size_t>(cabinet_count) * 2);
    cabinets_.reserve(cabinet_count);
    // Sized once up front: attachModeMirror hands out interior pointers,
    // which stay valid because the vector never regrows (and a move of
    // the array moves the buffer, not the elements).
    modeMirror_.assign(cabinet_count, UnitMode::Standby);
    for (unsigned i = 0; i < cabinet_count; ++i) {
        cabinets_.push_back(std::make_unique<Cabinet>(
            "cab" + std::to_string(i), params, series_count, initialSoc,
            *units_, *relays_));
    }
    for (unsigned i = 0; i < cabinet_count; ++i)
        cabinets_[i]->attachModeMirror(&modeMirror_[i]);
    touched_.assign(cabinet_count, 0);
}

void
BatteryArray::setWorkerThreads(unsigned threads)
{
    if (threads <= 1)
        workers_.reset();
    else
        workers_ = std::make_unique<core::WorkerPool>(threads);
}

std::vector<unsigned>
BatteryArray::cabinetsInMode(UnitMode mode) const
{
    std::vector<unsigned> out;
    for (unsigned i = 0; i < modeMirror_.size(); ++i) {
        if (modeMirror_[i] == mode)
            out.push_back(i);
    }
    return out;
}

void
BatteryArray::setAllModes(UnitMode mode)
{
    for (auto &c : cabinets_)
        c->setMode(mode);
}

WattHours
BatteryArray::storedEnergyWh() const
{
    if (!batched_) {
        WattHours e = 0.0;
        for (const auto &c : cabinets_)
            e += c->storedEnergyWh();
        return e;
    }
    if (parallelEngaged()) {
        partials_.assign(cabinets_.size(), 0.0);
        const std::function<void(std::size_t)> fn = [&](std::size_t i) {
            partials_[i] = units_->storedEnergyWhRange(
                cabinets_[i]->unitBegin(), cabinets_[i]->unitEnd());
        };
        workers_->run(cabinets_.size(), fn);
        // One sequential combine in cabinet order: the same association
        // as the serial loop, whatever the worker count.
        WattHours e = 0.0;
        for (const double p : partials_)
            e += p;
        return e;
    }
    WattHours e = 0.0;
    for (const auto &c : cabinets_)
        e += units_->storedEnergyWhRange(c->unitBegin(), c->unitEnd());
    return e;
}

WattHours
BatteryArray::capacityWh() const
{
    WattHours e = 0.0;
    for (const auto &c : cabinets_)
        e += c->capacityWh();
    return e;
}

double
BatteryArray::meanSoc() const
{
    if (cabinets_.empty())
        return 0.0;
    if (!batched_) {
        double s = 0.0;
        for (const auto &c : cabinets_)
            s += c->soc();
        return s / cabinets_.size();
    }
    double s = 0.0;
    for (const auto &c : cabinets_)
        s += units_->socSumRange(c->unitBegin(), c->unitEnd()) /
             c->seriesCount();
    return s / cabinets_.size();
}

AmpHours
BatteryArray::totalUnitAh() const
{
    if (!batched_) {
        AmpHours ah = 0.0;
        for (const auto &c : cabinets_)
            ah += c->unitAh();
        return ah;
    }
    if (parallelEngaged()) {
        partials_.assign(cabinets_.size(), 0.0);
        const std::function<void(std::size_t)> fn = [&](std::size_t i) {
            partials_[i] = units_->unitAhRange(cabinets_[i]->unitBegin(),
                                               cabinets_[i]->unitEnd());
        };
        workers_->run(cabinets_.size(), fn);
        AmpHours ah = 0.0;
        for (const double p : partials_)
            ah += p;
        return ah;
    }
    AmpHours ah = 0.0;
    for (const auto &c : cabinets_)
        ah += units_->unitAhRange(c->unitBegin(), c->unitEnd());
    return ah;
}

AmpHours
BatteryArray::totalExogenousAh() const
{
    if (!batched_) {
        AmpHours ah = 0.0;
        for (const auto &c : cabinets_)
            ah += c->exogenousAh();
        return ah;
    }
    AmpHours ah = 0.0;
    for (const auto &c : cabinets_)
        ah += units_->exogenousAhRange(c->unitBegin(), c->unitEnd());
    return ah;
}

double
BatteryArray::voltageStddev() const
{
    if (cabinets_.empty())
        return 0.0;
    double sum = 0.0;
    double sumSq = 0.0;
    for (const auto &c : cabinets_) {
        const double v = c->openCircuitVoltage();
        sum += v;
        sumSq += v * v;
    }
    const double n = static_cast<double>(cabinets_.size());
    const double mean = sum / n;
    const double var = sumSq / n - mean * mean;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

Volts
BatteryArray::busVoltage() const
{
    if (cabinets_.empty())
        return 0.0;
    return network_.busVoltage(cabinets_.front()->nominalVoltage(),
                               cabinetCount());
}

Watts
BatteryArray::maxDischargePower(Seconds dt) const
{
    Watts total = 0.0;
    for (unsigned idx = 0; idx < cabinets_.size(); ++idx) {
        const UnitMode m = modeMirror_[idx];
        if (m != UnitMode::Discharging && m != UnitMode::Standby)
            continue;
        const Cabinet &c = *cabinets_[idx];
        const Amperes i = c.safeDischargeCurrent(dt);
        total += i * c.terminalVoltage(i);
    }
    return total;
}

void
BatteryArray::beginTick()
{
    std::fill(touched_.begin(), touched_.end(), 0);
}

ArrayDischargeResult
BatteryArray::discharge(Watts demand, Seconds dt)
{
    ArrayDischargeResult res;
    discharge(demand, dt, res);
    return res;
}

void
BatteryArray::discharge(Watts demand, Seconds dt, ArrayDischargeResult &res)
{
    res.deliveredPower = 0.0;
    res.energyWh = 0.0;
    res.throughputAh = 0.0;
    res.tripped.clear();
    res.cabinetCurrents.assign(cabinets_.size(), 0.0);
    res.cabinetAh.assign(cabinets_.size(), 0.0);
    if (demand <= 0.0 || dt <= 0.0)
        return;

    // Online cabinets (Discharging and Standby), ascending index — the
    // same order the old collect-per-mode-then-sort produced, without
    // the temporary vectors. The mode mirror keeps this a single linear
    // scan of a dense array.
    auto &active = scratchActive_;
    active.clear();
    for (unsigned i = 0; i < modeMirror_.size(); ++i) {
        const UnitMode m = modeMirror_[i];
        if (m == UnitMode::Discharging || m == UnitMode::Standby)
            active.push_back(i);
    }
    if (active.empty())
        return;

    // Determine per-cabinet current: equal split at the bus voltage with
    // redistribution when a cabinet saturates at its safe current.
    auto &alloc = scratchAlloc_;
    auto &limit = scratchLimit_;
    alloc.assign(active.size(), 0.0);
    limit.assign(active.size(), 0.0);
    for (std::size_t j = 0; j < active.size(); ++j)
        limit[j] = cabinets_[active[j]]->safeDischargeCurrent(dt);

    Watts remaining = demand;
    for (int pass = 0; pass < 3 && remaining > 1e-9; ++pass) {
        // Count cabinets that still have headroom.
        auto &open = scratchOpen_;
        open.clear();
        for (std::size_t j = 0; j < active.size(); ++j) {
            if (alloc[j] < limit[j] - 1e-12)
                open.push_back(j);
        }
        if (open.empty())
            break;
        const Watts share = remaining / open.size();
        for (auto j : open) {
            const Cabinet &c = *cabinets_[active[j]];
            // Two-step current estimate so the IR drop at the granted
            // current is priced into the allocation.
            const Volts v0 = c.terminalVoltage(std::max(alloc[j], 1.0));
            if (v0 <= 0.0)
                continue;
            const Amperes i_guess = alloc[j] + share / v0;
            const Volts v = c.terminalVoltage(i_guess);
            if (v <= 0.0)
                continue;
            const Amperes want = share / v;
            const Amperes grant = std::min(want, limit[j] - alloc[j]);
            alloc[j] += grant;
            remaining -= grant * v;
        }
    }

    for (std::size_t j = 0; j < active.size(); ++j) {
        const unsigned idx = active[j];
        touched_[idx] = 1;
        if (alloc[j] <= 0.0) {
            restCabinet(idx, dt);
            continue;
        }
        const DischargeResult r = cabinets_[idx]->discharge(alloc[j], dt);
        res.energyWh += r.energyWh;
        res.throughputAh += r.deliveredAh;
        res.cabinetCurrents[idx] = alloc[j];
        res.cabinetAh[idx] = r.deliveredAh;
        if (r.hitProtection)
            res.tripped.push_back(idx);
    }
    res.deliveredPower = res.energyWh / units::toHours(dt);
}

ArrayChargeResult
BatteryArray::chargeCabinet(unsigned idx, Watts budget, Seconds dt,
                            bool allow_standby)
{
    ArrayChargeResult res;
    if (idx >= cabinets_.size())
        panic("BatteryArray: cabinet index %u out of range", idx);
    if (budget <= 0.0 || dt <= 0.0)
        return res;

    Cabinet &c = *cabinets_[idx];
    const bool chargeable =
        c.mode() == UnitMode::Charging ||
        (allow_standby && c.mode() == UnitMode::Standby);
    if (!chargeable)
        return res; // cabinet left the charge bus since the plan was made
    touched_[idx] = 1;

    // Charger output current at the cabinet's absorption voltage, bounded
    // by the budget and by what the string accepts (plus parasitics).
    const Volts v_charge =
        c.unit(0).params().absorptionVoltage * c.seriesCount();
    const Amperes budget_current = budget / v_charge;
    const Amperes acceptance =
        c.acceptanceCurrent() + c.unit(0).params().parasiticBusCurrent;
    const Amperes bus_current = std::min(budget_current, acceptance);
    if (bus_current <= 0.0) {
        restCabinet(idx, dt);
        return res;
    }

    const ChargeResult r = c.charge(bus_current, dt);
    res.storedAh = r.storedAh;
    res.consumedPower = r.busEnergyWh / units::toHours(dt);
    return res;
}

void
BatteryArray::endTick(Seconds dt)
{
    if (!batched_) {
        for (unsigned i = 0; i < cabinets_.size(); ++i) {
            if (!touched_[i])
                cabinets_[i]->rest(dt);
        }
        return;
    }

    // Coalesce runs of untouched cabinets into contiguous unit ranges:
    // on an idle array this turns cabinetCount rest calls into a handful
    // of long streaming kernels.
    auto &ranges = scratchRanges_;
    ranges.clear();
    for (unsigned i = 0; i < cabinets_.size(); ++i) {
        if (touched_[i])
            continue;
        const std::uint32_t b = cabinets_[i]->unitBegin();
        const std::uint32_t e = cabinets_[i]->unitEnd();
        if (!ranges.empty() && ranges.back().second == b)
            ranges.back().second = e;
        else
            ranges.emplace_back(b, e);
    }
    if (ranges.empty())
        return;

    if (!parallelEngaged()) {
        for (const auto &r : ranges)
            units_->restRange(r.first, r.second, dt);
        return;
    }

    // Split into fixed-size chunks. The rest kernel is element-wise over
    // slots, so the partition cannot change any value; fixing the chunk
    // size (rather than deriving it from the worker count) keeps even
    // the work decomposition identical across thread counts.
    auto &chunks = scratchChunks_;
    chunks.clear();
    for (const auto &r : ranges) {
        for (std::uint32_t b = r.first; b < r.second; b += kWorkerChunkUnits)
            chunks.emplace_back(b,
                                std::min(r.second, b + kWorkerChunkUnits));
    }
    const std::function<void(std::size_t)> fn = [&](std::size_t j) {
        units_->restRange(chunks[j].first, chunks[j].second, dt);
    };
    workers_->run(chunks.size(), fn);
}

std::uint64_t
BatteryArray::relayOperations() const
{
    std::uint64_t ops = network_.operations();
    for (const auto &c : cabinets_)
        ops += c->relayOperations();
    return ops;
}

AmpHours
BatteryArray::totalDischargeThroughputAh() const
{
    AmpHours ah = 0.0;
    for (const auto &c : cabinets_)
        ah += c->dischargeThroughputAh();
    return ah;
}

double
BatteryArray::projectedLifeYears(Seconds observed) const
{
    // Min over cabinets; an empty array projects an unbounded life (the
    // seed dereferenced cabinets_.front() here, which degenerate
    // zero-cabinet configs turned into undefined behaviour).
    double years = std::numeric_limits<double>::infinity();
    for (const auto &c : cabinets_)
        years = std::min(years, c->projectedLifeYears(observed));
    return years;
}


void
BatteryArray::save(snapshot::Archive &ar) const
{
    ar.section("battery_array");
    ar.putSize(cabinets_.size());
    for (const auto &c : cabinets_)
        c->save(ar);
    network_.save(ar);
    ar.putSize(touched_.size());
    for (const std::uint8_t t : touched_)
        ar.putBool(t != 0);
}

void
BatteryArray::load(snapshot::Archive &ar)
{
    ar.section("battery_array");
    if (ar.getSize() != cabinets_.size())
        throw snapshot::SnapshotError(
            "BatteryArray: cabinet count differs from snapshot");
    for (auto &c : cabinets_)
        c->load(ar);
    network_.load(ar);
    // The touched set is per-cabinet bookkeeping: a size mismatch means
    // the archive does not describe this topology, and blindly adopting
    // the archived size would desynchronise endTick's idle-rest pass
    // from the cabinets (stale/missing rest steps after restore).
    const std::size_t touchedCount = ar.getSize();
    if (touchedCount != cabinets_.size())
        throw snapshot::SnapshotError(
            "BatteryArray: touched set size differs from snapshot");
    touched_.assign(touchedCount, 0);
    for (std::size_t i = 0; i < touched_.size(); ++i)
        touched_[i] = ar.getBool() ? 1 : 0;
}

} // namespace insure::battery
