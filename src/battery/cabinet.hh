/**
 * @file
 * A battery cabinet: a series string of battery units behind a pair of
 * relays (charge-side, discharge-side), the unit of reconfiguration in the
 * InSURE e-Buffer. The prototype pairs two 12 V units per cabinet on a
 * 24 V bus (three cabinets from six batteries).
 *
 * A cabinet's units occupy a contiguous slot range [unitBegin,
 * unitBegin + seriesCount) of a UnitPool. When constructed by a
 * BatteryArray the pool is shared across cabinets so array-wide kernels
 * (batched rest, gauge reductions) stream one dense range; a standalone
 * cabinet owns a private pool. Either way the per-unit API is unchanged.
 */

#ifndef INSURE_BATTERY_CABINET_HH
#define INSURE_BATTERY_CABINET_HH

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "battery/battery_unit.hh"
#include "battery/relay.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::battery {

/** A switchable series string of battery units. */
class Cabinet
{
  public:
    /**
     * @param name identifier (e.g. "cab0")
     * @param params per-unit parameters
     * @param series_count number of 12 V units in series (>= 1)
     * @param initialSoc starting state of charge of every unit
     */
    Cabinet(std::string name, const BatteryParams &params,
            unsigned series_count = 2, double initialSoc = 0.9);

    /** Pooled variant: units/relays live in slots of the shared pools. */
    Cabinet(std::string name, const BatteryParams &params,
            unsigned series_count, double initialSoc, UnitPool &units,
            RelayPool &relays);

    const std::string &name() const { return name_; }

    /** Number of series units. */
    unsigned seriesCount() const { return static_cast<unsigned>(units_.size()); }

    /** First UnitPool slot of this cabinet's contiguous unit range. */
    std::uint32_t unitBegin() const { return unitBegin_; }

    /** One past the last UnitPool slot of this cabinet's unit range. */
    std::uint32_t
    unitEnd() const
    {
        return unitBegin_ + static_cast<std::uint32_t>(units_.size());
    }

    /** Access a unit. */
    BatteryUnit &unit(unsigned i) { return *units_[i]; }
    const BatteryUnit &unit(unsigned i) const { return *units_[i]; }

    // The per-unit reductions below run several times per physics tick
    // (manager decisions, telemetry scan, invariant checks), so they are
    // inline; a cabinet is a short series string (typically 2 units).

    /** Mean state of charge across units. */
    double
    soc() const
    {
        double sum = 0.0;
        for (const auto &u : units_)
            sum += u->soc();
        return sum / units_.size();
    }

    /** String terminal voltage at the given current (+ = discharge). */
    Volts
    terminalVoltage(Amperes current) const
    {
        Volts v = 0.0;
        for (const auto &u : units_)
            v += u->terminalVoltage(current);
        return v;
    }

    /** String open-circuit voltage. */
    Volts
    openCircuitVoltage() const
    {
        Volts v = 0.0;
        for (const auto &u : units_)
            v += u->openCircuitVoltage();
        return v;
    }

    /** Nominal string voltage. */
    Volts nominalVoltage() const;

    /** Stored energy across all units, watt-hours. */
    WattHours
    storedEnergyWh() const
    {
        WattHours e = 0.0;
        for (const auto &u : units_)
            e += u->storedEnergyWh();
        return e;
    }

    /**
     * Exact stored charge, summed over every unit (soc * capacityAh),
     * ampere-hours. The per-tick conservation invariant balances deltas
     * of this quantity against delivered/stored ampere-hours.
     */
    AmpHours
    unitAh() const
    {
        AmpHours ah = 0.0;
        for (const auto &u : units_)
            ah += u->soc() * u->params().capacityAh;
        return ah;
    }

    /** Full-charge capacity across all units, watt-hours. */
    WattHours capacityWh() const;

    /** Rated capacity of the string, ampere-hours. */
    AmpHours capacityAh() const;

    /** Safe discharge current for @p dt seconds (min across units). */
    Amperes
    safeDischargeCurrent(Seconds dt) const
    {
        Amperes limit = units_.front()->safeDischargeCurrent(dt);
        for (const auto &u : units_)
            limit = std::min(limit, u->safeDischargeCurrent(dt));
        return limit;
    }

    /** Largest charger bus current any unit will accept right now. */
    Amperes
    acceptanceCurrent() const
    {
        // Series string: the least-accepting unit limits the current.
        Amperes acc = units_.front()->chargeModel().acceptanceCurrent(
            units_.front()->soc());
        for (const auto &u : units_)
            acc = std::min(acc,
                           u->chargeModel().acceptanceCurrent(u->soc()));
        return acc;
    }

    /** Discharge the string at @p current for @p dt. */
    DischargeResult discharge(Amperes current, Seconds dt);

    /** Charge the string with @p bus_current of charger output for @p dt. */
    ChargeResult charge(Amperes bus_current, Seconds dt);

    /** Rest all units for @p dt. */
    void
    rest(Seconds dt)
    {
        for (auto &u : units_)
            u->rest(dt);
    }

    /**
     * Rest all units for @p dt through the pool's batched kernel.
     * Bit-identical to rest(); skips the per-unit dispatch.
     */
    void
    restBatched(Seconds dt)
    {
        pool_->restRange(unitBegin_, unitEnd(), dt);
    }

    /** True when every unit reached the charged threshold. */
    bool
    charged() const
    {
        for (const auto &u : units_) {
            if (!u->charged())
                return false;
        }
        return true;
    }

    /** True when any unit is at the discharge floor. */
    bool
    depleted() const
    {
        for (const auto &u : units_) {
            if (u->depleted())
                return true;
        }
        return false;
    }

    /** Aggregated discharge throughput of the string, ampere-hours. */
    AmpHours dischargeThroughputAh() const;

    /** Projected service life (min across units), years. */
    double projectedLifeYears(Seconds observed) const;

    /** Operating mode; setting it drives the relay pair. */
    UnitMode mode() const { return mode_; }

    /** Set the mode, actuating the charge/discharge relays. */
    void setMode(UnitMode mode);

    /**
     * Mirror every subsequent mode change (setMode and snapshot load)
     * into @p slot, and write the current mode now. The array keeps a
     * dense mode vector this way, so its per-tick mode scans skip the
     * per-cabinet dispatch.
     */
    void
    attachModeMirror(UnitMode *slot)
    {
        mirror_ = slot;
        if (mirror_)
            *mirror_ = mode_;
    }

    /** Charge-side relay (for telemetry). */
    const Relay &chargeRelay() const { return chargeRelay_; }

    /** Discharge-side relay (for telemetry). */
    const Relay &dischargeRelay() const { return dischargeRelay_; }

    /** Mutable relay access (fault injection). */
    Relay &chargeRelay() { return chargeRelay_; }
    Relay &dischargeRelay() { return dischargeRelay_; }

    /** True when any series unit has failed open-circuit: the whole
     *  string is dead (no current path). */
    bool
    anyUnitOpenCircuit() const
    {
        for (const auto &u : units_) {
            if (u->openCircuit())
                return true;
        }
        return false;
    }

    /** Sum of per-unit exogenous (fault-caused) inventory loss, Ah. */
    AmpHours
    exogenousAh() const
    {
        AmpHours ah = 0.0;
        for (const auto &u : units_)
            ah += u->exogenousAh();
        return ah;
    }

    /** Total relay operations (maintenance statistic). */
    std::uint64_t relayOperations() const;

    /** Force SoC on all units (scenario setup). */
    void setSoc(double soc);

    /** Serialize units, both relays and the cabinet mode. */
    void save(snapshot::Archive &ar) const;

    /** Restore units, relays and mode (relays are not actuated). */
    void load(snapshot::Archive &ar);

  private:
    /** Shared body of both constructors: populate the unit range. */
    void init(const BatteryParams &params, unsigned series_count,
              double initialSoc);

    std::string name_;
    std::unique_ptr<UnitPool> ownUnits_; // standalone construction only
    UnitPool *pool_;
    std::uint32_t unitBegin_ = 0;
    std::vector<std::unique_ptr<BatteryUnit>> units_;
    Relay chargeRelay_;
    Relay dischargeRelay_;
    UnitMode mode_ = UnitMode::Standby;
    UnitMode *mirror_ = nullptr; // owned by the array, optional
};

} // namespace insure::battery

#endif // INSURE_BATTERY_CABINET_HH
