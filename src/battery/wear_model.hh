/**
 * @file
 * Ampere-hour throughput wear model.
 *
 * Cycle-life testing of valve-regulated lead-acid cells shows the total
 * electric charge that can flow through a cell before wear-out is roughly
 * constant across charge/discharge regimes (paper ref. [56]). The wear
 * model therefore tracks cumulative discharge throughput and projects the
 * remaining service life from the observed usage rate, bounded by the
 * calendar life.
 */

#ifndef INSURE_BATTERY_WEAR_MODEL_HH
#define INSURE_BATTERY_WEAR_MODEL_HH

#include "battery/battery_params.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::battery {

/** Tracks ageing of one battery unit. */
class WearModel
{
  public:
    explicit WearModel(const BatteryParams &params);

    /** Record @p ah ampere-hours of discharge throughput. Once per
     *  discharging tick per unit, so the success path is inline. */
    void
    recordDischarge(AmpHours ah)
    {
        if (ah < 0.0)
            negativeThroughput(ah);
        discharged_ += ah;
    }

    /** Record @p ah ampere-hours of charge throughput (tracked separately). */
    void
    recordCharge(AmpHours ah)
    {
        if (ah < 0.0)
            negativeThroughput(ah);
        charged_ += ah;
    }

    /** Cumulative discharge throughput. */
    AmpHours dischargeThroughput() const { return discharged_; }

    /** Cumulative charge throughput. */
    AmpHours chargeThroughput() const { return charged_; }

    /** Fraction of lifetime throughput remaining, in [0, 1]. */
    double remainingFraction() const;

    /** True once the throughput budget is exhausted. */
    bool wornOut() const { return remainingFraction() <= 0.0; }

    /**
     * Projected service life in years, assuming the discharge rate observed
     * over @p observed seconds continues, capped at the calendar life.
     * With no observed discharge the calendar life is returned.
     */
    double projectedLifeYears(Seconds observed) const;

    void save(snapshot::Archive &ar) const;
    void load(snapshot::Archive &ar);

  private:
    const BatteryParams params_;
    AmpHours discharged_ = 0.0;
    AmpHours charged_ = 0.0;

    [[noreturn]] void negativeThroughput(AmpHours ah) const;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_WEAR_MODEL_HH
