/**
 * @file
 * The reconfigurable distributed energy buffer: a set of battery cabinets
 * behind the switch network, with power-level charge/discharge operations
 * used by the power managers.
 *
 * Within one physics tick the caller brackets operations with beginTick()
 * and endTick(): cabinets that were neither charged nor discharged during
 * the tick receive a rest step (self-discharge + kinetic recovery).
 *
 * All per-unit electrochemical state lives in one UnitPool (and relay
 * contact state in one RelayPool) shared across cabinets, so the per-tick
 * hot path — rest every idle unit, reduce the gauge sums — runs as tight
 * batched loops over dense arrays instead of per-object dispatch. The
 * cabinets/units remain the API as thin views over pool slots; both
 * stepping paths are bit-identical (the scalar path can be re-enabled
 * with setBatchedStepping(false) — it is the oracle the scale tests
 * compare against).
 *
 * setWorkerThreads(n) adds within-tick parallelism: the batched rest and
 * reduction kernels partition the unit range into fixed-size chunks
 * (independent of the thread count) and reductions combine per-cabinet
 * partial sums in cabinet order on the calling thread, so results are
 * bit-identical regardless of how many workers run.
 */

#ifndef INSURE_BATTERY_BATTERY_ARRAY_HH
#define INSURE_BATTERY_BATTERY_ARRAY_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "battery/cabinet.hh"
#include "battery/switch_network.hh"
#include "core/worker_pool.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::battery {

/** Result of an array-level discharge step. */
struct ArrayDischargeResult {
    /** Average power actually delivered over the step, watts. */
    Watts deliveredPower = 0.0;
    /** Energy delivered, watt-hours. */
    WattHours energyWh = 0.0;
    /** Ampere-hours through the buffer (sum over cabinets). */
    AmpHours throughputAh = 0.0;
    /** Cabinets whose protection tripped during the step. */
    std::vector<unsigned> tripped;
    /** Discharge current drawn from each cabinet (size = cabinetCount). */
    std::vector<Amperes> cabinetCurrents;
    /** Discharge Ah delivered by each cabinet (size = cabinetCount). */
    std::vector<AmpHours> cabinetAh;
};

/** Result of an array-level charge step for one cabinet. */
struct ArrayChargeResult {
    /** Power drawn from the solar bus, watts (average over the step). */
    Watts consumedPower = 0.0;
    /** Ampere-hours stored. */
    AmpHours storedAh = 0.0;
};

/** The distributed, reconfigurable e-Buffer. */
class BatteryArray
{
  public:
    /**
     * @param params per-unit battery parameters
     * @param cabinet_count number of switchable cabinets (0 yields an
     *        empty, inert array: every gauge reads zero/infinity and the
     *        power operations are no-ops — degenerate configs must not
     *        crash the batch driver)
     * @param series_count 12 V units per cabinet
     * @param initialSoc starting state of charge
     */
    BatteryArray(const BatteryParams &params, unsigned cabinet_count = 3,
                 unsigned series_count = 2, double initialSoc = 0.9);

    unsigned cabinetCount() const
    {
        return static_cast<unsigned>(cabinets_.size());
    }

    /** Total battery units across all cabinets. */
    std::size_t unitCount() const { return units_->size(); }

    /** 12 V units per cabinet. */
    unsigned seriesCount() const { return seriesCount_; }

    Cabinet &cabinet(unsigned i) { return *cabinets_[i]; }
    const Cabinet &cabinet(unsigned i) const { return *cabinets_[i]; }

    /** The shared per-unit state pool (scale tests, diagnostics). */
    const UnitPool &unitPool() const { return *units_; }

    /** The P1/P2/P3 reconfiguration network. */
    SwitchNetwork &network() { return network_; }
    const SwitchNetwork &network() const { return network_; }

    /**
     * Select between the batched pool kernels (default) and the legacy
     * per-object stepping for rest/reductions. Both produce bit-identical
     * results; the scalar path exists as the oracle for the scale tests.
     */
    void setBatchedStepping(bool batched) { batched_ = batched; }
    bool batchedStepping() const { return batched_; }

    /**
     * Use @p threads worker threads (including the calling thread) for
     * the batched kernels on large arrays; 0 or 1 restores serial
     * operation. Results are bit-identical for every thread count.
     */
    void setWorkerThreads(unsigned threads);

    /** Configured worker thread count (1 = serial). */
    unsigned
    workerThreads() const
    {
        return workers_ ? workers_->threadCount() : 1;
    }

    /** Indices of cabinets currently in @p mode. */
    std::vector<unsigned> cabinetsInMode(UnitMode mode) const;

    /** Set every cabinet to @p mode (unified-buffer operation). */
    void setAllModes(UnitMode mode);

    /** Sum of stored energy across cabinets, watt-hours. */
    WattHours storedEnergyWh() const;

    /** Sum of full-charge capacity, watt-hours. */
    WattHours capacityWh() const;

    /** Mean state of charge across cabinets (0 for an empty array). */
    double meanSoc() const;

    /** Exact stored charge summed over every unit, ampere-hours. */
    AmpHours totalUnitAh() const;

    /**
     * Ampere-hours removed from the pack by fault mechanisms (capacity
     * fade, internal shorts), summed over every unit. Monotonic; the
     * conservation invariant consumes per-tick deltas. Zero for a
     * healthy array.
     */
    AmpHours totalExogenousAh() const;

    /** Population std-dev of cabinet open-circuit voltages (Table 6). */
    double voltageStddev() const;

    /** DC bus voltage implied by the switch network (0 when empty). */
    Volts busVoltage() const;

    /**
     * Maximum power the Discharging cabinets can deliver safely for
     * @p dt seconds.
     */
    Watts maxDischargePower(Seconds dt) const;

    /** Begin a physics tick (resets the per-tick touched set). */
    void beginTick();

    /**
     * Draw @p demand watts from the online cabinets (Discharging and
     * Standby — standby strings float on the bus and pick up load
     * seamlessly) for @p dt seconds. Demand splits equally with
     * redistribution when individual cabinets hit their safe-current
     * limits.
     */
    ArrayDischargeResult discharge(Watts demand, Seconds dt);

    /**
     * Allocation-free variant: same semantics, but results land in
     * @p res, whose vectors (and this array's internal scratch buffers)
     * are reused across calls — the physics tick issues one of these
     * per simulated second, so steady state never touches the heap.
     */
    void discharge(Watts demand, Seconds dt, ArrayDischargeResult &res);

    /**
     * Charge cabinet @p idx with up to @p budget watts of charger output
     * for @p dt seconds (the cabinet draws what it accepts). Only
     * cabinets in Charging mode accept charge unless @p allow_standby is
     * set (bus-coupled unified wiring), in which case Standby cabinets
     * absorb charge too.
     */
    ArrayChargeResult chargeCabinet(unsigned idx, Watts budget, Seconds dt,
                                    bool allow_standby = false);

    /** End a physics tick: rest all cabinets not touched since beginTick. */
    void endTick(Seconds dt);

    /** Total relay operations across cabinets and bus switches. */
    std::uint64_t relayOperations() const;

    /** Sum of discharge throughput across cabinets, ampere-hours. */
    AmpHours totalDischargeThroughputAh() const;

    /** Minimum projected cabinet service life, years (+inf when empty). */
    double projectedLifeYears(Seconds observed) const;

    /**
     * Serialize cabinets, the switch network and the per-tick touched
     * set (snapshots are taken between ticks, where the set is
     * quiescent; the discharge scratch buffers are pure reusables).
     */
    void save(snapshot::Archive &ar) const;

    /** Restore cabinets, network and touched set. */
    void load(snapshot::Archive &ar);

  private:
    /** Rest one cabinet through the selected stepping path. */
    void
    restCabinet(unsigned idx, Seconds dt)
    {
        if (batched_)
            cabinets_[idx]->restBatched(dt);
        else
            cabinets_[idx]->rest(dt);
    }

    /** True when the batched kernels should fan out to the workers. */
    bool
    parallelEngaged() const
    {
        return workers_ != nullptr &&
               units_->size() >= kParallelUnitThreshold;
    }

    /**
     * Below this many units the fork/join handshake costs more than the
     * kernels themselves; stay serial.
     */
    static constexpr std::size_t kParallelUnitThreshold = 512;

    /** Chunk size (units) for worker partitioning; fixed so the work
     *  decomposition never depends on the thread count. */
    static constexpr std::uint32_t kWorkerChunkUnits = 4096;

    // Pools are heap-owned so views keep valid pointers when the array
    // itself is moved; declared before the cabinets so they outlive the
    // views during destruction.
    std::unique_ptr<UnitPool> units_;
    std::unique_ptr<RelayPool> relays_;
    std::vector<std::unique_ptr<Cabinet>> cabinets_;
    // Dense mirror of each cabinet's mode (written by Cabinet::setMode),
    // so the per-tick mode scans stream one array.
    std::vector<UnitMode> modeMirror_;
    SwitchNetwork network_;
    std::vector<std::uint8_t> touched_;
    unsigned seriesCount_ = 0;
    bool batched_ = true;
    std::unique_ptr<core::WorkerPool> workers_;

    // Scratch buffers for discharge() and the batched kernels; the
    // simulator drives the array from one thread (workers only run
    // inside the batched kernels), so reusing them across ticks is safe
    // and keeps the hot path off the allocator.
    std::vector<unsigned> scratchActive_;
    std::vector<Amperes> scratchAlloc_;
    std::vector<Amperes> scratchLimit_;
    std::vector<std::size_t> scratchOpen_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> scratchRanges_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> scratchChunks_;
    mutable std::vector<double> partials_;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_BATTERY_ARRAY_HH
