#include "battery/relay.hh"

namespace insure::battery {

Relay::Relay(std::string name, RelayParams params)
    : name_(std::move(name)), params_(params)
{
}

bool
Relay::set(bool closed)
{
    if (closed == closed_)
        return false;
    closed_ = closed;
    ++operations_;
    return true;
}

double
Relay::wearFraction()
 const
{
    return operations_ / params_.mechanicalLife;
}

} // namespace insure::battery
