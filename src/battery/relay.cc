#include "battery/relay.hh"

#include "snapshot/archive.hh"

namespace insure::battery {

Relay::Relay(std::string name, RelayParams params)
    : name_(std::move(name)), params_(params)
{
}

bool
Relay::set(bool closed)
{
    if (closed == closed_)
        return false;
    if (delayedOps_ > 0) {
        // Sluggish actuation: the command is lost; the PLC's periodic
        // re-assertion will retry next control period.
        --delayedOps_;
        return false;
    }
    // A mechanically faulted contact ignores commands that would move it
    // out of the faulted position.
    if (fault_ == RelayFault::StuckOpen && closed)
        return false;
    if (fault_ == RelayFault::WeldedClosed && !closed)
        return false;
    closed_ = closed;
    ++operations_;
    return true;
}

void
Relay::injectFault(RelayFault fault)
{
    fault_ = fault;
    // The failure itself moves the contact (no commanded operation).
    if (fault == RelayFault::StuckOpen)
        closed_ = false;
    else if (fault == RelayFault::WeldedClosed)
        closed_ = true;
}

double
Relay::wearFraction()
 const
{
    return operations_ / params_.mechanicalLife;
}


void
Relay::save(snapshot::Archive &ar) const
{
    ar.section("relay");
    ar.putBool(closed_);
    ar.putU64(operations_);
    ar.putEnum(fault_);
    ar.putU32(delayedOps_);
}

void
Relay::load(snapshot::Archive &ar)
{
    ar.section("relay");
    closed_ = ar.getBool();
    operations_ = ar.getU64();
    fault_ = ar.getEnum<RelayFault>(
        static_cast<std::uint32_t>(RelayFault::WeldedClosed));
    delayedOps_ = ar.getU32();
}

} // namespace insure::battery
