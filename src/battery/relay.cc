#include "battery/relay.hh"

#include "snapshot/archive.hh"

namespace insure::battery {

Relay::Relay(std::string name, RelayParams params)
    : name_(std::move(name)), params_(params),
      ownPool_(std::make_unique<RelayPool>()), pool_(ownPool_.get()),
      slot_(pool_->addRelay())
{
}

Relay::Relay(std::string name, RelayPool &pool, RelayParams params)
    : name_(std::move(name)), params_(params), pool_(&pool),
      slot_(pool.addRelay())
{
}

bool
Relay::set(bool closed)
{
    if (closed == pool_->closed(slot_))
        return false;
    const unsigned delayed = pool_->delayedOps(slot_);
    if (delayed > 0) {
        // Sluggish actuation: the command is lost; the PLC's periodic
        // re-assertion will retry next control period.
        pool_->setDelayedOps(slot_, delayed - 1);
        return false;
    }
    // A mechanically faulted contact ignores commands that would move it
    // out of the faulted position.
    const RelayFault f = fault();
    if (f == RelayFault::StuckOpen && closed)
        return false;
    if (f == RelayFault::WeldedClosed && !closed)
        return false;
    pool_->setClosed(slot_, closed);
    pool_->countOperation(slot_);
    return true;
}

void
Relay::injectFault(RelayFault fault)
{
    pool_->setFaultRaw(slot_, static_cast<std::uint8_t>(fault));
    // The failure itself moves the contact (no commanded operation).
    if (fault == RelayFault::StuckOpen)
        pool_->setClosed(slot_, false);
    else if (fault == RelayFault::WeldedClosed)
        pool_->setClosed(slot_, true);
}

double
Relay::wearFraction() const
{
    return operations() / params_.mechanicalLife;
}

void
Relay::save(snapshot::Archive &ar) const
{
    ar.section("relay");
    ar.putBool(pool_->closed(slot_));
    ar.putU64(pool_->operations(slot_));
    ar.putEnum(fault());
    ar.putU32(pool_->delayedOps(slot_));
}

void
Relay::load(snapshot::Archive &ar)
{
    ar.section("relay");
    pool_->setClosed(slot_, ar.getBool());
    pool_->setOperations(slot_, ar.getU64());
    pool_->setFaultRaw(slot_,
                       static_cast<std::uint8_t>(ar.getEnum<RelayFault>(
                           static_cast<std::uint32_t>(
                               RelayFault::WeldedClosed))));
    pool_->setDelayedOps(slot_, ar.getU32());
}

} // namespace insure::battery
