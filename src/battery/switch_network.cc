#include "battery/switch_network.hh"

#include "snapshot/archive.hh"

namespace insure::battery {

const char *
busTopologyName(BusTopology topo)
{
    switch (topo) {
      case BusTopology::Parallel: return "parallel";
      case BusTopology::Series: return "series";
      case BusTopology::Invalid: return "invalid";
    }
    return "?";
}

SwitchNetwork::SwitchNetwork() : p1_("net.p1"), p2_("net.p2"), p3_("net.p3")
{
    selectParallel();
}

void
SwitchNetwork::set(bool p1, bool p2, bool p3)
{
    p1_.set(p1);
    p2_.set(p2);
    p3_.set(p3);
}

BusTopology
SwitchNetwork::topology() const
{
    const bool p1 = p1_.closed();
    const bool p2 = p2_.closed();
    const bool p3 = p3_.closed();
    if (p1 && !p2 && p3)
        return BusTopology::Parallel;
    if (!p1 && p2 && !p3)
        return BusTopology::Series;
    // Any combination closing the series link together with a parallel tie
    // would short a cabinet; treated as invalid and left disconnected.
    return BusTopology::Invalid;
}

Volts
SwitchNetwork::busVoltage(Volts cabinet_voltage,
                          unsigned cabinet_count) const
{
    switch (topology()) {
      case BusTopology::Parallel:
        return cabinet_voltage;
      case BusTopology::Series:
        return cabinet_voltage * cabinet_count;
      case BusTopology::Invalid:
        return 0.0;
    }
    return 0.0;
}

AmpHours
SwitchNetwork::busCapacityAh(AmpHours cabinet_ah,
                             unsigned cabinet_count) const
{
    switch (topology()) {
      case BusTopology::Parallel:
        return cabinet_ah * cabinet_count;
      case BusTopology::Series:
        return cabinet_ah;
      case BusTopology::Invalid:
        return 0.0;
    }
    return 0.0;
}

std::uint64_t
SwitchNetwork::operations() const
{
    return p1_.operations() + p2_.operations() + p3_.operations();
}


void
SwitchNetwork::save(snapshot::Archive &ar) const
{
    ar.section("switch_network");
    p1_.save(ar);
    p2_.save(ar);
    p3_.save(ar);
}

void
SwitchNetwork::load(snapshot::Archive &ar)
{
    ar.section("switch_network");
    p1_.load(ar);
    p2_.load(ar);
    p3_.load(ar);
}

} // namespace insure::battery
