#include "battery/charge_model.hh"

#include <algorithm>
#include <cmath>

namespace insure::battery {

ChargeModel::ChargeModel(const BatteryParams &params) : params_(params)
{
}

Amperes
ChargeModel::effectiveChargeCurrent(Amperes bus_current, double soc) const
{
    if (bus_current <= 0.0)
        return 0.0;
    const Amperes into_cell =
        std::max(0.0, bus_current - params_.parasiticBusCurrent);
    const Amperes accepted = std::min(into_cell, acceptanceCurrent(soc));
    return accepted * efficiency(accepted);
}

Watts
ChargeModel::busPower(Amperes bus_current) const
{
    return bus_current * params_.absorptionVoltage;
}

Watts
ChargeModel::peakChargePower() const
{
    return busPower(params_.maxChargeCurrent +
                    params_.parasiticBusCurrent);
}

} // namespace insure::battery
