#include "battery/charge_model.hh"

#include <algorithm>
#include <cmath>

namespace insure::battery {

ChargeModel::ChargeModel(const BatteryParams &params) : params_(params)
{
}

Amperes
ChargeModel::acceptanceCurrent(double soc) const
{
    soc = std::clamp(soc, 0.0, 1.0);
    if (soc >= 1.0)
        return 0.0;
    if (soc <= params_.absorptionSoc)
        return params_.maxChargeCurrent;
    const double over = soc - params_.absorptionSoc;
    return params_.maxChargeCurrent *
           std::exp(-over / params_.acceptanceTaper);
}

double
ChargeModel::efficiency(Amperes current) const
{
    if (current <= 0.0)
        return 0.0;
    const double rate = current / params_.capacityAh; // C-rate
    return params_.chargeEtaMax * rate / (rate + params_.chargeEtaHalfRate);
}

Amperes
ChargeModel::effectiveChargeCurrent(Amperes bus_current, double soc) const
{
    if (bus_current <= 0.0)
        return 0.0;
    const Amperes into_cell =
        std::max(0.0, bus_current - params_.parasiticBusCurrent);
    const Amperes accepted = std::min(into_cell, acceptanceCurrent(soc));
    return accepted * efficiency(accepted);
}

Watts
ChargeModel::busPower(Amperes bus_current) const
{
    return bus_current * params_.absorptionVoltage;
}

Watts
ChargeModel::peakChargePower() const
{
    return busPower(params_.maxChargeCurrent +
                    params_.parasiticBusCurrent);
}

} // namespace insure::battery
