/**
 * @file
 * Structure-of-arrays storage for battery-unit electrochemical and fault
 * state.
 *
 * At the paper's scale (6 units) per-object stepping is fine; at the
 * roadmap's datacenter scale (10k units) the per-unit dispatch — heap
 * object per unit, parameter loads, virtual-free but pointer-chasing
 * loops — dominates the physics. The pool keeps every per-unit scalar in
 * a dense array so the hot kernels (rest every idle unit, sum the gauge
 * reductions) stream contiguously with no per-unit calls.
 *
 * BatteryUnit remains the API: it is a thin view (pool pointer + slot)
 * over this storage, and a standalone-constructed unit simply owns a
 * private single-slot pool. Snapshot archives, the validation layer and
 * the fault hooks all keep operating on units/cabinets unchanged.
 *
 * Every kernel replicates the exact expression trees of the per-object
 * code path (see kibam_math.hh); only pure, value-preserving work is
 * hoisted (the shared exp factor, the precomputed self-discharge drain).
 * The pooled and per-object paths are therefore bit-identical — tested
 * at 6/1k/10k units — and the checked-in golden digests stay valid.
 */

#ifndef INSURE_BATTERY_UNIT_POOL_HH
#define INSURE_BATTERY_UNIT_POOL_HH

#include <cstdint>
#include <vector>

#include "battery/battery_params.hh"
#include "battery/kibam_math.hh"
#include "sim/units.hh"

namespace insure::battery {

/** Dense per-unit state shared by all units of one owner. */
class UnitPool
{
  public:
    UnitPool() = default;
    UnitPool(const UnitPool &) = delete;
    UnitPool &operator=(const UnitPool &) = delete;

    /** Pre-size the arrays (cabinet construction knows the unit count). */
    void reserve(std::size_t units);

    /**
     * Append one unit initialised from @p params at @p initialSoc.
     * Fatal on non-physical kinetic parameters (same validation the
     * standalone Kibam constructor applies).
     * @return the new unit's slot index.
     */
    std::uint32_t addUnit(const BatteryParams &params, double initialSoc);

    std::size_t size() const { return y1_.size(); }

    // ---- per-slot electrochemical state ------------------------------

    double
    soc(std::uint32_t i) const
    {
        return std::clamp((y1_[i] + y2_[i]) / wellCap_[i], 0.0, 1.0);
    }

    double
    availableFraction(std::uint32_t i) const
    {
        return std::clamp(y1_[i] / (c_[i] * wellCap_[i]), 0.0, 1.0);
    }

    AmpHours availableCharge(std::uint32_t i) const { return y1_[i]; }
    AmpHours boundCharge(std::uint32_t i) const { return y2_[i]; }

    /** Total (fault-scalable) capacity of the two wells, ampere-hours. */
    AmpHours wellCapacity(std::uint32_t i) const { return wellCap_[i]; }

    bool exhausted(std::uint32_t i) const { return y1_[i] <= 1e-9; }

    /** The slot's kinetic model as a plain value (probes, snapshots). */
    kibam_math::State
    state(std::uint32_t i) const
    {
        return {wellCap_[i], c_[i], kPrime_[i], y1_[i], y2_[i]};
    }

    /** Advance slot @p i by @p dt at constant @p current (see Kibam). */
    AmpHours stepKibam(std::uint32_t i, Amperes current, Seconds dt);

    /** Maximum sustainable discharge current for @p dt seconds. */
    Amperes
    maxDischargeCurrent(std::uint32_t i, Seconds dt) const
    {
        return kibam_math::maxDischargeCurrent(state(i), dt, expMemo_);
    }

    /** Force the state of charge (wells set to equilibrium split). */
    void
    setSoc(std::uint32_t i, double soc)
    {
        kibam_math::State s = state(i);
        kibam_math::setSoc(s, soc);
        y1_[i] = s.y1;
        y2_[i] = s.y2;
    }

    /** Restore raw well state from a snapshot (no clipping). */
    void
    setWells(std::uint32_t i, AmpHours cap, AmpHours y1, AmpHours y2)
    {
        wellCap_[i] = cap;
        y1_[i] = y1;
        y2_[i] = y2;
    }

    /** Capacity-fade fault on the wells; returns the dropped Ah. */
    AmpHours
    scaleWellCapacity(std::uint32_t i, double factor)
    {
        kibam_math::State s = state(i);
        const AmpHours dropped = kibam_math::scaleCapacity(s, factor);
        wellCap_[i] = s.cap;
        y1_[i] = s.y1;
        y2_[i] = s.y2;
        return dropped;
    }

    /**
     * Keep the rated-capacity mirror (and the derived self-discharge
     * drain) in sync after a capacity fade. The drain is recomputed
     * from scratch with the same expression the per-object rest path
     * uses, so both paths see identical bits.
     */
    void
    setRatedCapacity(std::uint32_t i, AmpHours capacityAh)
    {
        ratedCapAh_[i] = capacityAh;
        restDrain_[i] =
            selfPerDay_[i] * capacityAh / units::hoursPerDay;
    }

    AmpHours ratedCapacityAh(std::uint32_t i) const { return ratedCapAh_[i]; }

    // ---- per-slot fault state ----------------------------------------

    bool openCircuit(std::uint32_t i) const { return openCircuit_[i] != 0; }
    void
    setOpenCircuit(std::uint32_t i, bool open)
    {
        openCircuit_[i] = open ? 1 : 0;
    }

    double shortMultiplier(std::uint32_t i) const { return shortMult_[i]; }
    void setShortMultiplier(std::uint32_t i, double multiplier);

    AmpHours exogenousAh(std::uint32_t i) const { return exoAh_[i]; }
    void addExogenousAh(std::uint32_t i, AmpHours ah) { exoAh_[i] += ah; }
    void setExogenousAh(std::uint32_t i, AmpHours ah) { exoAh_[i] = ah; }

    // ---- safe-discharge memo (owned here so rest kernels invalidate) --

    bool
    safeCacheValid(std::uint32_t i, Seconds dt) const
    {
        return safeDt_[i] == dt;
    }

    Amperes safeCacheCurrent(std::uint32_t i) const { return safeI_[i]; }

    void
    storeSafeCache(std::uint32_t i, Seconds dt, Amperes current) const
    {
        safeDt_[i] = dt;
        safeI_[i] = current;
    }

    void invalidateSafeCache(std::uint32_t i) const { safeDt_[i] = -1.0; }

    // ---- batched kernels ---------------------------------------------

    /**
     * Rest every unit in [begin, end): self-discharge drain plus the
     * internal-short extra drain for faulted slots, exactly as
     * BatteryUnit::rest applies them per unit. Element-wise over slots,
     * so disjoint ranges may run on different worker threads.
     */
    void restRange(std::uint32_t begin, std::uint32_t end, Seconds dt);

    /** Sum of soc(i) over [begin, end), accumulated in slot order. */
    double socSumRange(std::uint32_t begin, std::uint32_t end) const;

    /** Sum of soc * ratedCapacity * nominalVoltage over [begin, end). */
    WattHours storedEnergyWhRange(std::uint32_t begin,
                                  std::uint32_t end) const;

    /** Sum of soc * ratedCapacity over [begin, end), ampere-hours. */
    AmpHours unitAhRange(std::uint32_t begin, std::uint32_t end) const;

    /** Sum of exogenous (fault-caused) losses over [begin, end). */
    AmpHours exogenousAhRange(std::uint32_t begin,
                              std::uint32_t end) const;

  private:
    /**
     * One sub-step (dt <= kMaxStep) of the nominal self-discharge over
     * a slot range: the branch-light vectorisable core.
     */
    void restRangeExact(std::uint32_t begin, std::uint32_t end,
                        Seconds dt);

    /** Scalar per-slot rest replicating BatteryUnit::rest exactly. */
    void restOneSlot(std::uint32_t i, Seconds dt);

    // Kinetic state.
    std::vector<double> y1_;
    std::vector<double> y2_;
    std::vector<double> wellCap_;
    std::vector<double> c_;
    std::vector<double> kPrime_;

    // Parameter mirrors used by the hot kernels (kept in sync with the
    // owning view's params by setRatedCapacity on fades).
    std::vector<double> ratedCapAh_;
    std::vector<double> nominalV_;
    std::vector<double> selfPerDay_;
    std::vector<double> restDrain_;

    // Fault state.
    std::vector<double> shortMult_;
    std::vector<double> exoAh_;
    std::vector<std::uint8_t> openCircuit_;

    // safeDischargeCurrent memo (see BatteryUnit::safeDischargeCurrent).
    mutable std::vector<double> safeDt_;
    mutable std::vector<double> safeI_;

    // Shared exp memo for single-threaded per-slot stepping. The batch
    // kernels deliberately do NOT use it (they hoist one direct exp per
    // range call instead) so disjoint ranges can run concurrently.
    mutable kibam_math::ExpMemo expMemo_;

    // Fast-path bookkeeping: count of slots with an active internal
    // short, and whether all slots share one (c, k') pair — when they
    // do (the common case: one BatteryParams per array), the rest
    // kernel hoists the per-step scalars out of the loop.
    std::size_t shortCount_ = 0;
    bool uniformKinetics_ = true;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_UNIT_POOL_HH
