/**
 * @file
 * The P1/P2/P3 power-switch network of paper Fig. 6.
 *
 * Three bus switches select how the cabinets aggregate onto the DC bus:
 * P1 and P3 closed with P2 open connects the cabinets in parallel (bus
 * voltage = one cabinet, ampere-hours add); P2 closed with P1/P3 open
 * connects them in series (voltages add, ampere-hours = one cabinet). The
 * network validates switch combinations and reports the resulting bus
 * ratings.
 */

#ifndef INSURE_BATTERY_SWITCH_NETWORK_HH
#define INSURE_BATTERY_SWITCH_NETWORK_HH

#include "battery/relay.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::battery {

/** Aggregation of cabinets onto the DC bus. */
enum class BusTopology {
    /** Cabinets in parallel: common voltage, capacities add. */
    Parallel,
    /** Cabinets in series: voltages add, common capacity. */
    Series,
    /** Invalid/unsafe switch combination; bus is disconnected. */
    Invalid,
};

/** Printable name of a topology. */
const char *busTopologyName(BusTopology topo);

/** The three-switch reconfiguration network. */
class SwitchNetwork
{
  public:
    SwitchNetwork();

    /** Command the three switches. */
    void set(bool p1, bool p2, bool p3);

    /** Convenience: select the parallel topology. */
    void selectParallel() { set(true, false, true); }

    /** Convenience: select the series topology. */
    void selectSeries() { set(false, true, false); }

    bool p1() const { return p1_.closed(); }
    bool p2() const { return p2_.closed(); }
    bool p3() const { return p3_.closed(); }

    /** Topology implied by the current switch states. */
    BusTopology topology() const;

    /**
     * Bus voltage for @p cabinet_voltage volts per cabinet and
     * @p cabinet_count cabinets (0 when the topology is invalid).
     */
    Volts busVoltage(Volts cabinet_voltage, unsigned cabinet_count) const;

    /**
     * Bus ampere-hour rating for @p cabinet_ah per cabinet and
     * @p cabinet_count cabinets (0 when the topology is invalid).
     */
    AmpHours busCapacityAh(AmpHours cabinet_ah,
                           unsigned cabinet_count) const;

    /** Total switch operations (maintenance statistic). */
    std::uint64_t operations() const;

    void save(snapshot::Archive &ar) const;
    void load(snapshot::Archive &ar);

  private:
    Relay p1_;
    Relay p2_;
    Relay p3_;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_SWITCH_NETWORK_HH
