/**
 * @file
 * Kinetic Battery Model (KiBaM).
 *
 * Charge is split across two wells: an available well (fraction c of
 * capacity) that supplies load current directly, and a bound well that
 * replenishes the available well at a finite rate k'. The model therefore
 * exhibits the two lead-acid behaviours InSURE exploits (paper Fig. 4-b):
 *
 *  - rate-capacity effect: sustained high current drains the available well
 *    faster than the bound well can refill it, so usable capacity shrinks;
 *  - recovery effect: at low or zero current the bound well re-equilibrates
 *    into the available well, restoring apparent capacity.
 *
 * The analytic constant-current step (Manwell & McGowan) is used, so any
 * step size is exact for a constant current segment.
 */

#ifndef INSURE_BATTERY_KIBAM_HH
#define INSURE_BATTERY_KIBAM_HH

#include <algorithm>
#include <cmath>

#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::battery {

/** Two-well kinetic charge model for one battery unit. */
class Kibam
{
  public:
    /**
     * @param capacityAh total capacity of both wells
     * @param c fraction of capacity in the available well (0 < c < 1)
     * @param kPrime modified rate constant, 1/hour
     * @param initialSoc starting state of charge in [0, 1]
     */
    Kibam(AmpHours capacityAh, double c, double kPrime,
          double initialSoc = 1.0);

    /**
     * Advance the model by @p dt seconds with constant current @p current
     * (positive = discharge, negative = charge). Charge that would overfill
     * or underflow the wells is clipped; the clipped charge is returned so
     * the caller can account for rejected energy.
     *
     * A non-positive @p dt is a no-op. Steps longer than one minute are
     * subdivided internally: the closed form composes exactly while the
     * wells stay inside their bounds, but a single long step that crosses
     * a bound mid-interval would mis-account the clipped charge, so the
     * subdivision bounds that error to one sub-step.
     *
     * @return ampere-hours of requested transfer that could NOT be honoured
     *         (0 when the step executed fully).
     */
    AmpHours step(Amperes current, Seconds dt);

    /** Total state of charge (both wells) in [0, 1]. Inline: polled for
     *  every unit on every physics tick. */
    double soc() const { return std::clamp((y1_ + y2_) / cap_, 0.0, 1.0); }

    /** Fill level of the available well in [0, 1]; drives terminal voltage. */
    double
    availableFraction() const
    {
        return std::clamp(y1_ / (c_ * cap_), 0.0, 1.0);
    }

    /** Ampere-hours in the available well. */
    AmpHours availableCharge() const { return y1_; }

    /** Ampere-hours in the bound well. */
    AmpHours boundCharge() const { return y2_; }

    /** Total capacity of the model. */
    AmpHours capacity() const { return cap_; }

    /** True when the available well cannot support further discharge. */
    bool exhausted() const { return y1_ <= 1e-9; }

    /**
     * Maximum constant discharge current sustainable for @p dt seconds
     * before the available well empties (used for safe-discharge capping).
     */
    Amperes maxDischargeCurrent(Seconds dt) const;

    /** Force the state of charge (wells set to equilibrium split). */
    void setSoc(double soc);

    /**
     * Shrink total capacity by @p factor in (0, 1] (sudden capacity-fade
     * fault). Well fill levels are clipped to the new well sizes; the
     * ampere-hours that no longer fit are returned so the caller can log
     * the inventory loss (it leaves the pack outside the regular
     * charge/discharge/self-discharge paths).
     */
    AmpHours
    scaleCapacity(double factor)
    {
        cap_ *= factor;
        const AmpHours drop1 = std::max(0.0, y1_ - c_ * cap_);
        const AmpHours drop2 = std::max(0.0, y2_ - (1.0 - c_) * cap_);
        y1_ -= drop1;
        y2_ -= drop2;
        return drop1 + drop2;
    }

    /**
     * Serialize the two well levels and the (fault-scalable) capacity;
     * c/k' come from construction parameters and the exp memo is a pure
     * cache.
     */
    void save(snapshot::Archive &ar) const;

    /** Restore the well levels and capacity. */
    void load(snapshot::Archive &ar);

  private:
    AmpHours cap_;
    double c_;
    double kPrime_;
    AmpHours y1_;
    AmpHours y2_;

    // exp(-k' t) memo. The simulator steps every unit with the same fixed
    // dt (the physics tick, or the rest step), so the transcendental in
    // the closed form is recomputed only when the step size changes —
    // bit-identical to calling exp every time, since exp is pure.
    mutable double expTHours_ = -1.0;
    mutable double expValue_ = 0.0;

    /** exp(-kPrime_ * t_hours), memoised on t_hours. */
    double
    expK(double t_hours) const
    {
        if (t_hours != expTHours_) {
            expTHours_ = t_hours;
            expValue_ = std::exp(-kPrime_ * t_hours);
        }
        return expValue_;
    }

    /** One closed-form constant-current step with boundary clipping. */
    AmpHours stepExact(Amperes current, Seconds dt);
};

} // namespace insure::battery

#endif // INSURE_BATTERY_KIBAM_HH
