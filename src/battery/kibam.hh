/**
 * @file
 * Kinetic Battery Model (KiBaM).
 *
 * Charge is split across two wells: an available well (fraction c of
 * capacity) that supplies load current directly, and a bound well that
 * replenishes the available well at a finite rate k'. The model therefore
 * exhibits the two lead-acid behaviours InSURE exploits (paper Fig. 4-b):
 *
 *  - rate-capacity effect: sustained high current drains the available well
 *    faster than the bound well can refill it, so usable capacity shrinks;
 *  - recovery effect: at low or zero current the bound well re-equilibrates
 *    into the available well, restoring apparent capacity.
 *
 * The analytic constant-current step (Manwell & McGowan) is used, so any
 * step size is exact for a constant current segment.
 */

#ifndef INSURE_BATTERY_KIBAM_HH
#define INSURE_BATTERY_KIBAM_HH

#include <algorithm>
#include <cmath>

#include "battery/kibam_math.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::battery {

/** Two-well kinetic charge model for one battery unit. */
class Kibam
{
  public:
    /**
     * @param capacityAh total capacity of both wells
     * @param c fraction of capacity in the available well (0 < c < 1)
     * @param kPrime modified rate constant, 1/hour
     * @param initialSoc starting state of charge in [0, 1]
     */
    Kibam(AmpHours capacityAh, double c, double kPrime,
          double initialSoc = 1.0);

    /**
     * Advance the model by @p dt seconds with constant current @p current
     * (positive = discharge, negative = charge). Charge that would overfill
     * or underflow the wells is clipped; the clipped charge is returned so
     * the caller can account for rejected energy.
     *
     * A non-positive @p dt is a no-op. Steps longer than one minute are
     * subdivided internally: the closed form composes exactly while the
     * wells stay inside their bounds, but a single long step that crosses
     * a bound mid-interval would mis-account the clipped charge, so the
     * subdivision bounds that error to one sub-step. Sub-nanosecond
     * residues of the subdivision (or degenerate caller-supplied steps)
     * are dropped: the closed form at ~1e-12 s is pure floating-point
     * noise that would inject spurious ampere-hours.
     *
     * @return ampere-hours of requested transfer that could NOT be honoured
     *         (0 when the step executed fully).
     */
    AmpHours step(Amperes current, Seconds dt);

    /** Total state of charge (both wells) in [0, 1]. Inline: polled for
     *  every unit on every physics tick. */
    double soc() const { return std::clamp((y1_ + y2_) / cap_, 0.0, 1.0); }

    /** Fill level of the available well in [0, 1]; drives terminal voltage. */
    double
    availableFraction() const
    {
        return std::clamp(y1_ / (c_ * cap_), 0.0, 1.0);
    }

    /** Ampere-hours in the available well. */
    AmpHours availableCharge() const { return y1_; }

    /** Ampere-hours in the bound well. */
    AmpHours boundCharge() const { return y2_; }

    /** Total capacity of the model. */
    AmpHours capacity() const { return cap_; }

    /** True when the available well cannot support further discharge. */
    bool exhausted() const { return y1_ <= 1e-9; }

    /**
     * Maximum constant discharge current sustainable for @p dt seconds
     * before the available well empties (used for safe-discharge capping).
     */
    Amperes maxDischargeCurrent(Seconds dt) const;

    /** Force the state of charge (wells set to equilibrium split). */
    void setSoc(double soc);

    /**
     * Shrink total capacity by @p factor in (0, 1] (sudden capacity-fade
     * fault). Well fill levels are clipped to the new well sizes; the
     * ampere-hours that no longer fit are returned so the caller can log
     * the inventory loss (it leaves the pack outside the regular
     * charge/discharge/self-discharge paths).
     */
    AmpHours
    scaleCapacity(double factor)
    {
        kibam_math::State s = state();
        const AmpHours dropped = kibam_math::scaleCapacity(s, factor);
        cap_ = s.cap;
        y1_ = s.y1;
        y2_ = s.y2;
        return dropped;
    }

    /** The model as a plain value (for probes and pooled stepping). */
    kibam_math::State state() const { return {cap_, c_, kPrime_, y1_, y2_}; }

    /**
     * Serialize the two well levels and the (fault-scalable) capacity;
     * c/k' come from construction parameters and the exp memo is a pure
     * cache.
     */
    void save(snapshot::Archive &ar) const;

    /** Restore the well levels and capacity. */
    void load(snapshot::Archive &ar);

  private:
    AmpHours cap_;
    double c_;
    double kPrime_;
    AmpHours y1_;
    AmpHours y2_;

    // exp(-k' t) memo (see kibam_math::ExpMemo): the simulator steps
    // every unit with the same fixed dt, so the transcendental in the
    // closed form is recomputed only when the step size changes.
    mutable kibam_math::ExpMemo expMemo_;
};

} // namespace insure::battery

#endif // INSURE_BATTERY_KIBAM_HH
