#include "battery/cabinet.hh"

#include "snapshot/archive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::battery {

Cabinet::Cabinet(std::string name, const BatteryParams &params,
                 unsigned series_count, double initialSoc)
    : name_(std::move(name)), ownUnits_(std::make_unique<UnitPool>()),
      pool_(ownUnits_.get()),
      chargeRelay_(name_ + ".cr"),
      dischargeRelay_(name_ + ".dr")
{
    pool_->reserve(series_count);
    init(params, series_count, initialSoc);
}

Cabinet::Cabinet(std::string name, const BatteryParams &params,
                 unsigned series_count, double initialSoc, UnitPool &units,
                 RelayPool &relays)
    : name_(std::move(name)), pool_(&units),
      chargeRelay_(name_ + ".cr", relays),
      dischargeRelay_(name_ + ".dr", relays)
{
    init(params, series_count, initialSoc);
}

void
Cabinet::init(const BatteryParams &params, unsigned series_count,
              double initialSoc)
{
    if (series_count == 0)
        fatal("Cabinet %s: series_count must be >= 1", name_.c_str());
    unitBegin_ = static_cast<std::uint32_t>(pool_->size());
    units_.reserve(series_count);
    for (unsigned i = 0; i < series_count; ++i) {
        units_.push_back(std::make_unique<BatteryUnit>(
            name_ + ".u" + std::to_string(i), params, *pool_, initialSoc));
    }
    setMode(UnitMode::Standby);
}

Volts
Cabinet::nominalVoltage() const
{
    Volts v = 0.0;
    for (const auto &u : units_)
        v += u->params().nominalVoltage;
    return v;
}

WattHours
Cabinet::capacityWh() const
{
    WattHours e = 0.0;
    for (const auto &u : units_)
        e += u->capacityWh();
    return e;
}

AmpHours
Cabinet::capacityAh() const
{
    // Series string: same Ah rating as one unit.
    return units_.front()->params().capacityAh;
}

DischargeResult
Cabinet::discharge(Amperes current, Seconds dt)
{
    DischargeResult total;
    if (anyUnitOpenCircuit()) {
        // Series string with a broken unit: no current path. Rest every
        // unit so the step's physics (self-discharge, recovery) still
        // apply, and deliver nothing. Deliberately no protection flag —
        // quarantining the dead string is the controller's job.
        rest(dt);
        return total;
    }
    bool first = true;
    for (auto &u : units_) {
        const DischargeResult r = u->discharge(current, dt);
        // Series string: the same charge flows through every unit; Ah is
        // counted once, energy sums across units.
        if (first) {
            total.deliveredAh = r.deliveredAh;
            first = false;
        } else {
            total.deliveredAh = std::min(total.deliveredAh, r.deliveredAh);
        }
        total.energyWh += r.energyWh;
        total.hitProtection = total.hitProtection || r.hitProtection;
    }
    return total;
}

ChargeResult
Cabinet::charge(Amperes bus_current, Seconds dt)
{
    ChargeResult total;
    if (anyUnitOpenCircuit()) {
        rest(dt);
        return total;
    }
    bool first = true;
    for (auto &u : units_) {
        const ChargeResult r = u->charge(bus_current, dt);
        if (first) {
            total.storedAh = r.storedAh;
            first = false;
        } else {
            total.storedAh = std::min(total.storedAh, r.storedAh);
        }
        total.busEnergyWh += r.busEnergyWh;
    }
    return total;
}

AmpHours
Cabinet::dischargeThroughputAh() const
{
    // Series string: throughput is the per-unit throughput (identical
    // current); report the max across units for safety.
    AmpHours ah = 0.0;
    for (const auto &u : units_)
        ah = std::max(ah, u->wear().dischargeThroughput());
    return ah;
}

double
Cabinet::projectedLifeYears(Seconds observed) const
{
    double years = units_.front()->wear().projectedLifeYears(observed);
    for (const auto &u : units_)
        years = std::min(years, u->wear().projectedLifeYears(observed));
    return years;
}

void
Cabinet::setMode(UnitMode mode)
{
    mode_ = mode;
    if (mirror_)
        *mirror_ = mode;
    switch (mode) {
      case UnitMode::Offline:
      case UnitMode::Standby:
        chargeRelay_.open();
        dischargeRelay_.open();
        break;
      case UnitMode::Charging:
        chargeRelay_.close();
        dischargeRelay_.open();
        break;
      case UnitMode::Discharging:
        chargeRelay_.open();
        dischargeRelay_.close();
        break;
    }
    for (auto &u : units_)
        u->setMode(mode);
}

std::uint64_t
Cabinet::relayOperations() const
{
    return chargeRelay_.operations() + dischargeRelay_.operations();
}

void
Cabinet::setSoc(double soc)
{
    for (auto &u : units_)
        u->setSoc(soc);
}


void
Cabinet::save(snapshot::Archive &ar) const
{
    ar.section("cabinet");
    ar.putSize(units_.size());
    for (const auto &u : units_)
        u->save(ar);
    chargeRelay_.save(ar);
    dischargeRelay_.save(ar);
    ar.putEnum(mode_);
}

void
Cabinet::load(snapshot::Archive &ar)
{
    ar.section("cabinet");
    if (ar.getSize() != units_.size())
        throw snapshot::SnapshotError(
            "Cabinet: series count differs from snapshot");
    for (auto &u : units_)
        u->load(ar);
    chargeRelay_.load(ar);
    dischargeRelay_.load(ar);
    mode_ = ar.getEnum<UnitMode>(
        static_cast<std::uint32_t>(UnitMode::Discharging));
    if (mirror_)
        *mirror_ = mode_;
}

} // namespace insure::battery
