#include "battery/voltage_model.hh"

namespace insure::battery {

VoltageModel::VoltageModel(const BatteryParams &params) : params_(params)
{
}

Amperes
VoltageModel::maxCurrentAboveCutoff(double available_frac) const
{
    const Volts headroom =
        openCircuit(available_frac) - params_.cutoffVoltage;
    if (headroom <= 0.0)
        return 0.0;
    return headroom / params_.internalResistanceOhm;
}

} // namespace insure::battery
