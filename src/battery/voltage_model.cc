#include "battery/voltage_model.hh"

#include <algorithm>
#include <array>

namespace insure::battery {

namespace {

/** OCV anchor points (available-well fraction -> volts) for AGM cells. */
struct OcvPoint {
    double frac;
    Volts volts;
};

constexpr std::array<OcvPoint, 7> ocvCurve = {{
    {0.00, 11.60},
    {0.10, 11.95},
    {0.25, 12.10},
    {0.50, 12.35},
    {0.75, 12.55},
    {0.90, 12.70},
    {1.00, 12.90},
}};

} // namespace

VoltageModel::VoltageModel(const BatteryParams &params) : params_(params)
{
}

Volts
VoltageModel::openCircuit(double available_frac) const
{
    const double f = std::clamp(available_frac, 0.0, 1.0);
    // Scale the 12 V reference curve to the configured nominal voltage.
    const double scale = params_.nominalVoltage / 12.0;
    for (std::size_t i = 1; i < ocvCurve.size(); ++i) {
        if (f <= ocvCurve[i].frac) {
            const auto &a = ocvCurve[i - 1];
            const auto &b = ocvCurve[i];
            const double t = (f - a.frac) / (b.frac - a.frac);
            return scale * (a.volts + t * (b.volts - a.volts));
        }
    }
    return scale * ocvCurve.back().volts;
}

Volts
VoltageModel::terminal(double available_frac, Amperes current) const
{
    const Volts v =
        openCircuit(available_frac) - current * params_.internalResistanceOhm;
    // Charging voltage is clamped by the absorption setpoint of the charger.
    if (current < 0.0)
        return std::min(v, params_.absorptionVoltage);
    return v;
}

bool
VoltageModel::belowCutoff(double available_frac, Amperes current) const
{
    return terminal(available_frac, current) < params_.cutoffVoltage;
}

Amperes
VoltageModel::maxCurrentAboveCutoff(double available_frac) const
{
    const Volts headroom =
        openCircuit(available_frac) - params_.cutoffVoltage;
    if (headroom <= 0.0)
        return 0.0;
    return headroom / params_.internalResistanceOhm;
}

} // namespace insure::battery
