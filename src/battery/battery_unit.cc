#include "battery/battery_unit.hh"

#include "snapshot/archive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::battery {

const char *
unitModeName(UnitMode mode)
{
    switch (mode) {
      case UnitMode::Offline: return "offline";
      case UnitMode::Charging: return "charging";
      case UnitMode::Standby: return "standby";
      case UnitMode::Discharging: return "discharging";
    }
    return "?";
}

BatteryUnit::BatteryUnit(std::string name, const BatteryParams &params,
                         double initialSoc)
    : name_(std::move(name)), params_(params),
      kibam_(params.capacityAh, params.kibamC, params.kibamKPrime,
             initialSoc),
      voltage_(params), charge_(params), wear_(params)
{
}

AmpHours
BatteryUnit::injectCapacityFade(double factor)
{
    factor = std::clamp(factor, 0.05, 1.0);
    params_.capacityAh *= factor;
    const AmpHours dropped = kibam_.scaleCapacity(factor);
    exogenousAh_ += dropped;
    invalidateSafeCache();
    return dropped;
}

Amperes
BatteryUnit::computeSafeDischargeCurrent(Seconds dt) const
{
    if (openCircuit_ || depleted())
        return 0.0;
    Amperes hi = params_.maxDischargeCurrent;
    hi = std::min(hi, kibam_.maxDischargeCurrent(dt));
    // Do not cross the SoC floor within the step.
    const AmpHours budget =
        std::max(0.0, (soc() - params_.minSoc) * params_.capacityAh);
    const double hours = units::toHours(dt);
    if (hours > 0.0)
        hi = std::min(hi, budget / hours);
    if (hi <= 0.0)
        return 0.0;

    // The binding constraint is usually the low-voltage cutoff at the END
    // of the step (the available well drains as we discharge). Bisect on
    // a copy of the kinetic model for the largest current that keeps the
    // loaded terminal voltage legal throughout.
    auto safe = [&](Amperes i) {
        Kibam probe = kibam_;
        if (voltage_.belowCutoff(probe.availableFraction(), i))
            return false;
        const AmpHours rejected = probe.step(i, dt);
        if (rejected > 1e-9)
            return false;
        return !voltage_.belowCutoff(probe.availableFraction(), i);
    };
    if (safe(hi))
        return hi;
    Amperes lo = 0.0;
    for (int iter = 0; iter < 24; ++iter) {
        const Amperes mid = 0.5 * (lo + hi);
        if (safe(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

DischargeResult
BatteryUnit::discharge(Amperes current, Seconds dt)
{
    DischargeResult res;
    if (openCircuit_ || current <= 0.0 || dt <= 0.0) {
        // An open-circuit unit conducts nothing — and deliberately does
        // NOT flag protection: there is no hardware trip to save it, the
        // controller has to notice the dead string through telemetry.
        rest(dt);
        return res;
    }

    Amperes applied = std::min(current, params_.maxDischargeCurrent);
    if (applied < current)
        res.hitProtection = true;

    const Volts v_before = terminalVoltage(applied);
    if (v_before < params_.cutoffVoltage) {
        // Low-voltage protection trips immediately; no charge delivered.
        res.hitProtection = true;
        rest(dt);
        return res;
    }

    const AmpHours requested = units::chargeAh(applied, dt);
    const AmpHours rejected = kibam_.step(applied, dt);
    invalidateSafeCache();
    res.deliveredAh = std::max(0.0, requested - rejected);
    if (rejected > 1e-12)
        res.hitProtection = true;

    const Volts v_after = terminalVoltage(applied);
    res.energyWh = res.deliveredAh * 0.5 * (v_before + v_after);
    if (v_after < params_.cutoffVoltage)
        res.hitProtection = true;

    wear_.recordDischarge(res.deliveredAh);
    return res;
}

ChargeResult
BatteryUnit::charge(Amperes bus_current, Seconds dt)
{
    ChargeResult res;
    if (openCircuit_ || bus_current <= 0.0 || dt <= 0.0) {
        rest(dt);
        return res;
    }

    const Amperes effective =
        charge_.effectiveChargeCurrent(bus_current, soc());
    const AmpHours requested = units::chargeAh(effective, dt);
    const AmpHours rejected = kibam_.step(-effective, dt);
    invalidateSafeCache();
    res.storedAh = std::max(0.0, requested - rejected);
    // The bus pays for the full supplied current regardless of how much the
    // cell stored (losses go to gassing/heat/parasitics).
    res.busEnergyWh =
        units::energyWh(charge_.busPower(bus_current), dt);
    wear_.recordCharge(res.storedAh);
    return res;
}


void
BatteryUnit::save(snapshot::Archive &ar) const
{
    ar.section("battery_unit");
    kibam_.save(ar);
    wear_.save(ar);
    ar.putEnum(mode_);
    ar.putBool(openCircuit_);
    ar.putF64(shortMultiplier_);
    ar.putF64(exogenousAh_);
}

void
BatteryUnit::load(snapshot::Archive &ar)
{
    ar.section("battery_unit");
    kibam_.load(ar);
    wear_.load(ar);
    mode_ = ar.getEnum<UnitMode>(
        static_cast<std::uint32_t>(UnitMode::Discharging));
    openCircuit_ = ar.getBool();
    shortMultiplier_ = ar.getF64();
    exogenousAh_ = ar.getF64();
    invalidateSafeCache();
}

} // namespace insure::battery
