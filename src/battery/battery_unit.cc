#include "battery/battery_unit.hh"

#include "snapshot/archive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::battery {

const char *
unitModeName(UnitMode mode)
{
    switch (mode) {
      case UnitMode::Offline: return "offline";
      case UnitMode::Charging: return "charging";
      case UnitMode::Standby: return "standby";
      case UnitMode::Discharging: return "discharging";
    }
    return "?";
}

BatteryUnit::BatteryUnit(std::string name, const BatteryParams &params,
                         double initialSoc)
    : name_(std::move(name)), params_(params),
      ownPool_(std::make_unique<UnitPool>()), pool_(ownPool_.get()),
      slot_(pool_->addUnit(params, initialSoc)), voltage_(params),
      charge_(params), wear_(params)
{
}

BatteryUnit::BatteryUnit(std::string name, const BatteryParams &params,
                         UnitPool &pool, double initialSoc)
    : name_(std::move(name)), params_(params), pool_(&pool),
      slot_(pool.addUnit(params, initialSoc)), voltage_(params),
      charge_(params), wear_(params)
{
}

AmpHours
BatteryUnit::injectCapacityFade(double factor)
{
    factor = std::clamp(factor, 0.05, 1.0);
    params_.capacityAh *= factor;
    const AmpHours dropped = pool_->scaleWellCapacity(slot_, factor);
    pool_->setRatedCapacity(slot_, params_.capacityAh);
    pool_->addExogenousAh(slot_, dropped);
    pool_->invalidateSafeCache(slot_);
    return dropped;
}

Amperes
BatteryUnit::computeSafeDischargeCurrent(Seconds dt) const
{
    if (pool_->openCircuit(slot_) || depleted())
        return 0.0;
    Amperes hi = params_.maxDischargeCurrent;
    hi = std::min(hi, pool_->maxDischargeCurrent(slot_, dt));
    // Do not cross the SoC floor within the step.
    const AmpHours budget =
        std::max(0.0, (soc() - params_.minSoc) * params_.capacityAh);
    const double hours = units::toHours(dt);
    if (hours > 0.0)
        hi = std::min(hi, budget / hours);
    if (hi <= 0.0)
        return 0.0;

    // The binding constraint is usually the low-voltage cutoff at the END
    // of the step (the available well drains as we discharge). Bisect on
    // a copy of the kinetic state for the largest current that keeps the
    // loaded terminal voltage legal throughout.
    const kibam_math::State base = pool_->state(slot_);
    auto safe = [&](Amperes i) {
        kibam_math::State probe = base;
        if (voltage_.belowCutoff(kibam_math::availableFraction(probe), i))
            return false;
        const AmpHours rejected =
            kibam_math::step(probe, i, dt, kibam_math::ExpDirect{});
        if (rejected > 1e-9)
            return false;
        return !voltage_.belowCutoff(kibam_math::availableFraction(probe),
                                     i);
    };
    if (safe(hi))
        return hi;
    Amperes lo = 0.0;
    for (int iter = 0; iter < 24; ++iter) {
        const Amperes mid = 0.5 * (lo + hi);
        if (safe(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

DischargeResult
BatteryUnit::discharge(Amperes current, Seconds dt)
{
    DischargeResult res;
    if (pool_->openCircuit(slot_) || current <= 0.0 || dt <= 0.0) {
        // An open-circuit unit conducts nothing — and deliberately does
        // NOT flag protection: there is no hardware trip to save it, the
        // controller has to notice the dead string through telemetry.
        rest(dt);
        return res;
    }

    Amperes applied = std::min(current, params_.maxDischargeCurrent);
    if (applied < current)
        res.hitProtection = true;

    const Volts v_before = terminalVoltage(applied);
    if (v_before < params_.cutoffVoltage) {
        // Low-voltage protection trips immediately; no charge delivered.
        res.hitProtection = true;
        rest(dt);
        return res;
    }

    const AmpHours requested = units::chargeAh(applied, dt);
    const AmpHours rejected = pool_->stepKibam(slot_, applied, dt);
    pool_->invalidateSafeCache(slot_);
    res.deliveredAh = std::max(0.0, requested - rejected);
    if (rejected > 1e-12)
        res.hitProtection = true;

    const Volts v_after = terminalVoltage(applied);
    res.energyWh = res.deliveredAh * 0.5 * (v_before + v_after);
    if (v_after < params_.cutoffVoltage)
        res.hitProtection = true;

    wear_.recordDischarge(res.deliveredAh);
    return res;
}

ChargeResult
BatteryUnit::charge(Amperes bus_current, Seconds dt)
{
    ChargeResult res;
    if (pool_->openCircuit(slot_) || bus_current <= 0.0 || dt <= 0.0) {
        rest(dt);
        return res;
    }

    const Amperes effective =
        charge_.effectiveChargeCurrent(bus_current, soc());
    const AmpHours requested = units::chargeAh(effective, dt);
    const AmpHours rejected = pool_->stepKibam(slot_, -effective, dt);
    pool_->invalidateSafeCache(slot_);
    res.storedAh = std::max(0.0, requested - rejected);
    // The bus pays for the full supplied current regardless of how much the
    // cell stored (losses go to gassing/heat/parasitics).
    res.busEnergyWh =
        units::energyWh(charge_.busPower(bus_current), dt);
    wear_.recordCharge(res.storedAh);
    return res;
}


void
BatteryUnit::save(snapshot::Archive &ar) const
{
    ar.section("battery_unit");
    // Kinetic-model sub-record: byte-identical to the layout the
    // standalone Kibam class writes (section + capacity + two wells).
    ar.section("kibam");
    ar.putF64(pool_->wellCapacity(slot_));
    ar.putF64(pool_->availableCharge(slot_));
    ar.putF64(pool_->boundCharge(slot_));
    wear_.save(ar);
    ar.putEnum(mode_);
    ar.putBool(pool_->openCircuit(slot_));
    ar.putF64(pool_->shortMultiplier(slot_));
    ar.putF64(pool_->exogenousAh(slot_));
}

void
BatteryUnit::load(snapshot::Archive &ar)
{
    ar.section("battery_unit");
    ar.section("kibam");
    const AmpHours cap = ar.getF64();
    const AmpHours y1 = ar.getF64();
    const AmpHours y2 = ar.getF64();
    pool_->setWells(slot_, cap, y1, y2);
    wear_.load(ar);
    mode_ = ar.getEnum<UnitMode>(
        static_cast<std::uint32_t>(UnitMode::Discharging));
    pool_->setOpenCircuit(slot_, ar.getBool());
    // Route through the setter so the pool's short-fault census stays
    // consistent with the restored multiplier.
    pool_->setShortMultiplier(slot_, ar.getF64());
    pool_->setExogenousAh(slot_, ar.getF64());
    pool_->invalidateSafeCache(slot_);
}

} // namespace insure::battery
