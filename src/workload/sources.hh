/**
 * @file
 * Data-arrival generators for the two in-situ applications.
 *
 * BatchSource models intermittent engineering datasets: large jobs landing
 * at fixed times of day (seismic surveys: 114 GB per job, twice daily).
 * StreamSource models continuous sensor data: a constant aggregate rate
 * chunked into small jobs (24 cameras at 0.21 GB/min, one chunk per
 * minute) so per-chunk service delay is measurable.
 */

#ifndef INSURE_WORKLOAD_SOURCES_HH
#define INSURE_WORKLOAD_SOURCES_HH

#include <vector>

#include "sim/rng.hh"
#include "workload/data_queue.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::workload {

/** Intermittent batch-job generator. */
class BatchSource
{
  public:
    /** Configuration of the arrival schedule. */
    struct Params {
        /** Size of each job, gigabytes (paper: 114 GB). */
        GigaBytes jobSize = 114.0;
        /** Arrival times within each day, seconds after midnight. */
        std::vector<Seconds> dailyTimes = {8.5 * 3600.0, 16.5 * 3600.0};
        /** Relative jitter applied to the job size (0 disables). */
        double sizeJitter = 0.0;
    };

    BatchSource(Params params, Rng rng);

    /**
     * Deposit any jobs whose arrival time falls in (prev, now] into the
     * queue. @p now is absolute simulation time (may span several days).
     */
    void step(Seconds prev, Seconds now, DataQueue &queue);

    /** Total data generated per day with the configured schedule. */
    GigaBytes dailyVolume() const;

    /** Serialize the jitter RNG stream. */
    void save(snapshot::Archive &ar) const;

    /** Restore the jitter RNG stream. */
    void load(snapshot::Archive &ar);

  private:
    Params params_;
    Rng rng_;
};

/** Continuous stream generator. */
class StreamSource
{
  public:
    /** Configuration of the stream. */
    struct Params {
        /** Aggregate arrival rate, gigabytes per minute (paper: 0.21). */
        double gbPerMinute = 0.21;
        /** Chunking interval: one job per this many seconds. */
        Seconds chunkPeriod = 60.0;
        /** Daily active window start (cameras run 24/7 by default). */
        Seconds windowStart = 0.0;
        /** Daily active window end. */
        Seconds windowEnd = 24.0 * 3600.0;
        /** Relative jitter on chunk sizes (0 disables). */
        double rateJitter = 0.0;
    };

    StreamSource(Params params, Rng rng);

    /** Deposit chunks for the interval (prev, now] into the queue. */
    void step(Seconds prev, Seconds now, DataQueue &queue);

    /** Total data generated per day with the configured window. */
    GigaBytes dailyVolume() const;

    /** Serialize the jitter RNG stream and chunk cursor. */
    void save(snapshot::Archive &ar) const;

    /** Restore the jitter RNG stream and chunk cursor. */
    void load(snapshot::Archive &ar);

  private:
    Params params_;
    Rng rng_;
    Seconds nextChunk_ = 0.0;

    bool inWindow(Seconds day_time) const;
};

} // namespace insure::workload

#endif // INSURE_WORKLOAD_SOURCES_HH
