#include "workload/data_queue.hh"

#include "snapshot/archive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::workload {

void
DataQueue::arrive(Seconds now, GigaBytes size)
{
    if (size <= 0.0)
        return;
    jobs_.push_back(Job{now, size, size});
    backlog_ += size;
    arrivedGb_ += size;
}

GigaBytes
DataQueue::process(Seconds now, GigaBytes amount)
{
    GigaBytes consumed = 0.0;
    while (amount > 1e-12 && !jobs_.empty()) {
        Job &job = jobs_.front();
        const GigaBytes take = std::min(amount, job.remaining);
        job.remaining -= take;
        amount -= take;
        consumed += take;
        if (job.remaining <= 1e-12) {
            const Seconds delay = std::max(0.0, now - job.arrival);
            delaySum_ += delay;
            maxDelay_ = std::max(maxDelay_, delay);
            ++jobsCompleted_;
            completedGb_ += job.size;
            jobs_.pop_front();
        }
    }
    backlog_ = std::max(0.0, backlog_ - consumed);
    processedGb_ += consumed;
    return consumed;
}

void
DataQueue::requeue(Seconds now, GigaBytes amount)
{
    if (amount <= 0.0)
        return;
    amount = std::min(amount, processedGb_);
    if (amount <= 0.0)
        return;
    if (!jobs_.empty()) {
        // The lost work belonged to the job at the head of the queue;
        // grow it back without disturbing its arrival time.
        Job &head = jobs_.front();
        head.remaining += amount;
        head.size = std::max(head.size, head.remaining);
    } else {
        jobs_.push_front(Job{now, amount, amount});
    }
    backlog_ += amount;
    processedGb_ -= amount;
    lostGb_ += amount;
}

Seconds
DataQueue::meanDelay() const
{
    return jobsCompleted_ ? delaySum_ / jobsCompleted_ : 0.0;
}

Seconds
DataQueue::meanEffectiveDelay(Seconds now) const
{
    double sum = delaySum_;
    std::uint64_t n = jobsCompleted_;
    for (const auto &job : jobs_) {
        sum += std::max(0.0, now - job.arrival);
        ++n;
    }
    return n ? sum / n : 0.0;
}

Seconds
DataQueue::oldestAge(Seconds now) const
{
    if (jobs_.empty())
        return 0.0;
    return std::max(0.0, now - jobs_.front().arrival);
}


void
DataQueue::save(snapshot::Archive &ar) const
{
    ar.section("data_queue");
    ar.putSize(jobs_.size());
    for (const Job &j : jobs_) {
        ar.putF64(j.arrival);
        ar.putF64(j.size);
        ar.putF64(j.remaining);
    }
    ar.putF64(backlog_);
    ar.putF64(completedGb_);
    ar.putF64(processedGb_);
    ar.putF64(lostGb_);
    ar.putF64(arrivedGb_);
    ar.putU64(jobsCompleted_);
    ar.putF64(delaySum_);
    ar.putF64(maxDelay_);
}

void
DataQueue::load(snapshot::Archive &ar)
{
    ar.section("data_queue");
    const std::size_t n = ar.getSize();
    jobs_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        Job j;
        j.arrival = ar.getF64();
        j.size = ar.getF64();
        j.remaining = ar.getF64();
        jobs_.push_back(j);
    }
    backlog_ = ar.getF64();
    completedGb_ = ar.getF64();
    processedGb_ = ar.getF64();
    lostGb_ = ar.getF64();
    arrivedGb_ = ar.getF64();
    jobsCompleted_ = ar.getU64();
    delaySum_ = ar.getF64();
    maxDelay_ = ar.getF64();
}

} // namespace insure::workload
