/**
 * @file
 * Workload profiles: per-VM processing rates and power characteristics for
 * the paper's two in-situ applications and six micro-benchmarks.
 *
 * Rates are calibrated from the paper's measurements:
 *  - seismic analysis: Table 2 (4 VMs sustain 16.5 GB/h on the Xeon rack);
 *  - video surveillance: Table 3 (8 VMs absorb the 0.21 GB/min stream);
 *  - dedup / x264 / bayesian: Table 7 execution times and average power
 *    for both the Xeon node and the low-power node;
 *  - remaining micro-benchmarks: representative rates consistent with the
 *    benchmark suites cited (PARSEC, HiBench, CloudSuite).
 */

#ifndef INSURE_WORKLOAD_PROFILES_HH
#define INSURE_WORKLOAD_PROFILES_HH

#include <string>
#include <vector>

#include "sim/units.hh"

namespace insure::workload {

/** Management class of a workload (paper §2.3). */
enum class WorkloadKind {
    /** Intermittent large jobs; VM count fixed during execution. */
    Batch,
    /** Continuous stream split into small jobs; VM count adjustable. */
    Stream,
    /** Request-level interactive traffic with a latency SLO. */
    Interactive,
};

/** Printable name of a workload kind. */
const char *workloadKindName(WorkloadKind k);

/** Per-workload performance/power description. */
struct WorkloadProfile {
    /** Short name ("seismic", "dedup", ...). */
    std::string name;
    /** Management class. */
    WorkloadKind kind = WorkloadKind::Batch;
    /** Processing rate per VM at nominal frequency on a Xeon node, GB/h. */
    double xeonGbPerVmHour = 1.0;
    /** Processing rate per VM on the low-power node, GB/h. */
    double lowPowerGbPerVmHour = 1.0;
    /** Fraction of the Xeon dynamic power range the workload exercises. */
    double xeonPowerUtil = 0.45;
    /** Same for the low-power node. */
    double lowPowerPowerUtil = 0.9;

    /** Rate for a node type tag ("xeon" / "lowpower"). */
    double gbPerVmHour(const std::string &node_type) const;

    /** Power utilisation for a node type tag. */
    double powerUtil(const std::string &node_type) const;
};

/** Seismic data analysis (intermittent batch, paper §2.1/Table 2). */
WorkloadProfile seismicProfile();

/** Video surveillance analysis (continuous stream, paper §2.1/Table 3). */
WorkloadProfile videoProfile();

/** Interactive request serving (latency-SLO class, ROADMAP workload). */
WorkloadProfile interactiveProfile();

/** Look up a micro-benchmark profile by name; fatal if unknown. */
WorkloadProfile microBenchmark(const std::string &name);

/** The micro-benchmark set used in the paper's Figs. 17-19. */
std::vector<WorkloadProfile> microBenchmarkSuite();

} // namespace insure::workload

#endif // INSURE_WORKLOAD_PROFILES_HH
