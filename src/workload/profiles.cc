#include "workload/profiles.hh"

#include "sim/logging.hh"

namespace insure::workload {

const char *
workloadKindName(WorkloadKind k)
{
    switch (k) {
      case WorkloadKind::Batch: return "batch";
      case WorkloadKind::Stream: return "stream";
      case WorkloadKind::Interactive: return "interactive";
    }
    return "?";
}

double
WorkloadProfile::gbPerVmHour(const std::string &node_type) const
{
    return node_type == "lowpower" ? lowPowerGbPerVmHour : xeonGbPerVmHour;
}

double
WorkloadProfile::powerUtil(const std::string &node_type) const
{
    return node_type == "lowpower" ? lowPowerPowerUtil : xeonPowerUtil;
}

WorkloadProfile
seismicProfile()
{
    WorkloadProfile p;
    p.name = "seismic";
    p.kind = WorkloadKind::Batch;
    // Table 2: 4 VMs sustain 16.5 GB/h -> ~4.1 GB per VM-hour.
    p.xeonGbPerVmHour = 4.125;
    p.lowPowerGbPerVmHour = 2.6;
    // Table 2: 1397 W across 4 nodes at 8 VMs -> ~349 W per node.
    p.xeonPowerUtil = 0.41;
    p.lowPowerPowerUtil = 0.86;
    return p;
}

WorkloadProfile
videoProfile()
{
    WorkloadProfile p;
    p.name = "video";
    p.kind = WorkloadKind::Stream;
    // Table 3: 8 VMs absorb the 0.21 GB/min (12.6 GB/h) camera stream.
    p.xeonGbPerVmHour = 1.6;
    p.lowPowerGbPerVmHour = 1.1;
    // Table 3: 1411 W at 8 VMs.
    p.xeonPowerUtil = 0.42;
    p.lowPowerPowerUtil = 0.88;
    return p;
}

WorkloadProfile
interactiveProfile()
{
    WorkloadProfile p;
    p.name = "interactive";
    p.kind = WorkloadKind::Interactive;
    // Request serving moves little bulk data; the GB/h rates only feed
    // the (unused) queue-drain path. Power utilisation is web-serving
    // class: bursty request handling, well below the batch crunchers.
    p.xeonGbPerVmHour = 0.5;
    p.lowPowerGbPerVmHour = 0.4;
    p.xeonPowerUtil = 0.35;
    p.lowPowerPowerUtil = 0.80;
    return p;
}

namespace {

WorkloadProfile
make(const std::string &name, double xeonRate, double lpRate,
     double xeonUtil, double lpUtil)
{
    WorkloadProfile p;
    p.name = name;
    p.kind = WorkloadKind::Stream; // micro benchmarks iterate continuously
    p.xeonGbPerVmHour = xeonRate;
    p.lowPowerGbPerVmHour = lpRate;
    p.xeonPowerUtil = xeonUtil;
    p.lowPowerPowerUtil = lpUtil;
    return p;
}

} // namespace

WorkloadProfile
microBenchmark(const std::string &name)
{
    // Table 7 calibration points: rates are data/exec-time per node with
    // two VMs; power utilisation from (avg - idle) / (peak - idle).
    if (name == "dedup")
        return make("dedup", 48.2, 97.5, 0.47, 1.00);
    if (name == "x264")
        return make("x264", 2.2, 2.15, 0.41, 0.86);
    if (name == "bayesian")
        return make("bayesian", 19.7, 13.0, 0.45, 0.86);
    if (name == "vips")
        return make("vips", 8.0, 9.5, 0.50, 0.90);
    if (name == "graph")
        return make("graph", 3.0, 2.0, 0.55, 0.95);
    if (name == "wordcount")
        return make("wordcount", 15.0, 12.0, 0.45, 0.88);
    if (name == "sort")
        return make("sort", 20.0, 10.0, 0.40, 0.85);
    if (name == "terasort")
        return make("terasort", 25.0, 12.0, 0.48, 0.92);
    fatal("microBenchmark: unknown benchmark '%s'", name.c_str());
}

std::vector<WorkloadProfile>
microBenchmarkSuite()
{
    return {
        microBenchmark("x264"),  microBenchmark("vips"),
        microBenchmark("sort"),  microBenchmark("graph"),
        microBenchmark("dedup"), microBenchmark("terasort"),
    };
}

} // namespace insure::workload
