#include "workload/sources.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/units.hh"

namespace insure::workload {

BatchSource::BatchSource(Params params, Rng rng)
    : params_(std::move(params)), rng_(rng)
{
}

void
BatchSource::step(Seconds prev, Seconds now, DataQueue &queue)
{
    if (now <= prev)
        return;
    // Walk the days overlapping (prev, now] and fire any schedule entries
    // inside the interval.
    const auto first_day = static_cast<long>(prev / units::secPerDay);
    const auto last_day = static_cast<long>(now / units::secPerDay);
    for (long day = first_day; day <= last_day; ++day) {
        for (const Seconds t : params_.dailyTimes) {
            const Seconds abs_t = day * units::secPerDay + t;
            if (abs_t > prev && abs_t <= now) {
                GigaBytes size = params_.jobSize;
                if (params_.sizeJitter > 0.0) {
                    size *= std::max(
                        0.1, rng_.normal(1.0, params_.sizeJitter));
                }
                queue.arrive(abs_t, size);
            }
        }
    }
}

GigaBytes
BatchSource::dailyVolume() const
{
    return params_.jobSize * params_.dailyTimes.size();
}

StreamSource::StreamSource(Params params, Rng rng)
    : params_(std::move(params)), rng_(rng)
{
    if (params_.chunkPeriod <= 0.0)
        fatal("StreamSource: chunkPeriod must be positive");
}

bool
StreamSource::inWindow(Seconds day_time) const
{
    return day_time >= params_.windowStart && day_time < params_.windowEnd;
}

void
StreamSource::step(Seconds prev, Seconds now, DataQueue &queue)
{
    if (now <= prev)
        return;
    if (nextChunk_ < prev)
        nextChunk_ = prev;
    const GigaBytes chunk_gb =
        params_.gbPerMinute * (params_.chunkPeriod / 60.0);
    while (nextChunk_ <= now) {
        const Seconds day_time =
            std::fmod(nextChunk_, units::secPerDay);
        if (inWindow(day_time)) {
            GigaBytes size = chunk_gb;
            if (params_.rateJitter > 0.0) {
                size *= std::max(0.1,
                                 rng_.normal(1.0, params_.rateJitter));
            }
            queue.arrive(nextChunk_, size);
        }
        nextChunk_ += params_.chunkPeriod;
    }
}

GigaBytes
StreamSource::dailyVolume() const
{
    const Seconds window =
        std::max(0.0, params_.windowEnd - params_.windowStart);
    return params_.gbPerMinute * window / 60.0;
}


void
BatchSource::save(snapshot::Archive &ar) const
{
    ar.section("batch_source");
    rng_.save(ar);
}

void
BatchSource::load(snapshot::Archive &ar)
{
    ar.section("batch_source");
    rng_.load(ar);
}

void
StreamSource::save(snapshot::Archive &ar) const
{
    ar.section("stream_source");
    rng_.save(ar);
    ar.putF64(nextChunk_);
}

void
StreamSource::load(snapshot::Archive &ar)
{
    ar.section("stream_source");
    rng_.load(ar);
    nextChunk_ = ar.getF64();
}
} // namespace insure::workload
