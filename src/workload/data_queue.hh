/**
 * @file
 * FIFO queue of data-processing jobs with completion-latency tracking.
 *
 * Jobs arrive with a size in gigabytes; compute drains the queue in FIFO
 * order. A job completes when its last byte is processed; the queue tracks
 * per-job delay (completion time minus arrival time) for the service
 * latency metrics of paper Tables 2/3 and Figs. 20/21.
 */

#ifndef INSURE_WORKLOAD_DATA_QUEUE_HH
#define INSURE_WORKLOAD_DATA_QUEUE_HH

#include <cstdint>
#include <deque>

#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::workload {

/** FIFO data queue. */
class DataQueue
{
  public:
    /** A job awaiting processing. */
    struct Job {
        Seconds arrival;
        GigaBytes size;
        GigaBytes remaining;
    };

    /** Enqueue a job of @p size gigabytes arriving at @p now. */
    void arrive(Seconds now, GigaBytes size);

    /**
     * Consume up to @p amount gigabytes of queued work at time @p now.
     * @return gigabytes actually consumed.
     */
    GigaBytes process(Seconds now, GigaBytes amount);

    /**
     * Return @p amount gigabytes of previously processed work to the head
     * of the queue (work lost to an uncheckpointed power failure). The
     * amount is removed from the processed total; it was already counted
     * as arrived at its original arrival.
     */
    void requeue(Seconds now, GigaBytes amount);

    /** Total gigabytes of processed work lost to failures. */
    GigaBytes lostGb() const { return lostGb_; }

    /** Unprocessed gigabytes across all pending jobs. */
    GigaBytes backlog() const { return backlog_; }

    /** Total gigabytes completed (fully finished jobs only). */
    GigaBytes completedGb() const { return completedGb_; }

    /** Total gigabytes processed, including partial jobs. */
    GigaBytes processedGb() const { return processedGb_; }

    /** Total gigabytes that have arrived. */
    GigaBytes arrivedGb() const { return arrivedGb_; }

    /** Jobs fully completed. */
    std::uint64_t jobsCompleted() const { return jobsCompleted_; }

    /** Jobs still pending (partially processed counts as pending). */
    std::size_t jobsPending() const { return jobs_.size(); }

    /** Mean completion delay of finished jobs, seconds. */
    Seconds meanDelay() const;

    /**
     * Censored mean delay at @p now: finished jobs contribute their
     * completion delay, pending jobs their current age. Unlike
     * meanDelay() this does not reward a system that completes only its
     * easiest jobs.
     */
    Seconds meanEffectiveDelay(Seconds now) const;

    /** Maximum completion delay of finished jobs, seconds. */
    Seconds maxDelay() const { return maxDelay_; }

    /** Oldest pending job's age at @p now (0 when empty), seconds. */
    Seconds oldestAge(Seconds now) const;

    /** Serialize pending jobs and all accounting totals. */
    void save(snapshot::Archive &ar) const;

    /** Restore pending jobs and accounting totals. */
    void load(snapshot::Archive &ar);

  private:
    std::deque<Job> jobs_;
    GigaBytes backlog_ = 0.0;
    GigaBytes completedGb_ = 0.0;
    GigaBytes processedGb_ = 0.0;
    GigaBytes lostGb_ = 0.0;
    GigaBytes arrivedGb_ = 0.0;
    std::uint64_t jobsCompleted_ = 0;
    Seconds delaySum_ = 0.0;
    Seconds maxDelay_ = 0.0;
};

} // namespace insure::workload

#endif // INSURE_WORKLOAD_DATA_QUEUE_HH
