#include "snapshot/snapshotter.hh"

#include <algorithm>
#include <string>

namespace insure::snapshot {

namespace {

/**
 * The fingerprint pins the config degrees of freedom that change the
 * serialized layout or the deterministic construction sequence. It is a
 * usability layer on top of the per-component checks: a mismatched
 * resume fails here with a named field instead of deep inside a
 * section tag.
 */
void
putFingerprint(Archive &ar, const core::ExperimentConfig &cfg)
{
    ar.section("config_fingerprint");
    ar.putU64(cfg.seed);
    ar.putF64(cfg.duration);
    ar.putEnum(cfg.manager);
    ar.putEnum(cfg.day);
    ar.putU32(cfg.system.cabinetCount);
    ar.putU32(cfg.system.seriesCount);
    ar.putU32(cfg.system.nodeCount);
    ar.putBool(cfg.recordTrace);
    ar.putF64(cfg.system.physicsTick);
}

void
requireMatch(bool ok, const char *field)
{
    if (!ok)
        throw SnapshotError(
            std::string("snapshot: config fingerprint mismatch (") + field +
            " differs from the run that wrote the snapshot)");
}

void
checkFingerprint(Archive &ar, const core::ExperimentConfig &cfg)
{
    ar.section("config_fingerprint");
    requireMatch(ar.getU64() == cfg.seed, "seed");
    requireMatch(ar.getF64() == cfg.duration, "duration");
    requireMatch(ar.getU32() == static_cast<std::uint32_t>(cfg.manager),
                 "manager");
    requireMatch(ar.getU32() == static_cast<std::uint32_t>(cfg.day), "day");
    requireMatch(ar.getU32() == cfg.system.cabinetCount, "cabinetCount");
    requireMatch(ar.getU32() == cfg.system.seriesCount, "seriesCount");
    requireMatch(ar.getU32() == cfg.system.nodeCount, "nodeCount");
    requireMatch(ar.getBool() == cfg.recordTrace, "recordTrace");
    requireMatch(ar.getF64() == cfg.system.physicsTick, "physicsTick");
}

/**
 * Advance the rig to the end of its configured duration in
 * interval-sized chunks, committing a checkpoint after each chunk. The
 * final chunk skips the checkpoint: the caller is about to harvest the
 * finished result, so a stale checkpoint would only invite a re-run.
 */
core::ExperimentResult
driveCheckpointed(core::ExperimentRig &rig, const CheckpointOptions &opts)
{
    const Seconds duration = rig.config().duration;
    const Seconds step = opts.interval > 0.0 ? opts.interval : duration;
    Seconds now = rig.simulation().now();
    while (now < duration) {
        const Seconds next = std::min(duration, now + step);
        rig.runUntil(next);
        now = next;
        if (opts.onProgress)
            opts.onProgress(now);
        if (!opts.path.empty() && now < duration) {
            saveRigSnapshot(rig, opts.path);
            if (opts.onCheckpoint)
                opts.onCheckpoint(now);
        }
    }
    return rig.finish();
}

} // namespace

void
saveRigSnapshot(const core::ExperimentRig &rig, const std::string &path)
{
    Archive ar = Archive::forSave();
    putFingerprint(ar, rig.config());
    rig.save(ar);
    writeSnapshotFile(path, ar);
}

void
loadRigSnapshot(core::ExperimentRig &rig, const std::string &path)
{
    Archive ar = readSnapshotFile(path);
    checkFingerprint(ar, rig.config());
    rig.load(ar);
    if (ar.remaining() != 0)
        throw SnapshotError("snapshot: trailing bytes after restore "
                            "(snapshot and code disagree on the layout)");
}

std::string
serializeRigState(const core::ExperimentRig &rig)
{
    Archive ar = Archive::forSave();
    putFingerprint(ar, rig.config());
    rig.save(ar);
    return ar.payload();
}

void
restoreRigState(core::ExperimentRig &rig, const std::string &payload)
{
    Archive ar = Archive::forLoad(payload);
    checkFingerprint(ar, rig.config());
    rig.load(ar);
    if (ar.remaining() != 0)
        throw SnapshotError("snapshot: trailing bytes after restore "
                            "(snapshot and code disagree on the layout)");
}

std::uint64_t
rigStateFingerprint(const std::string &payload)
{
    return fnv1a(payload.data(), payload.size());
}

core::ExperimentResult
runCheckpointed(const core::ExperimentConfig &cfg,
                const CheckpointOptions &opts)
{
    core::ExperimentRig rig(cfg);
    return driveCheckpointed(rig, opts);
}

core::ExperimentResult
resumeCheckpointed(const core::ExperimentConfig &cfg,
                   const CheckpointOptions &opts)
{
    core::ExperimentRig rig(cfg);
    loadRigSnapshot(rig, opts.path);
    return driveCheckpointed(rig, opts);
}

} // namespace insure::snapshot
