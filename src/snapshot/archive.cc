#include "snapshot/archive.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace insure::snapshot {

std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

void
atomicWriteFile(const std::string &path, std::string_view data)
{
    // Temp file beside the target so the rename stays within one
    // filesystem (rename across devices is a copy, not atomic). The
    // name is unique per writer (mkstemp) so two threads targeting the
    // same path cannot clobber each other's half-written temp file.
    std::string tmp = path + ".tmp.XXXXXX";
    const int fd = ::mkstemp(tmp.data());
    if (fd < 0)
        throw SnapshotError("cannot create temp file for " + path + ": " +
                            std::strerror(errno));
    ::fchmod(fd, 0644);
    std::size_t written = 0;
    while (written < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + written, data.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const std::string err = std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            throw SnapshotError("write failed on " + tmp + ": " + err);
        }
        written += static_cast<std::size_t>(n);
    }
    // Data must be durable before the rename publishes the name, or a
    // crash between the two could expose an empty file under the final
    // path.
    if (::fsync(fd) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        throw SnapshotError("fsync failed on " + tmp + ": " + err);
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throw SnapshotError("close failed on " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const std::string err = std::strerror(errno);
        ::unlink(tmp.c_str());
        throw SnapshotError("rename " + tmp + " -> " + path + " failed: " +
                            err);
    }
    // The rename itself is only durable once the directory entry is on
    // disk; without this a crash can resurrect the old file (or none).
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dirFd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirFd >= 0) {
        ::fsync(dirFd);
        ::close(dirFd);
    }
}

void
writeSnapshotFile(const std::string &path, const Archive &ar)
{
    const std::string &payload = ar.payload();
    std::string framed;
    framed.reserve(payload.size() + 24);
    auto append = [&framed](const void *p, std::size_t n) {
        framed.append(static_cast<const char *>(p), n);
    };
    const std::uint32_t magic = kSnapshotMagic;
    const std::uint32_t version = kSnapshotVersion;
    const std::uint64_t size = payload.size();
    const std::uint64_t sum = fnv1a(payload.data(), payload.size());
    append(&magic, sizeof magic);
    append(&version, sizeof version);
    append(&size, sizeof size);
    append(&sum, sizeof sum);
    framed += payload;
    atomicWriteFile(path, framed);
}

Archive
readSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError("cannot open snapshot " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string framed = ss.str();

    if (framed.size() < 24)
        throw SnapshotError("snapshot " + path +
                            " truncated: no complete header");
    std::uint32_t magic, version;
    std::uint64_t size, sum;
    std::memcpy(&magic, framed.data(), sizeof magic);
    std::memcpy(&version, framed.data() + 4, sizeof version);
    std::memcpy(&size, framed.data() + 8, sizeof size);
    std::memcpy(&sum, framed.data() + 16, sizeof sum);
    if (magic != kSnapshotMagic)
        throw SnapshotError("snapshot " + path + ": bad magic");
    if (version != kSnapshotVersion)
        throw SnapshotError(
            "snapshot " + path + ": schema version " +
            std::to_string(version) + " (this build reads " +
            std::to_string(kSnapshotVersion) + ")");
    if (framed.size() - 24 != size)
        throw SnapshotError("snapshot " + path + ": payload truncated");
    const std::string payload = framed.substr(24);
    if (fnv1a(payload.data(), payload.size()) != sum)
        throw SnapshotError("snapshot " + path + ": checksum mismatch");
    return Archive::forLoad(payload);
}

} // namespace insure::snapshot
