/**
 * @file
 * Binary serialization visitor for crash-safe simulation snapshots.
 *
 * An Archive is a flat byte stream in one of two modes: Save appends
 * primitive values, Load consumes them in the same order. Every stateful
 * component implements a small save(Archive&)/load(Archive&) pair whose
 * put/get sequences mirror each other exactly; the Snapshotter
 * (snapshot/snapshotter.hh) routes the whole plant through one archive.
 *
 * Doubles are serialized as their raw 64-bit representation (bit_cast),
 * never through text formatting, so a restored run is bit-identical to
 * the uninterrupted one. The on-disk frame adds a magic number, a schema
 * version and an FNV-1a checksum over the payload; readSnapshotFile
 * rejects corrupted, truncated or wrong-version files with a
 * SnapshotError, never undefined behaviour (every read is
 * bounds-checked). Files are written via atomicWriteFile: temp file in
 * the same directory, fsync, then rename, so a crash mid-write can
 * never leave a half-written snapshot (or campaign JSON) behind.
 *
 * The format is host-endian and host-layout: snapshots are a
 * crash-recovery mechanism for the machine that wrote them, not an
 * interchange format.
 */

#ifndef INSURE_SNAPSHOT_ARCHIVE_HH
#define INSURE_SNAPSHOT_ARCHIVE_HH

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace insure::snapshot {

/** Raised on any malformed, mismatched or unreadable snapshot. */
class SnapshotError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Snapshot file magic ("INSS" little-endian) and schema version. */
inline constexpr std::uint32_t kSnapshotMagic = 0x53534E49u;
inline constexpr std::uint32_t kSnapshotVersion = 1;

/** FNV-1a over a byte range (the payload checksum). */
std::uint64_t fnv1a(const void *data, std::size_t size,
                    std::uint64_t h = 0xCBF29CE484222325ull);

/** The serialization visitor. */
class Archive
{
  public:
    /** An empty archive ready for put*() calls. */
    static Archive forSave() { return Archive(std::string(), true); }

    /** An archive over @p payload ready for get*() calls. */
    static Archive forLoad(std::string payload)
    {
        return Archive(std::move(payload), false);
    }

    /** True in save mode (putters allowed), false in load mode. */
    bool saving() const { return saving_; }

    /** The serialized payload (save mode). */
    const std::string &payload() const { return buf_; }

    /** Bytes not yet consumed (load mode). */
    std::size_t remaining() const { return buf_.size() - pos_; }

    // --- putters (save mode only) ---------------------------------

    void
    putU64(std::uint64_t v)
    {
        requireSaving();
        appendRaw(&v, sizeof v);
    }

    void putU32(std::uint32_t v)
    {
        requireSaving();
        appendRaw(&v, sizeof v);
    }

    void putI64(std::int64_t v) { putU64(static_cast<std::uint64_t>(v)); }

    void putBool(bool v) { putU32(v ? 1u : 0u); }

    /** Raw 64-bit image of the double: restores are bit-exact. */
    void putF64(double v) { putU64(std::bit_cast<std::uint64_t>(v)); }

    void
    putStr(std::string_view s)
    {
        putU64(s.size());
        requireSaving();
        appendRaw(s.data(), s.size());
    }

    /** A container size (u64), symmetric with getSize(). */
    void putSize(std::size_t n) { putU64(n); }

    template <class E>
    void
    putEnum(E e)
    {
        putU32(static_cast<std::uint32_t>(e));
    }

    void
    putF64Vec(const std::vector<double> &v)
    {
        putSize(v.size());
        for (double x : v)
            putF64(x);
    }

    // --- getters (load mode only) ---------------------------------

    std::uint64_t
    getU64()
    {
        std::uint64_t v;
        readRaw(&v, sizeof v);
        return v;
    }

    std::uint32_t
    getU32()
    {
        std::uint32_t v;
        readRaw(&v, sizeof v);
        return v;
    }

    std::int64_t getI64() { return static_cast<std::int64_t>(getU64()); }

    bool
    getBool()
    {
        const std::uint32_t v = getU32();
        if (v > 1)
            throw SnapshotError("snapshot: bool field out of range");
        return v != 0;
    }

    double getF64() { return std::bit_cast<double>(getU64()); }

    std::string
    getStr()
    {
        const std::uint64_t n = getU64();
        if (n > remaining())
            throw SnapshotError("snapshot: string length past end");
        std::string s(buf_.data() + pos_, static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /**
     * A container size with a sanity cap: a corrupted length field must
     * fail loudly instead of driving a multi-gigabyte allocation.
     */
    std::size_t
    getSize(std::size_t maxReasonable = kMaxElements)
    {
        const std::uint64_t n = getU64();
        if (n > maxReasonable)
            throw SnapshotError("snapshot: container size implausible");
        return static_cast<std::size_t>(n);
    }

    template <class E>
    E
    getEnum(std::uint32_t maxValue)
    {
        const std::uint32_t v = getU32();
        if (v > maxValue)
            throw SnapshotError("snapshot: enum value out of range");
        return static_cast<E>(v);
    }

    std::vector<double>
    getF64Vec()
    {
        const std::size_t n = getSize();
        std::vector<double> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = getF64();
        return v;
    }

    /**
     * Section framing: save writes a tag, load verifies it. Catches
     * save/load pairs drifting out of sync at the component boundary
     * where it happened, not thousands of bytes later.
     */
    void
    section(const char *name)
    {
        const std::uint32_t tag =
            static_cast<std::uint32_t>(fnv1a(name, traits_length(name)));
        if (saving_) {
            putU32(tag);
        } else if (getU32() != tag) {
            throw SnapshotError(std::string("snapshot: section '") + name +
                                "' out of sync");
        }
    }

  private:
    static constexpr std::size_t kMaxElements = 1u << 28;

    Archive(std::string buf, bool saving)
        : buf_(std::move(buf)), saving_(saving)
    {
    }

    static std::size_t
    traits_length(const char *s)
    {
        std::size_t n = 0;
        while (s[n] != '\0')
            ++n;
        return n;
    }

    void
    requireSaving() const
    {
        if (!saving_)
            throw SnapshotError("snapshot: put on a load-mode archive");
    }

    void
    appendRaw(const void *data, std::size_t size)
    {
        buf_.append(static_cast<const char *>(data), size);
    }

    void
    readRaw(void *out, std::size_t size)
    {
        if (saving_)
            throw SnapshotError("snapshot: get on a save-mode archive");
        if (size > buf_.size() - pos_)
            throw SnapshotError("snapshot: truncated payload");
        __builtin_memcpy(out, buf_.data() + pos_, size);
        pos_ += size;
    }

    std::string buf_;
    std::size_t pos_ = 0;
    bool saving_;
};

/**
 * Write @p data to @p path atomically: unique temp file in the same
 * directory, flush + fsync, rename over the target, then fsync the
 * directory so the rename itself is durable. Throws SnapshotError on
 * any I/O failure. Also used for campaign JSON and manifest results so
 * a crash can never leave truncated output files.
 */
void atomicWriteFile(const std::string &path, std::string_view data);

/** Frame @p ar's payload (magic, version, checksum) and write atomically. */
void writeSnapshotFile(const std::string &path, const Archive &ar);

/**
 * Read and validate a snapshot file; returns a load-mode archive over
 * the payload. Throws SnapshotError on missing file, bad magic, version
 * mismatch, short payload or checksum failure.
 */
Archive readSnapshotFile(const std::string &path);

} // namespace insure::snapshot

#endif // INSURE_SNAPSHOT_ARCHIVE_HH
