/**
 * @file
 * Crash-safe checkpoint/restore of a complete experiment run.
 *
 * A snapshot captures everything the simulation would need to continue
 * bit-exactly in a fresh process: the event queue (pending events at
 * their exact dispatch keys), the clock, every RNG stream, the full
 * electrochemical and control state of the plant, the observer and any
 * plant extension (fault injector). Restoring requires rebuilding the
 * rig from the IDENTICAL ExperimentConfig — construction is fully
 * deterministic in the config, so the snapshot only has to carry the
 * dynamic state, and a config fingerprint in the file catches mismatched
 * resumes loudly.
 *
 * runCheckpointed()/resumeCheckpointed() drive a run in bounded chunks,
 * writing an atomic checkpoint file every `interval` simulated seconds;
 * kill -9 at any instant loses at most one interval of progress, and
 * the resumed run's outputs are bit-identical to an uninterrupted one.
 */

#ifndef INSURE_SNAPSHOT_SNAPSHOTTER_HH
#define INSURE_SNAPSHOT_SNAPSHOTTER_HH

#include <functional>
#include <string>

#include "core/experiment.hh"
#include "snapshot/archive.hh"

namespace insure::snapshot {

/**
 * Serialize @p rig's complete run state (prefixed with a fingerprint of
 * its config) and write it atomically to @p path. Call only between
 * runUntil() chunks, never from inside a dispatching event.
 */
void saveRigSnapshot(const core::ExperimentRig &rig, const std::string &path);

/**
 * Restore a snapshot into @p rig, which must be freshly constructed
 * from the same config the snapshot was written with. Throws
 * SnapshotError on config mismatch, corruption or version skew.
 */
void loadRigSnapshot(core::ExperimentRig &rig, const std::string &path);

/**
 * Serialize @p rig's complete run state (fingerprint-prefixed, exactly
 * the file payload) into an in-memory byte string — the fork primitive
 * of the digital-twin service: the live server snapshots between tick
 * chunks and what-if workers restore the payload into fresh rigs
 * without touching the filesystem. Call only between runUntil() chunks.
 */
std::string serializeRigState(const core::ExperimentRig &rig);

/**
 * Restore an in-memory payload produced by serializeRigState into
 * @p rig, freshly constructed from a config whose fingerprinted fields
 * (seed, duration, manager, day, plant shape, recordTrace, tick) match
 * the writer's — policy tuning values may differ, which is how what-if
 * forks explore overrides. Throws SnapshotError on mismatch or
 * corruption.
 */
void restoreRigState(core::ExperimentRig &rig, const std::string &payload);

/** FNV-1a fingerprint of a serialized rig state (the cache key). */
std::uint64_t rigStateFingerprint(const std::string &payload);

/** Checkpoint cadence and hooks for a checkpointed run. */
struct CheckpointOptions {
    /** Checkpoint file. Empty disables checkpointing (plain chunked run). */
    std::string path;
    /**
     * Simulated seconds between checkpoints (also the chunk length, so
     * hooks fire at this cadence). <= 0 means a single chunk.
     */
    Seconds interval = 3600.0;
    /**
     * Invoked after each chunk with the reached simulated time — the
     * resilient runner's watchdog heartbeat lives here. May throw to
     * abort the run (the exception propagates to the caller).
     */
    std::function<void(Seconds)> onProgress;
    /** Invoked after each checkpoint file is committed. */
    std::function<void(Seconds)> onCheckpoint;
};

/** Run @p cfg from the start, checkpointing per @p opts. */
core::ExperimentResult runCheckpointed(const core::ExperimentConfig &cfg,
                                       const CheckpointOptions &opts);

/**
 * Resume @p cfg from the checkpoint at opts.path and run it to
 * completion, continuing to checkpoint. The result is bit-identical to
 * the run that wrote the checkpoint finishing undisturbed.
 */
core::ExperimentResult resumeCheckpointed(const core::ExperimentConfig &cfg,
                                          const CheckpointOptions &opts);

} // namespace insure::snapshot

#endif // INSURE_SNAPSHOT_SNAPSHOTTER_HH
