/**
 * @file
 * Runtime invariant checking for the in-situ system simulation.
 *
 * The InvariantChecker is a SystemObserver that asserts, every simulated
 * step, the physical and protocol invariants the paper's evaluation rests
 * on:
 *
 *  - charge conservation: the exact ampere-hour inventory of the buffer
 *    moves only by what was delivered/stored this tick (plus bounded
 *    self-discharge) — KiBaM bookkeeping is conservation-exact, so the
 *    tolerance is tight;
 *  - green-energy accounting: direct feed + charging never exceed the
 *    solar input;
 *  - per-unit SoC/available-well in [0, 1] and voltage-model sanity;
 *  - Fig. 8 state-machine legality, observed at the BatteryUnit mode
 *    setter (every transition funnels through it: manager decisions,
 *    fast-switch promotions, hardware protection trips);
 *  - spatial-manager budget compliance: the Eq-1 δD screening threshold
 *    (with the on-demand relaxation mirrored exactly) and the
 *    N = P_G / P_PC charge-concentration bound;
 *  - relay/switch-network topology consistency (mode <-> relay states,
 *    never a shorted bus, never an invalid P1/P2/P3 combination).
 *
 * Policy Off/Log/Abort/Throw selects the response: Off makes every hook
 * an immediate return (benches at zero overhead attach nothing at all),
 * Log records bounded messages and counts, Abort panics on the first
 * violation (debugging), Throw raises a catchable error so batch sweeps
 * record the run as failed (fault campaigns).
 */

#ifndef INSURE_VALIDATE_INVARIANT_CHECKER_HH
#define INSURE_VALIDATE_INVARIANT_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/spatial_manager.hh"
#include "core/system_observer.hh"

namespace insure::core {
struct ExperimentConfig;
}

namespace insure::validate {

/** What to do when an invariant fails. */
enum class Policy {
    /** Check nothing (hooks return immediately). */
    Off,
    /** Count violations and keep bounded messages; log at Warn. */
    Log,
    /** panic() on the first violation (stops in a debugger/core dump). */
    Abort,
    /**
     * Throw std::runtime_error on the first violation. Catchable, so a
     * batch sweep records the run as failed instead of tearing down the
     * whole process (fault campaigns, death-free tests).
     */
    Throw,
};

/** Configuration of the checker. */
struct CheckerOptions {
    Policy policy = Policy::Log;

    // Individual check groups.
    bool checkConservation = true;
    bool checkSocBounds = true;
    bool checkPowerFlow = true;
    bool checkRelays = true;
    bool checkTransitions = true;
    /** N = P_G / P_PC concentration bound (InSURE w/ concentration). */
    bool checkConcentration = false;
    /** Eq-1 δD screening compliance (InSURE w/ wear balancing). */
    bool checkScreening = false;
    /**
     * Interactive request conservation: every tick, arrived must equal
     * served + cached hits + shed + dropped + still-queued, exactly
     * (the counters are integers — no tolerance).
     */
    bool checkRequests = false;

    /** Spatial parameters mirrored for the screening/batch math. */
    core::SpatialParams spatial;
    /** Screening interval mirrored from InsureParams::spatialPeriod. */
    Seconds spatialPeriod = 300.0;
    /**
     * SoC below which a cabinet retired Offline must not re-enter
     * Discharging (the Fig. 8 taboo transition); sensed/true SoC skew is
     * absorbed by a 0.01 slack.
     */
    double minDischargeSoc = 0.2;

    /** Absolute ampere-hour slack for the conservation balance. */
    double ahTolerance = 1e-6;
    /** Keep at most this many violation messages (counting continues). */
    std::size_t maxMessages = 32;
};

/** Derive checker options matching an experiment's manager/ablations. */
CheckerOptions optionsForExperiment(const core::ExperimentConfig &cfg);

/**
 * Wire a per-run InvariantChecker into @p cfg via its observerFactory
 * (options derived with optionsForExperiment; policy overridden to
 * @p policy). Violations surface in ExperimentResult after the run.
 */
void attachInvariantChecker(core::ExperimentConfig &cfg,
                            Policy policy = Policy::Log);

/** The runtime invariant checker (attach via InSituSystem or config). */
class InvariantChecker : public core::SystemObserver
{
  public:
    explicit InvariantChecker(CheckerOptions opts = {});

    void onTick(const core::TickSample &s) override;
    void onControl(const core::ControlSample &s) override;
    void onModeChange(unsigned cabinet, battery::UnitMode from,
                      battery::UnitMode to, Seconds now,
                      double soc) override;

    std::uint64_t violationCount() const override { return violations_; }
    std::vector<std::string> violationMessages() const override
    {
        return messages_;
    }

    /** Physics ticks inspected so far. */
    std::uint64_t ticksChecked() const { return ticks_; }

    /** Control periods inspected so far. */
    std::uint64_t controlsChecked() const { return controls_; }

    /** Mode transitions inspected so far. */
    std::uint64_t transitionsChecked() const { return transitions_; }

    /**
     * Serialize every counter, bounded message and cross-tick mirror
     * (relaxation budget, inventory continuity, derived constants) so a
     * restored run reports identical violations to a straight-through
     * one.
     */
    void saveState(snapshot::Archive &ar) const override;

    /** Restore checker state (mirror of saveState). */
    void loadState(snapshot::Archive &ar) override;

    /**
     * True when the Fig. 8 state machine allows @p from -> @p to at state
     * of charge @p soc, under @p minDischargeSoc (exposed for tests).
     */
    static bool legalTransition(battery::UnitMode from,
                                battery::UnitMode to, double soc,
                                double min_discharge_soc);

  private:
    void report(Seconds now, const char *check, std::string detail);
    void checkCabinetRelays(unsigned i, const battery::Cabinet &cab,
                            Seconds now);

    CheckerOptions opts_;
    std::uint64_t violations_ = 0;
    std::uint64_t ticks_ = 0;
    std::uint64_t controls_ = 0;
    std::uint64_t transitions_ = 0;
    std::vector<std::string> messages_;

    // Mirror of SpatialManager's relaxation state (Eq-1 screening).
    AmpHours relaxedBudgetAh_ = 0.0;
    Seconds lastScreen_ = -1e18;

    // Cross-tick inventory continuity state.
    AmpHours lastUnitAhAfter_ = 0.0;
    bool haveLastAh_ = false;

    // Derived quantities that are constant for a run (the config and
    // array shape never change mid-simulation), cached on the first tick
    // so the per-tick conservation check is pure arithmetic.
    bool haveDerived_ = false;
    unsigned series_ = 1;
    unsigned totalUnits_ = 0;
    /** Self-discharge allowance per simulated second, whole array, Ah. */
    double selfDisAhPerSec_ = 0.0;
};

} // namespace insure::validate

#endif // INSURE_VALIDATE_INVARIANT_CHECKER_HH
