/**
 * @file
 * Golden-trace regression checking for the canonical full-day scenarios.
 *
 * A GoldenRecorder observes a run and digests the system state every
 * sampling period into one JSONL record (time, power flows, buffer state,
 * cabinet modes) plus a rolling FNV-1a hash chained across records. The
 * canonical digests for the Fig. 14/16 full-day scenarios live in
 * tests/golden/ and are compared field-by-field (tight tolerance, so a
 * libm difference does not fail the check while any behavioural drift
 * does). The golden_trace tool (tests/validate/golden_trace_main.cc)
 * wires --record/--check into ctest.
 */

#ifndef INSURE_VALIDATE_GOLDEN_TRACE_HH
#define INSURE_VALIDATE_GOLDEN_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/system_observer.hh"

namespace insure::validate {

/** One per-period digest of the system state. */
struct GoldenRecord {
    /** Sample index. */
    std::uint64_t index = 0;
    /** Simulated time, seconds. */
    Seconds t = 0.0;
    /** Solar power, watts. */
    Watts solar = 0.0;
    /** Rack load, watts. */
    Watts load = 0.0;
    /** Power supplied to the rack (direct + buffer + secondary), watts. */
    Watts supplied = 0.0;
    /** Mean buffer state of charge. */
    double meanSoc = 0.0;
    /** Stored buffer energy, watt-hours. */
    WattHours storedWh = 0.0;
    /** Active VMs. */
    unsigned vms = 0;
    /** Queue backlog, gigabytes. */
    double backlogGb = 0.0;
    /** Cabinet modes as one letter each (O/C/S/D). */
    std::string modes;
    /** Rolling FNV-1a hash (hex) chained over all records so far. */
    std::string hash;
};

/** Result of comparing a recorded run against a golden file. */
struct GoldenMismatch {
    /** True when every record matched within tolerance. */
    bool matched = true;
    /** True when the final rolling hashes are bit-identical. */
    bool hashIdentical = true;
    /** First mismatching record (when !matched). */
    std::size_t record = 0;
    /** Human-readable description of the first mismatch. */
    std::string detail;
};

/** Observer that samples golden records every @p period seconds. */
class GoldenRecorder : public core::SystemObserver
{
  public:
    explicit GoldenRecorder(Seconds period = 300.0);

    void onTick(const core::TickSample &s) override;

    const std::vector<GoldenRecord> &records() const { return records_; }

    /** Final rolling hash (hex), empty before any sample. */
    std::string finalHash() const;

    /**
     * Serialize the sampling cursor, rolling hash and every record, so
     * a restored run's final hash equals the straight-through run's.
     */
    void saveState(snapshot::Archive &ar) const override;

    /** Restore recorder state (mirror of saveState). */
    void loadState(snapshot::Archive &ar) override;

    /** Write the records as JSONL. Fatal on I/O error. */
    void save(const std::string &path) const;

    /** Parse a JSONL golden file. Fatal on I/O error or bad format. */
    static std::vector<GoldenRecord> load(const std::string &path);

  private:
    Seconds period_;
    Seconds next_ = 0.0;
    std::uint64_t hash_ = 14695981039346656037ull; // FNV-1a offset basis
    std::vector<GoldenRecord> records_;
};

/**
 * Compare a recorded run against golden records. Numeric fields compare
 * with absolute tolerance @p tol (records are serialised at 1e-6
 * resolution); modes compare exactly. Hash identity is reported
 * separately so platform-level float drift is visible without failing.
 */
GoldenMismatch compareGolden(const std::vector<GoldenRecord> &golden,
                             const std::vector<GoldenRecord> &actual,
                             double tol = 2e-6);

/** Names of the canonical golden scenarios. */
std::vector<std::string> goldenScenarioNames();

/**
 * Experiment configuration of a canonical scenario
 * ("fig14_seismic_sunny" or "fig16_video_cloudy"). Fatal on an unknown
 * name.
 */
core::ExperimentConfig goldenScenario(const std::string &name);

/** Sampling period used for the checked-in golden digests, seconds. */
inline constexpr Seconds kGoldenPeriod = 300.0;

/**
 * Run a scenario with a GoldenRecorder (and any extra observer the
 * config already carries) attached; returns the recorded digests.
 */
std::vector<GoldenRecord> recordGoldenRun(core::ExperimentConfig cfg,
                                          Seconds period = kGoldenPeriod);

} // namespace insure::validate

#endif // INSURE_VALIDATE_GOLDEN_TRACE_HH
