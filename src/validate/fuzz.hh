/**
 * @file
 * Property-based fuzzing of the simulation invariants.
 *
 * Each fuzz case is derived deterministically from one 64-bit seed: the
 * seed picks the workload, manager (including ablations), weather, plant
 * size, initial charge and run length, and also seeds the run itself.
 * Cases execute concurrently through the harness::BatchRunner with a
 * per-run validate::InvariantChecker attached; any violation fails the
 * case. Failing cases are shrunk (halving the run length while the
 * failure persists) and reported as a one-line reproduction recipe —
 * re-running fuzzCaseFromSeed(seed, duration) rebuilds the exact run.
 */

#ifndef INSURE_VALIDATE_FUZZ_HH
#define INSURE_VALIDATE_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "harness/batch_runner.hh"
#include "validate/invariant_checker.hh"

namespace insure::validate {

/** One derived fuzz case. */
struct FuzzCase {
    /** The fully-built run description (config.seed == the case seed). */
    core::ExperimentConfig config;
    /** Human-readable summary of every derived choice. */
    std::string label;
};

/**
 * Derive a fuzz case from @p seed. When @p duration is positive it
 * overrides the derived run length (used by the shrinker); the rest of
 * the configuration is unchanged, so (seed, duration) fully identifies
 * a run.
 */
FuzzCase fuzzCaseFromSeed(std::uint64_t seed, Seconds duration = 0.0);

/** Fuzz sweep configuration. */
struct FuzzOptions {
    /** Master seed; per-case seeds are split off it. */
    std::uint64_t masterSeed = kDefaultSeed;
    /** Number of randomized cases. */
    std::size_t runs = 200;
    /** Worker threads (0 = harness::defaultJobs()). */
    unsigned jobs = 0;
    /** Fixed per-run duration; 0 derives 2-6 sim-hours from the seed. */
    Seconds duration = 0.0;
    /** Shrink failing cases to a shorter still-failing duration. */
    bool shrink = true;
    /** Keep at most this many fully-detailed failures. */
    std::size_t maxFailures = 5;
    /** Per-run progress callback (forwarded to the batch runner). */
    harness::BatchRunner::Progress progress;
};

/** One failing fuzz case, after shrinking. */
struct FuzzFailure {
    /** The case seed. */
    std::uint64_t seed = 0;
    /** Label of the derived case. */
    std::string label;
    /** Shortest duration still exhibiting the failure, seconds. */
    Seconds duration = 0.0;
    /** Violations counted at that duration. */
    std::uint64_t violations = 0;
    /** Bounded violation messages from the checker. */
    std::vector<std::string> notes;
    /** One-line reproduction recipe. */
    std::string repro;
};

/** Aggregate outcome of a fuzz sweep. */
struct FuzzReport {
    /** Cases executed. */
    std::size_t runs = 0;
    /** Cases with at least one invariant violation. */
    std::size_t failedRuns = 0;
    /** Total violations across all cases (pre-shrink). */
    std::uint64_t totalViolations = 0;
    /** Total simulated time swept, seconds. */
    Seconds simulatedSeconds = 0.0;
    /** Detailed (shrunk) failures, at most FuzzOptions::maxFailures. */
    std::vector<FuzzFailure> failures;

    bool clean() const { return failedRuns == 0; }
};

/** Run the fuzz sweep. */
FuzzReport fuzzInvariants(const FuzzOptions &opts = {});

/** Format a report as a short human-readable summary. */
std::string formatFuzzReport(const FuzzReport &report);

} // namespace insure::validate

#endif // INSURE_VALIDATE_FUZZ_HH
