#include "validate/invariant_checker.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "core/experiment.hh"
#include "interactive/request_model.hh"
#include "sim/logging.hh"

namespace insure::validate {

using battery::UnitMode;

namespace {

/** printf-style formatting into a std::string (messages are bounded). */
std::string
strf(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

} // namespace

CheckerOptions
optionsForExperiment(const core::ExperimentConfig &cfg)
{
    CheckerOptions opts;
    opts.checkRequests = cfg.system.interactive.has_value();
    if (cfg.manager == core::ManagerKind::Insure ||
        cfg.manager == core::ManagerKind::InfoBattery) {
        // The InfoBattery manager wraps the InSURE policy, so the same
        // concentration/screening invariants apply to it.
        opts.checkConcentration = !cfg.insure.disableConcentration;
        opts.checkScreening = !cfg.insure.disableBalancing;
        opts.spatial = cfg.insure.spatial;
        opts.spatialPeriod = cfg.insure.spatialPeriod;
        opts.minDischargeSoc = cfg.insure.offlineSoc;
    } else {
        // The baseline neither concentrates charge nor screens by wear;
        // it also never commands Discharging (strings float on the bus
        // in Standby), so the generic checks are the meaningful ones.
        opts.checkConcentration = false;
        opts.checkScreening = false;
        opts.minDischargeSoc = cfg.system.battery.minSoc;
    }
    return opts;
}

void
attachInvariantChecker(core::ExperimentConfig &cfg, Policy policy)
{
    CheckerOptions opts = optionsForExperiment(cfg);
    opts.policy = policy;
    cfg.observerFactory = [opts] {
        return std::make_unique<InvariantChecker>(opts);
    };
}

InvariantChecker::InvariantChecker(CheckerOptions opts)
    : opts_(std::move(opts))
{
}

void
InvariantChecker::report(Seconds now, const char *check, std::string detail)
{
    ++violations_;
    std::string msg =
        strf("t=%.1f [%s] ", now, check) + detail;
    if (opts_.policy == Policy::Abort)
        panic("invariant violated: %s", msg.c_str());
    if (opts_.policy == Policy::Throw)
        throw std::runtime_error("invariant violated: " + msg);
    if (messages_.size() < opts_.maxMessages) {
        Logger::log(LogLevel::Warn, "invariant violated: %s",
                    msg.c_str());
        messages_.push_back(std::move(msg));
    }
}

bool
InvariantChecker::legalTransition(UnitMode from, UnitMode to, double soc,
                                  double min_discharge_soc)
{
    if (from == to)
        return true;
    // Protection/depletion may retire a cabinet from any mode (Fig. 8
    // transition 4 plus the hardware trip paths).
    if (to == UnitMode::Offline)
        return true;
    switch (from) {
      case UnitMode::Offline:
        // Screening re-admission lands on the charge bus or in standby.
        // A depleted offline cabinet must never reconnect straight to
        // the load bus; a healthy one may (re-admission composed with an
        // immediate deficit promotion within one control period). The
        // 0.01 slack absorbs sensed-vs-true SoC quantisation.
        if (to == UnitMode::Discharging)
            return soc > min_discharge_soc - 0.01;
        return true;
      case UnitMode::Charging:
      case UnitMode::Standby:
        // Charged -> standby, deficit -> discharging, surplus rotation.
        return true;
      case UnitMode::Discharging:
        // Surplus -> standby (possibly composed with a rotation onto the
        // charge bus in the same control period).
        return true;
    }
    return false;
}

void
InvariantChecker::onModeChange(unsigned cabinet, UnitMode from, UnitMode to,
                               Seconds now, double soc)
{
    if (opts_.policy == Policy::Off || !opts_.checkTransitions)
        return;
    ++transitions_;
    if (!legalTransition(from, to, soc, opts_.minDischargeSoc)) {
        report(now, "fig8-transition",
               strf("cab%u %s -> %s at soc=%.3f (min discharge soc "
                    "%.3f)",
                    cabinet, battery::unitModeName(from),
                    battery::unitModeName(to), soc,
                    opts_.minDischargeSoc));
    }
}

void
InvariantChecker::onTick(const core::TickSample &s)
{
    if (opts_.policy == Policy::Off)
        return;
    ++ticks_;
    const double eps = 1e-9;

    // One pass over the cabinets covers both the per-unit SoC/voltage
    // checks and the relay-consistency checks; the array shape is walked
    // once per tick instead of once per check group.
    const bool do_soc = opts_.checkSocBounds && s.array;
    const bool do_relays = opts_.checkRelays && s.array;
    if (do_soc || do_relays) {
        for (unsigned i = 0; i < s.array->cabinetCount(); ++i) {
            const auto &cab = s.array->cabinet(i);
            if (do_soc) {
                for (unsigned u = 0; u < cab.seriesCount(); ++u) {
                    const auto &unit = cab.unit(u);
                    const double soc = unit.soc();
                    const double avail = unit.availableFraction();
                    if (soc < -eps || soc > 1.0 + eps) {
                        report(s.now, "soc-bounds",
                               strf("cab%u.u%u soc=%.9f", i, u, soc));
                    }
                    if (avail < -eps || avail > 1.0 + eps) {
                        report(s.now, "soc-bounds",
                               strf("cab%u.u%u availableFraction=%.9f",
                                    i, u, avail));
                    }
                    const Volts ocv = unit.openCircuitVoltage();
                    if (ocv < 5.0 || ocv > 18.0) {
                        report(s.now, "voltage-sanity",
                               strf("cab%u.u%u ocv=%.3f V outside "
                                    "[5, 18]",
                                    i, u, ocv));
                    }
                }
            }
            if (do_relays)
                checkCabinetRelays(i, cab, s.now);
        }
        if (do_relays &&
            s.array->network().topology() ==
                battery::BusTopology::Invalid) {
            report(s.now, "switch-topology",
                   "P1/P2/P3 combination is invalid (bus disconnected)");
        }
    }

    if (opts_.checkConservation && s.config) {
        // Exact Ah balance: the unit-level inventory moves only by what
        // the series strings delivered/stored (each series unit carries
        // the string current) minus bounded self-discharge of resting
        // units. KiBaM accounts rejected charge exactly, so the slack is
        // numerical noise plus the self-discharge allowance.
        if (!haveDerived_) {
            const auto &bp = s.config->battery;
            series_ = std::max(1u, s.config->seriesCount);
            totalUnits_ = (s.array ? s.array->cabinetCount()
                                   : s.config->cabinetCount) *
                          series_;
            selfDisAhPerSec_ = bp.selfDischargePerDay * bp.capacityAh /
                               units::secPerDay * totalUnits_;
            haveDerived_ = true;
        }
        const AmpHours self_dis = selfDisAhPerSec_ * s.dt;
        const AmpHours delta = s.unitAhAfter - s.unitAhBefore;
        // Fault mechanisms (internal-short extra drain) remove charge
        // the strings never delivered; the plant reports the exact
        // amount, so the balance stays tight on fault runs too.
        const AmpHours expected =
            (s.chargeStoredAh - s.dischargeAh) * series_ -
            s.exogenousInTickAh;
        const AmpHours residual = delta - expected;
        if (residual > opts_.ahTolerance ||
            residual < -(self_dis + opts_.ahTolerance)) {
            report(s.now, "ah-conservation",
                   strf("delta=%.9f Ah expected=%.9f Ah residual=%.9f "
                        "Ah (self-discharge bound %.9f)",
                        delta, expected, residual, self_dis));
        }
        // Cross-tick continuity: nothing may move the inventory between
        // two physics ticks (control/telemetry events switch relays but
        // never touch charge) except declared fault injections (capacity
        // fade fires between ticks and drops bounded ampere-hours). This
        // is what catches out-of-band charge injection the per-tick
        // balance above cannot see.
        if (haveLastAh_ &&
            std::fabs(s.unitAhBefore -
                      (lastUnitAhAfter_ - s.exogenousPreTickAh)) >
                opts_.ahTolerance) {
            report(s.now, "ah-conservation",
                   strf("inventory jumped between ticks: %.9f Ah -> "
                        "%.9f Ah",
                        lastUnitAhAfter_, s.unitAhBefore));
        }
        lastUnitAhAfter_ = s.unitAhAfter;
        haveLastAh_ = true;
    }

    if (opts_.checkPowerFlow && s.config) {
        const Watts tol_w = 1e-6 * std::max(1.0, s.solarPower);
        if (s.directPower + s.chargePower > s.solarPower + tol_w) {
            report(s.now, "green-accounting",
                   strf("direct=%.3f W + charge=%.3f W > solar=%.3f W",
                        s.directPower, s.chargePower, s.solarPower));
        }
        if (s.directPower > s.loadPower + tol_w ||
            s.directPower < -tol_w) {
            report(s.now, "green-accounting",
                   strf("direct=%.3f W outside [0, load=%.3f W]",
                        s.directPower, s.loadPower));
        }
        if (s.bufferDischargePower < -1e-9) {
            report(s.now, "power-flow",
                   strf("negative buffer discharge %.6f W",
                        s.bufferDischargePower));
        }
        const Watts sec_cap =
            s.config->secondary ? s.config->secondary->capacity : 0.0;
        if (s.secondaryPower < -1e-9 ||
            s.secondaryPower > sec_cap + 1e-6) {
            report(s.now, "power-flow",
                   strf("secondary=%.3f W outside [0, %.3f W]",
                        s.secondaryPower, sec_cap));
        }
        const Watts supplied = s.directPower + s.bufferDischargePower +
                               s.secondaryPower;
        const bool expect_failed =
            s.loadPower > 1.0 &&
            supplied < s.loadPower * s.config->supplyTolerance;
        if (s.powerFailed != expect_failed) {
            report(s.now, "power-failure-flag",
                   strf("failed=%d but supplied=%.3f W load=%.3f W "
                        "tolerance=%.3f",
                        s.powerFailed ? 1 : 0, supplied, s.loadPower,
                        s.config->supplyTolerance));
        }
    }

    if (opts_.checkRequests && s.interactive) {
        // Exact request conservation: the 64-bit counters admit no
        // tolerance. Every arrival is finalised (served, cached, shed or
        // dropped) or still queued — faults included, since in-flight
        // drops are ground-truth accounted.
        const interactive::SloTracker &t = s.interactive->tracker();
        const std::uint64_t accounted =
            t.served() + t.cachedHits() + t.shed() + t.droppedTimeout() +
            t.droppedFault() + s.interactive->queued();
        if (accounted != t.arrived()) {
            report(s.now, "request-conservation",
                   strf("arrived=%llu != served=%llu + cached=%llu + "
                        "shed=%llu + timeout=%llu + fault=%llu + "
                        "queued=%llu",
                        static_cast<unsigned long long>(t.arrived()),
                        static_cast<unsigned long long>(t.served()),
                        static_cast<unsigned long long>(t.cachedHits()),
                        static_cast<unsigned long long>(t.shed()),
                        static_cast<unsigned long long>(
                            t.droppedTimeout()),
                        static_cast<unsigned long long>(
                            t.droppedFault()),
                        static_cast<unsigned long long>(
                            s.interactive->queued())));
        }
    }
}

void
InvariantChecker::checkCabinetRelays(unsigned i,
                                     const battery::Cabinet &cab,
                                     Seconds now)
{
    const bool cr = cab.chargeRelay().closed();
    const bool dr = cab.dischargeRelay().closed();
    if (cr && dr) {
        report(now, "relay-consistency",
               strf("cab%u charge and discharge relays both closed "
                    "(bus short)",
                    i));
        return;
    }
    bool ok = true;
    switch (cab.mode()) {
      case UnitMode::Offline:
      case UnitMode::Standby:
        ok = !cr && !dr;
        break;
      case UnitMode::Charging:
        ok = cr && !dr;
        break;
      case UnitMode::Discharging:
        ok = !cr && dr;
        break;
    }
    if (!ok) {
        report(now, "relay-consistency",
               strf("cab%u mode=%s but relays charge=%d discharge=%d",
                    i, battery::unitModeName(cab.mode()), cr, dr));
    }
}

void
InvariantChecker::onControl(const core::ControlSample &s)
{
    if (opts_.policy == Policy::Off || !s.view || !s.actions)
        return;
    ++controls_;
    const core::SystemView &view = *s.view;
    const core::ControlActions &act = *s.actions;

    if (!act.cabinetModes.empty() &&
        act.cabinetModes.size() != view.cabinets.size()) {
        report(view.now, "control-shape",
               strf("%zu cabinet modes for %zu cabinets",
                    act.cabinetModes.size(), view.cabinets.size()));
    }
    if (act.dutyCycle < -1e-9 || act.dutyCycle > 1.0 + 1e-9) {
        report(view.now, "control-shape",
               strf("duty cycle %.6f outside [0, 1]", act.dutyCycle));
    }
    for (unsigned idx : act.chargePlan.cabinets) {
        if (idx >= view.cabinets.size()) {
            report(view.now, "control-shape",
                   strf("charge plan names cab%u of %zu", idx,
                        view.cabinets.size()));
        }
    }

    // Fig. 10 concentration: with a concentrated (sequential-fill) plan,
    // at most N = P_G / P_PC cabinets charge at once. The bound mirrors
    // InsureManager::control exactly: the dispatchable average includes
    // the secondary feed, and the budget never falls below a quarter of
    // it (morning-charge behaviour).
    if (opts_.checkConcentration && !act.chargePlan.splitEvenly &&
        !act.chargePlan.cabinets.empty()) {
        const Watts avg = view.solarPowerAvg + view.secondaryCapacity;
        const Watts surplus = std::max(0.0, avg - view.loadPower);
        const Watts budget = std::max(surplus, avg * 0.25);
        const Watts peak = view.peakChargePower;
        std::size_t bound = 1;
        if (budget > 0.0 && peak > 0.0) {
            bound = std::max(
                1.0, std::floor(static_cast<double>(budget / peak)));
        }
        if (act.chargePlan.cabinets.size() > bound) {
            report(view.now, "charge-concentration",
                   strf("%zu cabinets charging, budget %.1f W / peak "
                        "%.1f W allows %zu",
                        act.chargePlan.cabinets.size(), budget, peak,
                        bound));
        }
        for (unsigned idx : act.chargePlan.cabinets) {
            if (idx < act.cabinetModes.size() &&
                act.cabinetModes[idx] != UnitMode::Charging) {
                report(view.now, "charge-concentration",
                       strf("planned cab%u commanded %s, not Charging",
                            idx,
                            battery::unitModeName(
                                act.cabinetModes[idx])));
            }
        }
    }

    // Eq-1 screening: offline cabinets re-enter only within the δD
    // discharge budget. The mirror reproduces SpatialManager exactly —
    // same screening schedule, same monotone on-demand relaxation — so a
    // manager re-admitting an over-budget cabinet is flagged.
    if (opts_.checkScreening &&
        act.cabinetModes.size() == view.cabinets.size()) {
        const core::SpatialParams &sp = opts_.spatial;
        const AmpHours daily =
            sp.lifetimeDischargeAh /
            (sp.desiredLifetimeYears * units::daysPerYear);
        const bool screen_step =
            view.now - lastScreen_ >= opts_.spatialPeriod;
        if (screen_step) {
            lastScreen_ = view.now;
            auto threshold = [&]() {
                return (view.now / units::secPerDay + sp.graceDays) *
                           daily +
                       relaxedBudgetAh_;
            };
            auto eligible = [&](AmpHours thr) {
                std::size_t n = 0;
                for (const auto &c : view.cabinets) {
                    if (c.dischargeThroughputAh < thr)
                        ++n;
                }
                return n;
            };
            AmpHours thr = threshold();
            std::size_t n = eligible(thr);
            while (sp.relaxThreshold && n < sp.minEligible &&
                   n < view.cabinets.size()) {
                relaxedBudgetAh_ += sp.relaxFraction * daily;
                thr = threshold();
                n = eligible(thr);
            }
            for (unsigned i = 0; i < view.cabinets.size(); ++i) {
                if (view.cabinets[i].mode != UnitMode::Offline ||
                    act.cabinetModes[i] == UnitMode::Offline)
                    continue;
                if (view.cabinets[i].dischargeThroughputAh >=
                    thr + 1e-9) {
                    report(view.now, "spatial-budget",
                           strf("cab%u re-admitted with AhT=%.3f >= "
                                "threshold %.3f Ah",
                                i,
                                view.cabinets[i].dischargeThroughputAh,
                                thr));
                }
            }
        } else {
            for (unsigned i = 0; i < view.cabinets.size(); ++i) {
                if (view.cabinets[i].mode == UnitMode::Offline &&
                    act.cabinetModes[i] != UnitMode::Offline) {
                    report(view.now, "spatial-budget",
                           strf("cab%u re-admitted outside a "
                                "screening step",
                                i));
                }
            }
        }
    }
}


void
InvariantChecker::saveState(snapshot::Archive &ar) const
{
    ar.section("invariant_checker");
    ar.putU64(violations_);
    ar.putU64(ticks_);
    ar.putU64(controls_);
    ar.putU64(transitions_);
    ar.putSize(messages_.size());
    for (const std::string &m : messages_)
        ar.putStr(m);
    ar.putF64(relaxedBudgetAh_);
    ar.putF64(lastScreen_);
    ar.putF64(lastUnitAhAfter_);
    ar.putBool(haveLastAh_);
    ar.putBool(haveDerived_);
    ar.putU32(series_);
    ar.putU32(totalUnits_);
    ar.putF64(selfDisAhPerSec_);
}

void
InvariantChecker::loadState(snapshot::Archive &ar)
{
    ar.section("invariant_checker");
    violations_ = ar.getU64();
    ticks_ = ar.getU64();
    controls_ = ar.getU64();
    transitions_ = ar.getU64();
    messages_.assign(ar.getSize(), std::string());
    for (std::string &m : messages_)
        m = ar.getStr();
    relaxedBudgetAh_ = ar.getF64();
    lastScreen_ = ar.getF64();
    lastUnitAhAfter_ = ar.getF64();
    haveLastAh_ = ar.getBool();
    haveDerived_ = ar.getBool();
    series_ = ar.getU32();
    totalUnits_ = ar.getU32();
    selfDisAhPerSec_ = ar.getF64();
}
} // namespace insure::validate
