#include "validate/golden_trace.hh"

#include "snapshot/archive.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace insure::validate {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(std::uint64_t h, const std::string &bytes)
{
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** The hashed/serialised payload of one record (everything but hash). */
std::string
payload(const GoldenRecord &r)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "\"i\":%llu,\"t\":%.1f,\"solar\":%.6f,\"load\":%.6f,"
                  "\"supplied\":%.6f,\"mean_soc\":%.6f,"
                  "\"stored_wh\":%.6f,\"vms\":%u,\"backlog_gb\":%.6f,"
                  "\"modes\":\"%s\"",
                  static_cast<unsigned long long>(r.index), r.t, r.solar,
                  r.load, r.supplied, r.meanSoc, r.storedWh, r.vms,
                  r.backlogGb, r.modes.c_str());
    return buf;
}

double
jsonNumber(const std::string &line, const char *key, std::size_t lineno)
{
    const std::string needle = std::string("\"") + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        fatal("golden: missing key '%s' at line %zu", key, lineno);
    return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

std::string
jsonString(const std::string &line, const char *key, std::size_t lineno)
{
    const std::string needle = std::string("\"") + key + "\":\"";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        fatal("golden: missing key '%s' at line %zu", key, lineno);
    const auto start = pos + needle.size();
    const auto end = line.find('"', start);
    if (end == std::string::npos)
        fatal("golden: unterminated string '%s' at line %zu", key, lineno);
    return line.substr(start, end - start);
}

} // namespace

GoldenRecorder::GoldenRecorder(Seconds period) : period_(period)
{
    if (period_ <= 0.0)
        fatal("GoldenRecorder: period must be positive");
    next_ = period_;
}

void
GoldenRecorder::onTick(const core::TickSample &s)
{
    if (s.now + 1e-9 < next_)
        return;
    next_ += period_;

    GoldenRecord r;
    r.index = records_.size();
    r.t = s.now;
    r.solar = s.solarPower;
    r.load = s.loadPower;
    r.supplied = s.directPower + s.bufferDischargePower +
                 s.secondaryPower;
    r.meanSoc = s.array ? s.array->meanSoc() : 0.0;
    r.storedWh = s.array ? s.array->storedEnergyWh() : 0.0;
    r.vms = s.activeVms;
    r.backlogGb = s.backlogGb;
    if (s.array) {
        for (unsigned i = 0; i < s.array->cabinetCount(); ++i)
            r.modes += battery::unitModeName(
                s.array->cabinet(i).mode())[0];
    }

    hash_ = fnv1a(hash_, payload(r));
    r.hash = hex64(hash_);
    records_.push_back(std::move(r));
}

std::string
GoldenRecorder::finalHash() const
{
    return records_.empty() ? std::string() : records_.back().hash;
}

void
GoldenRecorder::save(const std::string &path) const
{
    // Atomic: golden regeneration interrupted mid-write must never
    // leave a half-written reference file for later runs to diff.
    std::string out;
    for (const auto &r : records_)
        out += '{' + payload(r) + ",\"hash\":\"" + r.hash + "\"}\n";
    try {
        snapshot::atomicWriteFile(path, out);
    } catch (const snapshot::SnapshotError &e) {
        fatal("golden: cannot write '%s': %s", path.c_str(), e.what());
    }
}

std::vector<GoldenRecord>
GoldenRecorder::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("golden: cannot open '%s' for reading", path.c_str());
    std::vector<GoldenRecord> out;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        GoldenRecord r;
        r.index = static_cast<std::uint64_t>(
            jsonNumber(line, "i", lineno));
        r.t = jsonNumber(line, "t", lineno);
        r.solar = jsonNumber(line, "solar", lineno);
        r.load = jsonNumber(line, "load", lineno);
        r.supplied = jsonNumber(line, "supplied", lineno);
        r.meanSoc = jsonNumber(line, "mean_soc", lineno);
        r.storedWh = jsonNumber(line, "stored_wh", lineno);
        r.vms = static_cast<unsigned>(jsonNumber(line, "vms", lineno));
        r.backlogGb = jsonNumber(line, "backlog_gb", lineno);
        r.modes = jsonString(line, "modes", lineno);
        r.hash = jsonString(line, "hash", lineno);
        out.push_back(std::move(r));
    }
    return out;
}

GoldenMismatch
compareGolden(const std::vector<GoldenRecord> &golden,
              const std::vector<GoldenRecord> &actual, double tol)
{
    GoldenMismatch m;
    auto fail = [&](std::size_t i, std::string detail) {
        if (m.matched) {
            m.matched = false;
            m.record = i;
            m.detail = std::move(detail);
        }
    };
    if (golden.size() != actual.size()) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "record count %zu != golden %zu", actual.size(),
                      golden.size());
        fail(std::min(golden.size(), actual.size()), buf);
    }
    const std::size_t n = std::min(golden.size(), actual.size());
    for (std::size_t i = 0; i < n && m.matched; ++i) {
        const GoldenRecord &g = golden[i];
        const GoldenRecord &a = actual[i];
        auto num = [&](const char *field, double gv, double av) {
            if (std::fabs(gv - av) > tol) {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "t=%.1f field %s: %.6f != golden %.6f",
                              g.t, field, av, gv);
                fail(i, buf);
            }
        };
        num("t", g.t, a.t);
        num("solar", g.solar, a.solar);
        num("load", g.load, a.load);
        num("supplied", g.supplied, a.supplied);
        num("mean_soc", g.meanSoc, a.meanSoc);
        num("stored_wh", g.storedWh, a.storedWh);
        num("vms", g.vms, a.vms);
        num("backlog_gb", g.backlogGb, a.backlogGb);
        if (m.matched && g.modes != a.modes) {
            fail(i, "t=" + std::to_string(g.t) + " modes " + a.modes +
                        " != golden " + g.modes);
        }
    }
    m.hashIdentical = !golden.empty() && !actual.empty() &&
                      golden.back().hash == actual.back().hash &&
                      golden.size() == actual.size();
    return m;
}

std::vector<std::string>
goldenScenarioNames()
{
    return {"fig14_seismic_sunny", "fig16_video_cloudy"};
}

core::ExperimentConfig
goldenScenario(const std::string &name)
{
    if (name == "fig14_seismic_sunny") {
        core::ExperimentConfig cfg = core::seismicExperiment();
        cfg.day = solar::DayClass::Sunny;
        return cfg;
    }
    if (name == "fig16_video_cloudy") {
        core::ExperimentConfig cfg = core::videoExperiment();
        cfg.day = solar::DayClass::Cloudy;
        return cfg;
    }
    fatal("golden: unknown scenario '%s'", name.c_str());
}

std::vector<GoldenRecord>
recordGoldenRun(core::ExperimentConfig cfg, Seconds period)
{
    GoldenRecorder recorder(period);
    core::ObserverList observers;
    observers.add(&recorder);
    observers.add(cfg.observer);
    cfg.observerFactory = nullptr;
    cfg.observer = &observers;
    core::runExperiment(cfg);
    return recorder.records();
}


void
GoldenRecorder::saveState(snapshot::Archive &ar) const
{
    ar.section("golden_recorder");
    ar.putF64(next_);
    ar.putU64(hash_);
    ar.putSize(records_.size());
    for (const GoldenRecord &r : records_) {
        ar.putU64(r.index);
        ar.putF64(r.t);
        ar.putF64(r.solar);
        ar.putF64(r.load);
        ar.putF64(r.supplied);
        ar.putF64(r.meanSoc);
        ar.putF64(r.storedWh);
        ar.putU32(r.vms);
        ar.putF64(r.backlogGb);
        ar.putStr(r.modes);
        ar.putStr(r.hash);
    }
}

void
GoldenRecorder::loadState(snapshot::Archive &ar)
{
    ar.section("golden_recorder");
    next_ = ar.getF64();
    hash_ = ar.getU64();
    records_.assign(ar.getSize(), GoldenRecord{});
    for (GoldenRecord &r : records_) {
        r.index = ar.getU64();
        r.t = ar.getF64();
        r.solar = ar.getF64();
        r.load = ar.getF64();
        r.supplied = ar.getF64();
        r.meanSoc = ar.getF64();
        r.storedWh = ar.getF64();
        r.vms = ar.getU32();
        r.backlogGb = ar.getF64();
        r.modes = ar.getStr();
        r.hash = ar.getStr();
    }
}
} // namespace insure::validate
