#include "validate/fuzz.hh"

#include <cstdio>

#include "sim/rng.hh"

namespace insure::validate {

namespace {

const char *const kMicroBenchmarks[] = {"dedup", "x264", "wordcount",
                                        "sort"};

const char *
dayName(solar::DayClass day)
{
    switch (day) {
      case solar::DayClass::Sunny: return "sunny";
      case solar::DayClass::Cloudy: return "cloudy";
      case solar::DayClass::Rainy: return "rainy";
    }
    return "?";
}

} // namespace

FuzzCase
fuzzCaseFromSeed(std::uint64_t seed, Seconds duration)
{
    Rng rng(seed);
    FuzzCase fc;

    // Workload: the two case studies plus micro-benchmarks, equal odds.
    std::string workload;
    switch (rng.uniformInt(0, 3)) {
      case 0:
        fc.config = core::seismicExperiment();
        workload = "seismic";
        break;
      case 1:
        fc.config = core::videoExperiment();
        workload = "video";
        break;
      default: {
        workload = kMicroBenchmarks[rng.uniformInt(0, 3)];
        fc.config = core::microExperiment(workload);
        break;
      }
    }

    // Manager: full InSURE, No-Opt, one single ablation, or the baseline.
    std::string manager;
    switch (rng.uniformInt(0, 3)) {
      case 0:
        fc.config.manager = core::ManagerKind::Insure;
        manager = "insure";
        break;
      case 1:
        fc.config.manager = core::ManagerKind::Insure;
        fc.config.insure = core::InsureParams::noOpt();
        manager = "noopt";
        break;
      case 2: {
        fc.config.manager = core::ManagerKind::Insure;
        switch (rng.uniformInt(0, 2)) {
          case 0:
            fc.config.insure.disableTemporal = true;
            manager = "insure-notemporal";
            break;
          case 1:
            fc.config.insure.disableConcentration = true;
            manager = "insure-noconc";
            break;
          default:
            fc.config.insure.disableBalancing = true;
            manager = "insure-nobalance";
            break;
        }
        break;
      }
      default:
        fc.config.manager = core::ManagerKind::Baseline;
        manager = "baseline";
        break;
    }

    switch (rng.uniformInt(0, 2)) {
      case 0: fc.config.day = solar::DayClass::Sunny; break;
      case 1: fc.config.day = solar::DayClass::Cloudy; break;
      default: fc.config.day = solar::DayClass::Rainy; break;
    }

    fc.config.system.cabinetCount =
        static_cast<unsigned>(rng.uniformInt(2, 4));
    fc.config.system.nodeCount =
        static_cast<unsigned>(rng.uniformInt(2, 6));
    fc.config.system.initialSoc = rng.uniform(0.25, 0.90);
    if (rng.bernoulli(0.25)) {
        core::SecondaryPowerParams sp;
        sp.capacity = rng.uniform(300.0, 900.0);
        fc.config.system.secondary = sp;
    }
    if (rng.bernoulli(0.3))
        fc.config.targetDailyKwh = rng.uniform(2.0, 15.0);

    // The duration draw is last, so a shrinker override leaves every
    // other derived choice untouched.
    const Seconds derived = rng.uniform(2.0, 6.0) * 3600.0;
    fc.config.duration = duration > 0.0 ? duration : derived;
    fc.config.seed = seed;

    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "seed=%llu dur=%.0fs manager=%s workload=%s day=%s "
                  "cabinets=%u nodes=%u soc=%.2f sec=%.0f kwh=%.1f",
                  static_cast<unsigned long long>(seed),
                  fc.config.duration, manager.c_str(), workload.c_str(),
                  dayName(fc.config.day), fc.config.system.cabinetCount,
                  fc.config.system.nodeCount, fc.config.system.initialSoc,
                  fc.config.system.secondary
                      ? fc.config.system.secondary->capacity
                      : 0.0,
                  fc.config.targetDailyKwh ? *fc.config.targetDailyKwh
                                           : 0.0);
    fc.label = buf;
    return fc;
}

namespace {

/**
 * Halve the run length while the case still fails; returns the shortest
 * failing duration (and its violation evidence) found.
 */
FuzzFailure
shrinkFailure(std::uint64_t seed, Seconds failing_duration,
              std::uint64_t violations,
              std::vector<std::string> notes)
{
    FuzzFailure f;
    f.seed = seed;
    f.duration = failing_duration;
    f.violations = violations;
    f.notes = std::move(notes);
    Seconds dur = failing_duration;
    while (dur > 1200.0) {
        const Seconds half = dur / 2.0;
        FuzzCase fc = fuzzCaseFromSeed(seed, half);
        attachInvariantChecker(fc.config, Policy::Log);
        const core::ExperimentResult res = core::runExperiment(fc.config);
        if (res.invariantViolations == 0)
            break;
        dur = half;
        f.duration = half;
        f.violations = res.invariantViolations;
        f.notes = res.invariantNotes;
    }
    FuzzCase fc = fuzzCaseFromSeed(seed, f.duration);
    f.label = fc.label;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "fuzz repro: fuzzCaseFromSeed(%llu, %.0f)",
                  static_cast<unsigned long long>(seed), f.duration);
    f.repro = buf;
    return f;
}

} // namespace

FuzzReport
fuzzInvariants(const FuzzOptions &opts)
{
    Rng master(opts.masterSeed);
    std::vector<std::uint64_t> seeds;
    std::vector<core::RunSpec> specs;
    seeds.reserve(opts.runs);
    specs.reserve(opts.runs);
    for (std::size_t i = 0; i < opts.runs; ++i) {
        const std::uint64_t seed = master.splitSeed();
        FuzzCase fc = fuzzCaseFromSeed(seed, opts.duration);
        attachInvariantChecker(fc.config, Policy::Log);
        seeds.push_back(seed);
        specs.push_back({std::move(fc.label), std::move(fc.config)});
    }

    const harness::BatchRunner runner(opts.jobs);
    const std::vector<core::RunResult> results =
        runner.run(specs, opts.progress);

    FuzzReport report;
    report.runs = results.size();
    for (std::size_t i = 0; i < results.size(); ++i) {
        const core::RunResult &run = results[i];
        report.simulatedSeconds += run.simulatedSeconds;
        const std::uint64_t v = run.result.invariantViolations;
        if (v == 0)
            continue;
        ++report.failedRuns;
        report.totalViolations += v;
        if (report.failures.size() >= opts.maxFailures)
            continue;
        if (opts.shrink) {
            report.failures.push_back(
                shrinkFailure(seeds[i], specs[i].config.duration, v,
                              run.result.invariantNotes));
        } else {
            FuzzFailure f;
            f.seed = seeds[i];
            f.label = run.label;
            f.duration = specs[i].config.duration;
            f.violations = v;
            f.notes = run.result.invariantNotes;
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "fuzz repro: fuzzCaseFromSeed(%llu, %.0f)",
                          static_cast<unsigned long long>(seeds[i]),
                          f.duration);
            f.repro = buf;
            report.failures.push_back(std::move(f));
        }
    }
    return report;
}

std::string
formatFuzzReport(const FuzzReport &report)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "fuzz: %zu runs, %.1f sim-days, %zu failing, "
                  "%llu violations",
                  report.runs, report.simulatedSeconds / units::secPerDay,
                  report.failedRuns,
                  static_cast<unsigned long long>(report.totalViolations));
    std::string out = buf;
    for (const FuzzFailure &f : report.failures) {
        out += "\n  FAIL " + f.label;
        out += "\n    " + f.repro;
        for (const std::string &note : f.notes)
            out += "\n    " + note;
    }
    return out;
}

} // namespace insure::validate
