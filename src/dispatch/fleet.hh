/**
 * @file
 * Fleet driver: assembles a czar plus N workers and runs a distributed
 * campaign end to end.
 *
 * Two fleet modes behind one call:
 *
 *  - Thread: workers are std::threads talking to the czar over
 *    in-memory loopback pairs. No sockets, no processes — fully
 *    deterministic plumbing for tests and benches, including
 *    disposable-worker churn via per-worker run budgets.
 *
 *  - Process: workers are fork/exec'd insure_worker processes
 *    connecting back over TCP. This is the real deployment shape; the
 *    kill-one drill (SIGKILL a worker mid-campaign) exercises czar
 *    re-dispatch against an actual dead process.
 *
 * Workers are not respawned: the fleet the campaign starts with is all
 * it ever has (minus deaths). That matches the disposable-entity
 * design — recovering czar state, not worker state, is what matters.
 */

#ifndef INSURE_DISPATCH_FLEET_HH
#define INSURE_DISPATCH_FLEET_HH

#include <cstddef>
#include <string>
#include <vector>

#include "dispatch/czar.hh"
#include "dispatch/worker.hh"

namespace insure::dispatch {

/** How fleet workers are hosted. */
enum class FleetMode {
    Thread,
    Process,
};

/** Fleet assembly knobs. */
struct FleetOptions {
    FleetMode mode = FleetMode::Thread;
    /** Workers to start. */
    unsigned workers = 4;
    /** Czar policy (state dir, resume, chunking, liveness). */
    CzarOptions czar;
    /** Execution policy handed to every worker. */
    WorkerOptions worker;
    /**
     * Thread mode: per-worker run budgets (worker i exits after
     * budget[i] runs; missing or 0 entries = unlimited). Simulates
     * disposable-worker churn deterministically.
     */
    std::vector<std::size_t> threadWorkerMaxRuns;
    /**
     * Process mode: SIGKILL the first worker this many seconds after
     * launch (< 0 = no kill). The worker-death drill.
     */
    double killOneAfterSeconds = -1.0;
    /**
     * Process mode: the insure_worker executable. Empty selects the
     * build-time default (INSURE_WORKER_EXE).
     */
    std::string workerExe;
};

/**
 * Run @p spec on a fresh fleet. Throws std::runtime_error when the
 * fleet cannot be assembled (e.g. sockets unavailable in a sandbox —
 * process mode only) or the campaign loses every worker.
 */
fault::CampaignSummary runDistributedSweep(const SweepSpec &spec,
                                           const FleetOptions &opts);

} // namespace insure::dispatch

#endif // INSURE_DISPATCH_FLEET_HH
