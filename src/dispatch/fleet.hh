/**
 * @file
 * Fleet driver: assembles a czar plus a supervised worker fleet and
 * runs a distributed campaign end to end.
 *
 * Two fleet modes behind one call:
 *
 *  - Thread: workers are std::threads talking to the czar over
 *    in-memory loopback pairs. No sockets, no processes — fully
 *    deterministic plumbing for tests and benches, including
 *    disposable-worker churn via per-worker run budgets.
 *
 *  - Process: workers are fork/exec'd insure_worker processes
 *    connecting back over TCP. This is the real deployment shape; the
 *    kill-one drill (SIGKILL a worker mid-campaign) exercises czar
 *    re-dispatch against an actual dead process.
 *
 * Both modes run through the FleetSupervisor, which optionally
 * respawns dead workers (maxRespawns) and injects deterministic
 * transport chaos (chaos + chaosSeed) on every czar-side endpoint.
 * With the default options — no respawns, no chaos, no reconnects —
 * behaviour is exactly the pre-supervisor fleet: the campaign runs on
 * whatever survives.
 */

#ifndef INSURE_DISPATCH_FLEET_HH
#define INSURE_DISPATCH_FLEET_HH

#include <cstddef>
#include <string>
#include <vector>

#include "dispatch/czar.hh"
#include "dispatch/supervisor.hh"
#include "dispatch/worker.hh"

namespace insure::dispatch {

/** Fleet assembly knobs. */
struct FleetOptions {
    FleetMode mode = FleetMode::Thread;
    /** Workers to start. */
    unsigned workers = 4;
    /** Czar policy (state dir, resume, chunking, liveness). */
    CzarOptions czar;
    /** Execution policy handed to every worker. */
    WorkerOptions worker;
    /**
     * Thread mode: per-worker run budgets (worker i exits after
     * budget[i] runs; missing or 0 entries = unlimited). Simulates
     * disposable-worker churn deterministically.
     */
    std::vector<std::size_t> threadWorkerMaxRuns;
    /**
     * Process mode: SIGKILL the first worker this many seconds after
     * launch (< 0 = no kill). The worker-death drill.
     */
    double killOneAfterSeconds = -1.0;
    /**
     * Process mode: the insure_worker executable. Empty selects the
     * build-time default (INSURE_WORKER_EXE).
     */
    std::string workerExe;
    /** Fleet-wide respawn budget (0 = never respawn). */
    std::size_t maxRespawns = 0;
    /** Per-worker reconnect budget after unexpected stream loss. */
    std::size_t workerReconnects = 0;
    /** Transport chaos injected czar-side (default: none). */
    service::ChaosPlan chaos;
    /** Root seed for per-connection chaos streams. */
    std::uint64_t chaosSeed = kDefaultSeed;
};

/** Everything a drill wants to know about one distributed run. */
struct DistributedRunReport {
    fault::CampaignSummary summary;
    CzarStats czar;
    SupervisorStats supervisor;
};

/**
 * Run @p spec on a fresh fleet. Throws std::runtime_error when the
 * fleet cannot be assembled (e.g. sockets unavailable in a sandbox —
 * process mode only) or the campaign loses every worker for longer
 * than the czar's grace window.
 */
fault::CampaignSummary runDistributedSweep(const SweepSpec &spec,
                                           const FleetOptions &opts);

/** As runDistributedSweep, but with the full robustness ledger. */
DistributedRunReport runDistributedSweepReport(const SweepSpec &spec,
                                               const FleetOptions &opts);

} // namespace insure::dispatch

#endif // INSURE_DISPATCH_FLEET_HH
