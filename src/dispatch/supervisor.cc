#include "dispatch/supervisor.hh"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/logging.hh"

#ifndef INSURE_WORKER_EXE
#define INSURE_WORKER_EXE ""
#endif

namespace insure::dispatch {

struct FleetSupervisor::Impl {
    Czar &czar;
    SupervisorOptions opts;
    std::string exe;

    mutable std::mutex mu;
    SupervisorStats stats;
    std::size_t respawnsLeft = 0;
    std::uint64_t connIndex = 0;
    std::uint64_t nextWorkerIndex = 0;
    bool stopping = false;
    bool stopped = false;

    struct ThreadSlot {
        std::thread th;
    };
    /** Unique_ptr slots: pointer-stable across vector growth. */
    std::vector<std::unique_ptr<ThreadSlot>> threads;

    std::unique_ptr<service::TcpListener> listener;
    std::thread acceptor;
    std::thread monitor;
    std::vector<pid_t> livePids;

    std::shared_ptr<service::ChaosLedger> chaosLedger;

    Impl(Czar &c, SupervisorOptions o)
        : czar(c), opts(std::move(o)), respawnsLeft(opts.maxRespawns),
          chaosLedger(std::make_shared<service::ChaosLedger>())
    {
    }

    /** Chaos-wrap a czar-side endpoint with its own seed. Lock held. */
    std::unique_ptr<service::ByteStream>
    wrapLocked(std::unique_ptr<service::ByteStream> s)
    {
        const std::uint64_t seed =
            service::chaosConnectionSeed(opts.chaosSeed, connIndex++);
        ++stats.connections;
        return service::wrapWithChaos(std::move(s), opts.chaos, seed,
                                      chaosLedger);
    }

    /**
     * Thread-worker dial: a fresh loopback pair whose czar end (chaos-
     * wrapped) is adopted by the czar. Used for the initial connection
     * AND every worker-side reconnect — which is exactly why redial
     * works without sockets.
     */
    std::unique_ptr<service::ByteStream>
    dialThread()
    {
        std::unique_ptr<service::ByteStream> czarEnd, workerEnd;
        {
            const std::lock_guard<std::mutex> lock(mu);
            if (stopping)
                return nullptr;
            auto pair = service::makeLoopbackPair();
            czarEnd = wrapLocked(std::move(pair.first));
            workerEnd = std::move(pair.second);
        }
        czar.addWorker(std::move(czarEnd));
        return workerEnd;
    }

    void
    threadWorkerBody(std::uint64_t idx, WorkerOptions w)
    {
        ResilientWorkerOptions r;
        r.worker = std::move(w);
        r.connectRetries = opts.connectRetries;
        r.connectBackoffSeconds = opts.connectBackoffSeconds;
        r.connectBackoffCapSeconds = opts.connectBackoffCapSeconds;
        r.maxReconnects = opts.workerReconnects;
        // One jitter stream per worker: a fleet re-dialling a
        // recovering czar must not thunder in lockstep.
        r.backoffSeed = Rng(opts.workerSeed)
                            .deriveSeed(streams::kDispatchBackoff + idx);
        const ResilientWorkerReport report =
            runResilientWorker([this] { return dialThread(); }, r);
        onWorkerExit(report.lastExit == WorkerExit::Shutdown);
    }

    void
    spawnThreadLocked(std::size_t maxRuns)
    {
        const std::uint64_t idx = nextWorkerIndex++;
        ++stats.spawned;
        auto slot = std::make_unique<ThreadSlot>();
        ThreadSlot *raw = slot.get();
        threads.push_back(std::move(slot));
        WorkerOptions w = opts.worker;
        w.workerId = opts.worker.workerId + "-" + std::to_string(idx);
        w.maxRuns = maxRuns;
        raw->th = std::thread(
            [this, idx, w = std::move(w)]() mutable {
                threadWorkerBody(idx, std::move(w));
            });
    }

    void
    spawnProcessLocked()
    {
        const std::uint64_t idx = nextWorkerIndex++;
        ++stats.spawned;
        const std::string id =
            opts.worker.workerId + "-" + std::to_string(idx);
        const std::string port = std::to_string(listener->port());
        const std::uint64_t backoffSeed =
            Rng(opts.workerSeed)
                .deriveSeed(streams::kDispatchBackoff + idx);

        std::vector<std::string> args = {
            exe,           "--connect",     "127.0.0.1",
            "--port",      port,            "--id",
            id,            "--backoff-seed", std::to_string(backoffSeed),
        };
        const auto flag = [&](const char *name, const std::string &v) {
            args.push_back(name);
            args.push_back(v);
        };
        if (opts.worker.maxRuns > 0)
            flag("--max-runs", std::to_string(opts.worker.maxRuns));
        if (opts.worker.heartbeatSeconds > 0.0)
            flag("--heartbeat",
                 std::to_string(opts.worker.heartbeatSeconds));
        if (opts.worker.receiveDeadlineSeconds > 0.0)
            flag("--read-deadline",
                 std::to_string(opts.worker.receiveDeadlineSeconds));
        if (opts.connectRetries != 5)
            flag("--connect-retries",
                 std::to_string(opts.connectRetries));
        flag("--connect-backoff",
             std::to_string(opts.connectBackoffSeconds));
        if (opts.workerReconnects > 0)
            flag("--reconnect", std::to_string(opts.workerReconnects));

        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0)
            throw std::runtime_error("dispatch: fork failed");
        if (pid == 0) {
            ::execv(exe.c_str(), argv.data());
            _exit(127); // exec failed
        }
        livePids.push_back(pid);
    }

    void
    spawnLocked(std::size_t maxRuns)
    {
        if (opts.mode == FleetMode::Thread)
            spawnThreadLocked(maxRuns);
        else
            spawnProcessLocked();
    }

    /**
     * A worker exited. Replace it while the budget lasts — unless the
     * exit was a clean SHUTDOWN handshake (@p clean): the campaign is
     * over for that worker, and respawning would only spin up
     * replacements for a finished czar to shut down again, burning the
     * respawn budget in a pointless cascade at every campaign end.
     * Lock held.
     */
    void
    onWorkerExitLocked(bool clean)
    {
        ++stats.exited;
        if (stopping || clean)
            return;
        if (respawnsLeft > 0) {
            --respawnsLeft;
            ++stats.respawned;
            // Replacements never inherit a churn budget (see
            // SupervisorOptions::threadWorkerMaxRuns).
            spawnLocked(0);
        } else {
            // Drain mode: the survivors are all the fleet there is.
            ++stats.drained;
        }
    }

    void
    onWorkerExit(bool clean)
    {
        const std::lock_guard<std::mutex> lock(mu);
        onWorkerExitLocked(clean);
    }

    void
    acceptorLoop()
    {
        for (;;) {
            auto s = listener->accept();
            if (!s)
                return; // listener closed: shutting down
            std::unique_ptr<service::ByteStream> wrapped;
            {
                const std::lock_guard<std::mutex> lock(mu);
                wrapped = wrapLocked(std::move(s));
            }
            czar.addWorker(std::move(wrapped));
        }
    }

    /**
     * Reap worker processes as they exit (WNOHANG poll: waitpid(-1)
     * would steal children that are not ours). Keeps reaping after
     * stop() until every pid is collected.
     */
    void
    monitorLoop()
    {
        for (;;) {
            {
                const std::lock_guard<std::mutex> lock(mu);
                for (auto it = livePids.begin();
                     it != livePids.end();) {
                    int status = 0;
                    if (::waitpid(*it, &status, WNOHANG) == *it) {
                        it = livePids.erase(it);
                        // Exit 0 is the orderly path (SHUTDOWN
                        // received, or the worker retired after its
                        // own budgets): no respawn. Signals and
                        // nonzero exits are deaths worth replacing.
                        const bool clean = WIFEXITED(status) &&
                                           WEXITSTATUS(status) == 0;
                        onWorkerExitLocked(clean);
                    } else {
                        ++it;
                    }
                }
                if (stopping && livePids.empty())
                    return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    }

    void
    start()
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (opts.mode == FleetMode::Process) {
            exe = opts.workerExe.empty() ? std::string(INSURE_WORKER_EXE)
                                         : opts.workerExe;
            if (exe.empty())
                throw std::runtime_error(
                    "dispatch: no insure_worker executable configured");
            // Throws in sandboxes without sockets; callers skip on
            // that, same as the pre-supervisor fleet.
            listener = std::make_unique<service::TcpListener>(0);
            acceptor = std::thread([this] { acceptorLoop(); });
            monitor = std::thread([this] { monitorLoop(); });
            for (unsigned i = 0; i < opts.workers; ++i)
                spawnProcessLocked();
        } else {
            for (unsigned i = 0; i < opts.workers; ++i)
                spawnThreadLocked(i < opts.threadWorkerMaxRuns.size()
                                      ? opts.threadWorkerMaxRuns[i]
                                      : opts.worker.maxRuns);
        }
    }

    void
    stop()
    {
        {
            const std::lock_guard<std::mutex> lock(mu);
            if (stopped)
                return;
            stopped = true;
            stopping = true;
        }
        if (listener)
            listener->close();
        if (acceptor.joinable())
            acceptor.join();
        if (monitor.joinable())
            monitor.join();
        // Thread slots only ever grow and are pointer-stable; walk by
        // index, moving each thread out under the lock and joining
        // outside it (the dying worker needs mu for onWorkerExit).
        for (std::size_t i = 0;; ++i) {
            std::thread th;
            {
                const std::lock_guard<std::mutex> lock(mu);
                if (i >= threads.size())
                    break;
                th = std::move(threads[i]->th);
            }
            if (th.joinable())
                th.join();
        }
    }
};

FleetSupervisor::FleetSupervisor(Czar &czar, SupervisorOptions opts)
    : impl_(std::make_unique<Impl>(czar, std::move(opts)))
{
}

FleetSupervisor::~FleetSupervisor()
{
    impl_->stop();
}

void
FleetSupervisor::start()
{
    impl_->start();
}

void
FleetSupervisor::stop()
{
    impl_->stop();
}

SupervisorStats
FleetSupervisor::stats() const
{
    SupervisorStats s;
    {
        const std::lock_guard<std::mutex> lock(impl_->mu);
        s = impl_->stats;
    }
    // The ledger has its own lock; sampling it outside mu keeps the
    // lock order supervisor.mu -> ledger.mu one-way.
    s.chaos = impl_->chaosLedger->totals();
    return s;
}

std::vector<pid_t>
FleetSupervisor::pids() const
{
    const std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->livePids;
}

} // namespace insure::dispatch
