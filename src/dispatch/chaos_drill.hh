/**
 * @file
 * End-to-end chaos drills: prove the distributed campaign layer and
 * the digital-twin service produce byte-identical results under
 * deterministic transport chaos.
 *
 * Two drills, one discipline:
 *
 *  - runCampaignChaosDrill: for each chaos seed, run a distributed
 *    sweep on a supervised thread fleet whose every czar-side endpoint
 *    is chaos-wrapped (corruption, truncation, drops, duplicated and
 *    split writes, delays, stalls, Poisson disconnects), then compare
 *    the campaign summary JSON byte-for-byte against the chaos-free
 *    single-process oracle. Recovery is layered: FrameDecoder resync
 *    eats corrupted bytes, the czar evicts lease-stalled workers and
 *    re-dispatches, workers reconnect after dropped connections, and
 *    the FleetSupervisor respawns the dead. The drill reports honest
 *    accounting — retries, re-dispatches, respawns, resyncs and the
 *    injected-chaos ground truth — alongside the identity verdict.
 *
 *  - replayTwinChaos: replay a scripted traffic log against a live
 *    TwinServer through chaos-wrapped connections. The client arms a
 *    reply deadline; any attempt that fails (request or reply
 *    destroyed, deadline expired, connection chaos-cut) abandons the
 *    whole session and retries the op on a fresh connection — a stale
 *    reply from a poisoned session can then never pair with the wrong
 *    request. The reply byte vector must equal replayTwinSerial's.
 *    Frame DUPLICATION is deliberately excluded from the twin plan:
 *    the Modbus request/reply stream carries no sequence numbers, so a
 *    duplicated request legitimately produces a second reply and
 *    shifts the serial alignment. Duplication is exercised where the
 *    protocol dedupes (the campaign drill: the czar drops duplicate
 *    RESULTs by run identity) and in the decoder chaos suite.
 *
 * This lives in dispatch (not harness) because the campaign drill
 * needs the czar/supervisor stack and dispatch already links harness;
 * the reverse edge would be circular.
 */

#ifndef INSURE_DISPATCH_CHAOS_DRILL_HH
#define INSURE_DISPATCH_CHAOS_DRILL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dispatch/fleet.hh"
#include "harness/twin_driver.hh"
#include "service/chaos_stream.hh"

namespace insure::dispatch {

/** Knobs of the distributed-campaign chaos drill. */
struct CampaignDrillOptions {
    /** The campaign under test (default mirrors the dispatch tests). */
    SweepSpec spec;
    /** Chaos seeds to sweep: firstChaosSeed .. firstChaosSeed+seeds-1. */
    std::size_t seeds = 10;
    std::uint64_t firstChaosSeed = 1;
    /** Fleet shape per seed. */
    unsigned workers = 3;
    std::size_t chunkRuns = 3;
    /** The weather (per-connection budget bounds every storm). */
    service::ChaosPlan chaos = service::ChaosPlan::storm(48);
    /** Supervisor respawn budget per seed. */
    std::size_t maxRespawns = 6;
    /** Per-worker reconnect budget per seed. */
    std::size_t workerReconnects = 6;
    /** Czar liveness clocks (generous: sanitizers stretch wall time). */
    double workerTimeoutSeconds = 30.0;
    double leaseProgressTimeoutSeconds = 3.0;
    double allDeadGraceSeconds = 10.0;
    double heartbeatSeconds = 0.05;

    CampaignDrillOptions()
    {
        spec.runs = 8;
        spec.days = 0.05;
        spec.faultRatePerHour = 4.0;
        spec.masterSeed = 31337;
    }
};

/** One chaos seed's verdict and accounting. */
struct CampaignDrillSeedOutcome {
    std::uint64_t chaosSeed = 0;
    /** The campaign ran to completion under this seed's weather. */
    bool completed = false;
    /** Summary JSON byte-identical to the chaos-free oracle. */
    bool identical = false;
    /** Failure detail when !completed. */
    std::string error;
    CzarStats czar;
    SupervisorStats supervisor;
};

/** The drill's aggregate verdict. */
struct CampaignDrillReport {
    /** The chaos-free single-process summary JSON (the ground truth). */
    std::string oracleJson;
    std::vector<CampaignDrillSeedOutcome> outcomes;

    std::size_t completedSeeds() const;
    std::size_t identicalSeeds() const;
    /** Every seed completed AND produced byte-identical JSON. */
    bool passed() const;
};

/** Run the campaign drill (thread fleets; no sockets needed). */
CampaignDrillReport runCampaignChaosDrill(const CampaignDrillOptions &opts);

/** Drill report as JSON (one object; machine-checkable gate input). */
void writeCampaignDrillJson(const CampaignDrillReport &report,
                            std::ostream &os);

/** Knobs of the twin-service chaos replay. */
struct TwinChaosOptions {
    /**
     * The weather. duplicateRate is forcibly zeroed (see file comment:
     * the serial reply stream has no sequence numbers to dedupe on).
     */
    service::ChaosPlan chaos = service::ChaosPlan::storm(32);
    std::uint64_t chaosSeed = 1;
    /**
     * Reply deadline per attempt, seconds. An expiry poisons the
     * session: reconnect and resend rather than risk pairing a late
     * reply with the next request.
     */
    double replyDeadlineSeconds = 1.5;
    /** Attempts per op before the drill gives up (chaos budget should
     *  make this unreachable). */
    std::size_t maxAttemptsPerOp = 10;
};

/** Twin replay outcome and accounting. */
struct TwinChaosReport {
    /** Reply frame bytes per op, in op order (empty = op failed). */
    std::vector<std::vector<std::uint8_t>> replies;
    /** Every op got a reply within its attempt budget. */
    bool completed = false;
    /** Attempts beyond each op's first (timeouts + poisoned sessions). */
    std::uint64_t resends = 0;
    /** Connections opened beyond the first. */
    std::uint64_t reconnects = 0;
    /** Injected-chaos ground truth across every connection. */
    service::ChaosStats chaos;
};

/**
 * Replay @p ops against @p server through chaos-wrapped loopback
 * connections (one serveStream thread per connection, as production
 * serves TCP clients). Returns replies in op order for byte-comparison
 * against replayTwinSerial on the same log.
 */
TwinChaosReport replayTwinChaos(service::TwinServer &server,
                                const std::vector<harness::TwinOp> &ops,
                                const TwinChaosOptions &opts);

} // namespace insure::dispatch

#endif // INSURE_DISPATCH_CHAOS_DRILL_HH
