#include "dispatch/sweep_spec.hh"

#include <stdexcept>

#include "fault/fault_plan.hh"
#include "sim/units.hh"
#include "snapshot/archive.hh"

namespace insure::dispatch {

namespace {

/**
 * Bump when the SweepSpec wire grammar changes.
 * v2: interactive workload kind + information-battery knobs.
 */
constexpr std::uint32_t kSweepSpecVersion = 2;

void
putOptF64(snapshot::Archive &ar, const std::optional<double> &v)
{
    ar.putBool(v.has_value());
    if (v)
        ar.putF64(*v);
}

std::optional<double>
getOptF64(snapshot::Archive &ar)
{
    if (ar.getBool())
        return ar.getF64();
    return std::nullopt;
}

} // namespace

void
saveSweepSpec(snapshot::Archive &ar, const SweepSpec &spec)
{
    ar.section("sweep_spec");
    ar.putU32(kSweepSpecVersion);
    ar.putStr(spec.workload);
    ar.putEnum(spec.manager);
    ar.putEnum(spec.day);
    ar.putF64(spec.days);
    ar.putF64(spec.faultRatePerHour);
    ar.putSize(spec.faultClasses.size());
    for (const fault::FaultClass c : spec.faultClasses)
        ar.putEnum(c);
    ar.putEnum(spec.policy);
    ar.putSize(spec.policyGrid.size());
    for (const PolicyPoint &p : spec.policyGrid) {
        putOptF64(ar, p.dischargeBudgetAh);
        putOptF64(ar, p.socFloor);
        putOptF64(ar, p.chargedSoc);
        ar.putBool(p.minEligible.has_value());
        if (p.minEligible)
            ar.putU32(*p.minEligible);
    }
    ar.putU64(spec.runs);
    ar.putU64(spec.masterSeed);
    putOptF64(ar, spec.usersMillions);
    putOptF64(ar, spec.deadlineSeconds);
    putOptF64(ar, spec.surplusMarginW);
    putOptF64(ar, spec.minStoreToRide);
    ar.putBool(spec.maxPrecomputeVms.has_value());
    if (spec.maxPrecomputeVms)
        ar.putU32(*spec.maxPrecomputeVms);
}

SweepSpec
loadSweepSpec(snapshot::Archive &ar)
{
    ar.section("sweep_spec");
    const std::uint32_t version = ar.getU32();
    if (version != kSweepSpecVersion)
        throw snapshot::SnapshotError(
            "sweep spec: version " + std::to_string(version) +
            " != expected " + std::to_string(kSweepSpecVersion));
    SweepSpec spec;
    spec.workload = ar.getStr();
    spec.manager = ar.getEnum<core::ManagerKind>(
        static_cast<std::uint32_t>(core::ManagerKind::InfoBattery));
    spec.day = ar.getEnum<solar::DayClass>(
        static_cast<std::uint32_t>(solar::DayClass::Rainy));
    spec.days = ar.getF64();
    spec.faultRatePerHour = ar.getF64();
    spec.faultClasses.resize(ar.getSize());
    for (fault::FaultClass &c : spec.faultClasses)
        c = ar.getEnum<fault::FaultClass>(
            static_cast<std::uint32_t>(fault::FaultClass::Server));
    spec.policy = ar.getEnum<validate::Policy>(
        static_cast<std::uint32_t>(validate::Policy::Throw));
    spec.policyGrid.resize(ar.getSize());
    for (PolicyPoint &p : spec.policyGrid) {
        p.dischargeBudgetAh = getOptF64(ar);
        p.socFloor = getOptF64(ar);
        p.chargedSoc = getOptF64(ar);
        if (ar.getBool())
            p.minEligible = ar.getU32();
    }
    spec.runs = static_cast<std::size_t>(ar.getU64());
    spec.masterSeed = ar.getU64();
    spec.usersMillions = getOptF64(ar);
    spec.deadlineSeconds = getOptF64(ar);
    spec.surplusMarginW = getOptF64(ar);
    spec.minStoreToRide = getOptF64(ar);
    if (ar.getBool())
        spec.maxPrecomputeVms = ar.getU32();
    return spec;
}

fault::CampaignConfig
toCampaignConfig(const SweepSpec &spec)
{
    fault::CampaignConfig cfg;
    if (spec.workload == "seismic")
        cfg.base = core::seismicExperiment();
    else if (spec.workload == "video")
        cfg.base = core::videoExperiment();
    else if (spec.workload == "interactive")
        cfg.base = core::interactiveExperiment();
    else
        throw std::runtime_error("sweep spec: unknown workload '" +
                                 spec.workload + "'");
    cfg.base.manager = spec.manager;
    if (cfg.base.system.interactive) {
        if (spec.usersMillions)
            cfg.base.system.interactive->usersMillions =
                *spec.usersMillions;
        if (spec.deadlineSeconds)
            cfg.base.system.interactive->deadline = *spec.deadlineSeconds;
    }
    if (spec.surplusMarginW)
        cfg.base.infoBattery.surplusMarginW = *spec.surplusMarginW;
    if (spec.minStoreToRide)
        cfg.base.infoBattery.minStoreToRide = *spec.minStoreToRide;
    if (spec.maxPrecomputeVms)
        cfg.base.infoBattery.maxPrecomputeVms = *spec.maxPrecomputeVms;
    cfg.base.day = spec.day;
    cfg.base.duration = spec.days * units::secPerDay;
    cfg.plan = fault::makeRatePlan(spec.faultRatePerHour, spec.faultClasses);
    cfg.policy = spec.policy;
    cfg.runs = spec.runs;
    cfg.masterSeed = spec.masterSeed;
    if (!spec.policyGrid.empty()) {
        // Copy the grid into the closure: the config must stay valid
        // after the spec it came from is gone.
        cfg.perRunTweak = [grid = spec.policyGrid](
                              std::size_t i, core::ExperimentConfig &c) {
            const PolicyPoint &p = grid[i % grid.size()];
            if (p.dischargeBudgetAh)
                c.insure.spatial.lifetimeDischargeAh = *p.dischargeBudgetAh;
            if (p.socFloor)
                c.insure.temporal.socFloor = *p.socFloor;
            if (p.chargedSoc)
                c.insure.chargedSoc = *p.chargedSoc;
            if (p.minEligible)
                c.insure.spatial.minEligible = *p.minEligible;
        };
    }
    return cfg;
}

} // namespace insure::dispatch
