#include "dispatch/fleet.hh"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "sim/logging.hh"

#ifndef INSURE_WORKER_EXE
#define INSURE_WORKER_EXE ""
#endif

namespace insure::dispatch {

namespace {

fault::CampaignSummary
runThreadFleet(const SweepSpec &spec, const FleetOptions &opts)
{
    Czar czar(spec, opts.czar);
    std::vector<std::thread> threads;
    threads.reserve(opts.workers);
    // Keep the worker endpoints alive until their threads exit.
    std::vector<std::unique_ptr<service::ByteStream>> ends(opts.workers);
    for (unsigned i = 0; i < opts.workers; ++i) {
        auto [czarEnd, workerEnd] = service::makeLoopbackPair();
        czar.addWorker(std::move(czarEnd));
        ends[i] = std::move(workerEnd);
        WorkerOptions w = opts.worker;
        w.workerId = opts.worker.workerId + "-" + std::to_string(i);
        if (i < opts.threadWorkerMaxRuns.size())
            w.maxRuns = opts.threadWorkerMaxRuns[i];
        threads.emplace_back(
            [stream = ends[i].get(), w] { runWorker(*stream, w); });
    }
    fault::CampaignSummary summary;
    try {
        summary = czar.run();
    } catch (...) {
        for (auto &e : ends)
            e->close();
        for (auto &t : threads)
            t.join();
        throw;
    }
    for (auto &t : threads)
        t.join();
    return summary;
}

fault::CampaignSummary
runProcessFleet(const SweepSpec &spec, const FleetOptions &opts)
{
    std::string exe =
        opts.workerExe.empty() ? std::string(INSURE_WORKER_EXE)
                               : opts.workerExe;
    if (exe.empty())
        throw std::runtime_error(
            "dispatch: no insure_worker executable configured");

    // Throws std::runtime_error in sandboxes without sockets; the
    // caller (tests) skips on that.
    service::TcpListener listener(0);
    const std::string port = std::to_string(listener.port());

    std::vector<pid_t> pids;
    pids.reserve(opts.workers);
    for (unsigned i = 0; i < opts.workers; ++i) {
        const std::string id =
            opts.worker.workerId + "-" + std::to_string(i);
        const pid_t pid = ::fork();
        if (pid < 0)
            throw std::runtime_error("dispatch: fork failed");
        if (pid == 0) {
            ::execl(exe.c_str(), exe.c_str(), "--connect", "127.0.0.1",
                    "--port", port.c_str(), "--id", id.c_str(),
                    static_cast<char *>(nullptr));
            _exit(127); // exec failed
        }
        pids.push_back(pid);
    }

    Czar czar(spec, opts.czar);
    // Accept until every launched worker has connected (a worker that
    // dies before connecting would stall the acceptor; local forks of
    // our own binary connect promptly or not at all).
    std::thread acceptor([&] {
        for (unsigned i = 0; i < opts.workers; ++i) {
            auto stream = listener.accept();
            if (!stream)
                return; // listener closed (campaign ended early)
            czar.addWorker(std::move(stream));
        }
    });

    std::thread killer;
    if (opts.killOneAfterSeconds >= 0.0 && !pids.empty()) {
        killer = std::thread([pid = pids.front(),
                              delay = opts.killOneAfterSeconds] {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
            ::kill(pid, SIGKILL);
        });
    }

    fault::CampaignSummary summary;
    std::exception_ptr failure;
    try {
        summary = czar.run();
    } catch (...) {
        failure = std::current_exception();
    }
    listener.close();
    acceptor.join();
    if (killer.joinable())
        killer.join();
    for (const pid_t pid : pids) {
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    if (failure)
        std::rethrow_exception(failure);
    return summary;
}

} // namespace

fault::CampaignSummary
runDistributedSweep(const SweepSpec &spec, const FleetOptions &opts)
{
    if (opts.mode == FleetMode::Thread)
        return runThreadFleet(spec, opts);
    return runProcessFleet(spec, opts);
}

} // namespace insure::dispatch
