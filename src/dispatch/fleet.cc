#include "dispatch/fleet.hh"

#include <signal.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "sim/logging.hh"

namespace insure::dispatch {

namespace {

SupervisorOptions
toSupervisorOptions(const FleetOptions &opts)
{
    SupervisorOptions s;
    s.mode = opts.mode;
    s.workers = opts.workers;
    s.worker = opts.worker;
    s.threadWorkerMaxRuns = opts.threadWorkerMaxRuns;
    s.maxRespawns = opts.maxRespawns;
    s.workerReconnects = opts.workerReconnects;
    s.chaos = opts.chaos;
    s.chaosSeed = opts.chaosSeed;
    s.workerExe = opts.workerExe;
    return s;
}

} // namespace

DistributedRunReport
runDistributedSweepReport(const SweepSpec &spec, const FleetOptions &opts)
{
    Czar czar(spec, opts.czar);
    FleetSupervisor supervisor(czar, toSupervisorOptions(opts));
    supervisor.start();

    // The worker-death drill: SIGKILL one real process mid-campaign.
    std::thread killer;
    if (opts.mode == FleetMode::Process &&
        opts.killOneAfterSeconds >= 0.0) {
        killer = std::thread([&supervisor,
                              delay = opts.killOneAfterSeconds] {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
            const std::vector<pid_t> pids = supervisor.pids();
            if (!pids.empty())
                ::kill(pids.front(), SIGKILL);
        });
    }

    DistributedRunReport report;
    std::exception_ptr failure;
    try {
        report.summary = czar.run();
    } catch (...) {
        failure = std::current_exception();
    }
    if (killer.joinable())
        killer.join();
    supervisor.stop();
    report.czar = czar.stats();
    report.supervisor = supervisor.stats();
    if (failure)
        std::rethrow_exception(failure);
    return report;
}

fault::CampaignSummary
runDistributedSweep(const SweepSpec &spec, const FleetOptions &opts)
{
    return runDistributedSweepReport(spec, opts).summary;
}

} // namespace insure::dispatch
