/**
 * @file
 * Serializable description of a distributed fault campaign.
 *
 * A fault::CampaignConfig cannot cross a process boundary: it carries
 * std::function factories (observer, plant extension) bound to live
 * code. The dispatch layer therefore ships a compact SweepSpec — the
 * *recipe* for a campaign — and every process re-materialises the
 * actual CampaignConfig locally through toCampaignConfig(), which
 * builds run specs through the same fault::buildCampaignRunSpec() the
 * single-process sweep uses. Because materialisation is a pure function
 * of the spec, a run executed on a remote worker is bit-identical to
 * the same run executed by the in-process oracle.
 *
 * The wire encoding rides the snapshot::Archive byte grammar and is
 * versioned + fail-loud: a mismatched version or trailing bytes throw
 * SnapshotError, never mis-decode.
 */

#ifndef INSURE_DISPATCH_SWEEP_SPEC_HH
#define INSURE_DISPATCH_SWEEP_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/campaign.hh"
#include "solar/irradiance.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::dispatch {

/**
 * One point of a policy grid: optional overrides of the InSURE policy
 * knobs (the same four the what-if service exposes). Unset fields keep
 * the workload preset's value.
 */
struct PolicyPoint {
    /** Battery lifetime discharge budget, Ah. */
    std::optional<double> dischargeBudgetAh;
    /** Temporal-manager SoC floor. */
    std::optional<double> socFloor;
    /** SoC at which a charging cabinet is promoted to standby. */
    std::optional<double> chargedSoc;
    /** Minimum eligible cabinets before spatial screening engages. */
    std::optional<std::uint32_t> minEligible;

    bool operator==(const PolicyPoint &) const = default;
};

/** The recipe for a whole campaign (see file comment). */
struct SweepSpec {
    /** Workload preset: "seismic", "video" or "interactive". */
    std::string workload = "seismic";
    /** Policy under test. */
    core::ManagerKind manager = core::ManagerKind::Insure;
    /** Weather class of the generated solar day. */
    solar::DayClass day = solar::DayClass::Sunny;
    /** Run length in days. */
    double days = 1.0;
    /** Poisson fault rate per hour (0 = clean runs). */
    double faultRatePerHour = 0.0;
    /** Fault classes injected (empty = all classes). */
    std::vector<fault::FaultClass> faultClasses;
    /** Invariant policy attached to every run. */
    validate::Policy policy = validate::Policy::Log;
    /**
     * Policy grid, applied cyclically: run i gets grid[i % size].
     * Empty leaves every run on the workload preset.
     */
    std::vector<PolicyPoint> policyGrid;
    /** Seeded runs to execute. */
    std::size_t runs = 50;
    /** Master seed; per-run child seeds derive from it in run order. */
    std::uint64_t masterSeed = kDefaultSeed;

    // Interactive workload / information-battery knobs (wire version 2;
    // unset fields keep the preset's defaults). Only meaningful when
    // workload == "interactive".
    /** Override of RequestParams::usersMillions. */
    std::optional<double> usersMillions;
    /** Override of RequestParams::deadline, seconds. */
    std::optional<double> deadlineSeconds;
    /** Override of InfoBatteryParams::surplusMarginW. */
    std::optional<double> surplusMarginW;
    /** Override of InfoBatteryParams::minStoreToRide. */
    std::optional<double> minStoreToRide;
    /** Override of InfoBatteryParams::maxPrecomputeVms. */
    std::optional<std::uint32_t> maxPrecomputeVms;

    bool operator==(const SweepSpec &) const = default;
};

/** Serialize @p spec (versioned; see loadSweepSpec). */
void saveSweepSpec(snapshot::Archive &ar, const SweepSpec &spec);

/**
 * Decode a SweepSpec. Throws snapshot::SnapshotError on version
 * mismatch, unknown enum value or truncation.
 */
SweepSpec loadSweepSpec(snapshot::Archive &ar);

/**
 * Materialise the campaign this spec describes. Pure: two processes
 * calling this on equal specs build campaigns whose run i is
 * bit-identical. Throws std::runtime_error on an unknown workload name.
 * The returned config has no progress hook and default (non-resilient)
 * execution options; callers layer those on locally.
 */
fault::CampaignConfig toCampaignConfig(const SweepSpec &spec);

} // namespace insure::dispatch

#endif // INSURE_DISPATCH_SWEEP_SPEC_HH
