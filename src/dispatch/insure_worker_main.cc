/**
 * @file
 * Disposable campaign worker process.
 *
 *   insure_worker --connect HOST --port PORT [--id NAME]
 *                 [--max-runs N] [--heartbeat SECONDS]
 *                 [--watchdog WALL_SECONDS] [--retries N]
 *                 [--connect-retries N] [--connect-backoff SECONDS]
 *                 [--reconnect N] [--read-deadline SECONDS]
 *                 [--backoff-seed SEED]
 *
 * Connects to a campaign czar (with bounded, exponentially backed-off
 * connect retries — a worker that boots before its czar must not exit
 * permanently on the first ECONNREFUSED), executes leased runs, and
 * streams results back. A SHUTDOWN frame from the czar ends it
 * cleanly; an unexpected stream loss is answered with up to
 * --reconnect re-dials and a fresh HELLO. Holds no campaign state:
 * kill -9 at any instant costs only in-flight work, which the czar
 * re-dispatches to surviving workers.
 *
 * Exit codes: 0 orderly (shutdown / EOF / budget), 1 protocol error,
 * 2 czar never reachable.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dispatch/worker.hh"

using namespace insure;

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    int port = 0;
    dispatch::ResilientWorkerOptions opts;
    opts.worker.workerId = "insure-worker";

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--connect") == 0) {
            host = value();
        } else if (std::strcmp(arg, "--port") == 0) {
            port = std::atoi(value());
        } else if (std::strcmp(arg, "--id") == 0) {
            opts.worker.workerId = value();
        } else if (std::strcmp(arg, "--max-runs") == 0) {
            opts.worker.maxRuns =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (std::strcmp(arg, "--heartbeat") == 0) {
            opts.worker.heartbeatSeconds = std::atof(value());
        } else if (std::strcmp(arg, "--watchdog") == 0) {
            opts.worker.runOpts.watchdogSeconds = std::atof(value());
        } else if (std::strcmp(arg, "--retries") == 0) {
            opts.worker.runOpts.maxRetries =
                static_cast<unsigned>(std::atoi(value()));
        } else if (std::strcmp(arg, "--connect-retries") == 0) {
            opts.connectRetries =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (std::strcmp(arg, "--connect-backoff") == 0) {
            opts.connectBackoffSeconds = std::atof(value());
        } else if (std::strcmp(arg, "--reconnect") == 0) {
            opts.maxReconnects =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (std::strcmp(arg, "--read-deadline") == 0) {
            opts.worker.receiveDeadlineSeconds = std::atof(value());
        } else if (std::strcmp(arg, "--backoff-seed") == 0) {
            opts.backoffSeed =
                static_cast<std::uint64_t>(std::strtoull(value(),
                                                         nullptr, 10));
        } else {
            std::fprintf(
                stderr,
                "usage: %s --connect HOST --port PORT [--id NAME] "
                "[--max-runs N] [--heartbeat S] [--watchdog S] "
                "[--retries N] [--connect-retries N] "
                "[--connect-backoff S] [--reconnect N] "
                "[--read-deadline S] [--backoff-seed SEED]\n",
                argv[0]);
            return 2;
        }
    }
    if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "--port must be 1..65535\n");
        return 2;
    }

    const dispatch::ResilientWorkerReport report =
        dispatch::runResilientWorker(
            dispatch::makeTcpDialer(host,
                                    static_cast<std::uint16_t>(port)),
            opts);
    if (report.neverConnected)
        std::fprintf(stderr, "cannot connect to %s:%d\n", host.c_str(),
                     port);
    return report.exitCode();
}
