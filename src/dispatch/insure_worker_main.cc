/**
 * @file
 * Disposable campaign worker process.
 *
 *   insure_worker --connect HOST --port PORT [--id NAME]
 *                 [--max-runs N] [--heartbeat SECONDS]
 *                 [--watchdog WALL_SECONDS] [--retries N]
 *
 * Connects to a campaign czar, executes leased runs, streams results
 * back, and exits when the czar closes the connection. Holds no
 * campaign state: kill -9 at any instant costs only in-flight work,
 * which the czar re-dispatches to surviving workers.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dispatch/worker.hh"
#include "service/transport.hh"

using namespace insure;

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    int port = 0;
    dispatch::WorkerOptions opts;
    opts.workerId = "insure-worker";

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--connect") == 0) {
            host = value();
        } else if (std::strcmp(arg, "--port") == 0) {
            port = std::atoi(value());
        } else if (std::strcmp(arg, "--id") == 0) {
            opts.workerId = value();
        } else if (std::strcmp(arg, "--max-runs") == 0) {
            opts.maxRuns = static_cast<std::size_t>(std::atoll(value()));
        } else if (std::strcmp(arg, "--heartbeat") == 0) {
            opts.heartbeatSeconds = std::atof(value());
        } else if (std::strcmp(arg, "--watchdog") == 0) {
            opts.runOpts.watchdogSeconds = std::atof(value());
        } else if (std::strcmp(arg, "--retries") == 0) {
            opts.runOpts.maxRetries =
                static_cast<unsigned>(std::atoi(value()));
        } else {
            std::fprintf(stderr,
                         "usage: %s --connect HOST --port PORT [--id "
                         "NAME] [--max-runs N] [--heartbeat S] "
                         "[--watchdog S] [--retries N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "--port must be 1..65535\n");
        return 2;
    }

    std::unique_ptr<service::ByteStream> stream;
    try {
        stream = service::tcpConnect(host,
                                     static_cast<std::uint16_t>(port));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cannot connect to %s:%d: %s\n",
                     host.c_str(), port, e.what());
        return 1;
    }
    return dispatch::runWorker(*stream, opts);
}
