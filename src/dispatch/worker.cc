#include "dispatch/worker.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "dispatch/protocol.hh"
#include "fault/campaign.hh"
#include "service/framing.hh"
#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::dispatch {

namespace {

/** Periodic HEARTBEAT sender (the run loop is busy simulating). */
class HeartbeatThread
{
  public:
    HeartbeatThread(service::ByteStream &stream, std::mutex &sendMutex,
                    const std::atomic<std::uint64_t> &runsCompleted,
                    double periodSeconds)
        : stream_(stream), sendMutex_(sendMutex),
          runsCompleted_(runsCompleted)
    {
        if (periodSeconds <= 0.0)
            return;
        thread_ = std::thread([this, periodSeconds] {
            std::unique_lock<std::mutex> lock(mu_);
            while (!stop_) {
                cv_.wait_for(lock, std::chrono::duration<double>(
                                       periodSeconds));
                if (stop_)
                    return;
                HeartbeatMsg msg;
                msg.runsCompleted = runsCompleted_.load();
                const std::lock_guard<std::mutex> send(sendMutex_);
                stream_.send(encodeHeartbeat(msg));
            }
        });
    }

    ~HeartbeatThread()
    {
        {
            const std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
            cv_.notify_all();
        }
        if (thread_.joinable())
            thread_.join();
    }

  private:
    service::ByteStream &stream_;
    std::mutex &sendMutex_;
    const std::atomic<std::uint64_t> &runsCompleted_;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace

int
runWorker(service::ByteStream &stream, const WorkerOptions &opts)
{
    std::mutex sendMutex;
    std::atomic<std::uint64_t> runsCompleted{0};
    HeartbeatThread heartbeat(stream, sendMutex, runsCompleted,
                              opts.heartbeatSeconds);

    {
        HelloMsg hello;
        hello.workerId = opts.workerId;
        const std::lock_guard<std::mutex> lock(sendMutex);
        if (!stream.send(encodeHello(hello)))
            return 1;
    }

    harness::ResilientRunner runner(opts.runOpts);

    // The campaign config is a pure function of the sweep spec, so one
    // materialisation serves every lease of the same campaign.
    std::optional<SweepSpec> cachedSpec;
    std::optional<fault::CampaignConfig> cachedCfg;

    service::FrameDecoder decoder;
    std::uint8_t buf[4096];
    for (;;) {
        const std::size_t n = stream.receive(buf, sizeof buf);
        if (n == 0)
            return 0; // czar is done with us
        decoder.feed(buf, n);
        while (auto frame = decoder.next()) {
            LeaseMsg lease;
            try {
                lease = decodeLease(*frame);
            } catch (const std::exception &e) {
                warn("worker %s: bad frame from czar: %s",
                     opts.workerId.c_str(), e.what());
                stream.close();
                return 1;
            }
            if (!cachedCfg || !(*cachedSpec == lease.spec)) {
                try {
                    cachedCfg = toCampaignConfig(lease.spec);
                } catch (const std::exception &e) {
                    warn("worker %s: unusable sweep spec: %s",
                         opts.workerId.c_str(), e.what());
                    stream.close();
                    return 1;
                }
                cachedSpec = lease.spec;
            }
            for (const LeasedRun &r : lease.runs) {
                const auto idx = static_cast<std::size_t>(r.index);
                core::RunSpec spec =
                    fault::buildCampaignRunSpec(*cachedCfg, idx);
                spec.config.seed = r.seed;
                ResultMsg msg;
                msg.index = r.index;
                msg.leaseSeed = r.seed;
                msg.result = runner.runOne(spec, idx);
                {
                    const std::lock_guard<std::mutex> lock(sendMutex);
                    if (!stream.send(encodeResult(msg)))
                        return 0; // czar gone; nothing left to serve
                }
                const std::uint64_t total = ++runsCompleted;
                if (opts.maxRuns > 0 && total >= opts.maxRuns) {
                    // Disposable-worker drill: drop the connection,
                    // abandoning the rest of the lease mid-flight.
                    stream.close();
                    return 0;
                }
            }
        }
    }
}

} // namespace insure::dispatch
