#include "dispatch/worker.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "dispatch/protocol.hh"
#include "fault/campaign.hh"
#include "service/framing.hh"
#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::dispatch {

namespace {

/** Periodic HEARTBEAT sender (the run loop is busy simulating). */
class HeartbeatThread
{
  public:
    HeartbeatThread(service::ByteStream &stream, std::mutex &sendMutex,
                    const std::atomic<std::uint64_t> &runsCompleted,
                    double periodSeconds)
        : stream_(stream), sendMutex_(sendMutex),
          runsCompleted_(runsCompleted)
    {
        if (periodSeconds <= 0.0)
            return;
        thread_ = std::thread([this, periodSeconds] {
            std::unique_lock<std::mutex> lock(mu_);
            while (!stop_) {
                cv_.wait_for(lock, std::chrono::duration<double>(
                                       periodSeconds));
                if (stop_)
                    return;
                HeartbeatMsg msg;
                msg.runsCompleted = runsCompleted_.load();
                const std::lock_guard<std::mutex> send(sendMutex_);
                stream_.send(encodeHeartbeat(msg));
            }
        });
    }

    ~HeartbeatThread()
    {
        {
            const std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
            cv_.notify_all();
        }
        if (thread_.joinable())
            thread_.join();
    }

  private:
    service::ByteStream &stream_;
    std::mutex &sendMutex_;
    const std::atomic<std::uint64_t> &runsCompleted_;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * Backoff before retry @p attempt (0-based): base * 2^attempt, capped,
 * then jittered by a uniform factor in [0.5, 1.5). ldexp instead of a
 * shift so attempt counts past 62 saturate instead of overflowing.
 */
double
backoffDelay(double base, double cap, std::size_t attempt, Rng &jitter)
{
    const double raw =
        base * std::ldexp(1.0, static_cast<int>(std::min<std::size_t>(
                                   attempt, 62)));
    return std::min(raw, cap) * jitter.uniform(0.5, 1.5);
}

} // namespace

const char *
workerExitName(WorkerExit e)
{
    switch (e) {
    case WorkerExit::Shutdown:
        return "shutdown";
    case WorkerExit::StreamLost:
        return "stream-lost";
    case WorkerExit::BudgetSpent:
        return "budget-spent";
    case WorkerExit::ProtocolError:
        return "protocol-error";
    }
    return "unknown";
}

WorkerSessionResult
runWorkerSession(service::ByteStream &stream, const WorkerOptions &opts)
{
    std::mutex sendMutex;
    std::atomic<std::uint64_t> runsCompleted{0};
    HeartbeatThread heartbeat(stream, sendMutex, runsCompleted,
                              opts.heartbeatSeconds);

    const auto finish = [&](WorkerExit exit) {
        return WorkerSessionResult{exit, runsCompleted.load()};
    };

    if (opts.receiveDeadlineSeconds > 0.0)
        stream.setReceiveDeadline(opts.receiveDeadlineSeconds);

    {
        HelloMsg hello;
        hello.workerId = opts.workerId;
        const std::lock_guard<std::mutex> lock(sendMutex);
        if (!stream.send(encodeHello(hello)))
            return finish(WorkerExit::StreamLost);
    }

    harness::ResilientRunner runner(opts.runOpts);

    // The campaign config is a pure function of the sweep spec, so one
    // materialisation serves every lease of the same campaign.
    std::optional<SweepSpec> cachedSpec;
    std::optional<fault::CampaignConfig> cachedCfg;

    service::FrameDecoder decoder;
    std::uint8_t buf[4096];
    for (;;) {
        const std::size_t n = stream.receive(buf, sizeof buf);
        if (n == 0)
            return finish(WorkerExit::StreamLost);
        decoder.feed(buf, n);
        while (auto frame = decoder.next()) {
            if (frame->type == service::FrameType::Shutdown) {
                try {
                    decodeShutdown(*frame);
                } catch (const std::exception &e) {
                    warn("worker %s: bad SHUTDOWN from czar: %s",
                         opts.workerId.c_str(), e.what());
                    stream.close();
                    return finish(WorkerExit::ProtocolError);
                }
                stream.close();
                return finish(WorkerExit::Shutdown);
            }
            LeaseMsg lease;
            try {
                lease = decodeLease(*frame);
            } catch (const std::exception &e) {
                warn("worker %s: bad frame from czar: %s",
                     opts.workerId.c_str(), e.what());
                stream.close();
                return finish(WorkerExit::ProtocolError);
            }
            if (!cachedCfg || !(*cachedSpec == lease.spec)) {
                try {
                    cachedCfg = toCampaignConfig(lease.spec);
                } catch (const std::exception &e) {
                    warn("worker %s: unusable sweep spec: %s",
                         opts.workerId.c_str(), e.what());
                    stream.close();
                    return finish(WorkerExit::ProtocolError);
                }
                cachedSpec = lease.spec;
            }
            for (const LeasedRun &r : lease.runs) {
                const auto idx = static_cast<std::size_t>(r.index);
                core::RunSpec spec =
                    fault::buildCampaignRunSpec(*cachedCfg, idx);
                spec.config.seed = r.seed;
                ResultMsg msg;
                msg.index = r.index;
                msg.leaseSeed = r.seed;
                msg.result = runner.runOne(spec, idx);
                {
                    const std::lock_guard<std::mutex> lock(sendMutex);
                    if (!stream.send(encodeResult(msg)))
                        return finish(WorkerExit::StreamLost);
                }
                const std::uint64_t total = ++runsCompleted;
                if (opts.maxRuns > 0 && total >= opts.maxRuns) {
                    // Disposable-worker drill: drop the connection,
                    // abandoning the rest of the lease mid-flight.
                    stream.close();
                    return finish(WorkerExit::BudgetSpent);
                }
            }
        }
    }
}

int
runWorker(service::ByteStream &stream, const WorkerOptions &opts)
{
    const WorkerSessionResult r = runWorkerSession(stream, opts);
    // The one-shot contract predates WorkerExit: every orderly end —
    // shutdown, EOF, spent budget — is 0; only protocol errors are 1.
    return r.exit == WorkerExit::ProtocolError ? 1 : 0;
}

Dialer
makeTcpDialer(std::string host, std::uint16_t port)
{
    return [host = std::move(host), port]()
               -> std::unique_ptr<service::ByteStream> {
        try {
            return service::tcpConnect(host, port);
        } catch (const std::exception &) {
            return nullptr; // czar not up (yet); the caller backs off
        }
    };
}

int
ResilientWorkerReport::exitCode() const
{
    if (neverConnected)
        return 2;
    return lastExit == WorkerExit::ProtocolError ? 1 : 0;
}

ResilientWorkerReport
runResilientWorker(const Dialer &dial, const ResilientWorkerOptions &opts)
{
    ResilientWorkerReport rep;
    Rng jitter = Rng(opts.backoffSeed).derive(streams::kDispatchBackoff);
    std::size_t reconnectsLeft = opts.maxReconnects;
    bool everConnected = false;

    for (;;) {
        std::unique_ptr<service::ByteStream> stream;
        const std::size_t tries =
            std::max<std::size_t>(1, opts.connectRetries);
        for (std::size_t attempt = 0; attempt < tries; ++attempt) {
            if (attempt > 0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoffDelay(
                        opts.connectBackoffSeconds,
                        opts.connectBackoffCapSeconds, attempt - 1,
                        jitter)));
            ++rep.connectAttempts;
            stream = dial();
            if (stream)
                break;
        }
        if (!stream) {
            rep.neverConnected = !everConnected;
            warn("worker %s: czar unreachable after %zu attempts",
                 opts.worker.workerId.c_str(), tries);
            return rep;
        }
        everConnected = true;

        // The churn budget spans sessions: hand the session only what
        // remains, so reconnecting cannot reset a drill's budget.
        WorkerOptions w = opts.worker;
        if (w.maxRuns > 0) {
            if (rep.runsCompleted >= w.maxRuns) {
                rep.lastExit = WorkerExit::BudgetSpent;
                stream->close();
                return rep;
            }
            w.maxRuns -= static_cast<std::size_t>(rep.runsCompleted);
        }

        const WorkerSessionResult r = runWorkerSession(*stream, w);
        rep.runsCompleted += r.runsCompleted;
        rep.lastExit = r.exit;
        if (r.exit != WorkerExit::StreamLost)
            return rep;
        if (reconnectsLeft == 0)
            return rep;
        --reconnectsLeft;
        ++rep.reconnects;
    }
}

} // namespace insure::dispatch
