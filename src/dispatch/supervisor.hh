/**
 * @file
 * Fleet supervisor: keeps a czar's worker fleet alive under failure.
 *
 * The original fleet driver spawned N workers and never looked back —
 * the campaign ran on whatever survived. The supervisor closes the
 * ROADMAP's respawn follow-on: it watches every worker it spawned
 * (threads in Thread mode, fork/exec'd insure_worker processes in
 * Process mode) and replaces the ones that die, up to a fleet-wide
 * respawn budget. When the budget is spent the fleet degrades to
 * "drain" mode — survivors finish the campaign, nothing new is
 * spawned — so a crash loop can never fork-bomb the host.
 *
 * The supervisor is also where transport chaos is injected: every
 * czar-side endpoint it adopts (loopback pair end or accepted TCP
 * stream) is wrapped in a ChaosStream seeded per-connection from the
 * plan seed. Wrapping the czar side covers both directions — the
 * wrapper's send path mangles czar-to-worker traffic and its receive
 * path mangles worker-to-czar traffic — and works identically for
 * thread and process fleets, with no worker-side changes.
 *
 * Recovery layering (who handles what):
 *  - transport chaos / dropped frames  -> FrameDecoder resync + czar
 *    lease-progress eviction + re-dispatch
 *  - lost connection, live worker      -> worker-side reconnect
 *    (runResilientWorker re-dials and re-HELLOs)
 *  - dead worker                       -> supervisor respawn
 *  - czar death                        -> journal + result files
 *    (PR-5 resume), outside this file's scope
 */

#ifndef INSURE_DISPATCH_SUPERVISOR_HH
#define INSURE_DISPATCH_SUPERVISOR_HH

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dispatch/czar.hh"
#include "dispatch/worker.hh"
#include "service/chaos_stream.hh"

namespace insure::dispatch {

/** How fleet workers are hosted. */
enum class FleetMode {
    Thread,
    Process,
};

/** Supervisor policy knobs. */
struct SupervisorOptions {
    FleetMode mode = FleetMode::Thread;
    /** Initial fleet size. */
    unsigned workers = 4;
    /** Base policy handed to every worker (id gets a -N suffix). */
    WorkerOptions worker;
    /** Connect attempts per dial sequence (see ResilientWorkerOptions). */
    std::size_t connectRetries = 5;
    /** Base connect backoff, seconds. */
    double connectBackoffSeconds = 0.05;
    /** Connect backoff ceiling, seconds. */
    double connectBackoffCapSeconds = 2.0;
    /** Per-worker reconnect budget after an unexpected stream loss. */
    std::size_t workerReconnects = 0;
    /** Root seed for per-worker backoff jitter streams. */
    std::uint64_t workerSeed = kDefaultSeed;
    /**
     * Thread mode: per-worker run budgets for the INITIAL fleet
     * (worker i exits after budget[i] runs; missing or 0 entries =
     * unlimited). Respawned replacements are always unlimited — a
     * budget-churned worker replaced with an identical budget would
     * churn forever.
     */
    std::vector<std::size_t> threadWorkerMaxRuns;
    /**
     * Fleet-wide respawn budget: total replacement workers that may be
     * spawned over the campaign (0 = never respawn, the pre-supervisor
     * behaviour).
     */
    std::size_t maxRespawns = 0;
    /** Chaos injected on every czar-side endpoint (default: none). */
    service::ChaosPlan chaos;
    /** Root seed for per-connection chaos streams. */
    std::uint64_t chaosSeed = kDefaultSeed;
    /**
     * Process mode: the insure_worker executable. Empty selects the
     * build-time default (INSURE_WORKER_EXE).
     */
    std::string workerExe;
};

/** Supervisor-lifetime accounting. */
struct SupervisorStats {
    /** Workers spawned in total (initial fleet + respawns). */
    std::uint64_t spawned = 0;
    /** Replacement workers spawned after a death. */
    std::uint64_t respawned = 0;
    /** Worker exits observed (thread returns / processes reaped). */
    std::uint64_t exited = 0;
    /**
     * Abnormal exits NOT replaced because the respawn budget was
     * spent. Clean exits (SHUTDOWN handshake / orderly retirement)
     * count in `exited` only: respawning for a finished czar to shut
     * down again would just burn the budget at every campaign end.
     */
    std::uint64_t drained = 0;
    /** Czar-side endpoints adopted (= chaos connection seeds used). */
    std::uint64_t connections = 0;
    /**
     * Chaos ground truth accumulated across every wrapped connection
     * (flushed as streams close/die; complete once stop() returns).
     */
    service::ChaosStats chaos;
};

/**
 * Owns the fleet for one campaign: spawn with start(), run the czar,
 * then stop(). stop() is also called by the destructor; it disables
 * respawn, unblocks the acceptor, joins every worker thread and reaps
 * every worker process. Thread-safe.
 */
class FleetSupervisor
{
  public:
    /** @p czar must outlive the supervisor. */
    FleetSupervisor(Czar &czar, SupervisorOptions opts);
    ~FleetSupervisor();

    FleetSupervisor(const FleetSupervisor &) = delete;
    FleetSupervisor &operator=(const FleetSupervisor &) = delete;

    /** Spawn the initial fleet (process mode: listener + acceptor). */
    void start();

    /** Disable respawn and join/reap everything. Idempotent. */
    void stop();

    /** Accounting snapshot. */
    SupervisorStats stats() const;

    /** Live worker process ids (process mode; empty in thread mode). */
    std::vector<pid_t> pids() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace insure::dispatch

#endif // INSURE_DISPATCH_SUPERVISOR_HH
