#include "dispatch/chaos_drill.hh"

#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "fault/campaign.hh"
#include "service/framing.hh"
#include "sim/logging.hh"

namespace insure::dispatch {

namespace {

std::string
strf(const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    return buf;
}

std::string
campaignJson(const fault::CampaignSummary &summary)
{
    std::ostringstream os;
    fault::writeCampaignJson(summary, os);
    return os.str();
}

} // namespace

std::size_t
CampaignDrillReport::completedSeeds() const
{
    std::size_t n = 0;
    for (const CampaignDrillSeedOutcome &o : outcomes)
        n += o.completed ? 1 : 0;
    return n;
}

std::size_t
CampaignDrillReport::identicalSeeds() const
{
    std::size_t n = 0;
    for (const CampaignDrillSeedOutcome &o : outcomes)
        n += o.identical ? 1 : 0;
    return n;
}

bool
CampaignDrillReport::passed() const
{
    return !outcomes.empty() && completedSeeds() == outcomes.size() &&
           identicalSeeds() == outcomes.size();
}

CampaignDrillReport
runCampaignChaosDrill(const CampaignDrillOptions &opts)
{
    CampaignDrillReport report;
    report.oracleJson = campaignJson(
        fault::runFaultCampaign(toCampaignConfig(opts.spec)));

    for (std::size_t s = 0; s < opts.seeds; ++s) {
        CampaignDrillSeedOutcome out;
        out.chaosSeed = opts.firstChaosSeed + s;

        FleetOptions fleet;
        fleet.mode = FleetMode::Thread;
        fleet.workers = opts.workers;
        fleet.czar.chunkRuns = opts.chunkRuns;
        fleet.czar.workerTimeoutSeconds = opts.workerTimeoutSeconds;
        fleet.czar.leaseProgressTimeoutSeconds =
            opts.leaseProgressTimeoutSeconds;
        fleet.czar.allDeadGraceSeconds = opts.allDeadGraceSeconds;
        fleet.worker.heartbeatSeconds = opts.heartbeatSeconds;
        fleet.maxRespawns = opts.maxRespawns;
        fleet.workerReconnects = opts.workerReconnects;
        fleet.chaos = opts.chaos;
        fleet.chaosSeed = out.chaosSeed;

        try {
            const DistributedRunReport run =
                runDistributedSweepReport(opts.spec, fleet);
            out.completed = true;
            out.identical =
                campaignJson(run.summary) == report.oracleJson;
            out.czar = run.czar;
            out.supervisor = run.supervisor;
        } catch (const std::exception &e) {
            out.error = e.what();
            warn("chaos drill seed %llu aborted: %s",
                 static_cast<unsigned long long>(out.chaosSeed), e.what());
        }
        report.outcomes.push_back(std::move(out));
    }
    return report;
}

void
writeCampaignDrillJson(const CampaignDrillReport &report, std::ostream &os)
{
    const auto u64 = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
    };
    os << "{\n";
    os << strf("  \"seeds\": %zu,\n", report.outcomes.size());
    os << strf("  \"completed_seeds\": %zu,\n", report.completedSeeds());
    os << strf("  \"identical_seeds\": %zu,\n", report.identicalSeeds());
    os << strf("  \"passed\": %s,\n", report.passed() ? "true" : "false");
    os << "  \"outcomes\": [\n";
    for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
        const CampaignDrillSeedOutcome &o = report.outcomes[i];
        os << "    {\n";
        os << strf("      \"chaos_seed\": %llu,\n", u64(o.chaosSeed));
        os << strf("      \"completed\": %s,\n",
                   o.completed ? "true" : "false");
        os << strf("      \"identical\": %s,\n",
                   o.identical ? "true" : "false");
        os << strf("      \"workers_lost\": %llu,\n",
                   u64(o.czar.workersLost));
        os << strf("      \"requeued_runs\": %llu,\n",
                   u64(o.czar.requeuedRuns));
        os << strf("      \"duplicate_results\": %llu,\n",
                   u64(o.czar.duplicateResults));
        os << strf("      \"timeout_evictions\": %llu,\n",
                   u64(o.czar.timeoutEvictions));
        os << strf("      \"lease_timeouts\": %llu,\n",
                   u64(o.czar.leaseTimeouts));
        os << strf("      \"crc_errors\": %llu,\n", u64(o.czar.crcErrors));
        os << strf("      \"resyncs\": %llu,\n", u64(o.czar.resyncs));
        os << strf("      \"skipped_bytes\": %llu,\n",
                   u64(o.czar.skippedBytes));
        os << strf("      \"respawns\": %llu,\n",
                   u64(o.supervisor.respawned));
        os << strf("      \"connections\": %llu,\n",
                   u64(o.supervisor.connections));
        os << "      \"chaos\": {\n";
        os << strf("        \"corrupted_bytes\": %llu,\n",
                   u64(o.supervisor.chaos.corruptedBytes));
        os << strf("        \"truncated_sends\": %llu,\n",
                   u64(o.supervisor.chaos.truncatedSends));
        os << strf("        \"dropped_sends\": %llu,\n",
                   u64(o.supervisor.chaos.droppedSends));
        os << strf("        \"duplicated_sends\": %llu,\n",
                   u64(o.supervisor.chaos.duplicatedSends));
        os << strf("        \"split_sends\": %llu,\n",
                   u64(o.supervisor.chaos.splitSends));
        os << strf("        \"disconnects\": %llu\n",
                   u64(o.supervisor.chaos.disconnects));
        os << "      }";
        if (!o.error.empty()) {
            // Errors are short runtime_error strings; escape the two
            // characters that could break the JSON.
            std::string esc;
            for (const char c : o.error) {
                if (c == '"' || c == '\\')
                    esc += '\\';
                esc += c;
            }
            os << ",\n      \"error\": \"" << esc << "\"";
        }
        os << "\n    }" << (i + 1 < report.outcomes.size() ? "," : "")
           << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

TwinChaosReport
replayTwinChaos(service::TwinServer &server,
                const std::vector<harness::TwinOp> &ops,
                const TwinChaosOptions &opts)
{
    service::ChaosPlan plan = opts.chaos;
    // No sequence numbers in the request/reply stream: a duplicated
    // request would legitimately earn a second reply and shift the
    // serial alignment (see header). Everything else is fair game.
    plan.duplicateRate = 0.0;

    auto ledger = std::make_shared<service::ChaosLedger>();
    TwinChaosReport report;
    report.replies.resize(ops.size());

    std::unique_ptr<service::ByteStream> client;
    std::thread serverThread;
    std::uint64_t sessionIndex = 0;

    const auto closeSession = [&] {
        if (!client)
            return;
        client->close();
        if (serverThread.joinable())
            serverThread.join();
        client.reset();
    };
    const auto openSession = [&] {
        auto pair = service::makeLoopbackPair();
        client = service::wrapWithChaos(
            std::move(pair.first), plan,
            service::chaosConnectionSeed(opts.chaosSeed, sessionIndex++),
            ledger);
        client->setReceiveDeadline(opts.replyDeadlineSeconds);
        serverThread =
            std::thread([&server, s = std::move(pair.second)]() mutable {
                server.serveStream(*s);
            });
        if (sessionIndex > 1)
            ++report.reconnects;
    };

    bool allAnswered = true;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const service::Frame req = ops[i].toFrame(1);
        const std::vector<std::uint8_t> wire =
            service::encodeFrame(req.type, req.payload);

        bool answered = false;
        for (std::size_t attempt = 0;
             attempt < opts.maxAttemptsPerOp && !answered; ++attempt) {
            if (attempt > 0)
                ++report.resends;
            if (!client)
                openSession();
            if (!client->send(wire.data(), wire.size())) {
                closeSession();
                continue;
            }
            // Wait for one decodable reply frame; a deadline expiry,
            // EOF or CRC-destroyed reply poisons the session — a late
            // reply could otherwise pair with the NEXT request, so
            // retry on a fresh connection, never this one.
            service::FrameDecoder decoder;
            std::uint8_t buf[4096];
            for (;;) {
                const std::size_t n = client->receive(buf, sizeof buf);
                if (n == 0) {
                    closeSession();
                    break;
                }
                decoder.feed(buf, n);
                if (auto reply = decoder.next()) {
                    // Canonical re-encode: exactly the bytes the
                    // server put on the wire (same as TwinClient).
                    report.replies[i] = service::encodeFrame(
                        reply->type, reply->payload);
                    answered = true;
                    break;
                }
            }
        }
        if (!answered) {
            allAnswered = false;
            warn("twin chaos replay: op %zu unanswered after %zu attempts",
                 i, opts.maxAttemptsPerOp);
        }
    }
    closeSession();
    report.completed = allAnswered;
    report.chaos = ledger->totals();
    return report;
}

} // namespace insure::dispatch
