#include "dispatch/czar.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dispatch/protocol.hh"
#include "harness/batch_runner.hh"
#include "harness/campaign_journal.hh"
#include "harness/run_result_io.hh"
#include "service/framing.hh"
#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::dispatch {

namespace {

using Clock = std::chrono::steady_clock;

/** What a reader thread hands the run() loop. */
struct Event {
    enum class Kind { Hello, Result, Heartbeat, Disconnect };
    Kind kind = Kind::Disconnect;
    std::size_t slot = 0;
    HelloMsg hello;
    ResultMsg result;
    HeartbeatMsg heartbeat;
    std::string detail;
};

/** One adopted worker connection. */
struct WorkerSlot {
    std::unique_ptr<service::ByteStream> stream;
    std::thread reader;
    std::string id;
    /** HELLO received and version-checked. */
    bool ready = false;
    /** Disconnect processed; slot is inert. */
    bool lost = false;
    /** Stream closed by a liveness check; Disconnect is in flight. */
    bool evicting = false;
    /** Run indices leased out and not yet resulted. */
    std::vector<std::uint64_t> outstanding;
    Clock::time_point lastSeen;
    /** Last RESULT accepted or lease granted (progress clock). */
    Clock::time_point lastProgress;
    /** When the connection was adopted (HELLO clock). */
    Clock::time_point added;
};

} // namespace

struct Czar::Impl {
    SweepSpec spec;
    CzarOptions opts;
    fault::CampaignConfig cfg;
    std::vector<std::uint64_t> childSeeds;
    std::vector<core::RunResult> results;
    std::vector<char> have;
    std::size_t done = 0;
    /** Runs awaiting dispatch (front = next to lease). */
    std::deque<std::uint64_t> pending;
    /** Max runs per lease after the frame-size clamp. */
    std::size_t leaseCap = 1;
    std::unique_ptr<harness::CampaignJournal> journal;
    std::size_t lost = 0;
    CzarStats stats;
    bool ran = false;
    /**
     * run() is over (normally or by throw). Workers adopted after this
     * get an immediate SHUTDOWN instead of a reader slot, so a
     * reconnecting or freshly respawned worker that arrives late cannot
     * hang waiting for leases that will never come.
     */
    bool finished = false;

    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Event> events;
    std::vector<std::unique_ptr<WorkerSlot>> workers;
    /** First instant the fleet went all-dead (grace-window clock). */
    std::optional<Clock::time_point> allDeadSince;

    explicit Impl(SweepSpec s, CzarOptions o)
        : spec(std::move(s)), opts(std::move(o)),
          cfg(toCampaignConfig(spec)),
          childSeeds(harness::deriveChildSeeds(spec.masterSeed, spec.runs)),
          results(spec.runs), have(spec.runs, 0)
    {
        // A lease must fit one frame: spec overhead measured once, the
        // remainder divided among 16-byte run entries.
        const std::size_t specBytes =
            encodeLease(LeaseMsg{spec, {}}).size() -
            (service::kFrameHeaderSize + service::kFrameCrcSize);
        if (specBytes + kLeasedRunWireBytes > service::kMaxFramePayload)
            throw std::runtime_error(
                "dispatch: sweep spec too large for a lease frame");
        leaseCap = std::max<std::size_t>(
            1, std::min(opts.chunkRuns,
                        (service::kMaxFramePayload - specBytes) /
                            kLeasedRunWireBytes));

        if (!opts.stateDir.empty()) {
            std::filesystem::create_directories(opts.stateDir);
            if (!opts.resume)
                harness::clearCampaignState(opts.stateDir);
        }
        journal = std::make_unique<harness::CampaignJournal>(opts.stateDir);

        if (opts.resume && !opts.stateDir.empty())
            scanCachedResults();
        for (std::uint64_t i = 0; i < spec.runs; ++i)
            if (!have[i])
                pending.push_back(i);
    }

    /** Serve identity-verified result files left by a killed czar. */
    void
    scanCachedResults()
    {
        for (std::size_t i = 0; i < spec.runs; ++i) {
            const std::string path =
                harness::runResultPath(opts.stateDir, i);
            if (!std::filesystem::exists(path))
                continue;
            const std::string label = fault::campaignRunLabel(i);
            try {
                snapshot::Archive ar = snapshot::readSnapshotFile(path);
                harness::loadRunResult(ar, results[i], label,
                                       childSeeds[i]);
                have[i] = 1;
                ++done;
                journal->record(i, label, "cached", 0);
            } catch (const harness::RunIdentityMismatch &e) {
                journal->record(i, label, "cache-mismatch", 0, e.what());
            } catch (const snapshot::SnapshotError &e) {
                journal->record(i, label, "cache-corrupt", 0, e.what());
            }
        }
    }

    void
    post(Event ev)
    {
        const std::lock_guard<std::mutex> lock(mu);
        events.push_back(std::move(ev));
        cv.notify_all();
    }

    /**
     * Reader thread: frames off the stream become events. Any protocol
     * violation (bad decode, unexpected type) retires the worker — the
     * czar trusts re-dispatch, not a possibly-confused peer.
     */
    /** Fold a finished reader's decoder counters into the ledger. */
    void
    mergeDecoder(const service::FrameDecoder &decoder)
    {
        const std::lock_guard<std::mutex> lock(mu);
        stats.framesDecoded += decoder.framesDecoded();
        stats.crcErrors += decoder.crcErrors();
        stats.oversizedFrames += decoder.oversizedFrames();
        stats.resyncs += decoder.resyncs();
        stats.skippedBytes += decoder.skippedBytes();
    }

    void
    readerLoop(std::size_t slot, service::ByteStream *stream)
    {
        service::FrameDecoder decoder;
        std::uint8_t buf[4096];
        for (;;) {
            const std::size_t n = stream->receive(buf, sizeof buf);
            if (n == 0) {
                mergeDecoder(decoder);
                Event ev;
                ev.kind = Event::Kind::Disconnect;
                ev.slot = slot;
                ev.detail = "stream closed or receive deadline expired";
                post(std::move(ev));
                return;
            }
            decoder.feed(buf, n);
            while (auto frame = decoder.next()) {
                Event ev;
                ev.slot = slot;
                try {
                    switch (frame->type) {
                      case service::FrameType::Hello:
                        ev.kind = Event::Kind::Hello;
                        ev.hello = decodeHello(*frame);
                        break;
                      case service::FrameType::Result:
                        ev.kind = Event::Kind::Result;
                        ev.result = decodeResult(*frame);
                        break;
                      case service::FrameType::Heartbeat:
                        ev.kind = Event::Kind::Heartbeat;
                        ev.heartbeat = decodeHeartbeat(*frame);
                        break;
                      default:
                        throw snapshot::SnapshotError(
                            "dispatch: unexpected frame type from "
                            "worker");
                    }
                } catch (const std::exception &e) {
                    mergeDecoder(decoder);
                    ev.kind = Event::Kind::Disconnect;
                    ev.detail = e.what();
                    post(std::move(ev));
                    stream->close();
                    return;
                }
                post(std::move(ev));
            }
        }
    }

    /** Lease the next batch to an idle, ready worker. Lock held. */
    void
    grant(WorkerSlot &w, std::size_t slot)
    {
        if (!w.ready || w.lost || !w.outstanding.empty() || pending.empty())
            return;
        LeaseMsg lease;
        lease.spec = spec;
        const std::size_t n = std::min(leaseCap, pending.size());
        lease.runs.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
            const std::uint64_t idx = pending.front();
            pending.pop_front();
            lease.runs.push_back(
                {idx, childSeeds[static_cast<std::size_t>(idx)]});
            w.outstanding.push_back(idx);
        }
        journal->record(static_cast<std::size_t>(lease.runs.front().index),
                        w.id, "dispatch", 0,
                        std::to_string(n) + " runs to slot " +
                            std::to_string(slot));
        // A fresh lease restarts the progress clock: the worker now
        // owes a RESULT within leaseProgressTimeoutSeconds.
        w.lastProgress = Clock::now();
        // A failed send is not handled here: the reader observes the
        // same dead stream and posts the Disconnect that requeues the
        // runs just recorded as outstanding.
        w.stream->send(encodeLease(lease));
    }

    void
    grantAll()
    {
        for (std::size_t s = 0; s < workers.size(); ++s)
            grant(*workers[s], s);
    }

    /** Persist + account one finished run. Lock held. */
    void
    acceptResult(WorkerSlot &w, ResultMsg &&msg)
    {
        const auto idx = static_cast<std::size_t>(msg.index);
        const std::string label = fault::campaignRunLabel(idx);
        if (idx >= spec.runs || msg.leaseSeed != childSeeds[idx]) {
            // Not a run of this campaign: a stale worker answering for
            // an older sweep. Drop it; the run it *should* have done is
            // still tracked elsewhere.
            journal->record(idx < spec.runs ? idx : 0, label, "stale", 0,
                            "result identity does not match campaign");
            ++stats.staleResults;
            return;
        }
        w.lastProgress = Clock::now();
        w.outstanding.erase(std::remove(w.outstanding.begin(),
                                        w.outstanding.end(), msg.index),
                            w.outstanding.end());
        if (have[idx]) {
            // Re-dispatch race: the original owner finished after being
            // declared dead. Runs are deterministic, so both copies are
            // identical — keep the first.
            journal->record(idx, label, "duplicate", 0);
            ++stats.duplicateResults;
            return;
        }
        results[idx] = std::move(msg.result);
        have[idx] = 1;
        ++done;
        if (!opts.stateDir.empty()) {
            snapshot::Archive ar = snapshot::Archive::forSave();
            harness::saveRunResult(ar, results[idx], childSeeds[idx]);
            snapshot::writeSnapshotFile(
                harness::runResultPath(opts.stateDir, idx), ar);
        }
        journal->record(idx, label,
                        results[idx].failed ? "failed" : "done", 0,
                        results[idx].error);
        if (opts.progress)
            opts.progress(done, spec.runs);
    }

    /** Retire a worker and requeue its leases. Lock held. */
    void
    retire(WorkerSlot &w, std::size_t slot, const std::string &why)
    {
        if (w.lost)
            return;
        w.lost = true;
        ++lost;
        ++stats.workersLost;
        journal->record(slot, w.id, "worker-lost", 0, why);
        if (!w.outstanding.empty()) {
            stats.requeuedRuns += w.outstanding.size();
            // Front of the queue: the failed runs are the oldest work,
            // survivors pick them up before untouched ones.
            for (auto it = w.outstanding.rbegin();
                 it != w.outstanding.rend(); ++it)
                pending.push_front(*it);
            journal->record(static_cast<std::size_t>(w.outstanding.front()),
                            w.id, "requeued", 0,
                            std::to_string(w.outstanding.size()) +
                                " runs from slot " + std::to_string(slot));
            w.outstanding.clear();
        }
        w.stream->close();
    }

    /**
     * Evict a live worker: close() forces its reader to EOF; the
     * Disconnect it posts performs the actual retire + requeue.
     * Lock held.
     */
    void
    evict(WorkerSlot &w, std::size_t slot, const char *what, double age)
    {
        w.evicting = true;
        journal->record(slot, w.id, what, 0,
                        std::to_string(age) + " s");
        w.stream->close();
    }

    /**
     * Declare unresponsive workers dead. Three independent clocks:
     * lastSeen (any traffic; heartbeats refresh it), lastProgress
     * (leases granted / results accepted ONLY — a heartbeating worker
     * that lost its lease to a corrupted frame must still be evicted or
     * the campaign stalls forever), and added (a connection that never
     * said HELLO). Lock held.
     */
    void
    checkLiveness()
    {
        const auto now = Clock::now();
        const auto age = [&](Clock::time_point since) {
            return std::chrono::duration<double>(now - since).count();
        };
        for (std::size_t s = 0; s < workers.size(); ++s) {
            WorkerSlot &w = *workers[s];
            if (w.lost || w.evicting)
                continue;
            if (!w.ready) {
                if (opts.helloTimeoutSeconds > 0.0 &&
                    age(w.added) > opts.helloTimeoutSeconds) {
                    ++stats.helloTimeouts;
                    evict(w, s, "hello-timeout", age(w.added));
                }
                continue;
            }
            if (w.outstanding.empty())
                continue;
            if (opts.workerTimeoutSeconds > 0.0 &&
                age(w.lastSeen) > opts.workerTimeoutSeconds) {
                ++stats.timeoutEvictions;
                evict(w, s, "worker-timeout", age(w.lastSeen));
                continue;
            }
            if (opts.leaseProgressTimeoutSeconds > 0.0 &&
                age(w.lastProgress) > opts.leaseProgressTimeoutSeconds) {
                ++stats.leaseTimeouts;
                evict(w, s, "lease-timeout", age(w.lastProgress));
            }
        }
    }

    /** Shortest enabled liveness period (0 = none). */
    double
    livenessPeriod() const
    {
        double period = 0.0;
        for (const double t :
             {opts.workerTimeoutSeconds, opts.leaseProgressTimeoutSeconds,
              opts.helloTimeoutSeconds, opts.allDeadGraceSeconds})
            if (t > 0.0 && (period == 0.0 || t < period))
                period = t;
        return period;
    }

    fault::CampaignSummary
    run()
    {
        std::unique_lock<std::mutex> lock(mu);
        if (ran)
            throw std::runtime_error("dispatch: Czar::run called twice");
        ran = true;
        grantAll();
        const double period = livenessPeriod();
        while (done < spec.runs) {
            if (events.empty()) {
                if (period > 0.0) {
                    cv.wait_for(lock, std::chrono::duration<double>(
                                          period / 4.0));
                } else {
                    cv.wait(lock);
                }
            }
            while (!events.empty()) {
                Event ev = std::move(events.front());
                events.pop_front();
                if (ev.slot >= workers.size())
                    continue;
                WorkerSlot &w = *workers[ev.slot];
                if (w.lost)
                    continue;
                w.lastSeen = Clock::now();
                switch (ev.kind) {
                  case Event::Kind::Hello:
                    if (ev.hello.protocolVersion !=
                        kDispatchProtocolVersion) {
                        retire(w, ev.slot,
                               "protocol version " +
                                   std::to_string(
                                       ev.hello.protocolVersion));
                        break;
                    }
                    w.id = ev.hello.workerId;
                    w.ready = true;
                    journal->record(ev.slot, w.id, "worker-hello", 0);
                    grant(w, ev.slot);
                    break;
                  case Event::Kind::Result:
                    acceptResult(w, std::move(ev.result));
                    if (w.outstanding.empty())
                        grant(w, ev.slot);
                    break;
                  case Event::Kind::Heartbeat:
                    break;
                  case Event::Kind::Disconnect:
                    retire(w, ev.slot, ev.detail);
                    grantAll();
                    break;
                }
            }
            checkLiveness();
            const bool allDead =
                !workers.empty() &&
                std::all_of(workers.begin(), workers.end(),
                            [](const auto &w) { return w->lost; });
            if (done < spec.runs && allDead) {
                const auto now = Clock::now();
                if (!allDeadSince)
                    allDeadSince = now;
                const double dead =
                    std::chrono::duration<double>(now - *allDeadSince)
                        .count();
                if (opts.allDeadGraceSeconds <= 0.0 ||
                    dead > opts.allDeadGraceSeconds) {
                    // Close everything before aborting so supervised
                    // worker threads blocked on these streams unwind
                    // instead of deadlocking their supervisor's join.
                    finished = true;
                    for (auto &w : workers)
                        w->stream->close();
                    throw std::runtime_error(
                        "dispatch: every worker died with " +
                        std::to_string(spec.runs - done) +
                        " runs outstanding");
                }
            } else {
                allDeadSince.reset();
            }
        }
        // Campaign complete: an orderly SHUTDOWN first — to a resilient
        // worker, bare EOF reads as a czar crash and triggers a useless
        // reconnect storm — then close.
        finished = true;
        const std::vector<std::uint8_t> bye =
            encodeShutdown(ShutdownMsg{"campaign complete"});
        const std::size_t adopted = workers.size();
        for (auto &w : workers) {
            if (!w->lost)
                w->stream->send(bye);
            w->stream->close();
        }
        lock.unlock();
        // Join the readers adopted so far: their decoder counters land
        // in the ledger before stats() is consulted. Slot objects are
        // pointer-stable, so only the thread handoff needs the lock.
        for (std::size_t i = 0; i < adopted; ++i) {
            std::thread reader;
            {
                const std::lock_guard<std::mutex> relock(mu);
                reader = std::move(workers[i]->reader);
            }
            if (reader.joinable())
                reader.join();
        }
        return fault::summarizeCampaign(cfg, results);
    }

    ~Impl()
    {
        {
            const std::lock_guard<std::mutex> lock(mu);
            for (auto &w : workers)
                w->stream->close();
        }
        for (auto &w : workers)
            if (w->reader.joinable())
                w->reader.join();
    }
};

Czar::Czar(SweepSpec spec, CzarOptions opts)
    : impl_(std::make_unique<Impl>(std::move(spec), std::move(opts)))
{
}

Czar::~Czar() = default;

void
Czar::addWorker(std::unique_ptr<service::ByteStream> stream)
{
    const std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->finished) {
        // The campaign is over: tell the latecomer so instead of
        // parking it on a reader that will never grant anything.
        stream->send(encodeShutdown(ShutdownMsg{"campaign finished"}));
        stream->close();
        return;
    }
    auto slot = std::make_unique<WorkerSlot>();
    slot->stream = std::move(stream);
    if (impl_->opts.receiveDeadlineSeconds > 0.0)
        slot->stream->setReceiveDeadline(impl_->opts.receiveDeadlineSeconds);
    if (impl_->opts.sendDeadlineSeconds > 0.0)
        slot->stream->setSendDeadline(impl_->opts.sendDeadlineSeconds);
    slot->lastSeen = Clock::now();
    slot->lastProgress = slot->lastSeen;
    slot->added = slot->lastSeen;
    const std::size_t index = impl_->workers.size();
    service::ByteStream *raw = slot->stream.get();
    impl_->workers.push_back(std::move(slot));
    impl_->workers.back()->reader =
        std::thread([this, index, raw] { impl_->readerLoop(index, raw); });
}

fault::CampaignSummary
Czar::run()
{
    return impl_->run();
}

std::size_t
Czar::completedRuns() const
{
    const std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->done;
}

std::size_t
Czar::workersLost() const
{
    const std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->lost;
}

CzarStats
Czar::stats() const
{
    const std::lock_guard<std::mutex> lock(impl_->mu);
    CzarStats s = impl_->stats;
    s.completedRuns = impl_->done;
    return s;
}

} // namespace insure::dispatch
