/**
 * @file
 * The campaign czar: shards a SweepSpec across a fleet of disposable
 * workers and aggregates their results into the exact campaign summary
 * the single-process sweep produces.
 *
 * Design (after qserv's czar/worker split): the czar owns ALL durable
 * state — the lease ledger, the fsynced journal and the per-run result
 * files (the same PR-5 formats the ResilientRunner writes, in the same
 * state directory layout, so `--resume` tooling needs no new code
 * path). Workers own NOTHING: a lease is self-contained (recipe +
 * pre-derived seeds), so any worker can die at any instant — kill -9
 * mid-run included — and the czar simply re-dispatches that worker's
 * outstanding runs to the survivors. Killing the czar itself is covered
 * by the journal + result files: re-running with resume=true serves
 * completed runs from disk and re-dispatches only the remainder, and
 * the final campaign JSON is byte-identical to an uninterrupted sweep.
 *
 * Determinism: per-run child seeds come from the shared
 * harness::deriveChildSeeds, run specs are materialised through
 * fault::buildCampaignRunSpec on the worker, and results are aggregated
 * in run-index order — so the summary is a pure function of the spec,
 * independent of worker count, lease schedule, kills or resumes.
 *
 * Threading: one reader thread per worker decodes frames and feeds a
 * single event queue; the run() loop owns every other piece of state.
 */

#ifndef INSURE_DISPATCH_CZAR_HH
#define INSURE_DISPATCH_CZAR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "dispatch/sweep_spec.hh"
#include "service/transport.hh"

namespace insure::dispatch {

/** Czar policy knobs. */
struct CzarOptions {
    /**
     * Durable campaign state: journal + per-run result files (the PR-5
     * ResilientRunner layout). Empty disables persistence — worker
     * deaths are still survived, czar deaths are not.
     */
    std::string stateDir;
    /**
     * Serve completed runs found in stateDir (identity-verified) and
     * dispatch only the remainder. Without this flag existing state in
     * the directory is cleared first.
     */
    bool resume = false;
    /**
     * Runs per lease. Bigger batches amortise protocol round-trips;
     * smaller ones re-dispatch less on a worker death. Clamped so the
     * lease payload fits a frame.
     */
    std::size_t chunkRuns = 16;
    /**
     * Seconds of silence (no result, no heartbeat) after which a worker
     * holding leases is declared dead and its runs re-dispatched
     * (0 = rely on transport EOF alone, which loopback pipes and local
     * TCP deliver promptly on process death).
     */
    double workerTimeoutSeconds = 0.0;
    /**
     * Seconds a lease-holder may go without delivering a RESULT before
     * it is evicted and its runs re-dispatched (0 = off). Heartbeats do
     * NOT refresh this clock — that is the point: a worker that lost
     * its lease to a corrupted frame keeps heartbeating forever, and
     * only a progress deadline unsticks the campaign from it. Must
     * exceed the longest plausible run time.
     */
    double leaseProgressTimeoutSeconds = 0.0;
    /**
     * Seconds an adopted connection may dawdle before its HELLO
     * arrives (0 = off). Evicts half-open or hostile connections that
     * would otherwise occupy a slot forever without ever being
     * leasable.
     */
    double helloTimeoutSeconds = 0.0;
    /**
     * Bound every reader-thread receive (0 = block indefinitely). With
     * worker heartbeats at a shorter period, a peer that stalls
     * mid-frame — alive at the TCP level, saying nothing — is evicted
     * instead of wedging a reader thread for the campaign's lifetime.
     */
    double receiveDeadlineSeconds = 0.0;
    /**
     * Bound every send to a worker (0 = block indefinitely). A peer
     * that stopped draining its socket fails the send instead of
     * wedging the czar's event loop mid-grant.
     */
    double sendDeadlineSeconds = 0.0;
    /**
     * Seconds the czar tolerates having zero live workers with runs
     * outstanding before giving up (0 = give up immediately, the
     * original behaviour). A supervised fleet respawns workers
     * asynchronously, so a chaos storm that momentarily fells every
     * worker must not abort a campaign the next respawn would finish.
     */
    double allDeadGraceSeconds = 0.0;
    /** Optional progress hook: (completed runs, total runs). */
    std::function<void(std::size_t done, std::size_t total)> progress;
};

/**
 * Campaign-lifetime accounting: the honest ledger of everything the
 * robustness machinery had to absorb. All counters are monotonic; the
 * decoder counters aggregate every reader thread's FrameDecoder.
 */
struct CzarStats {
    std::uint64_t completedRuns = 0;
    std::uint64_t workersLost = 0;
    /** Runs requeued from retired workers (re-dispatch volume). */
    std::uint64_t requeuedRuns = 0;
    /** Results dropped because the run was already complete. */
    std::uint64_t duplicateResults = 0;
    /** Results dropped for a wrong campaign identity. */
    std::uint64_t staleResults = 0;
    /** Evictions by workerTimeoutSeconds. */
    std::uint64_t timeoutEvictions = 0;
    /** Evictions by leaseProgressTimeoutSeconds. */
    std::uint64_t leaseTimeouts = 0;
    /** Evictions by helloTimeoutSeconds. */
    std::uint64_t helloTimeouts = 0;
    /** Aggregated reader FrameDecoder counters. */
    std::uint64_t framesDecoded = 0;
    std::uint64_t crcErrors = 0;
    std::uint64_t oversizedFrames = 0;
    std::uint64_t resyncs = 0;
    std::uint64_t skippedBytes = 0;
};

/** Orchestrates one distributed campaign (see file comment). */
class Czar
{
  public:
    Czar(SweepSpec spec, CzarOptions opts);
    ~Czar();

    Czar(const Czar &) = delete;
    Czar &operator=(const Czar &) = delete;

    /**
     * Adopt a connected worker stream. Thread-safe; callable before or
     * during run() (a fleet may grow while the campaign executes). The
     * czar takes ownership and spawns the reader.
     */
    void addWorker(std::unique_ptr<service::ByteStream> stream);

    /**
     * Drive the campaign to completion and aggregate. Blocks. Throws
     * std::runtime_error when the fleet empties with runs outstanding
     * (every worker dead/disconnected) and snapshot::SnapshotError on
     * unrecoverable state corruption. Call at most once.
     */
    fault::CampaignSummary run();

    /** Completed runs so far (test/diagnostic visibility). */
    std::size_t completedRuns() const;

    /** Workers that died or disconnected during the campaign. */
    std::size_t workersLost() const;

    /** The full robustness ledger (consistent snapshot). */
    CzarStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace insure::dispatch

#endif // INSURE_DISPATCH_CZAR_HH
