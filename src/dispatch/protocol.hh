/**
 * @file
 * Czar/worker dispatch protocol over the CRC16-framed byte stream.
 *
 * Four frame types (service::FrameType 0x10-0x13) carry
 * Archive-encoded payloads:
 *
 *   HELLO      worker -> czar   protocol version + worker id
 *   LEASE      czar -> worker   the sweep recipe plus a batch of
 *                               (run index, child seed) pairs
 *   RESULT     worker -> czar   one run's full RunResult (the same
 *                               harness::saveRunResult codec the
 *                               resilient runner's result files use)
 *   HEARTBEAT  worker -> czar   liveness beacon + completed-run count
 *   SHUTDOWN   czar -> worker   orderly end-of-campaign notice
 *
 * SHUTDOWN exists because EOF alone is ambiguous to a resilient
 * worker: a vanished stream may be a crashed czar (reconnect and
 * retry) or a finished campaign (exit cleanly). The czar broadcasts
 * SHUTDOWN before closing, and only an EOF *without* a preceding
 * SHUTDOWN triggers the worker's reconnect path.
 *
 * Every lease is self-contained: it names the runs AND carries their
 * pre-derived child seeds (the czar derives them once through
 * harness::deriveChildSeeds), so workers are completely stateless —
 * any worker can execute any lease at any time, and a worker that
 * connects mid-campaign needs no catch-up. Decoding is versioned and
 * fail-loud: version mismatch, unknown frame type, truncation or
 * trailing bytes throw snapshot::SnapshotError. Encoding throws when a
 * payload would exceed service::kMaxFramePayload (the czar caps lease
 * batch sizes below this bound; see Czar).
 */

#ifndef INSURE_DISPATCH_PROTOCOL_HH
#define INSURE_DISPATCH_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dispatch/sweep_spec.hh"
#include "service/framing.hh"

namespace insure::dispatch {

/** Bump on any incompatible change to the dispatch payload grammar. */
inline constexpr std::uint32_t kDispatchProtocolVersion = 1;

/** Worker introduction, sent once immediately after connecting. */
struct HelloMsg {
    std::uint32_t protocolVersion = kDispatchProtocolVersion;
    std::string workerId;

    bool operator==(const HelloMsg &) const = default;
};

/** One leased run: campaign index plus its pre-derived child seed. */
struct LeasedRun {
    std::uint64_t index = 0;
    std::uint64_t seed = 0;

    bool operator==(const LeasedRun &) const = default;
};

/** A batch of runs for one worker (self-contained; see file comment). */
struct LeaseMsg {
    SweepSpec spec;
    std::vector<LeasedRun> runs;

    bool operator==(const LeaseMsg &) const = default;
};

/** One completed run travelling back to the czar. */
struct ResultMsg {
    std::uint64_t index = 0;
    /** The seed the lease assigned (identity check on receipt). */
    std::uint64_t leaseSeed = 0;
    core::RunResult result;
};

/** Liveness beacon. */
struct HeartbeatMsg {
    std::uint64_t runsCompleted = 0;

    bool operator==(const HeartbeatMsg &) const = default;
};

/** Orderly end-of-campaign notice (czar -> worker; see file comment). */
struct ShutdownMsg {
    /** Human-readable reason ("campaign complete", "draining", ...). */
    std::string reason;

    bool operator==(const ShutdownMsg &) const = default;
};

/**
 * Bytes of lease payload one LeasedRun entry costs; used by the czar
 * to size batches under service::kMaxFramePayload.
 */
inline constexpr std::size_t kLeasedRunWireBytes = 16;

// Encoders return a complete framed message ready for
// ByteStream::send. They throw snapshot::SnapshotError when the
// payload would not fit a frame.
std::vector<std::uint8_t> encodeHello(const HelloMsg &msg);
std::vector<std::uint8_t> encodeLease(const LeaseMsg &msg);
std::vector<std::uint8_t> encodeResult(const ResultMsg &msg);
std::vector<std::uint8_t> encodeHeartbeat(const HeartbeatMsg &msg);
std::vector<std::uint8_t> encodeShutdown(const ShutdownMsg &msg);

// Decoders take a frame of the matching type and throw
// snapshot::SnapshotError on wrong type, version mismatch, truncation
// or trailing bytes.
HelloMsg decodeHello(const service::Frame &frame);
LeaseMsg decodeLease(const service::Frame &frame);
ResultMsg decodeResult(const service::Frame &frame);
HeartbeatMsg decodeHeartbeat(const service::Frame &frame);
ShutdownMsg decodeShutdown(const service::Frame &frame);

} // namespace insure::dispatch

#endif // INSURE_DISPATCH_PROTOCOL_HH
