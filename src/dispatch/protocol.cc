#include "dispatch/protocol.hh"

#include "harness/run_result_io.hh"
#include "snapshot/archive.hh"

namespace insure::dispatch {

namespace {

using snapshot::Archive;
using snapshot::SnapshotError;

/** Frame an archive payload, enforcing the transport's size cap. */
std::vector<std::uint8_t>
toFrame(service::FrameType type, const Archive &ar)
{
    const std::string &payload = ar.payload();
    if (payload.size() > service::kMaxFramePayload)
        throw SnapshotError(
            "dispatch: payload of " + std::to_string(payload.size()) +
            " bytes exceeds the " +
            std::to_string(service::kMaxFramePayload) + "-byte frame cap");
    return service::encodeFrame(
        type, reinterpret_cast<const std::uint8_t *>(payload.data()),
        payload.size());
}

/** Open a load archive over a frame, checking its type first. */
Archive
fromFrame(const service::Frame &frame, service::FrameType want,
          const char *name)
{
    if (frame.type != want)
        throw SnapshotError(std::string("dispatch: frame type 0x") +
                            std::to_string(static_cast<unsigned>(
                                frame.type)) +
                            " is not a " + name + " frame");
    return Archive::forLoad(std::string(
        reinterpret_cast<const char *>(frame.payload.data()),
        frame.payload.size()));
}

void
putVersion(Archive &ar)
{
    ar.putU32(kDispatchProtocolVersion);
}

void
checkVersion(Archive &ar, const char *name)
{
    const std::uint32_t v = ar.getU32();
    if (v != kDispatchProtocolVersion)
        throw SnapshotError(
            std::string("dispatch: ") + name + " protocol version " +
            std::to_string(v) + " != expected " +
            std::to_string(kDispatchProtocolVersion));
}

/** Trailing bytes mean the grammars disagree: refuse the message. */
void
requireDrained(const Archive &ar, const char *name)
{
    if (ar.remaining() != 0)
        throw SnapshotError(std::string("dispatch: ") + name + " has " +
                            std::to_string(ar.remaining()) +
                            " trailing bytes");
}

} // namespace

std::vector<std::uint8_t>
encodeHello(const HelloMsg &msg)
{
    Archive ar = Archive::forSave();
    ar.section("dispatch_hello");
    ar.putU32(msg.protocolVersion);
    ar.putStr(msg.workerId);
    return toFrame(service::FrameType::Hello, ar);
}

HelloMsg
decodeHello(const service::Frame &frame)
{
    Archive ar = fromFrame(frame, service::FrameType::Hello, "HELLO");
    ar.section("dispatch_hello");
    HelloMsg msg;
    // The version is data here, not a gate: the czar reads it and
    // decides whether to keep the worker (a mismatch is *its* call).
    msg.protocolVersion = ar.getU32();
    msg.workerId = ar.getStr();
    requireDrained(ar, "HELLO");
    return msg;
}

std::vector<std::uint8_t>
encodeLease(const LeaseMsg &msg)
{
    Archive ar = Archive::forSave();
    ar.section("dispatch_lease");
    putVersion(ar);
    saveSweepSpec(ar, msg.spec);
    ar.putSize(msg.runs.size());
    for (const LeasedRun &r : msg.runs) {
        ar.putU64(r.index);
        ar.putU64(r.seed);
    }
    return toFrame(service::FrameType::Lease, ar);
}

LeaseMsg
decodeLease(const service::Frame &frame)
{
    Archive ar = fromFrame(frame, service::FrameType::Lease, "LEASE");
    ar.section("dispatch_lease");
    checkVersion(ar, "LEASE");
    LeaseMsg msg;
    msg.spec = loadSweepSpec(ar);
    msg.runs.resize(ar.getSize());
    for (LeasedRun &r : msg.runs) {
        r.index = ar.getU64();
        r.seed = ar.getU64();
    }
    requireDrained(ar, "LEASE");
    return msg;
}

std::vector<std::uint8_t>
encodeResult(const ResultMsg &msg)
{
    Archive ar = Archive::forSave();
    ar.section("dispatch_result");
    putVersion(ar);
    ar.putU64(msg.index);
    ar.putU64(msg.leaseSeed);
    harness::saveRunResult(ar, msg.result, msg.leaseSeed);
    return toFrame(service::FrameType::Result, ar);
}

ResultMsg
decodeResult(const service::Frame &frame)
{
    Archive ar = fromFrame(frame, service::FrameType::Result, "RESULT");
    ar.section("dispatch_result");
    checkVersion(ar, "RESULT");
    ResultMsg msg;
    msg.index = ar.getU64();
    msg.leaseSeed = ar.getU64();
    // The embedded run identity must agree with the claimed index and
    // seed: the label must be the campaign label of that index, and the
    // recorded spec seed must match the one declared above. A worker
    // answering for the wrong run fails here, loudly.
    const std::string wantLabel =
        fault::campaignRunLabel(static_cast<std::size_t>(msg.index));
    harness::loadRunResult(ar, msg.result, wantLabel, msg.leaseSeed);
    requireDrained(ar, "RESULT");
    return msg;
}

std::vector<std::uint8_t>
encodeHeartbeat(const HeartbeatMsg &msg)
{
    Archive ar = Archive::forSave();
    ar.section("dispatch_heartbeat");
    putVersion(ar);
    ar.putU64(msg.runsCompleted);
    return toFrame(service::FrameType::Heartbeat, ar);
}

HeartbeatMsg
decodeHeartbeat(const service::Frame &frame)
{
    Archive ar =
        fromFrame(frame, service::FrameType::Heartbeat, "HEARTBEAT");
    ar.section("dispatch_heartbeat");
    checkVersion(ar, "HEARTBEAT");
    HeartbeatMsg msg;
    msg.runsCompleted = ar.getU64();
    requireDrained(ar, "HEARTBEAT");
    return msg;
}

std::vector<std::uint8_t>
encodeShutdown(const ShutdownMsg &msg)
{
    Archive ar = Archive::forSave();
    ar.section("dispatch_shutdown");
    putVersion(ar);
    ar.putStr(msg.reason);
    return toFrame(service::FrameType::Shutdown, ar);
}

ShutdownMsg
decodeShutdown(const service::Frame &frame)
{
    Archive ar =
        fromFrame(frame, service::FrameType::Shutdown, "SHUTDOWN");
    ar.section("dispatch_shutdown");
    checkVersion(ar, "SHUTDOWN");
    ShutdownMsg msg;
    msg.reason = ar.getStr();
    requireDrained(ar, "SHUTDOWN");
    return msg;
}

} // namespace insure::dispatch
