/**
 * @file
 * The dispatch worker: a disposable, stateless campaign executant.
 *
 * A worker connects, introduces itself (HELLO), then executes whatever
 * leases arrive: each lease carries the sweep recipe and pre-derived
 * child seeds, the worker materialises each run through the same
 * fault::buildCampaignRunSpec + harness::ResilientRunner::runOne path
 * the single-process campaign uses, and streams one RESULT frame per
 * finished run. It holds no campaign state whatsoever — killing a
 * worker at any instant loses nothing but in-flight work, which the
 * czar re-dispatches.
 */

#ifndef INSURE_DISPATCH_WORKER_HH
#define INSURE_DISPATCH_WORKER_HH

#include <cstddef>
#include <string>

#include "harness/resilient_runner.hh"
#include "service/transport.hh"

namespace insure::dispatch {

/** Worker policy knobs. */
struct WorkerOptions {
    /** Identity reported in HELLO (diagnostics only). */
    std::string workerId = "worker";
    /**
     * Execution policy for leased runs (watchdog, retries, optional
     * worker-local checkpoint dir). Default: plain execution, no
     * persistence — the czar owns durability.
     */
    harness::ResilientOptions runOpts;
    /**
     * Exit after completing this many runs (0 = serve until the czar
     * closes the stream). Simulates disposable-worker churn in tests:
     * the worker drops its connection mid-campaign, possibly holding an
     * unfinished lease.
     */
    std::size_t maxRuns = 0;
    /**
     * Send a HEARTBEAT every this many seconds from a side thread
     * (0 = none). Lets a czar with workerTimeoutSeconds distinguish a
     * long run from a dead worker.
     */
    double heartbeatSeconds = 0.0;
};

/**
 * Serve leases on @p stream until it closes (returns 0), the maxRuns
 * budget is spent (returns 0), or a protocol error occurs (returns 1).
 * Runs that fail deterministically are reported as failed results, not
 * worker errors — exactly like the in-process sweep records them.
 */
int runWorker(service::ByteStream &stream, const WorkerOptions &opts);

} // namespace insure::dispatch

#endif // INSURE_DISPATCH_WORKER_HH
