/**
 * @file
 * The dispatch worker: a disposable, stateless campaign executant.
 *
 * A worker connects, introduces itself (HELLO), then executes whatever
 * leases arrive: each lease carries the sweep recipe and pre-derived
 * child seeds, the worker materialises each run through the same
 * fault::buildCampaignRunSpec + harness::ResilientRunner::runOne path
 * the single-process campaign uses, and streams one RESULT frame per
 * finished run. It holds no campaign state whatsoever — killing a
 * worker at any instant loses nothing but in-flight work, which the
 * czar re-dispatches.
 *
 * Two layers:
 *
 *  - runWorkerSession serves ONE connection and reports how it ended
 *    (orderly SHUTDOWN vs. unexpected stream loss vs. spent budget vs.
 *    protocol error).
 *  - runResilientWorker owns a Dialer and survives connection failure:
 *    bounded connect retries with exponential backoff + deterministic
 *    jitter, and after an established session drops without a SHUTDOWN,
 *    a re-dial + re-HELLO under a reconnect budget. Because workers are
 *    stateless, a reconnected worker needs no catch-up — the czar
 *    simply leases it whatever is still pending.
 */

#ifndef INSURE_DISPATCH_WORKER_HH
#define INSURE_DISPATCH_WORKER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "harness/resilient_runner.hh"
#include "service/transport.hh"
#include "sim/rng.hh"

namespace insure::dispatch {

/** Worker policy knobs. */
struct WorkerOptions {
    /** Identity reported in HELLO (diagnostics only). */
    std::string workerId = "worker";
    /**
     * Execution policy for leased runs (watchdog, retries, optional
     * worker-local checkpoint dir). Default: plain execution, no
     * persistence — the czar owns durability.
     */
    harness::ResilientOptions runOpts;
    /**
     * Exit after completing this many runs (0 = serve until the czar
     * closes the stream). Simulates disposable-worker churn in tests:
     * the worker drops its connection mid-campaign, possibly holding an
     * unfinished lease.
     */
    std::size_t maxRuns = 0;
    /**
     * Send a HEARTBEAT every this many seconds from a side thread
     * (0 = none). Lets a czar with workerTimeoutSeconds distinguish a
     * long run from a dead worker.
     */
    double heartbeatSeconds = 0.0;
    /**
     * Bound each receive on the czar stream (0 = wait forever). An
     * expiry is treated as stream loss: a czar that cannot be heard
     * from is a dead czar, and the resilient layer answers with a
     * reconnect instead of wedging forever on a half-dead socket.
     */
    double receiveDeadlineSeconds = 0.0;
};

/** How a single worker session over one connection ended. */
enum class WorkerExit : std::uint8_t {
    /** The czar sent SHUTDOWN: campaign over, exit cleanly. */
    Shutdown,
    /** EOF / deadline expiry / send failure without a SHUTDOWN. */
    StreamLost,
    /** The opts.maxRuns churn budget is spent (test drills). */
    BudgetSpent,
    /** Undecodable czar traffic; the worker hung up deliberately. */
    ProtocolError,
};

/** Printable name of a WorkerExit. */
const char *workerExitName(WorkerExit e);

/** What one session accomplished and how it ended. */
struct WorkerSessionResult {
    WorkerExit exit = WorkerExit::StreamLost;
    /** Runs completed and reported within this session. */
    std::uint64_t runsCompleted = 0;
};

/**
 * Serve leases on @p stream until the czar says SHUTDOWN, the stream
 * dies, the maxRuns budget is spent, or a protocol error occurs. Runs
 * that fail deterministically are reported as failed results, not
 * worker errors — exactly like the in-process sweep records them.
 */
WorkerSessionResult runWorkerSession(service::ByteStream &stream,
                                     const WorkerOptions &opts);

/**
 * Single-connection wrapper kept for callers that manage their own
 * connection lifecycle: 0 on any orderly end (shutdown, EOF, budget),
 * 1 on protocol error.
 */
int runWorker(service::ByteStream &stream, const WorkerOptions &opts);

/**
 * Produces a fresh connection to the czar, or null when the czar is
 * unreachable right now. Loopback tests dial by creating a new pipe
 * pair and handing the far end to the czar; production dials TCP.
 */
using Dialer = std::function<std::unique_ptr<service::ByteStream>()>;

/** A Dialer for the TCP transport (null on connect failure). */
Dialer makeTcpDialer(std::string host, std::uint16_t port);

/** Retry/reconnect policy for runResilientWorker. */
struct ResilientWorkerOptions {
    WorkerOptions worker;
    /**
     * Connect attempts per dial sequence before giving up (the first
     * attempt counts; minimum 1). Applies to the initial connect and
     * to every reconnect.
     */
    std::size_t connectRetries = 5;
    /** Base backoff before attempt n+1: base * 2^n, jittered. */
    double connectBackoffSeconds = 0.05;
    /** Backoff ceiling, seconds. */
    double connectBackoffCapSeconds = 2.0;
    /**
     * Established sessions that may be re-dialled after an unexpected
     * stream loss (0 = behave like the old one-shot worker). The
     * budget counts losses, not dial attempts.
     */
    std::size_t maxReconnects = 0;
    /**
     * Seed for backoff jitter (streams::kDispatchBackoff). Jitter
     * decorrelates a fleet of workers hammering a recovering czar;
     * determinism keeps drills reproducible.
     */
    std::uint64_t backoffSeed = kDefaultSeed;
};

/** Accounting from a resilient worker's whole lifetime. */
struct ResilientWorkerReport {
    /** Dial attempts, successful or not. */
    std::uint64_t connectAttempts = 0;
    /** Re-dials after an established session was lost. */
    std::uint64_t reconnects = 0;
    /** Runs completed across all sessions. */
    std::uint64_t runsCompleted = 0;
    /** How the final session ended. */
    WorkerExit lastExit = WorkerExit::StreamLost;
    /** True when the worker never established a single session. */
    bool neverConnected = false;

    /** Process exit code: 0 orderly, 1 protocol error, 2 unreachable. */
    int exitCode() const;
};

/**
 * Dial, serve, and keep coming back (see file comment). Returns when
 * the czar says SHUTDOWN, the budgets are exhausted, or a protocol
 * error occurs.
 */
ResilientWorkerReport runResilientWorker(const Dialer &dial,
                                         const ResilientWorkerOptions &opts);

} // namespace insure::dispatch

#endif // INSURE_DISPATCH_WORKER_HH
