/**
 * @file
 * Deterministic fault-injection engine.
 *
 * The FaultInjector is a core::PlantExtension: installFaultPlan wires a
 * factory into an ExperimentConfig, runExperiment constructs the
 * injector against the live plant before the clock starts, and the
 * injector schedules every fault as a simulation event at Stats
 * priority (between physics ticks, after the dust of the current tick
 * settles). Ground truth about what was injected and when stays here —
 * the power manager only ever sees the faults through telemetry, which
 * is exactly what the degraded-mode quarantine logic is tested against.
 *
 * A ResilienceTracker rides the run as a SystemObserver (wrapped in an
 * ObserverList with whatever observer was already attached, so the
 * InvariantChecker keeps working) and accumulates outage and
 * energy-loss statistics; at the end of the run the injector joins its
 * ground-truth log against the manager's quarantine log into the
 * ResilienceMetrics published on the ExperimentResult.
 *
 * Every stochastic draw (Poisson arrival times, target choices) comes
 * from Rng::derive-tagged streams rooted at the run seed, never from
 * the simulation's ordinal split sequence — enabling faults cannot
 * re-correlate the workload or solar streams, and FaultPlan{} leaves
 * the run bit-identical to a build that never linked this library.
 */

#ifndef INSURE_FAULT_FAULT_INJECTOR_HH
#define INSURE_FAULT_FAULT_INJECTOR_HH

#include <vector>

#include <utility>

#include "core/experiment.hh"
#include "fault/fault_plan.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace insure::fault {

/** Ground truth about one injected fault occurrence. */
struct InjectedFault {
    FaultSpec spec;
    /** True once the fault cleared (duration elapsed). */
    bool cleared = false;
    /** Clear time; < 0 while active. */
    Seconds clearedAt = -1.0;
};

/**
 * Passive observer accumulating resilience statistics over the tick
 * loop: outage and pending-while-down time, fault energy losses, and
 * time-to-recover samples (quarantine decision until the first tick
 * with the rack powered and productive again).
 */
class ResilienceTracker : public core::SystemObserver
{
  public:
    /** @param mgr the run's manager when it is an InsureManager. */
    explicit ResilienceTracker(const core::InsureManager *mgr)
        : mgr_(mgr)
    {
    }

    void onTick(const core::TickSample &s) override;

    /** Serialize the accumulated resilience statistics. */
    void saveState(snapshot::Archive &ar) const override;

    /** Restore the accumulated resilience statistics. */
    void loadState(snapshot::Archive &ar) override;

    Seconds outageSeconds() const { return outageSeconds_; }
    Seconds pendingDownSeconds() const { return pendingDownSeconds_; }
    double energyLostWh() const { return energyLostWh_; }
    const std::vector<Seconds> &recoverySamples() const
    {
        return recoveries_;
    }

  private:
    const core::InsureManager *mgr_;
    Seconds outageSeconds_ = 0.0;
    Seconds pendingDownSeconds_ = 0.0;
    double energyLostWh_ = 0.0;
    /** Quarantine decisions seen so far (mirror of the manager log). */
    std::size_t seenQuarantines_ = 0;
    /** Detection times still waiting for a recovered tick. */
    std::vector<Seconds> pendingRecovery_;
    /** Completed detection -> recovery intervals. */
    std::vector<Seconds> recoveries_;
};

/** Executes a FaultPlan against a live plant (see file comment). */
class FaultInjector : public core::PlantExtension
{
  public:
    FaultInjector(core::InSituSystem &plant, sim::Simulation &sim,
                  FaultPlan plan);

    /** Publish ResilienceMetrics into the run result. */
    void onRunComplete(const core::InSituSystem &plant,
                       core::ExperimentResult &result) override;

    /** Ground-truth injection log (tests, campaign reporting). */
    const std::vector<InjectedFault> &injected() const
    {
        return log_;
    }

    /**
     * Serialize injector state for a checkpoint: the per-process RNG
     * streams, the ground-truth log, the tracker statistics and every
     * STILL-PENDING scheduled event (exact fire time + dispatch key, so
     * the restored queue pops in the identical order). Events that
     * already fired are represented by the log, not re-saved.
     */
    void save(snapshot::Archive &ar) const override;

    /**
     * Restore into a freshly constructed injector for the same plan:
     * cancels the events the constructor scheduled and re-creates the
     * snapshot's pending set at the saved keys.
     */
    void load(snapshot::Archive &ar) override;

  private:
    void scheduleSpec(const FaultSpec &spec);
    void scheduleNextArrival(unsigned process);
    void fireProcess(unsigned process);
    /** Apply @p spec now; returns the log index. */
    std::size_t apply(FaultSpec spec);
    void clearFault(std::size_t logIndex);

    core::InSituSystem &plant_;
    sim::Simulation &sim_;
    FaultPlan plan_;
    /** Root of every fault stream: Rng(seed).derive(streams::kFault). */
    Rng faultRng_;
    /** One arrival/target stream per Poisson process. */
    std::vector<Rng> processRng_;
    std::vector<InjectedFault> log_;
    std::uint64_t cleared_ = 0;
    ResilienceTracker tracker_;
    core::ObserverList observers_;

    // Pending-event registries for checkpointing. Every schedule records
    // its EventId; save() asks the queue via pendingInfo(), so ids whose
    // events already fired (or were cancelled) drop out with no extra
    // bookkeeping. An id of 0 was never issued and reads as not-pending.
    std::vector<std::pair<sim::EventId, FaultSpec>> specEvents_;
    std::vector<sim::EventId> arrivalIds_;
    std::vector<std::pair<sim::EventId, std::size_t>> clearEvents_;
};

/**
 * Install @p plan on @p cfg. A disabled plan (FaultPlan::enabled() ==
 * false) leaves the config untouched — the run takes the exact clean
 * code path, keeping golden digests bit-identical.
 */
void installFaultPlan(core::ExperimentConfig &cfg, FaultPlan plan);

} // namespace insure::fault

#endif // INSURE_FAULT_FAULT_INJECTOR_HH
