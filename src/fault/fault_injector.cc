#include "fault/fault_injector.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::fault {

using battery::RelayFault;
using sim::EventPriority;

// ---------------------------------------------------------------------
// ResilienceTracker

void
ResilienceTracker::onTick(const core::TickSample &s)
{
    if (s.powerFailed)
        outageSeconds_ += s.dt;
    if (s.backlogGb > 0.0 && s.activeVms == 0)
        pendingDownSeconds_ += s.dt;
    // Exogenous fields are whole-array per-unit ampere-hour sums; the
    // 12 V nominal unit voltage turns them into an energy estimate.
    energyLostWh_ += (s.exogenousPreTickAh + s.exogenousInTickAh) * 12.0;

    // Recovery tracking: a quarantine decision is "recovered from" at
    // the first subsequent tick where the rack has power and is either
    // productive or has drained its backlog.
    if (mgr_) {
        const auto &q = mgr_->quarantineEvents();
        for (std::size_t i = seenQuarantines_; i < q.size(); ++i)
            pendingRecovery_.push_back(q[i].at);
        seenQuarantines_ = q.size();
    }
    if (!pendingRecovery_.empty() && !s.powerFailed &&
        (s.productive || s.backlogGb <= 0.0)) {
        for (Seconds t : pendingRecovery_)
            recoveries_.push_back(std::max(0.0, s.now - t));
        pendingRecovery_.clear();
    }
}

// ---------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector(core::InSituSystem &plant,
                             sim::Simulation &sim, FaultPlan plan)
    : plant_(plant), sim_(sim), plan_(std::move(plan)),
      faultRng_(Rng(sim.seed()).derive(streams::kFault)),
      tracker_(dynamic_cast<const core::InsureManager *>(&plant.manager()))
{
    // Tag-derived streams only: nothing here touches the simulation's
    // ordinal split sequence, so workload/solar draws are unperturbed.
    processRng_.reserve(plan_.processes.size());
    for (std::size_t k = 0; k < plan_.processes.size(); ++k) {
        processRng_.push_back(
            faultRng_.derive(streams::kFaultSchedule + k + 1));
    }
    plant_.monitor().seedSensorNoise(
        faultRng_.deriveSeed(streams::kFaultSensor));
    arrivalIds_.assign(plan_.processes.size(), 0);

    // Observe the run alongside whatever was already attached (the
    // InvariantChecker keeps seeing every hook).
    observers_.add(plant_.observer());
    observers_.add(&tracker_);
    plant_.attachObserver(&observers_);

    for (const FaultSpec &spec : plan_.scheduled)
        scheduleSpec(spec);
    for (unsigned k = 0; k < plan_.processes.size(); ++k)
        scheduleNextArrival(k);
}

void
FaultInjector::scheduleSpec(const FaultSpec &spec)
{
    const Seconds when = std::max(spec.at, sim_.now());
    FaultSpec s = spec;
    s.at = when;
    // Stats priority: injections land after the physics tick at the
    // same instant has fully settled, never mid-tick.
    const sim::EventId id = sim_.events().schedule(
        when, EventPriority::Stats, [this, s] { apply(s); });
    specEvents_.emplace_back(id, s);
}

void
FaultInjector::scheduleNextArrival(unsigned process)
{
    const auto &proc = plan_.processes[process];
    if (proc.ratePerHour <= 0.0)
        return;
    const Seconds gap =
        processRng_[process].exponential(proc.ratePerHour / 3600.0);
    arrivalIds_[process] = sim_.events().scheduleIn(
        gap, EventPriority::Stats, [this, process] {
            fireProcess(process);
            scheduleNextArrival(process);
        });
}

void
FaultInjector::fireProcess(unsigned process)
{
    const auto &proc = plan_.processes[process];
    Rng &rng = processRng_[process];

    FaultSpec spec;
    spec.kind = proc.kind;
    spec.at = sim_.now();
    spec.magnitude = proc.magnitude;
    spec.duration = proc.duration;

    const unsigned cabs = plant_.array().cabinetCount();
    switch (faultClassOf(proc.kind)) {
      case FaultClass::Battery:
        spec.target = static_cast<unsigned>(
            rng.uniformInt(0, static_cast<int>(cabs) - 1));
        spec.unit = static_cast<unsigned>(rng.uniformInt(
            0,
            static_cast<int>(
                plant_.array().cabinet(spec.target).seriesCount()) -
                1));
        break;
      case FaultClass::Relay:
      case FaultClass::Sensor:
        spec.target = static_cast<unsigned>(
            rng.uniformInt(0, static_cast<int>(cabs) - 1));
        break;
      case FaultClass::Link:
        break;
      case FaultClass::Server:
        spec.target = static_cast<unsigned>(rng.uniformInt(
            0,
            static_cast<int>(plant_.cluster().nodeCount()) - 1));
        break;
    }
    apply(spec);
}

std::size_t
FaultInjector::apply(FaultSpec spec)
{
    auto &array = plant_.array();
    const unsigned cabs = array.cabinetCount();
    bool clearable = false;

    switch (spec.kind) {
      case FaultKind::BatteryCapacityFade: {
        spec.target = std::min(spec.target, cabs - 1);
        auto &cab = array.cabinet(spec.target);
        spec.unit = std::min(spec.unit, cab.seriesCount() - 1);
        if (spec.magnitude <= 0.0 || spec.magnitude >= 1.0)
            spec.magnitude = 0.5;
        cab.unit(spec.unit).injectCapacityFade(spec.magnitude);
        break;
      }
      case FaultKind::BatteryOpenCircuit: {
        spec.target = std::min(spec.target, cabs - 1);
        auto &cab = array.cabinet(spec.target);
        spec.unit = std::min(spec.unit, cab.seriesCount() - 1);
        cab.unit(spec.unit).setOpenCircuit(true);
        clearable = spec.duration > 0.0;
        break;
      }
      case FaultKind::BatteryInternalShort: {
        spec.target = std::min(spec.target, cabs - 1);
        auto &cab = array.cabinet(spec.target);
        spec.unit = std::min(spec.unit, cab.seriesCount() - 1);
        if (spec.magnitude <= 1.0)
            spec.magnitude = 50.0;
        cab.unit(spec.unit).setSelfDischargeMultiplier(spec.magnitude);
        clearable = spec.duration > 0.0;
        break;
      }
      case FaultKind::RelayStuckOpen:
        spec.target = std::min(spec.target, cabs - 1);
        array.cabinet(spec.target)
            .dischargeRelay()
            .injectFault(RelayFault::StuckOpen);
        clearable = spec.duration > 0.0;
        break;
      case FaultKind::RelayWeldedClosed:
        spec.target = std::min(spec.target, cabs - 1);
        array.cabinet(spec.target)
            .chargeRelay()
            .injectFault(RelayFault::WeldedClosed);
        clearable = spec.duration > 0.0;
        break;
      case FaultKind::RelayDelayedActuation: {
        spec.target = std::min(spec.target, cabs - 1);
        const unsigned n = std::max(
            1u, static_cast<unsigned>(spec.magnitude));
        spec.magnitude = n;
        array.cabinet(spec.target).chargeRelay().delayActuation(n);
        array.cabinet(spec.target).dischargeRelay().delayActuation(n);
        break;
      }
      case FaultKind::SensorBias:
        spec.target = std::min(spec.target, cabs - 1);
        if (spec.magnitude == 0.0)
            spec.magnitude = 0.8;
        plant_.monitor().injectSensorBias(spec.target, spec.magnitude);
        clearable = spec.duration > 0.0;
        break;
      case FaultKind::SensorNoise:
        spec.target = std::min(spec.target, cabs - 1);
        if (spec.magnitude <= 0.0)
            spec.magnitude = 0.5;
        plant_.monitor().injectSensorNoise(spec.target, spec.magnitude);
        clearable = spec.duration > 0.0;
        break;
      case FaultKind::SensorDropout:
        spec.target = std::min(spec.target, cabs - 1);
        plant_.monitor().injectSensorDropout(spec.target, true);
        clearable = spec.duration > 0.0;
        break;
      case FaultKind::LinkDrop: {
        const unsigned n = std::max(
            1u, static_cast<unsigned>(spec.magnitude));
        spec.magnitude = n;
        plant_.link().dropNextExchanges(n);
        break;
      }
      case FaultKind::LinkCorrupt: {
        const unsigned n = std::max(
            1u, static_cast<unsigned>(spec.magnitude));
        spec.magnitude = n;
        plant_.link().truncateNextResponses(n);
        break;
      }
      case FaultKind::ServerCrash:
        spec.target =
            std::min(spec.target, plant_.cluster().nodeCount() - 1);
        plant_.cluster().crashNode(spec.target);
        break;
      case FaultKind::ServerHang:
        spec.target =
            std::min(spec.target, plant_.cluster().nodeCount() - 1);
        if (spec.duration <= 0.0)
            spec.duration = 600.0;
        plant_.cluster().hangNode(spec.target, spec.duration);
        break;
    }

    Logger::log(LogLevel::Debug,
                     "fault: inject %s cab/node=%u unit=%u mag=%.3f "
                     "dur=%.0f at t=%.1f",
                     faultKindName(spec.kind), spec.target, spec.unit,
                     spec.magnitude, spec.duration, spec.at);

    log_.push_back(InjectedFault{spec, false, -1.0});
    const std::size_t idx = log_.size() - 1;
    if (clearable) {
        const sim::EventId id = sim_.events().scheduleIn(
            spec.duration, EventPriority::Stats,
            [this, idx] { clearFault(idx); });
        clearEvents_.emplace_back(id, idx);
    }
    return idx;
}

void
FaultInjector::clearFault(std::size_t logIndex)
{
    InjectedFault &f = log_[logIndex];
    if (f.cleared)
        return;
    const FaultSpec &spec = f.spec;
    auto &array = plant_.array();
    switch (spec.kind) {
      case FaultKind::BatteryOpenCircuit:
        array.cabinet(spec.target).unit(spec.unit).setOpenCircuit(false);
        break;
      case FaultKind::BatteryInternalShort:
        array.cabinet(spec.target)
            .unit(spec.unit)
            .setSelfDischargeMultiplier(1.0);
        break;
      case FaultKind::RelayStuckOpen:
        array.cabinet(spec.target)
            .dischargeRelay()
            .injectFault(RelayFault::None);
        break;
      case FaultKind::RelayWeldedClosed:
        array.cabinet(spec.target)
            .chargeRelay()
            .injectFault(RelayFault::None);
        break;
      case FaultKind::SensorBias:
        plant_.monitor().injectSensorBias(spec.target, 0.0);
        break;
      case FaultKind::SensorNoise:
        plant_.monitor().injectSensorNoise(spec.target, 0.0);
        break;
      case FaultKind::SensorDropout:
        plant_.monitor().injectSensorDropout(spec.target, false);
        break;
      default:
        return; // one-shot kinds never schedule a clear
    }
    f.cleared = true;
    f.clearedAt = sim_.now();
    ++cleared_;
}

void
FaultInjector::onRunComplete(const core::InSituSystem &plant,
                             core::ExperimentResult &result)
{
    core::ResilienceMetrics m;
    m.faultsInjected = log_.size();
    m.faultsCleared = cleared_;

    const auto *mgr =
        dynamic_cast<const core::InsureManager *>(&plant.manager());
    const Seconds end = sim_.now();

    if (mgr)
        m.quarantines = mgr->quarantineEvents().size();

    // Join the ground-truth log against the manager's quarantine log:
    // a quarantine-expected fault counts as detected when its cabinet
    // was quarantined at or after the injection (a cabinet already
    // quarantined at injection time is detected trivially). Until the
    // quarantine lands — or the fault clears — the plant is running on
    // a faulty component the controller has not isolated: unsafe
    // operation.
    double ttd_sum = 0.0;
    std::uint64_t ttd_n = 0;
    for (const InjectedFault &f : log_) {
        if (!quarantineExpected(f.spec.kind))
            continue;
        Seconds detect = -1.0;
        bool pre_quarantined = false;
        if (mgr) {
            for (const auto &q : mgr->quarantineEvents()) {
                if (q.cabinet != f.spec.target)
                    continue;
                if (q.at <= f.spec.at)
                    pre_quarantined = true;
                else
                    detect = q.at;
                break; // quarantine is sticky: one event per cabinet
            }
        }
        if (pre_quarantined) {
            ++m.detectedFaults;
            continue;
        }
        if (detect >= 0.0) {
            ++m.detectedFaults;
            const Seconds ttd = detect - f.spec.at;
            ttd_sum += ttd;
            ++ttd_n;
            m.maxTimeToDetect = std::max(m.maxTimeToDetect, ttd);
            m.unsafeOperationSeconds += ttd;
        } else {
            const Seconds until = f.cleared ? f.clearedAt : end;
            m.unsafeOperationSeconds +=
                std::max(0.0, until - f.spec.at);
        }
    }
    if (ttd_n > 0)
        m.meanTimeToDetect = ttd_sum / static_cast<double>(ttd_n);

    const auto &recoveries = tracker_.recoverySamples();
    if (!recoveries.empty()) {
        double sum = 0.0;
        for (Seconds r : recoveries) {
            sum += r;
            m.maxTimeToRecover = std::max(m.maxTimeToRecover, r);
        }
        m.meanTimeToRecover =
            sum / static_cast<double>(recoveries.size());
    }

    m.outageSeconds = tracker_.outageSeconds();
    m.pendingDownSeconds = tracker_.pendingDownSeconds();
    m.energyLostKwh = tracker_.energyLostWh() / 1000.0;
    m.lostVmHours = plant.cluster().lostVmHours();

    result.resilience = m;
}

namespace {

void
saveSpec(snapshot::Archive &ar, const FaultSpec &s)
{
    ar.putEnum(s.kind);
    ar.putF64(s.at);
    ar.putU32(s.target);
    ar.putU32(s.unit);
    ar.putF64(s.magnitude);
    ar.putF64(s.duration);
}

FaultSpec
loadSpec(snapshot::Archive &ar)
{
    FaultSpec s;
    s.kind = ar.getEnum<FaultKind>(
        static_cast<std::uint32_t>(FaultKind::ServerHang));
    s.at = ar.getF64();
    s.target = ar.getU32();
    s.unit = ar.getU32();
    s.magnitude = ar.getF64();
    s.duration = ar.getF64();
    return s;
}

} // namespace

void
ResilienceTracker::saveState(snapshot::Archive &ar) const
{
    ar.section("resilience_tracker");
    ar.putF64(outageSeconds_);
    ar.putF64(pendingDownSeconds_);
    ar.putF64(energyLostWh_);
    ar.putU64(seenQuarantines_);
    ar.putF64Vec(pendingRecovery_);
    ar.putF64Vec(recoveries_);
}

void
ResilienceTracker::loadState(snapshot::Archive &ar)
{
    ar.section("resilience_tracker");
    outageSeconds_ = ar.getF64();
    pendingDownSeconds_ = ar.getF64();
    energyLostWh_ = ar.getF64();
    seenQuarantines_ = ar.getU64();
    pendingRecovery_ = ar.getF64Vec();
    recoveries_ = ar.getF64Vec();
}

void
FaultInjector::save(snapshot::Archive &ar) const
{
    ar.section("fault_injector");

    ar.putSize(processRng_.size());
    for (const Rng &r : processRng_)
        r.save(ar);

    ar.putSize(log_.size());
    for (const InjectedFault &f : log_) {
        saveSpec(ar, f.spec);
        ar.putBool(f.cleared);
        ar.putF64(f.clearedAt);
    }
    ar.putU64(cleared_);
    tracker_.saveState(ar);

    // Pending scheduled-spec events: ids whose event already fired read
    // as not-pending and are skipped (the log carries their effect).
    auto &eq = sim_.events();
    std::size_t live = 0;
    for (const auto &[id, spec] : specEvents_) {
        if (eq.pendingInfo(id))
            ++live;
    }
    ar.putSize(live);
    for (const auto &[id, spec] : specEvents_) {
        const auto p = eq.pendingInfo(id);
        if (!p)
            continue;
        ar.putF64(p->when);
        ar.putU64(p->key);
        saveSpec(ar, spec);
    }

    // Poisson arrivals: at most one pending event per process.
    ar.putSize(arrivalIds_.size());
    for (sim::EventId id : arrivalIds_) {
        const auto p = eq.pendingInfo(id);
        ar.putBool(p.has_value());
        if (p) {
            ar.putF64(p->when);
            ar.putU64(p->key);
        }
    }

    // Pending fault-clear events.
    live = 0;
    for (const auto &[id, logIdx] : clearEvents_) {
        if (eq.pendingInfo(id))
            ++live;
    }
    ar.putSize(live);
    for (const auto &[id, logIdx] : clearEvents_) {
        const auto p = eq.pendingInfo(id);
        if (!p)
            continue;
        ar.putF64(p->when);
        ar.putU64(p->key);
        ar.putU64(logIdx);
    }
}

void
FaultInjector::load(snapshot::Archive &ar)
{
    ar.section("fault_injector");

    // Drop everything the constructor scheduled: the snapshot's pending
    // set replaces it wholesale. cancel() on a fired id is a no-op.
    auto &eq = sim_.events();
    for (const auto &[id, spec] : specEvents_)
        eq.cancel(id);
    for (sim::EventId id : arrivalIds_)
        eq.cancel(id);
    for (const auto &[id, logIdx] : clearEvents_)
        eq.cancel(id);
    specEvents_.clear();
    clearEvents_.clear();

    if (ar.getSize() != processRng_.size())
        throw snapshot::SnapshotError(
            "FaultInjector: process count differs from snapshot");
    for (Rng &r : processRng_)
        r.load(ar);

    log_.assign(ar.getSize(), InjectedFault{});
    for (InjectedFault &f : log_) {
        f.spec = loadSpec(ar);
        f.cleared = ar.getBool();
        f.clearedAt = ar.getF64();
    }
    cleared_ = ar.getU64();
    tracker_.loadState(ar);

    // Re-create the pending events at their exact saved (when, key):
    // the callbacks are rebuilt with identical shapes, so dispatch is
    // indistinguishable from the uninterrupted run.
    std::size_t n = ar.getSize();
    specEvents_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Seconds when = ar.getF64();
        const std::uint64_t key = ar.getU64();
        const FaultSpec s = loadSpec(ar);
        specEvents_.emplace_back(
            eq.restoreEvent(when, key, [this, s] { apply(s); }), s);
    }

    if (ar.getSize() != arrivalIds_.size())
        throw snapshot::SnapshotError(
            "FaultInjector: arrival-process count differs from snapshot");
    for (std::size_t process = 0; process < arrivalIds_.size();
         ++process) {
        arrivalIds_[process] = 0;
        if (!ar.getBool())
            continue;
        const Seconds when = ar.getF64();
        const std::uint64_t key = ar.getU64();
        arrivalIds_[process] = eq.restoreEvent(
            when, key, [this, process] {
                fireProcess(process);
                scheduleNextArrival(process);
            });
    }

    n = ar.getSize();
    clearEvents_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Seconds when = ar.getF64();
        const std::uint64_t key = ar.getU64();
        const std::size_t logIdx = ar.getU64();
        if (logIdx >= log_.size())
            throw snapshot::SnapshotError(
                "FaultInjector: clear event references a log entry "
                "beyond the snapshot");
        clearEvents_.emplace_back(
            eq.restoreEvent(when, key,
                            [this, logIdx] { clearFault(logIdx); }),
            logIdx);
    }
}

void
installFaultPlan(core::ExperimentConfig &cfg, FaultPlan plan)
{
    if (!plan.enabled())
        return; // clean path: bit-identical to a fault-free build
    cfg.extensionFactory =
        [plan = std::move(plan)](core::InSituSystem &plant,
                                 sim::Simulation &sim) {
            return std::make_unique<FaultInjector>(plant, sim, plan);
        };
}

} // namespace insure::fault
