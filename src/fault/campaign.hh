/**
 * @file
 * Fault campaigns: seeded batch sweeps of fault-injected runs.
 *
 * A campaign replays one experiment configuration N times on the PR-1
 * batch runner (deterministic per-run child seeds from a master seed),
 * installs the same FaultPlan on every run — each run's injector
 * derives its streams from that run's child seed, so occurrences
 * differ per run but reproduce exactly — and aggregates per-run
 * outcomes plus resilience metrics into a CampaignSummary that
 * serialises to JSON (bench/bench_fault_campaign).
 */

#ifndef INSURE_FAULT_CAMPAIGN_HH
#define INSURE_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "fault/fault_plan.hh"
#include "harness/resilient_runner.hh"
#include "validate/invariant_checker.hh"

namespace insure::fault {

/** Configuration of one campaign. */
struct CampaignConfig {
    /** Per-run experiment (workload, weather, duration, manager). */
    core::ExperimentConfig base;
    /** The fault plan installed on every run. */
    FaultPlan plan;
    /** Seeded runs to execute. */
    std::size_t runs = 50;
    /** Master seed; per-run child seeds derive from it in run order. */
    std::uint64_t masterSeed = kDefaultSeed;
    /** Worker threads (0 = default). */
    unsigned jobs = 0;
    /**
     * Invariant policy attached to every run. Throw records a violating
     * run as failed (the sweep survives); Log keeps counts only.
     */
    validate::Policy policy = validate::Policy::Log;
    /** Optional progress hook (forwarded to the batch runner). */
    std::function<void(std::size_t done, std::size_t total)> progress;
    /**
     * Self-healing execution policy (checkpoints, watchdog, retry,
     * resume). With every field at its default the campaign runs on the
     * plain BatchRunner — the exact pre-existing code path.
     */
    harness::ResilientOptions resilient;
    /**
     * Optional per-run config mutation, applied to run @p i's config
     * after the base copy but before the fault plan and invariant
     * checker are installed. Lets a sweep vary policy parameters across
     * runs (e.g. the distributed SweepSpec's policy grid) while keeping
     * materialisation inside buildCampaignRunSpec, the single place a
     * run spec is ever constructed.
     */
    std::function<void(std::size_t i, core::ExperimentConfig &)> perRunTweak;
};

/** Per-run campaign outcome. */
struct CampaignRun {
    std::string label;
    std::uint64_t seed = 0;
    bool failed = false;
    std::string error;
    std::uint64_t invariantViolations = 0;
    core::ResilienceMetrics resilience;
    double uptime = 0.0;
    double processedGb = 0.0;
    /** SLO summary; set only for interactive-workload runs. */
    std::optional<interactive::SloReport> slo;
};

/** Campaign-level aggregates (completed runs only). */
struct CampaignSummary {
    CampaignConfig config;
    core::SweepSummary sweep;
    std::vector<CampaignRun> perRun;

    // Aggregated resilience over completed runs.
    std::uint64_t faultsInjected = 0;
    std::uint64_t faultsCleared = 0;
    std::uint64_t detectedFaults = 0;
    std::uint64_t quarantines = 0;
    /** Mean of per-run mean TTD over runs with a detection, seconds. */
    double meanTimeToDetect = 0.0;
    Seconds maxTimeToDetect = 0.0;
    double meanTimeToRecover = 0.0;
    Seconds maxTimeToRecover = 0.0;
    Seconds outageSeconds = 0.0;
    Seconds unsafeOperationSeconds = 0.0;
    double energyLostKwh = 0.0;
    double lostVmHours = 0.0;
    std::uint64_t invariantViolations = 0;
};

/** Canonical label of campaign run @p i ("run0042"). */
std::string campaignRunLabel(std::size_t i);

/**
 * Materialise run @p i of a campaign: base config copy, perRunTweak,
 * fault plan, invariant checker, canonical label. The seed is NOT set
 * here — the execution engine derives it from the master seed (see
 * harness::deriveChildSeeds). Every execution path — runFaultCampaign's
 * in-process sweep and every dispatch worker of a distributed campaign
 * (src/dispatch) — builds its specs through this one function, which is
 * what makes a run's behaviour a pure function of (config, index) and
 * the distributed output byte-identical to the single-process oracle.
 */
core::RunSpec buildCampaignRunSpec(const CampaignConfig &cfg, std::size_t i);

/**
 * Aggregate per-run results (in run order, one per campaign run) into a
 * CampaignSummary. Shared by runFaultCampaign and the dispatch czar,
 * which aggregates results collected from remote workers.
 */
CampaignSummary summarizeCampaign(const CampaignConfig &cfg,
                                  const std::vector<core::RunResult> &results);

/** Execute a campaign (see file comment). */
CampaignSummary runFaultCampaign(const CampaignConfig &cfg);

/** Serialise a campaign summary as JSON. */
void writeCampaignJson(const CampaignSummary &summary, std::ostream &os);

/** Human-readable one-screen summary. */
std::string formatCampaignSummary(const CampaignSummary &summary);

} // namespace insure::fault

#endif // INSURE_FAULT_CAMPAIGN_HH
