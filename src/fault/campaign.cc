#include "fault/campaign.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "fault/fault_injector.hh"
#include "harness/batch_runner.hh"

namespace insure::fault {

namespace {

/** printf-style formatting into a std::string. */
std::string
strf(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
campaignRunLabel(std::size_t i)
{
    return strf("run%04zu", i);
}

core::RunSpec
buildCampaignRunSpec(const CampaignConfig &cfg, std::size_t i)
{
    core::RunSpec spec;
    spec.label = campaignRunLabel(i);
    spec.config = cfg.base;
    if (cfg.perRunTweak)
        cfg.perRunTweak(i, spec.config);
    installFaultPlan(spec.config, cfg.plan);
    if (cfg.policy != validate::Policy::Off)
        validate::attachInvariantChecker(spec.config, cfg.policy);
    return spec;
}

CampaignSummary
runFaultCampaign(const CampaignConfig &cfg)
{
    std::vector<core::RunSpec> specs;
    specs.reserve(cfg.runs);
    for (std::size_t i = 0; i < cfg.runs; ++i)
        specs.push_back(buildCampaignRunSpec(cfg, i));

    harness::BatchRunner::Progress progress;
    if (cfg.progress) {
        progress = [&cfg](const core::RunResult &, std::size_t done,
                          std::size_t total) {
            cfg.progress(done, total);
        };
    }
    // The resilient engine engages only when asked for: otherwise the
    // campaign takes the identical plain-BatchRunner path it always has.
    const bool resilient = !cfg.resilient.stateDir.empty() ||
                           cfg.resilient.watchdogSeconds > 0.0 ||
                           cfg.resilient.checkpointInterval > 0.0;
    std::vector<core::RunResult> results;
    if (resilient) {
        harness::ResilientOptions opts = cfg.resilient;
        if (opts.jobs == 0)
            opts.jobs = cfg.jobs;
        harness::ResilientRunner runner(std::move(opts));
        results = runner.runSeeded(std::move(specs), cfg.masterSeed,
                                   progress);
    } else {
        harness::BatchRunner runner(cfg.jobs);
        results =
            runner.runSeeded(std::move(specs), cfg.masterSeed, progress);
    }
    return summarizeCampaign(cfg, results);
}

CampaignSummary
summarizeCampaign(const CampaignConfig &cfg,
                  const std::vector<core::RunResult> &results)
{
    CampaignSummary s;
    s.config = cfg;
    s.sweep = core::mergeResults(results);

    double ttd_mean_sum = 0.0, ttr_mean_sum = 0.0;
    std::size_t ttd_runs = 0, ttr_runs = 0;
    for (const core::RunResult &r : results) {
        CampaignRun run;
        run.label = r.label;
        run.seed = r.seed;
        run.failed = r.failed;
        run.error = r.error;
        if (!r.failed) {
            run.invariantViolations = r.result.invariantViolations;
            run.uptime = r.result.metrics.uptime;
            run.processedGb = r.result.metrics.processedGb;
            if (r.result.resilience)
                run.resilience = *r.result.resilience;
            run.slo = r.result.slo;
            const core::ResilienceMetrics &m = run.resilience;
            s.faultsInjected += m.faultsInjected;
            s.faultsCleared += m.faultsCleared;
            s.detectedFaults += m.detectedFaults;
            s.quarantines += m.quarantines;
            if (m.detectedFaults > 0 && m.meanTimeToDetect > 0.0) {
                ttd_mean_sum += m.meanTimeToDetect;
                ++ttd_runs;
            }
            s.maxTimeToDetect =
                std::max(s.maxTimeToDetect, m.maxTimeToDetect);
            if (m.meanTimeToRecover > 0.0) {
                ttr_mean_sum += m.meanTimeToRecover;
                ++ttr_runs;
            }
            s.maxTimeToRecover =
                std::max(s.maxTimeToRecover, m.maxTimeToRecover);
            s.outageSeconds += m.outageSeconds;
            s.unsafeOperationSeconds += m.unsafeOperationSeconds;
            s.energyLostKwh += m.energyLostKwh;
            s.lostVmHours += m.lostVmHours;
            s.invariantViolations += run.invariantViolations;
        }
        s.perRun.push_back(std::move(run));
    }
    if (ttd_runs > 0)
        s.meanTimeToDetect =
            ttd_mean_sum / static_cast<double>(ttd_runs);
    if (ttr_runs > 0)
        s.meanTimeToRecover =
            ttr_mean_sum / static_cast<double>(ttr_runs);
    return s;
}

void
writeCampaignJson(const CampaignSummary &s, std::ostream &os)
{
    os << "{\n";
    os << strf("  \"runs\": %zu,\n", s.sweep.runs);
    os << strf("  \"failed_runs\": %zu,\n", s.sweep.failedRuns);
    os << strf("  \"master_seed\": %llu,\n",
               static_cast<unsigned long long>(s.config.masterSeed));
    os << strf("  \"simulated_seconds\": %.1f,\n",
               s.sweep.simulatedSeconds);
    os << "  \"plan\": {\n";
    os << strf("    \"scheduled\": %zu,\n", s.config.plan.scheduled.size());
    os << "    \"processes\": [";
    for (std::size_t i = 0; i < s.config.plan.processes.size(); ++i) {
        const auto &p = s.config.plan.processes[i];
        os << (i ? ", " : "")
           << strf("{\"kind\": \"%s\", \"rate_per_hour\": %.6f}",
                   faultKindName(p.kind), p.ratePerHour);
    }
    os << "]\n  },\n";
    os << "  \"resilience\": {\n";
    os << strf("    \"faults_injected\": %llu,\n",
               static_cast<unsigned long long>(s.faultsInjected));
    os << strf("    \"faults_cleared\": %llu,\n",
               static_cast<unsigned long long>(s.faultsCleared));
    os << strf("    \"detected_faults\": %llu,\n",
               static_cast<unsigned long long>(s.detectedFaults));
    os << strf("    \"quarantines\": %llu,\n",
               static_cast<unsigned long long>(s.quarantines));
    os << strf("    \"mean_time_to_detect_s\": %.1f,\n",
               s.meanTimeToDetect);
    os << strf("    \"max_time_to_detect_s\": %.1f,\n", s.maxTimeToDetect);
    os << strf("    \"mean_time_to_recover_s\": %.1f,\n",
               s.meanTimeToRecover);
    os << strf("    \"max_time_to_recover_s\": %.1f,\n",
               s.maxTimeToRecover);
    os << strf("    \"outage_seconds\": %.1f,\n", s.outageSeconds);
    os << strf("    \"unsafe_operation_seconds\": %.1f,\n",
               s.unsafeOperationSeconds);
    os << strf("    \"energy_lost_kwh\": %.6f,\n", s.energyLostKwh);
    os << strf("    \"lost_vm_hours\": %.4f,\n", s.lostVmHours);
    os << strf("    \"invariant_violations\": %llu\n",
               static_cast<unsigned long long>(s.invariantViolations));
    os << "  },\n";
    os << strf("  \"mean_uptime\": %.4f,\n", s.sweep.meanUptime);
    os << strf("  \"min_uptime\": %.4f,\n", s.sweep.minUptime);
    os << strf("  \"processed_gb\": %.3f,\n", s.sweep.processedGb);
    os << "  \"per_run\": [\n";
    for (std::size_t i = 0; i < s.perRun.size(); ++i) {
        const CampaignRun &r = s.perRun[i];
        os << "    {"
           << strf("\"label\": \"%s\", \"seed\": %llu, ",
                   jsonEscape(r.label).c_str(),
                   static_cast<unsigned long long>(r.seed));
        if (r.failed) {
            os << strf("\"outcome\": \"failed\", \"error\": \"%s\"",
                       jsonEscape(r.error).c_str());
        } else {
            const core::ResilienceMetrics &m = r.resilience;
            os << strf("\"outcome\": \"completed\", "
                       "\"faults\": %llu, \"detected\": %llu, "
                       "\"quarantines\": %llu, \"violations\": %llu, "
                       "\"uptime\": %.4f, \"processed_gb\": %.3f",
                       static_cast<unsigned long long>(m.faultsInjected),
                       static_cast<unsigned long long>(m.detectedFaults),
                       static_cast<unsigned long long>(m.quarantines),
                       static_cast<unsigned long long>(
                           r.invariantViolations),
                       r.uptime, r.processedGb);
            if (r.slo)
                os << strf(", \"slo_p99_s\": %.6f, "
                           "\"slo_miss_rate\": %.6f, "
                           "\"cache_hit_rate\": %.6f",
                           r.slo->p99, r.slo->deadlineMissRate,
                           r.slo->cacheHitRate);
        }
        os << (i + 1 < s.perRun.size() ? "},\n" : "}\n");
    }
    os << "  ]\n";
    os << "}\n";
}

std::string
formatCampaignSummary(const CampaignSummary &s)
{
    std::string out;
    out += strf("fault campaign: %zu runs (%zu failed), seed %llu\n",
                s.sweep.runs, s.sweep.failedRuns,
                static_cast<unsigned long long>(s.config.masterSeed));
    out += strf("  faults injected %llu, cleared %llu, detected %llu, "
                "quarantines %llu\n",
                static_cast<unsigned long long>(s.faultsInjected),
                static_cast<unsigned long long>(s.faultsCleared),
                static_cast<unsigned long long>(s.detectedFaults),
                static_cast<unsigned long long>(s.quarantines));
    out += strf("  TTD mean %.0f s / max %.0f s, TTR mean %.0f s / max "
                "%.0f s\n",
                s.meanTimeToDetect, s.maxTimeToDetect,
                s.meanTimeToRecover, s.maxTimeToRecover);
    out += strf("  outage %.0f s, unsafe operation %.0f s, energy lost "
                "%.3f kWh, lost VM-hours %.2f\n",
                s.outageSeconds, s.unsafeOperationSeconds,
                s.energyLostKwh, s.lostVmHours);
    out += strf("  mean uptime %.3f (min %.3f), processed %.1f GB, "
                "invariant violations %llu\n",
                s.sweep.meanUptime, s.sweep.minUptime,
                s.sweep.processedGb,
                static_cast<unsigned long long>(s.invariantViolations));
    for (const std::string &f : s.sweep.failures)
        out += "  failed: " + f + "\n";
    return out;
}

} // namespace insure::fault
