#include "fault/fault_plan.hh"

namespace insure::fault {

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::BatteryCapacityFade:
        return "battery-capacity-fade";
      case FaultKind::BatteryOpenCircuit:
        return "battery-open-circuit";
      case FaultKind::BatteryInternalShort:
        return "battery-internal-short";
      case FaultKind::RelayStuckOpen:
        return "relay-stuck-open";
      case FaultKind::RelayWeldedClosed:
        return "relay-welded-closed";
      case FaultKind::RelayDelayedActuation:
        return "relay-delayed-actuation";
      case FaultKind::SensorBias:
        return "sensor-bias";
      case FaultKind::SensorNoise:
        return "sensor-noise";
      case FaultKind::SensorDropout:
        return "sensor-dropout";
      case FaultKind::LinkDrop:
        return "link-drop";
      case FaultKind::LinkCorrupt:
        return "link-corrupt";
      case FaultKind::ServerCrash:
        return "server-crash";
      case FaultKind::ServerHang:
        return "server-hang";
    }
    return "unknown";
}

FaultClass
faultClassOf(FaultKind k)
{
    switch (k) {
      case FaultKind::BatteryCapacityFade:
      case FaultKind::BatteryOpenCircuit:
      case FaultKind::BatteryInternalShort:
        return FaultClass::Battery;
      case FaultKind::RelayStuckOpen:
      case FaultKind::RelayWeldedClosed:
      case FaultKind::RelayDelayedActuation:
        return FaultClass::Relay;
      case FaultKind::SensorBias:
      case FaultKind::SensorNoise:
      case FaultKind::SensorDropout:
        return FaultClass::Sensor;
      case FaultKind::LinkDrop:
      case FaultKind::LinkCorrupt:
        return FaultClass::Link;
      case FaultKind::ServerCrash:
      case FaultKind::ServerHang:
        return FaultClass::Server;
    }
    return FaultClass::Battery;
}

const char *
faultClassName(FaultClass c)
{
    switch (c) {
      case FaultClass::Battery:
        return "battery";
      case FaultClass::Relay:
        return "relay";
      case FaultClass::Sensor:
        return "sensor";
      case FaultClass::Link:
        return "link";
      case FaultClass::Server:
        return "server";
    }
    return "unknown";
}

bool
quarantineExpected(FaultKind k)
{
    switch (k) {
      case FaultKind::BatteryOpenCircuit:
      case FaultKind::RelayStuckOpen:
      case FaultKind::RelayWeldedClosed:
      case FaultKind::SensorDropout:
        return true;
      default:
        return false;
    }
}

FaultPlan
makeRatePlan(double ratePerHour, const std::vector<FaultClass> &classes)
{
    // One representative process per class, with defaults chosen to be
    // disruptive but survivable; the per-class rate splits the total so
    // `ratePerHour` means the same thing whatever the class filter.
    struct Proto {
        FaultClass cls;
        FaultKind kind;
        double magnitude;
        Seconds duration;
    };
    static const Proto protos[] = {
        {FaultClass::Battery, FaultKind::BatteryOpenCircuit, 0.0, 1800.0},
        {FaultClass::Battery, FaultKind::BatteryInternalShort, 50.0,
         3600.0},
        {FaultClass::Relay, FaultKind::RelayStuckOpen, 0.0, 1800.0},
        {FaultClass::Relay, FaultKind::RelayDelayedActuation, 3.0, 0.0},
        {FaultClass::Sensor, FaultKind::SensorBias, 0.8, 1800.0},
        {FaultClass::Sensor, FaultKind::SensorDropout, 0.0, 900.0},
        {FaultClass::Link, FaultKind::LinkDrop, 6.0, 0.0},
        {FaultClass::Link, FaultKind::LinkCorrupt, 4.0, 0.0},
        {FaultClass::Server, FaultKind::ServerCrash, 0.0, 0.0},
        {FaultClass::Server, FaultKind::ServerHang, 0.0, 600.0},
    };

    auto wanted = [&](FaultClass c) {
        if (classes.empty())
            return true;
        for (FaultClass w : classes) {
            if (w == c)
                return true;
        }
        return false;
    };

    FaultPlan plan;
    if (ratePerHour <= 0.0)
        return plan;
    unsigned selected = 0;
    for (const Proto &p : protos) {
        if (wanted(p.cls))
            ++selected;
    }
    if (selected == 0)
        return plan;
    for (const Proto &p : protos) {
        if (!wanted(p.cls))
            continue;
        PoissonFaultProcess proc;
        proc.kind = p.kind;
        proc.ratePerHour = ratePerHour / selected;
        proc.magnitude = p.magnitude;
        proc.duration = p.duration;
        plan.processes.push_back(proc);
    }
    return plan;
}

} // namespace insure::fault
