/**
 * @file
 * Declarative fault-injection plans.
 *
 * A FaultPlan describes everything that will go wrong during a run:
 * scheduled one-shot faults (a specific component breaks at a specific
 * time) and Poisson-rate fault processes (component failures arriving as
 * memoryless events over the run). The plan is plain data — the engine
 * that executes it lives in fault_injector.hh — so campaigns can build,
 * copy and ship plans across worker threads freely.
 *
 * Determinism: the injector draws every stochastic choice (arrival
 * times, targets) from tag-derived RNG streams (sim::Rng::derive with
 * sim::streams tags), never from the simulation's ordinal split
 * sequence, so enabling faults cannot perturb the workload or solar
 * streams of the run, and a disabled plan leaves the run bit-identical
 * to one that never linked this subsystem.
 */

#ifndef INSURE_FAULT_FAULT_PLAN_HH
#define INSURE_FAULT_FAULT_PLAN_HH

#include <string>
#include <vector>

#include "sim/units.hh"

namespace insure::fault {

/** Everything that can be broken, by subsystem. */
enum class FaultKind {
    // Battery unit (src/battery).
    /** Sudden capacity fade: capacity scales by `magnitude` (0..1]. */
    BatteryCapacityFade,
    /** Open circuit: the unit breaks its series string (0 V sensed). */
    BatteryOpenCircuit,
    /** Internal short: resting self-discharge multiplied by `magnitude`. */
    BatteryInternalShort,
    // Relay / switch network (src/battery).
    /** Discharge relay stuck open: the string cannot reach the load bus. */
    RelayStuckOpen,
    /** Charge relay welded closed: the string cannot leave the charge bus. */
    RelayWeldedClosed,
    /** The next `magnitude` relay commands are silently dropped. */
    RelayDelayedActuation,
    // Sensor / transducer (src/telemetry).
    /** Additive per-unit voltage bias of `magnitude` volts. */
    SensorBias,
    /** Gaussian per-unit voltage noise, stddev `magnitude` volts. */
    SensorNoise,
    /** Sensor head dead: registers freeze at their last values. */
    SensorDropout,
    // Modbus coordination link (src/telemetry).
    /** The next `magnitude` exchanges time out (stale readings). */
    LinkDrop,
    /** The next `magnitude` responses arrive truncated (CRC failure). */
    LinkCorrupt,
    // Server nodes (src/server).
    /** Hard crash: emergency shutdown, in-flight work lost. */
    ServerCrash,
    /** Hang for `duration` seconds: draws power, does no work. */
    ServerHang,
};

/** Printable name of a fault kind (stable, used in campaign JSON). */
const char *faultKindName(FaultKind k);

/** Broad subsystem class of a fault kind (campaign filtering). */
enum class FaultClass { Battery, Relay, Sensor, Link, Server };

/** The subsystem class a kind belongs to. */
FaultClass faultClassOf(FaultKind k);

/** Printable name of a fault class. */
const char *faultClassName(FaultClass c);

/**
 * True for kinds whose presence an InSURE controller is expected to
 * detect via telemetry plausibility and answer with a quarantine (the
 * time-to-detect / unsafe-operation metrics are computed over these).
 */
bool quarantineExpected(FaultKind k);

/** One scheduled fault occurrence. */
struct FaultSpec {
    FaultKind kind = FaultKind::BatteryOpenCircuit;
    /** Injection time, simulated seconds. */
    Seconds at = 0.0;
    /** Cabinet index (battery/relay/sensor) or node index (server). */
    unsigned target = 0;
    /** Unit within the cabinet (battery faults only). */
    unsigned unit = 0;
    /** Kind-specific magnitude (factor, volts, multiplier or count). */
    double magnitude = 0.0;
    /**
     * Active time before the fault clears, seconds; <= 0 means
     * permanent. Kinds that are one-shot bursts (LinkDrop, ServerCrash)
     * ignore it, except ServerHang which hangs for this long.
     */
    Seconds duration = 0.0;
};

/**
 * A memoryless fault process: occurrences of `kind` arrive at
 * `ratePerHour`, each hitting a uniformly chosen valid target.
 */
struct PoissonFaultProcess {
    FaultKind kind = FaultKind::BatteryOpenCircuit;
    /** Mean occurrences per simulated hour (0 disables the process). */
    double ratePerHour = 0.0;
    /** Magnitude applied to every occurrence (kind-specific). */
    double magnitude = 0.0;
    /** Duration applied to every occurrence (see FaultSpec::duration). */
    Seconds duration = 0.0;
};

/** The full fault schedule of one run. */
struct FaultPlan {
    std::vector<FaultSpec> scheduled;
    std::vector<PoissonFaultProcess> processes;

    /**
     * True when the plan can inject anything. A disabled plan installs
     * no extension at all: the run takes the exact clean code path.
     */
    bool enabled() const
    {
        if (!scheduled.empty())
            return true;
        for (const auto &p : processes) {
            if (p.ratePerHour > 0.0)
                return true;
        }
        return false;
    }
};

/**
 * Build a Poisson plan spreading `ratePerHour` evenly across the fault
 * classes named in `classes` (empty = all five), with per-kind default
 * magnitudes/durations chosen to be disruptive but survivable.
 */
FaultPlan makeRatePlan(double ratePerHour,
                       const std::vector<FaultClass> &classes = {});

} // namespace insure::fault

#endif // INSURE_FAULT_FAULT_PLAN_HH
