#include "harness/campaign_journal.hh"

#include <unistd.h>

#include <filesystem>

#include "sim/logging.hh"

namespace insure::harness {

namespace {

std::string
runFilePath(const std::string &dir, std::size_t i, const char *suffix)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "/run-%04zu.%s", i, suffix);
    return dir + buf;
}

} // namespace

std::string
runResultPath(const std::string &dir, std::size_t i)
{
    return runFilePath(dir, i, "result");
}

std::string
runCheckpointPath(const std::string &dir, std::size_t i)
{
    return runFilePath(dir, i, "ckpt");
}

void
clearCampaignState(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    for (const fs::directory_entry &e : fs::directory_iterator(dir, ec)) {
        const std::string name = e.path().filename().string();
        if (name == "journal.jsonl" || name.rfind("run-", 0) == 0)
            fs::remove(e.path(), ec);
    }
}

namespace {

/** Exception messages land in the journal: keep the JSON valid. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

CampaignJournal::CampaignJournal(const std::string &dir)
{
    if (dir.empty())
        return;
    const std::string path = dir + "/journal.jsonl";
    f_ = std::fopen(path.c_str(), "a");
    if (!f_)
        warn("cannot open campaign journal %s", path.c_str());
}

CampaignJournal::~CampaignJournal()
{
    if (f_)
        std::fclose(f_);
}

void
CampaignJournal::record(std::size_t run, const std::string &label,
                        const char *event, unsigned attempt,
                        const std::string &detail)
{
    if (!f_)
        return;
    const std::lock_guard<std::mutex> lock(mutex_);
    std::fprintf(f_,
                 "{\"run\": %zu, \"label\": \"%s\", \"event\": "
                 "\"%s\", \"attempt\": %u%s%s%s}\n",
                 run, escape(label).c_str(), event, attempt,
                 detail.empty() ? "" : ", \"detail\": \"",
                 escape(detail).c_str(), detail.empty() ? "" : "\"");
    std::fflush(f_);
    ::fsync(::fileno(f_));
}

} // namespace insure::harness
