/**
 * @file
 * Batch experiment runner: executes N independent Simulation instances
 * concurrently on a small thread pool.
 *
 * Determinism contract: per-run results are bit-identical whether a
 * batch executes on 1 thread or 16. Two properties guarantee this —
 * every run's seed is fixed *before* any worker starts (child seeds are
 * derived from the master seed sequentially, in spec order, via
 * Rng::split()), and a Simulation shares no mutable state with its
 * siblings (the kernel was audited for statics/singletons; the only
 * global, the log level, is atomic and read-only during a batch).
 */

#ifndef INSURE_HARNESS_BATCH_RUNNER_HH
#define INSURE_HARNESS_BATCH_RUNNER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/experiment.hh"

namespace insure::harness {

/**
 * Number of hardware threads, resolved once and cached (minimum 1).
 * std::thread::hardware_concurrency() may issue a system call per query,
 * so callers should use this instead.
 */
unsigned hardwareConcurrency();

/**
 * Clamp a requested worker-thread count to the hardware concurrency,
 * warning (with @p origin naming the source of the request, e.g.
 * "--jobs") when the request would oversubscribe the machine.
 */
unsigned clampJobs(unsigned jobs, const char *origin);

/**
 * Worker-thread count a runner uses when none is given explicitly: the
 * INSURE_JOBS environment variable when set to a positive integer
 * (clamped to the hardware concurrency, with a warning), otherwise the
 * hardware concurrency (minimum 1).
 */
unsigned defaultJobs();

/**
 * THE campaign seed derivation: the i-th run of a sweep always receives
 * the i-th split of Rng(masterSeed), derived sequentially in run order
 * before any run starts. Every execution engine — BatchRunner,
 * ResilientRunner, and the distributed campaign czar (src/dispatch) —
 * derives per-run seeds through this one function, so a run's seed is a
 * pure function of (masterSeed, run index) and can never drift between
 * the single-process oracle and a remote worker.
 */
std::vector<std::uint64_t> deriveChildSeeds(std::uint64_t masterSeed,
                                            std::size_t count);

/** Assign deriveChildSeeds(masterSeed, specs.size()) into the specs. */
void assignChildSeeds(std::vector<core::RunSpec> &specs,
                      std::uint64_t masterSeed);

/** Executes batches of independent experiment runs concurrently. */
class BatchRunner
{
  public:
    /**
     * Invoked once per completed run, serialised under a lock (safe to
     * print from). @p done counts completed runs including this one.
     */
    using Progress = std::function<void(const core::RunResult &,
                                        std::size_t done,
                                        std::size_t total)>;

    /**
     * @param jobs worker threads; 0 selects defaultJobs(). A request
     * above the hardware concurrency warns and is clamped — the runs
     * are CPU-bound, so oversubscription only adds context switches.
     */
    explicit BatchRunner(unsigned jobs = 0);

    /** The worker-thread count this runner executes with. */
    unsigned jobs() const { return jobs_; }

    /**
     * Execute every spec with the seed already present in its config.
     * Results are returned in spec order regardless of completion order.
     */
    std::vector<core::RunResult> run(const std::vector<core::RunSpec> &specs,
                                     const Progress &progress = {}) const;

    /**
     * Derive a child seed for every spec from @p masterSeed — in spec
     * order, before any run starts — then execute. Re-running with the
     * same master seed and spec order reproduces every run exactly, at
     * any job count.
     */
    std::vector<core::RunResult> runSeeded(std::vector<core::RunSpec> specs,
                                           std::uint64_t masterSeed,
                                           const Progress &progress = {}) const;

  private:
    unsigned jobs_;
};

} // namespace insure::harness

#endif // INSURE_HARNESS_BATCH_RUNNER_HH
