#include "harness/batch_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace insure::harness {

unsigned
hardwareConcurrency()
{
    // hardware_concurrency() may probe the OS on every call; the value
    // cannot change under us, so resolve it exactly once.
    static const unsigned hw = [] {
        const unsigned probed = std::thread::hardware_concurrency();
        return probed > 0 ? probed : 1u;
    }();
    return hw;
}

unsigned
clampJobs(unsigned jobs, const char *origin)
{
    const unsigned hw = hardwareConcurrency();
    if (jobs > hw) {
        warn("%s requests %u worker threads but only %u hardware "
             "threads exist; clamping to %u",
             origin, jobs, hw, hw);
        return hw;
    }
    return jobs;
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("INSURE_JOBS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return clampJobs(static_cast<unsigned>(v), "INSURE_JOBS");
        warn("INSURE_JOBS='%s' is not a positive integer; ignoring", env);
    }
    return hardwareConcurrency();
}

std::vector<std::uint64_t>
deriveChildSeeds(std::uint64_t masterSeed, std::size_t count)
{
    // Sequential, in run order, before any worker starts: the schedule
    // cannot influence any run, and run i's seed is reproducible from
    // (masterSeed, i) alone.
    Rng master(masterSeed);
    std::vector<std::uint64_t> seeds(count);
    for (std::uint64_t &s : seeds)
        s = master.splitSeed();
    return seeds;
}

void
assignChildSeeds(std::vector<core::RunSpec> &specs,
                 std::uint64_t masterSeed)
{
    const std::vector<std::uint64_t> seeds =
        deriveChildSeeds(masterSeed, specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        specs[i].config.seed = seeds[i];
}

BatchRunner::BatchRunner(unsigned jobs)
    : jobs_(jobs > 0 ? clampJobs(jobs, "--jobs") : defaultJobs())
{
}

std::vector<core::RunResult>
BatchRunner::run(const std::vector<core::RunSpec> &specs,
                 const Progress &progress) const
{
    std::vector<core::RunResult> results(specs.size());
    std::atomic<std::size_t> nextIndex{0};
    std::size_t done = 0;
    std::mutex progressMutex;

    auto runOne = [&](std::size_t i) {
        const core::RunSpec &spec = specs[i];
        core::RunResult &out = results[i];
        out.label = spec.label;
        out.seed = spec.config.seed;
        out.simulatedSeconds = spec.config.duration;
        const auto t0 = std::chrono::steady_clock::now();
        // A run that throws (crash-testing campaigns produce these on
        // purpose, e.g. validate::Policy::Throw) is recorded as a failed
        // outcome; the sweep and its sibling runs carry on.
        try {
            out.result = core::runExperiment(spec.config);
        } catch (const std::exception &e) {
            out.failed = true;
            out.error = e.what();
        } catch (...) {
            out.failed = true;
            out.error = "unknown exception";
        }
        out.wallSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (progress) {
            const std::lock_guard<std::mutex> lock(progressMutex);
            progress(out, ++done, specs.size());
        }
    };

    const std::size_t workers =
        std::min<std::size_t>(jobs_, specs.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            runOne(i);
        return results;
    }

    auto worker = [&] {
        for (std::size_t i = nextIndex.fetch_add(1); i < specs.size();
             i = nextIndex.fetch_add(1)) {
            runOne(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return results;
}

std::vector<core::RunResult>
BatchRunner::runSeeded(std::vector<core::RunSpec> specs,
                       std::uint64_t masterSeed,
                       const Progress &progress) const
{
    assignChildSeeds(specs, masterSeed);
    return run(specs, progress);
}

} // namespace insure::harness
