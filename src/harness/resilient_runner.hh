/**
 * @file
 * Self-healing batch campaigns on top of the PR-1 BatchRunner model:
 * the same deterministic seeded fan-out, plus crash and hang survival.
 *
 * Each run executes in interval-sized chunks through the snapshotter,
 * committing an atomic checkpoint file between chunks. A journaled
 * manifest (JSONL, flushed + fsynced per record) and per-run result
 * files in the campaign state directory make the whole sweep
 * re-entrant: a re-invocation with resume=true skips completed runs
 * (their cached results are returned verbatim, so the campaign output
 * is byte-identical to an uninterrupted sweep) and restarts
 * interrupted runs from their last checkpoint — kill -9 at any instant
 * costs at most one checkpoint interval of one run.
 *
 * A cooperative wall-clock watchdog bounds each run: chunk boundaries
 * check a deadline, and a run that exceeds it is abandoned and retried
 * with exponential backoff under a freshly derived seed (bounded
 * attempts). Only watchdog timeouts retry — a run that *throws* fails
 * deterministically (validate::Policy::Throw surfaces invariant
 * breaches this way on purpose) and is recorded as a failed result,
 * exactly as the plain BatchRunner records it.
 */

#ifndef INSURE_HARNESS_RESILIENT_RUNNER_HH
#define INSURE_HARNESS_RESILIENT_RUNNER_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/batch_runner.hh"

namespace insure::harness {

class CampaignJournal;

/** Execution policy of a self-healing campaign. */
struct ResilientOptions {
    /** Worker threads; 0 selects defaultJobs(). */
    unsigned jobs = 0;
    /**
     * Campaign state directory: journal, per-run checkpoints and result
     * files live here (created if missing). Empty disables all
     * persistence — watchdog and retry still apply.
     */
    std::string stateDir;
    /**
     * Reuse state found in stateDir: completed runs are served from
     * their result files (only when their recorded spec label and seed
     * match this campaign's), interrupted runs restart from their last
     * checkpoint. Without this flag existing campaign state in the
     * directory is cleared before the sweep starts.
     */
    bool resume = false;
    /**
     * Simulated seconds between mid-run checkpoints (0 disables
     * checkpoint files; runs still chunk for the watchdog).
     */
    Seconds checkpointInterval = 0.0;
    /** Wall-clock budget per run attempt, seconds (0 = no watchdog). */
    double watchdogSeconds = 0.0;
    /** Retry attempts after a watchdog timeout. */
    unsigned maxRetries = 2;
    /** Base of the exponential retry backoff, wall seconds. */
    double backoffSeconds = 1.0;
};

/** Executes seeded sweeps that survive crashes, kills and hangs. */
class ResilientRunner
{
  public:
    using Progress = BatchRunner::Progress;

    explicit ResilientRunner(ResilientOptions opts);
    ~ResilientRunner();

    /** The worker-thread count this runner executes with. */
    unsigned jobs() const { return jobs_; }

    const ResilientOptions &options() const { return opts_; }

    /**
     * Derive a child seed for every spec from @p masterSeed (identical
     * derivation to BatchRunner::runSeeded, so the two runners produce
     * the same runs), then execute under the resilience policy.
     * Results are returned in spec order.
     */
    std::vector<core::RunResult> runSeeded(std::vector<core::RunSpec> specs,
                                           std::uint64_t masterSeed,
                                           const Progress &progress = {});

    /**
     * Execute ONE spec under the resilience policy, as run @p index of
     * the campaign: checkpoint/cache files are named run-<index>.*, and
     * the spec's seed must already be set (no derivation happens here).
     *
     * This is the execution engine runSeeded fans out over, exposed so
     * a dispatch worker (src/dispatch) leased run @p index of a sharded
     * campaign executes it through the exact same code path — cache
     * serve on resume, checkpoint/self-heal, watchdog + reseeded
     * retries — that the single-process campaign uses. Thread-safe.
     */
    core::RunResult runOne(const core::RunSpec &spec, std::size_t index);

  private:
    /** Create/clear the state dir and open the journal, exactly once. */
    void ensureCampaignState();

    ResilientOptions opts_;
    unsigned jobs_;
    std::once_flag stateOnce_;
    std::unique_ptr<CampaignJournal> journal_;
};

} // namespace insure::harness

#endif // INSURE_HARNESS_RESILIENT_RUNNER_HH
