/**
 * @file
 * Archive codec for core::RunResult — the persistence format of a
 * completed (or deterministically failed) campaign run.
 *
 * One codec serves every path that moves finished runs around: the
 * ResilientRunner's per-run result-file cache (PR 5), and the dispatch
 * layer's RESULT frames that ship a worker's finished run back to the
 * campaign czar (src/dispatch). Because both read and write the same
 * byte grammar, a resumed campaign can serve results produced by a
 * remote worker verbatim, and vice versa.
 *
 * Every serialized result carries a run identity (spec label + the
 * campaign-derived child seed) that the reader verifies, so a state
 * directory reused across campaigns — or a confused worker answering
 * for the wrong run — fails loudly with RunIdentityMismatch instead of
 * silently contributing the wrong numbers to a sweep.
 */

#ifndef INSURE_HARNESS_RUN_RESULT_IO_HH
#define INSURE_HARNESS_RUN_RESULT_IO_HH

#include <cstdint>
#include <string>

#include "core/experiment.hh"
#include "snapshot/archive.hh"

namespace insure::harness {

/** Raised when a serialized result belongs to a different run. */
class RunIdentityMismatch : public snapshot::SnapshotError
{
  public:
    using snapshot::SnapshotError::SnapshotError;
};

/**
 * Serialize @p r. @p specSeed is the campaign-derived child seed of the
 * spec that produced @p r (r.seed may differ after a reseeded retry).
 * It is the identity key loadRunResult verifies.
 */
void saveRunResult(snapshot::Archive &ar, const core::RunResult &r,
                   std::uint64_t specSeed);

/**
 * Deserialize into @p r, first verifying the recorded identity against
 * @p wantLabel / @p wantSeed. Throws RunIdentityMismatch on an identity
 * mismatch and snapshot::SnapshotError on malformed bytes.
 */
void loadRunResult(snapshot::Archive &ar, core::RunResult &r,
                   const std::string &wantLabel, std::uint64_t wantSeed);

} // namespace insure::harness

#endif // INSURE_HARNESS_RUN_RESULT_IO_HH
