/**
 * @file
 * The campaign manifest: one JSON object per line, appended and fsynced
 * per record, so the journal survives whatever killed the process and
 * `--resume` (and the operator) can reconstruct exactly how far a sweep
 * got.
 *
 * Introduced by the PR-5 ResilientRunner; the distributed campaign czar
 * (src/dispatch) writes the identical record format into its own state
 * directory, so a resumed distributed campaign and a resumed
 * single-process campaign read the same journal grammar. Event strings
 * are free-form: the runner uses start/retry/resumed/done/failed/
 * cached/cache-mismatch/cache-corrupt/checkpoint-corrupt/timeout, the
 * czar adds dispatch/requeued/worker-lost/duplicate.
 */

#ifndef INSURE_HARNESS_CAMPAIGN_JOURNAL_HH
#define INSURE_HARNESS_CAMPAIGN_JOURNAL_HH

#include <cstdio>
#include <mutex>
#include <string>

namespace insure::harness {

/** Path of run @p i's cached-result file in state directory @p dir. */
std::string runResultPath(const std::string &dir, std::size_t i);

/** Path of run @p i's mid-run checkpoint file in @p dir. */
std::string runCheckpointPath(const std::string &dir, std::size_t i);

/**
 * Remove campaign state (journal.jsonl and run-* files) from @p dir.
 * A fresh (non-resume) campaign must not inherit whatever previously
 * used the directory: the append-mode journal would interleave records
 * from different campaigns, and leftover result/checkpoint files from
 * a larger earlier sweep could be served by a later --resume.
 */
void clearCampaignState(const std::string &dir);

/** Append-only fsynced JSONL campaign manifest (thread-safe). */
class CampaignJournal
{
  public:
    /**
     * Open (append mode) `<dir>/journal.jsonl`. An empty @p dir makes
     * every record a no-op — campaigns without a state directory pay
     * nothing. A directory that cannot be opened warns and disables the
     * journal (the campaign itself still runs).
     */
    explicit CampaignJournal(const std::string &dir);

    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    /** True when records actually land in a file. */
    bool open() const { return f_ != nullptr; }

    /**
     * Append one record: {"run": N, "label": "...", "event": "...",
     * "attempt": N[, "detail": "..."]} — flushed and fsynced before
     * returning, so the record survives a kill -9 at any instant.
     */
    void record(std::size_t run, const std::string &label,
                const char *event, unsigned attempt,
                const std::string &detail = {});

  private:
    std::FILE *f_ = nullptr;
    std::mutex mutex_;
};

} // namespace insure::harness

#endif // INSURE_HARNESS_CAMPAIGN_JOURNAL_HH
