#include "harness/run_result_io.hh"

namespace insure::harness {

namespace {

void
saveMetrics(snapshot::Archive &ar, const core::Metrics &m)
{
    ar.putF64(m.uptime);
    ar.putF64(m.throughputGbPerHour);
    ar.putF64(m.meanLatency);
    ar.putF64(m.eBufferAvailability);
    ar.putF64(m.serviceLifeYears);
    ar.putF64(m.workNormalizedLifeYears);
    ar.putF64(m.perfPerAh);
    ar.putF64(m.processedGb);
    ar.putF64(m.solarOfferedKwh);
    ar.putF64(m.greenUsedKwh);
    ar.putF64(m.loadKwh);
    ar.putF64(m.effectiveKwh);
    ar.putF64(m.secondaryKwh);
    ar.putF64(m.bufferThroughputAh);
    ar.putF64(m.bufferImbalanceAh);
    ar.putU64(m.bufferTrips);
    ar.putU64(m.emergencyShutdowns);
    ar.putU64(m.onOffCycles);
    ar.putU64(m.vmCtrlOps);
    ar.putU64(m.powerCtrlOps);
}

void
loadMetrics(snapshot::Archive &ar, core::Metrics &m)
{
    m.uptime = ar.getF64();
    m.throughputGbPerHour = ar.getF64();
    m.meanLatency = ar.getF64();
    m.eBufferAvailability = ar.getF64();
    m.serviceLifeYears = ar.getF64();
    m.workNormalizedLifeYears = ar.getF64();
    m.perfPerAh = ar.getF64();
    m.processedGb = ar.getF64();
    m.solarOfferedKwh = ar.getF64();
    m.greenUsedKwh = ar.getF64();
    m.loadKwh = ar.getF64();
    m.effectiveKwh = ar.getF64();
    m.secondaryKwh = ar.getF64();
    m.bufferThroughputAh = ar.getF64();
    m.bufferImbalanceAh = ar.getF64();
    m.bufferTrips = ar.getU64();
    m.emergencyShutdowns = ar.getU64();
    m.onOffCycles = ar.getU64();
    m.vmCtrlOps = ar.getU64();
    m.powerCtrlOps = ar.getU64();
}

void
saveLogSummary(snapshot::Archive &ar, const telemetry::DailyLogSummary &l)
{
    ar.putStr(l.label);
    ar.putF64(l.solarBudgetKwh);
    ar.putF64(l.loadKwh);
    ar.putF64(l.effectiveKwh);
    ar.putU64(l.powerCtrlTimes);
    ar.putU64(l.onOffCycles);
    ar.putU64(l.vmCtrlTimes);
    ar.putF64(l.minBatteryVoltage);
    ar.putF64(l.endOfDayVoltage);
    ar.putF64(l.batteryVoltageSigma);
    ar.putF64(l.processedGb);
}

void
loadLogSummary(snapshot::Archive &ar, telemetry::DailyLogSummary &l)
{
    l.label = ar.getStr();
    l.solarBudgetKwh = ar.getF64();
    l.loadKwh = ar.getF64();
    l.effectiveKwh = ar.getF64();
    l.powerCtrlTimes = ar.getU64();
    l.onOffCycles = ar.getU64();
    l.vmCtrlTimes = ar.getU64();
    l.minBatteryVoltage = ar.getF64();
    l.endOfDayVoltage = ar.getF64();
    l.batteryVoltageSigma = ar.getF64();
    l.processedGb = ar.getF64();
}

void
saveResilience(snapshot::Archive &ar, const core::ResilienceMetrics &m)
{
    ar.putU64(m.faultsInjected);
    ar.putU64(m.faultsCleared);
    ar.putU64(m.detectedFaults);
    ar.putU64(m.quarantines);
    ar.putF64(m.meanTimeToDetect);
    ar.putF64(m.maxTimeToDetect);
    ar.putF64(m.meanTimeToRecover);
    ar.putF64(m.maxTimeToRecover);
    ar.putF64(m.outageSeconds);
    ar.putF64(m.pendingDownSeconds);
    ar.putF64(m.unsafeOperationSeconds);
    ar.putF64(m.energyLostKwh);
    ar.putF64(m.lostVmHours);
}

void
loadResilience(snapshot::Archive &ar, core::ResilienceMetrics &m)
{
    m.faultsInjected = ar.getU64();
    m.faultsCleared = ar.getU64();
    m.detectedFaults = ar.getU64();
    m.quarantines = ar.getU64();
    m.meanTimeToDetect = ar.getF64();
    m.maxTimeToDetect = ar.getF64();
    m.meanTimeToRecover = ar.getF64();
    m.maxTimeToRecover = ar.getF64();
    m.outageSeconds = ar.getF64();
    m.pendingDownSeconds = ar.getF64();
    m.unsafeOperationSeconds = ar.getF64();
    m.energyLostKwh = ar.getF64();
    m.lostVmHours = ar.getF64();
}

void
saveSlo(snapshot::Archive &ar, const interactive::SloReport &s)
{
    ar.putU64(s.arrived);
    ar.putU64(s.served);
    ar.putU64(s.cachedHits);
    ar.putU64(s.shed);
    ar.putU64(s.droppedTimeout);
    ar.putU64(s.droppedFault);
    ar.putU64(s.queued);
    ar.putU64(s.missedDeadline);
    ar.putF64(s.p50);
    ar.putF64(s.p95);
    ar.putF64(s.p99);
    ar.putF64(s.deadlineMissRate);
    ar.putF64(s.cacheHitRate);
}

void
loadSlo(snapshot::Archive &ar, interactive::SloReport &s)
{
    s.arrived = ar.getU64();
    s.served = ar.getU64();
    s.cachedHits = ar.getU64();
    s.shed = ar.getU64();
    s.droppedTimeout = ar.getU64();
    s.droppedFault = ar.getU64();
    s.queued = ar.getU64();
    s.missedDeadline = ar.getU64();
    s.p50 = ar.getF64();
    s.p95 = ar.getF64();
    s.p99 = ar.getF64();
    s.deadlineMissRate = ar.getF64();
    s.cacheHitRate = ar.getF64();
}

} // namespace

void
saveRunResult(snapshot::Archive &ar, const core::RunResult &r,
              std::uint64_t specSeed)
{
    ar.section("run_identity");
    ar.putStr(r.label);
    ar.putU64(specSeed);
    ar.section("run_result");
    ar.putStr(r.label);
    ar.putU64(r.seed);
    ar.putF64(r.simulatedSeconds);
    ar.putF64(r.wallSeconds);
    ar.putBool(r.failed);
    ar.putStr(r.error);
    if (r.failed)
        return;
    ar.putStr(r.result.managerName);
    saveMetrics(ar, r.result.metrics);
    saveLogSummary(ar, r.result.log);
    ar.putBool(r.result.trace.has_value());
    if (r.result.trace) {
        ar.putSize(r.result.trace->columns().size());
        for (const std::string &c : r.result.trace->columns())
            ar.putStr(c);
        r.result.trace->save(ar);
    }
    ar.putU64(r.result.invariantViolations);
    ar.putSize(r.result.invariantNotes.size());
    for (const std::string &n : r.result.invariantNotes)
        ar.putStr(n);
    ar.putBool(r.result.resilience.has_value());
    if (r.result.resilience)
        saveResilience(ar, *r.result.resilience);
    ar.putBool(r.result.slo.has_value());
    if (r.result.slo)
        saveSlo(ar, *r.result.slo);
}

void
loadRunResult(snapshot::Archive &ar, core::RunResult &r,
              const std::string &wantLabel, std::uint64_t wantSeed)
{
    ar.section("run_identity");
    const std::string label = ar.getStr();
    const std::uint64_t seed = ar.getU64();
    if (label != wantLabel || seed != wantSeed)
        throw RunIdentityMismatch(
            "serialized result is for spec '" + label + "' seed " +
            std::to_string(seed) + ", not '" + wantLabel + "' seed " +
            std::to_string(wantSeed) +
            " (state dir reused across campaigns, or a worker answered "
            "for the wrong run?)");
    ar.section("run_result");
    r.label = ar.getStr();
    r.seed = ar.getU64();
    r.simulatedSeconds = ar.getF64();
    r.wallSeconds = ar.getF64();
    r.failed = ar.getBool();
    r.error = ar.getStr();
    if (r.failed)
        return;
    r.result.managerName = ar.getStr();
    loadMetrics(ar, r.result.metrics);
    loadLogSummary(ar, r.result.log);
    if (ar.getBool()) {
        std::vector<std::string> columns(ar.getSize());
        for (std::string &c : columns)
            c = ar.getStr();
        sim::Trace trace(std::move(columns));
        trace.load(ar);
        r.result.trace = std::move(trace);
    }
    r.result.invariantViolations = ar.getU64();
    r.result.invariantNotes.assign(ar.getSize(), std::string());
    for (std::string &n : r.result.invariantNotes)
        n = ar.getStr();
    if (ar.getBool()) {
        core::ResilienceMetrics m;
        loadResilience(ar, m);
        r.result.resilience = m;
    }
    if (ar.getBool()) {
        interactive::SloReport s;
        loadSlo(ar, s);
        r.result.slo = s;
    }
}

} // namespace insure::harness
