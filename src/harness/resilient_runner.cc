#include "harness/resilient_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include "harness/campaign_journal.hh"
#include "harness/run_result_io.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "snapshot/snapshotter.hh"

namespace insure::harness {

namespace {

/** Raised by the chunk-boundary deadline check; only this retries. */
class WatchdogTimeout : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

} // namespace

ResilientRunner::ResilientRunner(ResilientOptions opts)
    : opts_(std::move(opts)),
      jobs_(opts_.jobs > 0 ? clampJobs(opts_.jobs, "--jobs") : defaultJobs())
{
}

ResilientRunner::~ResilientRunner() = default;

void
ResilientRunner::ensureCampaignState()
{
    std::call_once(stateOnce_, [this] {
        if (!opts_.stateDir.empty()) {
            std::filesystem::create_directories(opts_.stateDir);
            if (!opts_.resume)
                clearCampaignState(opts_.stateDir);
        }
        journal_ = std::make_unique<CampaignJournal>(opts_.stateDir);
    });
}

core::RunResult
ResilientRunner::runOne(const core::RunSpec &spec, std::size_t i)
{
    ensureCampaignState();
    CampaignJournal &journal = *journal_;

    core::RunResult out;
    out.label = spec.label;
    out.seed = spec.config.seed;
    out.simulatedSeconds = spec.config.duration;

    const std::string resultPath =
        opts_.stateDir.empty() ? std::string()
                               : runResultPath(opts_.stateDir, i);
    const std::string ckptPath =
        opts_.stateDir.empty() ? std::string()
                               : runCheckpointPath(opts_.stateDir, i);

    // Completed runs are served from their result file verbatim: the
    // resumed campaign aggregates the identical bytes an uninterrupted
    // sweep would have.
    if (opts_.resume && !resultPath.empty() &&
        std::filesystem::exists(resultPath)) {
        try {
            snapshot::Archive ar = snapshot::readSnapshotFile(resultPath);
            loadRunResult(ar, out, spec.label, spec.config.seed);
            journal.record(i, spec.label, "cached", 0);
            return out;
        } catch (const RunIdentityMismatch &e) {
            // Result file from a different campaign: re-run the spec.
            journal.record(i, spec.label, "cache-mismatch", 0, e.what());
            out = core::RunResult{};
            out.label = spec.label;
            out.seed = spec.config.seed;
            out.simulatedSeconds = spec.config.duration;
        } catch (const snapshot::SnapshotError &e) {
            // Unreadable cache: fall through and re-run the spec.
            journal.record(i, spec.label, "cache-corrupt", 0, e.what());
            out = core::RunResult{};
            out.label = spec.label;
            out.seed = spec.config.seed;
            out.simulatedSeconds = spec.config.duration;
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned attempt = 0;; ++attempt) {
        core::RunSpec attemptSpec = spec;
        if (attempt > 0) {
            // A fresh derived seed sidesteps input-dependent hangs;
            // the journal records the substitution.
            attemptSpec.config.seed =
                Rng(spec.config.seed)
                    .deriveSeed(streamTag("harness.retry") + attempt);
            out.seed = attemptSpec.config.seed;
        }

        snapshot::CheckpointOptions ck;
        if (!ckptPath.empty() && opts_.checkpointInterval > 0.0)
            ck.path = ckptPath;
        // The chunk length serves both duties: checkpoint cadence
        // and watchdog granularity (a watchdog without checkpoints
        // still needs chunked execution to observe the deadline).
        ck.interval = opts_.checkpointInterval > 0.0
                          ? opts_.checkpointInterval
                          : (opts_.watchdogSeconds > 0.0
                                 ? attemptSpec.config.duration / 16.0
                                 : 0.0);
        const auto attemptStart = std::chrono::steady_clock::now();
        if (opts_.watchdogSeconds > 0.0) {
            const double budget = opts_.watchdogSeconds;
            ck.onProgress = [attemptStart, budget](Seconds simNow) {
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - attemptStart)
                        .count();
                if (elapsed > budget)
                    throw WatchdogTimeout(
                        "watchdog: run exceeded " + std::to_string(budget) +
                        " s wall clock at t=" + std::to_string(simNow) +
                        " s sim");
            };
        }

        journal.record(i, spec.label, attempt == 0 ? "start" : "retry",
                       attempt);
        try {
            const bool fromCkpt = opts_.resume && attempt == 0 &&
                                  !ck.path.empty() &&
                                  std::filesystem::exists(ck.path);
            if (fromCkpt) {
                try {
                    out.result =
                        snapshot::resumeCheckpointed(attemptSpec.config, ck);
                    journal.record(i, spec.label, "resumed", attempt);
                } catch (const snapshot::SnapshotError &e) {
                    // Corrupt/mismatched checkpoint: self-heal by
                    // discarding it and running from the start.
                    journal.record(i, spec.label, "checkpoint-corrupt",
                                   attempt, e.what());
                    std::filesystem::remove(ck.path);
                    out.result =
                        snapshot::runCheckpointed(attemptSpec.config, ck);
                }
            } else {
                out.result =
                    snapshot::runCheckpointed(attemptSpec.config, ck);
            }
            out.failed = false;
            out.error.clear();
            break;
        } catch (const WatchdogTimeout &e) {
            // The abandoned attempt's checkpoint is unusable by the
            // reseeded retry (different stream states).
            if (!ckptPath.empty())
                std::filesystem::remove(ckptPath);
            journal.record(i, spec.label, "timeout", attempt, e.what());
            if (attempt >= opts_.maxRetries) {
                out.failed = true;
                out.error = e.what();
                break;
            }
            // ldexp, not a shift: --retries >= 32 must saturate the
            // backoff, not shift past the width of the operand (UB).
            const double backoff =
                opts_.backoffSeconds *
                std::ldexp(1.0, static_cast<int>(std::min(attempt, 62u)));
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
        } catch (const std::exception &e) {
            // Deterministic failure (e.g. validate::Policy::Throw):
            // recorded, never retried — same semantics as the plain
            // BatchRunner.
            out.failed = true;
            out.error = e.what();
            break;
        } catch (...) {
            out.failed = true;
            out.error = "unknown exception";
            break;
        }
    }
    out.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    if (!resultPath.empty()) {
        snapshot::Archive ar = snapshot::Archive::forSave();
        saveRunResult(ar, out, spec.config.seed);
        snapshot::writeSnapshotFile(resultPath, ar);
        if (!ckptPath.empty())
            std::filesystem::remove(ckptPath);
    }
    journal.record(i, spec.label, out.failed ? "failed" : "done", 0,
                   out.error);
    return out;
}

std::vector<core::RunResult>
ResilientRunner::runSeeded(std::vector<core::RunSpec> specs,
                           std::uint64_t masterSeed,
                           const Progress &progress)
{
    // Identical derivation to BatchRunner::runSeeded (shared helper).
    assignChildSeeds(specs, masterSeed);
    ensureCampaignState();

    std::vector<core::RunResult> results(specs.size());
    std::atomic<std::size_t> nextIndex{0};
    std::size_t done = 0;
    std::mutex progressMutex;

    auto execute = [&](std::size_t i) {
        results[i] = runOne(specs[i], i);
        if (progress) {
            const std::lock_guard<std::mutex> lock(progressMutex);
            progress(results[i], ++done, specs.size());
        }
    };

    const std::size_t workers = std::min<std::size_t>(jobs_, specs.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            execute(i);
        return results;
    }
    auto worker = [&] {
        for (std::size_t i = nextIndex.fetch_add(1); i < specs.size();
             i = nextIndex.fetch_add(1)) {
            execute(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return results;
}

} // namespace insure::harness
