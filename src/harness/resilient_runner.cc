#include "harness/resilient_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "snapshot/snapshotter.hh"

namespace insure::harness {

namespace {

/** Raised by the chunk-boundary deadline check; only this retries. */
class WatchdogTimeout : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Raised when a cached result file belongs to a different spec. */
class CacheMismatch : public snapshot::SnapshotError
{
  public:
    using snapshot::SnapshotError::SnapshotError;
};

std::string
runFilePath(const std::string &dir, std::size_t i, const char *suffix)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "/run-%04zu.%s", i, suffix);
    return dir + buf;
}

/**
 * A fresh (resume=false) campaign must not inherit whatever previously
 * used the directory: the append-mode journal would interleave records
 * from different campaigns, and leftover result/checkpoint files from a
 * larger earlier sweep could be served by a later --resume.
 */
void
clearCampaignState(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    for (const fs::directory_entry &e : fs::directory_iterator(dir, ec)) {
        const std::string name = e.path().filename().string();
        if (name == "journal.jsonl" || name.rfind("run-", 0) == 0)
            fs::remove(e.path(), ec);
    }
}

// ---- Cached run results ----------------------------------------------
// A completed (or deterministically failed) run is persisted as an
// Archive in the snapshot file frame, so resumed campaigns return the
// byte-identical RunResult without re-simulating.

void
saveMetrics(snapshot::Archive &ar, const core::Metrics &m)
{
    ar.putF64(m.uptime);
    ar.putF64(m.throughputGbPerHour);
    ar.putF64(m.meanLatency);
    ar.putF64(m.eBufferAvailability);
    ar.putF64(m.serviceLifeYears);
    ar.putF64(m.workNormalizedLifeYears);
    ar.putF64(m.perfPerAh);
    ar.putF64(m.processedGb);
    ar.putF64(m.solarOfferedKwh);
    ar.putF64(m.greenUsedKwh);
    ar.putF64(m.loadKwh);
    ar.putF64(m.effectiveKwh);
    ar.putF64(m.secondaryKwh);
    ar.putF64(m.bufferThroughputAh);
    ar.putF64(m.bufferImbalanceAh);
    ar.putU64(m.bufferTrips);
    ar.putU64(m.emergencyShutdowns);
    ar.putU64(m.onOffCycles);
    ar.putU64(m.vmCtrlOps);
    ar.putU64(m.powerCtrlOps);
}

void
loadMetrics(snapshot::Archive &ar, core::Metrics &m)
{
    m.uptime = ar.getF64();
    m.throughputGbPerHour = ar.getF64();
    m.meanLatency = ar.getF64();
    m.eBufferAvailability = ar.getF64();
    m.serviceLifeYears = ar.getF64();
    m.workNormalizedLifeYears = ar.getF64();
    m.perfPerAh = ar.getF64();
    m.processedGb = ar.getF64();
    m.solarOfferedKwh = ar.getF64();
    m.greenUsedKwh = ar.getF64();
    m.loadKwh = ar.getF64();
    m.effectiveKwh = ar.getF64();
    m.secondaryKwh = ar.getF64();
    m.bufferThroughputAh = ar.getF64();
    m.bufferImbalanceAh = ar.getF64();
    m.bufferTrips = ar.getU64();
    m.emergencyShutdowns = ar.getU64();
    m.onOffCycles = ar.getU64();
    m.vmCtrlOps = ar.getU64();
    m.powerCtrlOps = ar.getU64();
}

void
saveLogSummary(snapshot::Archive &ar, const telemetry::DailyLogSummary &l)
{
    ar.putStr(l.label);
    ar.putF64(l.solarBudgetKwh);
    ar.putF64(l.loadKwh);
    ar.putF64(l.effectiveKwh);
    ar.putU64(l.powerCtrlTimes);
    ar.putU64(l.onOffCycles);
    ar.putU64(l.vmCtrlTimes);
    ar.putF64(l.minBatteryVoltage);
    ar.putF64(l.endOfDayVoltage);
    ar.putF64(l.batteryVoltageSigma);
    ar.putF64(l.processedGb);
}

void
loadLogSummary(snapshot::Archive &ar, telemetry::DailyLogSummary &l)
{
    l.label = ar.getStr();
    l.solarBudgetKwh = ar.getF64();
    l.loadKwh = ar.getF64();
    l.effectiveKwh = ar.getF64();
    l.powerCtrlTimes = ar.getU64();
    l.onOffCycles = ar.getU64();
    l.vmCtrlTimes = ar.getU64();
    l.minBatteryVoltage = ar.getF64();
    l.endOfDayVoltage = ar.getF64();
    l.batteryVoltageSigma = ar.getF64();
    l.processedGb = ar.getF64();
}

void
saveResilience(snapshot::Archive &ar, const core::ResilienceMetrics &m)
{
    ar.putU64(m.faultsInjected);
    ar.putU64(m.faultsCleared);
    ar.putU64(m.detectedFaults);
    ar.putU64(m.quarantines);
    ar.putF64(m.meanTimeToDetect);
    ar.putF64(m.maxTimeToDetect);
    ar.putF64(m.meanTimeToRecover);
    ar.putF64(m.maxTimeToRecover);
    ar.putF64(m.outageSeconds);
    ar.putF64(m.pendingDownSeconds);
    ar.putF64(m.unsafeOperationSeconds);
    ar.putF64(m.energyLostKwh);
    ar.putF64(m.lostVmHours);
}

void
loadResilience(snapshot::Archive &ar, core::ResilienceMetrics &m)
{
    m.faultsInjected = ar.getU64();
    m.faultsCleared = ar.getU64();
    m.detectedFaults = ar.getU64();
    m.quarantines = ar.getU64();
    m.meanTimeToDetect = ar.getF64();
    m.maxTimeToDetect = ar.getF64();
    m.meanTimeToRecover = ar.getF64();
    m.maxTimeToRecover = ar.getF64();
    m.outageSeconds = ar.getF64();
    m.pendingDownSeconds = ar.getF64();
    m.unsafeOperationSeconds = ar.getF64();
    m.energyLostKwh = ar.getF64();
    m.lostVmHours = ar.getF64();
}

/**
 * @p specSeed is the campaign-derived child seed of the spec that
 * produced @p r (r.seed may differ after a reseeded retry). It is the
 * cache key loadRunResult verifies, so a state dir reused with a
 * different campaign (other specs, master seed or run count) can never
 * silently serve results from the wrong runs.
 */
void
saveRunResult(snapshot::Archive &ar, const core::RunResult &r,
              std::uint64_t specSeed)
{
    ar.section("run_identity");
    ar.putStr(r.label);
    ar.putU64(specSeed);
    ar.section("run_result");
    ar.putStr(r.label);
    ar.putU64(r.seed);
    ar.putF64(r.simulatedSeconds);
    ar.putF64(r.wallSeconds);
    ar.putBool(r.failed);
    ar.putStr(r.error);
    if (r.failed)
        return;
    ar.putStr(r.result.managerName);
    saveMetrics(ar, r.result.metrics);
    saveLogSummary(ar, r.result.log);
    ar.putBool(r.result.trace.has_value());
    if (r.result.trace) {
        ar.putSize(r.result.trace->columns().size());
        for (const std::string &c : r.result.trace->columns())
            ar.putStr(c);
        r.result.trace->save(ar);
    }
    ar.putU64(r.result.invariantViolations);
    ar.putSize(r.result.invariantNotes.size());
    for (const std::string &n : r.result.invariantNotes)
        ar.putStr(n);
    ar.putBool(r.result.resilience.has_value());
    if (r.result.resilience)
        saveResilience(ar, *r.result.resilience);
}

void
loadRunResult(snapshot::Archive &ar, core::RunResult &r,
              const std::string &wantLabel, std::uint64_t wantSeed)
{
    ar.section("run_identity");
    const std::string label = ar.getStr();
    const std::uint64_t seed = ar.getU64();
    if (label != wantLabel || seed != wantSeed)
        throw CacheMismatch("cached result is for spec '" + label +
                            "' seed " + std::to_string(seed) + ", not '" +
                            wantLabel + "' seed " +
                            std::to_string(wantSeed) +
                            " (state dir reused across campaigns?)");
    ar.section("run_result");
    r.label = ar.getStr();
    r.seed = ar.getU64();
    r.simulatedSeconds = ar.getF64();
    r.wallSeconds = ar.getF64();
    r.failed = ar.getBool();
    r.error = ar.getStr();
    if (r.failed)
        return;
    r.result.managerName = ar.getStr();
    loadMetrics(ar, r.result.metrics);
    loadLogSummary(ar, r.result.log);
    if (ar.getBool()) {
        std::vector<std::string> columns(ar.getSize());
        for (std::string &c : columns)
            c = ar.getStr();
        sim::Trace trace(std::move(columns));
        trace.load(ar);
        r.result.trace = std::move(trace);
    }
    r.result.invariantViolations = ar.getU64();
    r.result.invariantNotes.assign(ar.getSize(), std::string());
    for (std::string &n : r.result.invariantNotes)
        n = ar.getStr();
    if (ar.getBool()) {
        core::ResilienceMetrics m;
        loadResilience(ar, m);
        r.result.resilience = m;
    }
}

/**
 * The campaign manifest: one JSON object per line, appended and
 * fsynced per record, so the journal survives whatever killed the
 * process and `--resume` (and the operator) can reconstruct exactly
 * how far the sweep got.
 */
class Journal
{
  public:
    explicit Journal(const std::string &dir)
    {
        if (dir.empty())
            return;
        const std::string path = dir + "/journal.jsonl";
        f_ = std::fopen(path.c_str(), "a");
        if (!f_)
            warn("cannot open campaign journal %s", path.c_str());
    }

    ~Journal()
    {
        if (f_)
            std::fclose(f_);
    }

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    void
    record(std::size_t run, const std::string &label, const char *event,
           unsigned attempt, const std::string &detail = {})
    {
        if (!f_)
            return;
        const std::lock_guard<std::mutex> lock(mutex_);
        std::fprintf(f_,
                     "{\"run\": %zu, \"label\": \"%s\", \"event\": "
                     "\"%s\", \"attempt\": %u%s%s%s}\n",
                     run, escape(label).c_str(), event, attempt,
                     detail.empty() ? "" : ", \"detail\": \"",
                     escape(detail).c_str(), detail.empty() ? "" : "\"");
        std::fflush(f_);
        ::fsync(::fileno(f_));
    }

  private:
    /** Exception messages land in the journal: keep the JSON valid. */
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (const char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
        return out;
    }

    std::FILE *f_ = nullptr;
    std::mutex mutex_;
};

} // namespace

ResilientRunner::ResilientRunner(ResilientOptions opts)
    : opts_(std::move(opts)),
      jobs_(opts_.jobs > 0 ? clampJobs(opts_.jobs, "--jobs") : defaultJobs())
{
}

std::vector<core::RunResult>
ResilientRunner::runSeeded(std::vector<core::RunSpec> specs,
                           std::uint64_t masterSeed,
                           const Progress &progress)
{
    // Identical derivation to BatchRunner::runSeeded: sequential, in
    // spec order, before any worker starts.
    Rng master(masterSeed);
    for (core::RunSpec &spec : specs)
        spec.config.seed = master.splitSeed();

    if (!opts_.stateDir.empty()) {
        std::filesystem::create_directories(opts_.stateDir);
        if (!opts_.resume)
            clearCampaignState(opts_.stateDir);
    }
    Journal journal(opts_.stateDir);

    std::vector<core::RunResult> results(specs.size());
    std::atomic<std::size_t> nextIndex{0};
    std::size_t done = 0;
    std::mutex progressMutex;

    auto runOne = [&](std::size_t i) {
        const core::RunSpec &spec = specs[i];
        core::RunResult &out = results[i];
        out.label = spec.label;
        out.seed = spec.config.seed;
        out.simulatedSeconds = spec.config.duration;

        const std::string resultPath =
            opts_.stateDir.empty()
                ? std::string()
                : runFilePath(opts_.stateDir, i, "result");
        const std::string ckptPath =
            opts_.stateDir.empty()
                ? std::string()
                : runFilePath(opts_.stateDir, i, "ckpt");

        // Completed runs are served from their result file verbatim:
        // the resumed campaign aggregates the identical bytes an
        // uninterrupted sweep would have.
        if (opts_.resume && !resultPath.empty() &&
            std::filesystem::exists(resultPath)) {
            try {
                snapshot::Archive ar =
                    snapshot::readSnapshotFile(resultPath);
                loadRunResult(ar, out, spec.label, spec.config.seed);
                journal.record(i, spec.label, "cached", 0);
                if (progress) {
                    const std::lock_guard<std::mutex> lock(progressMutex);
                    progress(out, ++done, specs.size());
                }
                return;
            } catch (const CacheMismatch &e) {
                // Result file from a different campaign: re-run the spec.
                journal.record(i, spec.label, "cache-mismatch", 0, e.what());
                out = core::RunResult{};
                out.label = spec.label;
                out.seed = spec.config.seed;
                out.simulatedSeconds = spec.config.duration;
            } catch (const snapshot::SnapshotError &e) {
                // Unreadable cache: fall through and re-run the spec.
                journal.record(i, spec.label, "cache-corrupt", 0, e.what());
                out = core::RunResult{};
                out.label = spec.label;
                out.seed = spec.config.seed;
                out.simulatedSeconds = spec.config.duration;
            }
        }

        const auto t0 = std::chrono::steady_clock::now();
        for (unsigned attempt = 0;; ++attempt) {
            core::RunSpec attemptSpec = spec;
            if (attempt > 0) {
                // A fresh derived seed sidesteps input-dependent hangs;
                // the journal records the substitution.
                attemptSpec.config.seed =
                    Rng(spec.config.seed)
                        .deriveSeed(streamTag("harness.retry") + attempt);
                out.seed = attemptSpec.config.seed;
            }

            snapshot::CheckpointOptions ck;
            if (!ckptPath.empty() && opts_.checkpointInterval > 0.0)
                ck.path = ckptPath;
            // The chunk length serves both duties: checkpoint cadence
            // and watchdog granularity (a watchdog without checkpoints
            // still needs chunked execution to observe the deadline).
            ck.interval = opts_.checkpointInterval > 0.0
                              ? opts_.checkpointInterval
                              : (opts_.watchdogSeconds > 0.0
                                     ? attemptSpec.config.duration / 16.0
                                     : 0.0);
            const auto attemptStart = std::chrono::steady_clock::now();
            if (opts_.watchdogSeconds > 0.0) {
                const double budget = opts_.watchdogSeconds;
                ck.onProgress = [attemptStart, budget](Seconds simNow) {
                    const double elapsed =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - attemptStart)
                            .count();
                    if (elapsed > budget)
                        throw WatchdogTimeout(
                            "watchdog: run exceeded " +
                            std::to_string(budget) + " s wall clock at t=" +
                            std::to_string(simNow) + " s sim");
                };
            }

            journal.record(i, spec.label,
                           attempt == 0 ? "start" : "retry", attempt);
            try {
                const bool fromCkpt = opts_.resume && attempt == 0 &&
                                      !ck.path.empty() &&
                                      std::filesystem::exists(ck.path);
                if (fromCkpt) {
                    try {
                        out.result =
                            snapshot::resumeCheckpointed(attemptSpec.config,
                                                         ck);
                        journal.record(i, spec.label, "resumed", attempt);
                    } catch (const snapshot::SnapshotError &e) {
                        // Corrupt/mismatched checkpoint: self-heal by
                        // discarding it and running from the start.
                        journal.record(i, spec.label, "checkpoint-corrupt",
                                       attempt, e.what());
                        std::filesystem::remove(ck.path);
                        out.result =
                            snapshot::runCheckpointed(attemptSpec.config,
                                                      ck);
                    }
                } else {
                    out.result =
                        snapshot::runCheckpointed(attemptSpec.config, ck);
                }
                out.failed = false;
                out.error.clear();
                break;
            } catch (const WatchdogTimeout &e) {
                // The abandoned attempt's checkpoint is unusable by the
                // reseeded retry (different stream states).
                if (!ckptPath.empty())
                    std::filesystem::remove(ckptPath);
                journal.record(i, spec.label, "timeout", attempt, e.what());
                if (attempt >= opts_.maxRetries) {
                    out.failed = true;
                    out.error = e.what();
                    break;
                }
                // ldexp, not a shift: --retries >= 32 must saturate the
                // backoff, not shift past the width of the operand (UB).
                const double backoff =
                    opts_.backoffSeconds *
                    std::ldexp(1.0, static_cast<int>(
                                        std::min(attempt, 62u)));
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
            } catch (const std::exception &e) {
                // Deterministic failure (e.g. validate::Policy::Throw):
                // recorded, never retried — same semantics as the plain
                // BatchRunner.
                out.failed = true;
                out.error = e.what();
                break;
            } catch (...) {
                out.failed = true;
                out.error = "unknown exception";
                break;
            }
        }
        out.wallSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

        if (!resultPath.empty()) {
            snapshot::Archive ar = snapshot::Archive::forSave();
            saveRunResult(ar, out, spec.config.seed);
            snapshot::writeSnapshotFile(resultPath, ar);
            if (!ckptPath.empty())
                std::filesystem::remove(ckptPath);
        }
        journal.record(i, spec.label, out.failed ? "failed" : "done", 0,
                       out.error);
        if (progress) {
            const std::lock_guard<std::mutex> lock(progressMutex);
            progress(out, ++done, specs.size());
        }
    };

    const std::size_t workers = std::min<std::size_t>(jobs_, specs.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            runOne(i);
        return results;
    }
    auto worker = [&] {
        for (std::size_t i = nextIndex.fetch_add(1); i < specs.size();
             i = nextIndex.fetch_add(1)) {
            runOne(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    return results;
}

} // namespace insure::harness
