#include "harness/twin_driver.hh"

#include <thread>

#include "service/twin_client.hh"
#include "sim/rng.hh"
#include "telemetry/register_map.hh"

namespace insure::harness {

namespace {

/**
 * A small pool of distinct what-if variants. Scripted traffic draws
 * queries from the pool, so the same query recurs many times against
 * an unchanged twin — the recurrence the result cache exists for.
 */
std::vector<service::WhatIfQuery>
makeQueryPool(const TwinTrafficOptions &opts)
{
    std::vector<service::WhatIfQuery> pool;
    pool.reserve(opts.queryPoolSize);
    for (std::size_t i = 0; i < opts.queryPoolSize; ++i) {
        service::WhatIfQuery q;
        q.horizonHours = opts.horizonHours;
        switch (i % 4) {
        case 0:
            // Baseline policy, no overrides.
            break;
        case 1:
            q.socFloor = 0.22 + 0.02 * static_cast<double>(i);
            break;
        case 2:
            q.dischargeBudgetAh = 8400.0 * (0.70 + 0.05 * static_cast<double>(i));
            break;
        case 3:
            q.chargedSoc = 0.85 + 0.01 * static_cast<double>(i % 10);
            q.minEligible = 1 + static_cast<unsigned>(i % 3);
            break;
        }
        pool.push_back(q);
    }
    return pool;
}

/** Issue @p ops through a client connection, filling @p out[indices]. */
void
runClient(service::ByteStream &stream, const std::vector<TwinOp> &ops,
          std::size_t first, std::size_t stride,
          std::vector<std::vector<std::uint8_t>> &out)
{
    service::TwinClient client(stream);
    for (std::size_t i = first; i < ops.size(); i += stride) {
        const service::Frame req = ops[i].toFrame(1);
        // exchange() throws on Error frames; scripted traffic is all
        // well-formed, so any error here is a real test failure and
        // should propagate (the suite fails loudly).
        const service::Frame reply = client.exchange(req.type, req.payload);
        // Re-encoding is canonical, so these bytes are exactly the
        // frame the server put on the wire.
        out[i] = service::encodeFrame(reply.type, reply.payload);
    }
}

} // namespace

service::Frame
TwinOp::toFrame(std::uint8_t unitId) const
{
    service::Frame f;
    if (kind == Kind::Read) {
        f.type = service::FrameType::ModbusAdu;
        f.payload =
            telemetry::modbus::encodeReadRequest(unitId, address, count);
    } else {
        f.type = service::FrameType::WhatIfQuery;
        f.payload = query.encode();
    }
    return f;
}

std::vector<TwinOp>
makeTwinTraffic(std::uint64_t seed, const TwinTrafficOptions &opts)
{
    const std::vector<service::WhatIfQuery> pool = makeQueryPool(opts);
    const telemetry::RegisterLayout layout;
    Rng rng(seed);

    std::vector<TwinOp> ops;
    ops.reserve(opts.count);
    for (std::size_t i = 0; i < opts.count; ++i) {
        TwinOp op;
        if (!pool.empty() && rng.bernoulli(opts.whatIfFraction)) {
            op.kind = TwinOp::Kind::WhatIf;
            op.query = pool[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(pool.size()) - 1))];
        } else {
            op.kind = TwinOp::Kind::Read;
            if (rng.bernoulli(0.2)) {
                // Array-level summary registers.
                op.address = 0;
                op.count = 4;
            } else {
                const unsigned cab = static_cast<unsigned>(rng.uniformInt(
                    0, static_cast<int>(opts.cabinetCount) - 1));
                const unsigned off =
                    static_cast<unsigned>(rng.uniformInt(0, 6));
                op.address = static_cast<std::uint16_t>(
                    layout.cabinetBase + layout.perCabinet * cab + off);
                op.count = static_cast<std::uint16_t>(rng.uniformInt(
                    1, static_cast<int>(layout.perCabinet - off)));
            }
        }
        ops.push_back(op);
    }
    return ops;
}

std::vector<std::vector<std::uint8_t>>
replayTwinSerial(service::TwinServer &server, const std::vector<TwinOp> &ops)
{
    std::vector<std::vector<std::uint8_t>> replies;
    replies.reserve(ops.size());
    for (const TwinOp &op : ops)
        replies.push_back(server.handleFrame(op.toFrame(1)));
    return replies;
}

std::vector<std::vector<std::uint8_t>>
replayTwinConcurrent(service::TwinServer &server,
                     const std::vector<TwinOp> &ops, unsigned clientThreads)
{
    if (clientThreads == 0)
        clientThreads = 1;
    std::vector<std::vector<std::uint8_t>> replies(ops.size());

    struct Connection {
        std::unique_ptr<service::ByteStream> clientEnd;
        std::unique_ptr<service::ByteStream> serverEnd;
    };
    std::vector<Connection> conns(clientThreads);
    std::vector<std::thread> serverThreads;
    std::vector<std::thread> clients;
    serverThreads.reserve(clientThreads);
    clients.reserve(clientThreads);

    for (unsigned k = 0; k < clientThreads; ++k) {
        auto pair = service::makeLoopbackPair();
        conns[k].clientEnd = std::move(pair.first);
        conns[k].serverEnd = std::move(pair.second);
        serverThreads.emplace_back(
            [&server, &conns, k] { server.serveStream(*conns[k].serverEnd); });
        clients.emplace_back([&conns, &ops, &replies, k, clientThreads] {
            runClient(*conns[k].clientEnd, ops, k, clientThreads, replies);
            conns[k].clientEnd->close();
        });
    }
    for (auto &t : clients)
        t.join();
    for (auto &t : serverThreads)
        t.join();
    return replies;
}

} // namespace insure::harness
