/**
 * @file
 * Deterministic traffic generation and replay for the digital-twin
 * service — the machinery behind the concurrency suite and the service
 * bench.
 *
 * A traffic log is a fixed, seeded vector of operations (register reads
 * and what-if queries). The same log can be replayed two ways:
 *
 *  - serially: every op through TwinServer::handleFrame on the calling
 *    thread (the oracle — trivially race-free);
 *  - concurrently: N client threads, each on its own loopback
 *    connection, issuing its round-robin share of the log while the
 *    server handles every connection on a thread of its own.
 *
 * With the live clock standing still, replies are a pure function of
 * (rig state, request bytes), so both replays must produce byte-
 * identical response vectors — the property the TSan suite asserts.
 */

#ifndef INSURE_HARNESS_TWIN_DRIVER_HH
#define INSURE_HARNESS_TWIN_DRIVER_HH

#include <cstdint>
#include <vector>

#include "service/twin_server.hh"

namespace insure::harness {

/** One scripted client operation. */
struct TwinOp {
    enum class Kind : std::uint8_t { Read, WhatIf };
    Kind kind = Kind::Read;
    /** Read: starting register address. */
    std::uint16_t address = 0;
    /** Read: register count. */
    std::uint16_t count = 1;
    /** WhatIf: the query. */
    service::WhatIfQuery query;

    /** The request frame this op puts on the wire. */
    service::Frame toFrame(std::uint8_t unitId) const;
};

/** Traffic-mix shape for makeTwinTraffic. */
struct TwinTrafficOptions {
    /** Operations to script. */
    std::size_t count = 256;
    /** Cabinets in the plant (bounds the read address space). */
    unsigned cabinetCount = 3;
    /** Fraction of ops that are what-if queries (rest are reads). */
    double whatIfFraction = 0.25;
    /**
     * Distinct what-if variants drawn from (small pool => repeats =>
     * cache hits; the bench and tests both want a non-trivial hit rate).
     */
    std::size_t queryPoolSize = 4;
    /** Horizon of the scripted queries, hours. */
    double horizonHours = 0.5;
};

/** Deterministically script @p opts.count operations from @p seed. */
std::vector<TwinOp> makeTwinTraffic(std::uint64_t seed,
                                    const TwinTrafficOptions &opts);

/**
 * Replay @p ops through @p server on the calling thread and return the
 * raw reply frame bytes, one entry per op, in op order.
 */
std::vector<std::vector<std::uint8_t>>
replayTwinSerial(service::TwinServer &server, const std::vector<TwinOp> &ops);

/**
 * Replay @p ops against @p server from @p clientThreads concurrent
 * clients, each on its own loopback connection served by its own
 * server thread. Client k issues ops k, k+N, k+2N, ... in order;
 * results are reassembled into op order. The reply bytes are
 * byte-identical to replayTwinSerial on the same log — asserted by the
 * concurrency suite under TSan.
 */
std::vector<std::vector<std::uint8_t>>
replayTwinConcurrent(service::TwinServer &server,
                     const std::vector<TwinOp> &ops, unsigned clientThreads);

} // namespace insure::harness

#endif // INSURE_HARNESS_TWIN_DRIVER_HH
