/**
 * @file
 * Observation hooks into the in-situ system's tick loop.
 *
 * A SystemObserver attached to an InSituSystem receives one TickSample per
 * physics tick (the resolved power flows plus exact ampere-hour movements),
 * one ControlSample per control period (the sensed view and the manager's
 * actions, before they are applied), and one onModeChange per actual
 * cabinet mode transition (wired through the BatteryUnit mode setter, so
 * hardware-protection trips and fast-switch promotions are seen too).
 *
 * The hooks exist for the runtime validation layer (src/validate): the
 * InvariantChecker asserts conservation/state-machine/budget invariants,
 * the GoldenRecorder digests canonical runs. When no observer is attached
 * the instrumentation reduces to one branch per tick.
 */

#ifndef INSURE_CORE_SYSTEM_OBSERVER_HH
#define INSURE_CORE_SYSTEM_OBSERVER_HH

#include <memory>
#include <string>
#include <vector>

#include "battery/battery_array.hh"
#include "core/system_view.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::interactive {
class RequestWorkload;
}

namespace insure::core {

struct SystemConfig;

/** Resolved power flows and charge movements of one physics tick. */
struct TickSample {
    /** End-of-tick simulated time, seconds. */
    Seconds now = 0.0;
    /** Tick length, seconds. */
    Seconds dt = 0.0;
    /** Solar power available this tick, watts. */
    Watts solarPower = 0.0;
    /** Rack demand at the start of the tick, watts. */
    Watts loadPower = 0.0;
    /** Green power fed directly to the rack, watts. */
    Watts directPower = 0.0;
    /** Average power delivered by the buffer, watts. */
    Watts bufferDischargePower = 0.0;
    /** Power delivered by the secondary feed, watts. */
    Watts secondaryPower = 0.0;
    /** Green power consumed by the charge plan, watts. */
    Watts chargePower = 0.0;
    /** String ampere-hours delivered by the buffer this tick. */
    AmpHours dischargeAh = 0.0;
    /** String ampere-hours stored by the charge plan this tick. */
    AmpHours chargeStoredAh = 0.0;
    /** Sum over every unit of soc * capacityAh, before this tick. */
    AmpHours unitAhBefore = 0.0;
    /** Sum over every unit of soc * capacityAh, after this tick. */
    AmpHours unitAhAfter = 0.0;
    /**
     * Per-unit ampere-hours removed by fault mechanisms (capacity fade,
     * internal shorts) between the previous tick and this one (fault
     * injections fire between physics ticks). Consumed by the cross-tick
     * continuity invariant; zero on healthy runs.
     */
    AmpHours exogenousPreTickAh = 0.0;
    /** Per-unit fault-removed ampere-hours during this tick (internal-
     *  short extra drain). Consumed by the per-tick balance; zero when
     *  healthy. */
    AmpHours exogenousInTickAh = 0.0;
    /** True when the rack lost power this tick. */
    bool powerFailed = false;
    /** VMs active after the tick. */
    unsigned activeVms = 0;
    /** Queue backlog after the tick, gigabytes. */
    GigaBytes backlogGb = 0.0;
    /** True when any node is doing productive work. */
    bool productive = false;
    /** The physical buffer (post-tick state). */
    const battery::BatteryArray *array = nullptr;
    /** The plant configuration. */
    const SystemConfig *config = nullptr;
    /** The charge plan in force during the tick. */
    const ChargePlan *chargePlan = nullptr;
    /** Interactive workload (post-tick state); null when not running. */
    const interactive::RequestWorkload *interactive = nullptr;
};

/** One control period: the sensed view and the manager's response. */
struct ControlSample {
    const SystemView *view = nullptr;
    const ControlActions *actions = nullptr;
};

/**
 * Base class for tick-loop observers. All hooks default to no-ops;
 * violationCount()/violationMessages() let harnesses harvest results from
 * checking observers without knowing their concrete type.
 */
class SystemObserver
{
  public:
    virtual ~SystemObserver() = default;

    /** Called at the end of every physics tick. */
    virtual void onTick(const TickSample &) {}

    /** Called each control period, before the actions are applied. */
    virtual void onControl(const ControlSample &) {}

    /**
     * Called on every actual cabinet mode transition (from != to).
     * @p soc is the cabinet's true state of charge at the transition.
     */
    virtual void onModeChange(unsigned cabinet, battery::UnitMode from,
                              battery::UnitMode to, Seconds now,
                              double soc)
    {
        (void)cabinet;
        (void)from;
        (void)to;
        (void)now;
        (void)soc;
    }

    /**
     * Serialize observer-internal state (counters, digests, mirrors of
     * plant state). Named saveState/loadState — not save/load — because
     * concrete observers may already expose path-based save() helpers.
     * Default: stateless observer, nothing to write.
     */
    virtual void saveState(snapshot::Archive &) const {}

    /** Restore observer-internal state (mirror of saveState). */
    virtual void loadState(snapshot::Archive &) {}

    /** Invariant violations recorded so far (0 for passive observers). */
    virtual std::uint64_t violationCount() const { return 0; }

    /** Human-readable violation details (empty for passive observers). */
    virtual std::vector<std::string> violationMessages() const
    {
        return {};
    }
};

/** Fans every hook out to a list of observers (non-owning). */
class ObserverList : public SystemObserver
{
  public:
    void add(SystemObserver *obs)
    {
        if (obs)
            observers_.push_back(obs);
    }

    void
    onTick(const TickSample &s) override
    {
        for (auto *o : observers_)
            o->onTick(s);
    }

    void
    onControl(const ControlSample &s) override
    {
        for (auto *o : observers_)
            o->onControl(s);
    }

    void
    onModeChange(unsigned cabinet, battery::UnitMode from,
                 battery::UnitMode to, Seconds now, double soc) override
    {
        for (auto *o : observers_)
            o->onModeChange(cabinet, from, to, now, soc);
    }

    std::uint64_t
    violationCount() const override
    {
        std::uint64_t n = 0;
        for (const auto *o : observers_)
            n += o->violationCount();
        return n;
    }

    std::vector<std::string>
    violationMessages() const override
    {
        std::vector<std::string> out;
        for (const auto *o : observers_) {
            auto m = o->violationMessages();
            out.insert(out.end(), m.begin(), m.end());
        }
        return out;
    }

    void
    saveState(snapshot::Archive &ar) const override
    {
        for (const auto *o : observers_)
            o->saveState(ar);
    }

    void
    loadState(snapshot::Archive &ar) override
    {
        for (auto *o : observers_)
            o->loadState(ar);
    }

  private:
    std::vector<SystemObserver *> observers_;
};

} // namespace insure::core

#endif // INSURE_CORE_SYSTEM_OBSERVER_HH
