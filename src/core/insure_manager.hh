/**
 * @file
 * The InSURE power manager: joint spatio-temporal management over the
 * reconfigurable distributed e-Buffer (paper §3).
 *
 * Each control period the manager:
 *  1. runs the spatial screening (offline cabinets within their discharge
 *     budget rejoin the charging group; over-used ones stay offline);
 *  2. picks the charge batch: N = P_G / P_PC lowest-SoC cabinets charge
 *     concurrently at full acceptance, the rest of the charging group
 *     waits (budget concentration, Fig. 10 / Fig. 14-a);
 *  3. moves cabinets through the Fig. 8 mode transitions (charged ->
 *     standby, green deficit -> discharging, green surplus -> standby,
 *     SoC floor -> offline);
 *  4. runs the temporal manager: discharge-current capping via duty cycle
 *     (batch) or VM shedding (stream), and SoC-floor checkpointing;
 *  5. sizes the VM count to the power actually available (solar plus a
 *     battery-friendly discharge allowance).
 */

#ifndef INSURE_CORE_INSURE_MANAGER_HH
#define INSURE_CORE_INSURE_MANAGER_HH

#include <memory>

#include "core/node_allocator.hh"
#include "core/power_manager.hh"
#include "core/spatial_manager.hh"
#include "core/temporal_manager.hh"

namespace insure::core {

/** Tuning of the overall InSURE policy. */
struct InsureParams {
    SpatialParams spatial;
    TemporalParams temporal;
    /** Interval between spatial (coarse) screenings, seconds. */
    Seconds spatialPeriod = 300.0;
    /** SoC at which a charging cabinet is promoted to standby. */
    double chargedSoc = 0.90;
    /**
     * SoC at which a discharging cabinet is taken offline for recharge
     * (Fig. 8 transition 4). Kept below the temporal manager's shutdown
     * floor so a checkpointing rack can still be powered on the way down.
     */
    double offlineSoc = 0.22;
    /** Fraction of battery energy budgeted when sizing VM counts. */
    double batteryAssistFraction = 0.9;
    /** Horizon used to estimate energy available to a batch job, hours. */
    double batchPlanningHorizonHours = 4.0;

    // Ablation switches (paper §6.2 "No-Opt" and DESIGN.md §6).
    /** Disable temporal management (no capping, floor at cell minimum). */
    bool disableTemporal = false;
    /** Disable charge concentration (batch-charge the whole group). */
    bool disableConcentration = false;
    /** Disable wear balancing (every cabinet always within budget). */
    bool disableBalancing = false;

    // Degraded-mode management: quarantine cabinets whose telemetry is
    // implausible (dead string, relay/mode contradiction, frozen or
    // stale registers). The checks run on the SENSED view only — the
    // manager has no oracle knowledge of injected faults.
    /** Master switch for telemetry-plausibility quarantine. */
    bool quarantineEnabled = true;
    /**
     * Per-unit sensed voltage floor: an online string reading below
     * (floor x units-in-series) has lost at least one unit (a healthy
     * lead-acid unit never sags under ~10 V before the TPM shuts the
     * rack down; an open-circuit unit reads 0 V).
     */
    Volts quarantineVoltageFloor = 8.0;
    /** Consecutive suspect periods before a cabinet is quarantined. */
    unsigned quarantinePeriods = 2;
    /** Periods of bit-identical readings under load before quarantine. */
    unsigned frozenTelemetryPeriods = 4;
    /** Periods of failed Modbus exchanges before quarantine. */
    unsigned staleLinkPeriods = 5;

    /** The paper's "No-Opt" configuration: aggressive buffer use. */
    static InsureParams
    noOpt()
    {
        InsureParams p;
        p.disableTemporal = true;
        p.disableConcentration = true;
        p.disableBalancing = true;
        return p;
    }
};

/** Why a cabinet was quarantined (telemetry plausibility signals). */
enum class QuarantineReason {
    /** Sensed string voltage collapsed while the string was online. */
    DeadString,
    /** Sensed relay contacts contradict the commanded mode. */
    RelayMismatch,
    /** Registers stopped moving while the string carried current. */
    FrozenTelemetry,
    /** Modbus exchanges to the cabinet keep failing. */
    StaleTelemetry,
};

/** Human-readable name of a quarantine reason. */
const char *quarantineReasonName(QuarantineReason r);

/** One quarantine decision (degraded-mode management). */
struct QuarantineEvent {
    /** Control-period timestamp of the decision, seconds. */
    Seconds at = 0.0;
    /** Quarantined cabinet index. */
    unsigned cabinet = 0;
    /** Plausibility signal that tripped. */
    QuarantineReason reason = QuarantineReason::DeadString;
};

/** The paper's power-management scheme. */
class InsureManager : public PowerManager
{
  public:
    /**
     * @param params policy tuning
     * @param allocator VM sizing helper for the current workload
     */
    InsureManager(const InsureParams &params,
                  std::shared_ptr<NodeAllocator> allocator);

    const char *name() const override { return "insure"; }

    ControlActions control(const SystemView &view) override;

    /** Spatial sub-policy (for tests/ablation). */
    const SpatialManager &spatial() const { return spatial_; }

    /** Temporal sub-policy (for tests/ablation). */
    const TemporalManager &temporal() const { return temporal_; }

    /** Quarantine decisions so far, in order (degraded mode). */
    const std::vector<QuarantineEvent> &quarantineEvents() const
    {
        return quarantineLog_;
    }

    /** True when cabinet @p i is quarantined (sticky for the run). */
    bool isQuarantined(unsigned i) const
    {
        return i < health_.size() && health_[i].quarantined;
    }

    /** Cabinets currently quarantined. */
    unsigned quarantinedCount() const { return quarantinedCount_; }

    /** Serialize sub-policies, quarantine state and batch planning. */
    void save(snapshot::Archive &ar) const override;

    /** Restore sub-policies, quarantine state and batch planning. */
    void load(snapshot::Archive &ar) override;

  private:
    /** Per-cabinet plausibility-tracking state. */
    struct CabinetHealth {
        unsigned deadStreak = 0;
        unsigned relayStreak = 0;
        unsigned frozenStreak = 0;
        unsigned staleStreak = 0;
        Volts lastVoltage = -1.0;
        Amperes lastCurrent = -1.0;
        double lastSoc = -1.0;
        bool quarantined = false;
    };

    void updateQuarantine(const SystemView &view);

    InsureParams params_;
    SpatialManager spatial_;
    TemporalManager temporal_;
    std::shared_ptr<NodeAllocator> allocator_;
    Seconds lastSpatial_ = -1e18;
    std::vector<unsigned> eligible_;
    std::vector<CabinetHealth> health_;
    std::vector<QuarantineEvent> quarantineLog_;
    unsigned quarantinedCount_ = 0;
    unsigned batchVms_ = 0;
    GigaBytes plannedBacklog_ = 0.0;
    bool batchActive_ = false;

    /** Battery power the TPM considers friendly, watts. */
    Watts batteryAllowance(const SystemView &view,
                           unsigned online_cabinets) const;
};

} // namespace insure::core

#endif // INSURE_CORE_INSURE_MANAGER_HH
