#include "core/temporal_manager.hh"

#include "snapshot/archive.hh"

#include <algorithm>

namespace insure::core {

TemporalManager::TemporalManager(const TemporalParams &params)
    : params_(params)
{
}

TemporalDecision
TemporalManager::evaluate(const SystemView &view, unsigned online_cabinets,
                          Amperes total_discharge_current,
                          double min_online_soc,
                          Volts min_online_unit_voltage)
{
    TemporalDecision d;
    d.dutyCycle = view.dutyCycle;

    // SoC/voltage floor: checkpoint and suspend until the buffer recovers.
    if (online_cabinets == 0 || min_online_soc < params_.socFloor ||
        (min_online_unit_voltage < params_.voltageFloorPerUnit &&
         total_discharge_current > 0.5)) {
        if (view.solarPower < view.loadPower) {
            d.checkpointShutdown = true;
            d.acted = true;
            if (!haltedByFloor_) {
                haltedByFloor_ = true;
                ++shutdowns_;
            }
            return d;
        }
    }
    if (haltedByFloor_) {
        // Stay down until the buffer has meaningfully recovered.
        if (min_online_soc < params_.socRestart && online_cabinets > 0 &&
            view.solarPower < view.loadPower) {
            d.checkpointShutdown = true;
            return d;
        }
        haltedByFloor_ = false;
    }

    const Amperes threshold =
        params_.currentThresholdPerCabinet * std::max(1u, online_cabinets);

    if (total_discharge_current > threshold) {
        // Over-current: cap the load (Fig. 11).
        if (view.workloadKind == workload::WorkloadKind::Batch) {
            if (view.dutyCycle > params_.minDuty + 1e-9) {
                d.dutyCycle =
                    std::max(params_.minDuty,
                             view.dutyCycle - params_.dutyStep);
            } else if (view.activeVms > 0) {
                d.vmDelta = -static_cast<int>(
                    std::min(2u, view.activeVms));
            }
        } else {
            if (view.activeVms > 0)
                d.vmDelta = -1;
        }
        d.acted = true;
        ++cappings_;
        return d;
    }

    if (total_discharge_current < params_.growFraction * threshold &&
        view.backlog > 0.0) {
        // Comfortable current and work pending: restore capacity.
        bool grew = false;
        if (view.workloadKind == workload::WorkloadKind::Batch) {
            if (view.dutyCycle < 1.0 - 1e-9) {
                d.dutyCycle = std::min(1.0, view.dutyCycle +
                                                params_.dutyStep);
                grew = true;
            }
        } else {
            if (view.activeVms < view.totalVmSlots) {
                d.vmDelta = 1;
                grew = true;
            }
        }
        if (grew) {
            d.acted = true;
            ++grows_;
        }
    }
    return d;
}


void
TemporalManager::save(snapshot::Archive &ar) const
{
    ar.section("temporal_manager");
    ar.putU64(cappings_);
    ar.putU64(grows_);
    ar.putU64(shutdowns_);
    ar.putBool(haltedByFloor_);
}

void
TemporalManager::load(snapshot::Archive &ar)
{
    ar.section("temporal_manager");
    cappings_ = ar.getU64();
    grows_ = ar.getU64();
    shutdowns_ = ar.getU64();
    haltedByFloor_ = ar.getBool();
}

} // namespace insure::core
