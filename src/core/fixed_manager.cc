#include "core/fixed_manager.hh"

namespace insure::core {

using battery::UnitMode;

FixedVmManager::FixedVmManager(unsigned vms, Seconds restart_backoff)
    : vms_(vms), restartBackoff_(restart_backoff)
{
}

ControlActions
FixedVmManager::control(const SystemView &view)
{
    ControlActions act;
    // The whole buffer floats on the DC bus: it backstops the load and
    // absorbs surplus, with hardware protection as the only safety net.
    act.cabinetModes.assign(view.cabinets.size(), UnitMode::Standby);
    act.chargePlan.splitEvenly = true;
    for (unsigned i = 0; i < view.cabinets.size(); ++i)
        act.chargePlan.cabinets.push_back(i);
    act.dutyCycle = 1.0;

    unsigned target = view.backlog > 0.0 ? vms_ : 0;
    if (view.lastPowerFailureAge < restartBackoff_)
        target = 0;
    if (target != view.activeVms)
        countActions();
    act.targetVms = target;
    return act;
}

} // namespace insure::core
