/**
 * @file
 * The full in-situ system harness: solar supply, reconfigurable e-Buffer,
 * server cluster, workload, telemetry and a pluggable power manager, wired
 * together on the discrete-event kernel.
 *
 * Three periodic activities drive the plant (paper Fig. 12's three tiers):
 *  - physics tick (1 s): solar sampling, power-flow balancing (direct
 *    green, buffer discharge, charge-plan execution), battery kinetics,
 *    server state machines and data processing;
 *  - telemetry tick: the monitor samples the array through the transducers
 *    into the PLC register map;
 *  - control tick: the power manager reads the SENSED state and issues
 *    mode changes, a charge plan, VM targets and a duty cycle.
 */

#ifndef INSURE_CORE_IN_SITU_SYSTEM_HH
#define INSURE_CORE_IN_SITU_SYSTEM_HH

#include <memory>
#include <optional>
#include <string>

#include "battery/battery_array.hh"
#include "core/metrics.hh"
#include "interactive/request_model.hh"
#include "core/power_manager.hh"
#include "core/system_observer.hh"
#include "server/cluster.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "solar/solar_source.hh"
#include "telemetry/coordination_link.hh"
#include "telemetry/daily_log.hh"
#include "telemetry/history_table.hh"
#include "telemetry/monitor.hh"
#include "telemetry/register_map.hh"
#include "workload/data_queue.hh"
#include "workload/profiles.hh"
#include "workload/sources.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::core {

/**
 * Optional secondary power feed (paper Figs. 6/7: "supports a secondary
 * power if available") — a backup generator or a weak grid tie that
 * covers load the solar + buffer combination cannot, at a running cost.
 */
struct SecondaryPowerParams {
    /** Maximum deliverable power, watts. */
    Watts capacity = 800.0;
    /** Start-up delay before the feed produces power, seconds. */
    Seconds startupTime = 30.0;
    /** Energy cost of the feed, $/kWh (diesel-class by default). */
    double costPerKwh = 0.40;
};

/** Static configuration of the plant. */
struct SystemConfig {
    /** Battery cell parameters. */
    battery::BatteryParams battery;
    /** Number of switchable cabinets. */
    unsigned cabinetCount = 3;
    /** 12 V units per cabinet. */
    unsigned seriesCount = 2;
    /** Initial state of charge. */
    double initialSoc = 0.60;
    /** Server node model. */
    server::NodeParams node;
    /** Physical machines in the rack. */
    unsigned nodeCount = 4;
    /** Workload profile being served. */
    workload::WorkloadProfile profile;
    /** Batch arrival process (optional). */
    std::optional<workload::BatchSource::Params> batch;
    /** Stream arrival process (optional). */
    std::optional<workload::StreamSource::Params> stream;
    /** Interactive request-level workload (optional). */
    std::optional<interactive::RequestParams> interactive;
    /** Secondary (backup) power feed (optional; paper Fig. 7 flows). */
    std::optional<SecondaryPowerParams> secondary;
    /** Physics integration step, seconds. */
    Seconds physicsTick = 1.0;
    /** Telemetry sampling period, seconds. */
    Seconds telemetryPeriod = 5.0;
    /** Power-manager control period, seconds. */
    Seconds controlPeriod = 60.0;
    /**
     * Unified-buffer protection semantics: one cabinet trip disconnects
     * the whole buffer (the baseline's single-string wiring).
     */
    bool unifiedBuffer = false;
    /**
     * PLC-speed relay reaction: when the load bus sags, healthy charging
     * cabinets switch to discharge within the physics tick (the 25 ms
     * relays of the prototype). The unified baseline cannot do this.
     */
    bool fastSwitching = true;
    /** Minimum SoC for a fast-switch promotion to the load bus. */
    double fastSwitchMinSoc = 0.25;
    /**
     * Bus-coupled charging: the buffer hangs directly on the DC bus, so
     * cabinets in Standby also absorb charge (the baseline's unified
     * wiring). InSURE's relay network isolates the charge bus instead.
     */
    bool busCoupledCharging = false;
    /**
     * Supplied/demanded power ratio below which the rack loses power.
     * Server PSUs ride through modest bus sag; only a genuine collapse
     * (supply well below demand) drops the rack.
     */
    double supplyTolerance = 0.93;
    /**
     * Worker threads for the battery array's batched kernels (0/1 =
     * serial). Results are bit-identical for every setting; only worth
     * turning on for 1k-unit-class arrays.
     */
    unsigned workerThreads = 0;
};

/** The assembled plant plus controller. */
class InSituSystem : public sim::Component
{
  public:
    /**
     * @param sim owning simulation
     * @param name component name
     * @param cfg plant configuration
     * @param solar power supply (ownership transferred)
     * @param manager power-management policy (ownership transferred)
     */
    InSituSystem(sim::Simulation &sim, const std::string &name,
                 SystemConfig cfg,
                 std::unique_ptr<solar::SolarSource> solar,
                 std::unique_ptr<PowerManager> manager);

    void startup() override;

    /** Close out time-weighted gauges at the end-of-run time. */
    void finalize() override;

    /** Record a (time, solar, load, soc, ...) trace every @p period s. */
    void enableTrace(Seconds period);

    /**
     * Attach a tick-loop observer (nullptr detaches). Not owned; must
     * outlive the run. With no observer attached the tick loop pays one
     * branch, so benches run at full speed.
     */
    void attachObserver(SystemObserver *obs);

    /** The attached observer, if any. */
    SystemObserver *observer() const { return observer_; }

    /** The recorded trace (null when not enabled). */
    const sim::Trace *trace() const { return trace_ ? &*trace_ : nullptr; }

    /** Evaluation metrics as of the current simulated time. */
    Metrics metrics() const;

    /** Table 6-style daily log summary as of now. */
    telemetry::DailyLogSummary dailySummary() const;

    // Plant access (tests, benches).
    battery::BatteryArray &array() { return array_; }
    const battery::BatteryArray &array() const { return array_; }
    server::Cluster &cluster() { return cluster_; }
    const server::Cluster &cluster() const { return cluster_; }
    workload::DataQueue &queue() { return queue_; }
    const workload::DataQueue &queue() const { return queue_; }
    const telemetry::SystemMonitor &monitor() const { return monitor_; }
    telemetry::SystemMonitor &monitor() { return monitor_; }
    /**
     * The PLC holding-register file (the digital-twin service binds its
     * own ModbusSlave to it, so service traffic never perturbs the
     * snapshotted counters of the plant's internal PLC endpoint).
     */
    telemetry::RegisterMap &registers() { return registers_; }
    const telemetry::RegisterMap &registers() const { return registers_; }
    /** The coordination node's Modbus master (fault injection, stats). */
    telemetry::CoordinationLink &link() { return *link_; }
    const telemetry::DischargeHistoryTable &history() const
    {
        return history_;
    }
    PowerManager &manager() { return *manager_; }
    const PowerManager &manager() const { return *manager_; }
    solar::SolarSource &solarSource() { return *solar_; }
    const SystemConfig &config() const { return cfg_; }

    /** Buffer protection trips so far. */
    std::uint64_t bufferTrips() const { return bufferTrips_; }

    /** Rack power-loss events so far. */
    std::uint64_t powerFailures() const { return powerFailures_; }

    /** Energy drawn from the secondary feed so far, watt-hours. */
    WattHours secondaryEnergyWh() const { return secondaryWh_; }

    /** Interactive workload, or nullptr when the plant runs none. */
    const interactive::RequestWorkload *interactiveWorkload() const
    {
        return interactive_ ? &*interactive_ : nullptr;
    }

    /** Interactive SLO report, if the plant runs the workload. */
    std::optional<interactive::SloReport> sloReport() const
    {
        if (!interactive_)
            return std::nullopt;
        return interactive_->report();
    }

    /**
     * Serialize the complete plant state: every sub-component, the
     * energy/uptime accumulators, the charge plan in force and the four
     * periodic tasks' pending events. The attached observer is NOT
     * serialized here (the snapshotter drives it separately, so observer
     * wiring can differ between writer and reader processes). Snapshots
     * are taken between event dispatches only.
     */
    void save(snapshot::Archive &ar) const;

    /**
     * Restore the plant state into a freshly constructed, identically
     * configured system whose startup() has NOT run (the restored tasks
     * replace the initial schedule). The simulation clock must already
     * be restored (sim::Simulation::load runs first).
     */
    void load(snapshot::Archive &ar);

  private:
    SystemConfig cfg_;
    std::unique_ptr<solar::SolarSource> solar_;
    battery::BatteryArray array_;
    telemetry::RegisterMap registers_;
    telemetry::SystemMonitor monitor_;
    telemetry::ModbusSlave plc_;
    std::unique_ptr<telemetry::CoordinationLink> link_;
    telemetry::DischargeHistoryTable history_;
    server::Cluster cluster_;
    workload::DataQueue queue_;
    std::optional<workload::BatchSource> batchSrc_;
    std::optional<workload::StreamSource> streamSrc_;
    std::optional<interactive::RequestWorkload> interactive_;
    std::unique_ptr<PowerManager> manager_;

    std::unique_ptr<sim::PeriodicTask> physicsTask_;
    std::unique_ptr<sim::PeriodicTask> telemetryTask_;
    std::unique_ptr<sim::PeriodicTask> controlTask_;
    std::unique_ptr<sim::PeriodicTask> traceTask_;

    SystemObserver *observer_ = nullptr;
    ChargePlan chargePlan_;
    /** Interactive routing command in force (last control tick). */
    interactive::InfoBatteryCommand infoCmd_;
    /** Cluster emergency shutdowns seen by the fault-drop hook. */
    std::uint64_t emergencyShutdownsSeen_ = 0;
    std::vector<Amperes> lastCurrents_;
    Seconds lastControl_ = 0.0;
    double solarAvgAccumWs_ = 0.0;
    Seconds solarAvgWindow_ = 0.0;
    std::uint64_t lastMgrActions_ = 0;

    // Accumulators.
    sim::TimeWeightedGauge storedGauge_;
    sim::TimeWeightedGauge pendingGauge_;
    sim::TimeWeightedGauge upPendingGauge_;
    WattHours offeredWh_ = 0.0;
    WattHours greenUsedWh_ = 0.0;
    WattHours loadWh_ = 0.0;
    WattHours effectiveWh_ = 0.0;
    AmpHours throughputAh_ = 0.0;
    WattHours secondaryWh_ = 0.0;
    Seconds secondaryRunningSince_ = -1.0;
    Seconds secondaryLastNeeded_ = -1.0;
    std::uint64_t bufferTrips_ = 0;
    std::uint64_t powerFailures_ = 0;
    Seconds lastPowerFailure_ = -1.0;
    bool powerFailedLastTick_ = false;
    /** totalExogenousAh() as of the last observed tick (fault runs). */
    AmpHours exoAhSeen_ = 0.0;
    double lostVmHoursSeen_ = 0.0;
    telemetry::DailyLog log_;
    std::optional<sim::Trace> trace_;

    // Per-tick scratch state, reused so the physics tick stays off the
    // allocator: the discharge result (its vectors keep their capacity),
    // the fast-switch candidate list, and the array capacity (constant
    // for a run, cached on first use).
    battery::ArrayDischargeResult dr_;
    std::vector<unsigned> fastSwitchScratch_;
    WattHours capacityWhCache_ = -1.0;

    void physicsTick(Seconds now);
    void telemetryTick(Seconds now);
    void controlTick(Seconds now);
    SystemView buildView(Seconds now) const;
    Watts cabinetPeakChargePower() const;
};

} // namespace insure::core

#endif // INSURE_CORE_IN_SITU_SYSTEM_HH
