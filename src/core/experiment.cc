#include "core/experiment.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "server/node_params.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::core {

const char *
managerKindName(ManagerKind k)
{
    switch (k) {
      case ManagerKind::Insure: return "insure";
      case ManagerKind::Baseline: return "baseline";
      case ManagerKind::InfoBattery: return "infobattery";
    }
    return "?";
}

namespace {

/** Mean power of a (time_s, power_w) trace over [lo, hi] seconds. */
Watts
windowAverage(const sim::Trace &trace, Seconds lo, Seconds hi)
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t r = 0; r < trace.rows(); ++r) {
        const double t = trace.row(r)[0];
        if (t >= lo && t <= hi) {
            sum += trace.at(r, "power_w");
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

sim::Trace
scaleTraceToWindowAverage(const sim::Trace &trace, Watts target)
{
    const Watts current =
        windowAverage(trace, 7.0 * units::secPerHour,
                      20.0 * units::secPerHour);
    if (current <= 0.0)
        fatal("experiment: zero-power solar trace cannot be scaled");
    const double k = target / current;
    sim::Trace out(trace.columns());
    const int pcol = trace.columnIndex("power_w");
    for (std::size_t r = 0; r < trace.rows(); ++r) {
        auto row = trace.row(r);
        row[pcol] *= k;
        out.append(row);
    }
    return out;
}

std::unique_ptr<PowerManager>
makeManager(const ExperimentConfig &cfg,
            std::shared_ptr<NodeAllocator> allocator)
{
    switch (cfg.manager) {
      case ManagerKind::Insure:
        return std::make_unique<InsureManager>(cfg.insure, allocator);
      case ManagerKind::Baseline:
        return std::make_unique<BaselineManager>(cfg.baseline, allocator);
      case ManagerKind::InfoBattery:
        return std::make_unique<interactive::InfoBatteryManager>(
            cfg.infoBattery, cfg.insure, allocator);
    }
    fatal("experiment: unknown manager kind");
}

} // namespace

sim::Trace
buildSolarTrace(const ExperimentConfig &cfg)
{
    sim::Trace trace = solar::SolarSource::generateDayTrace(
        cfg.day, cfg.seed, solar::PvPanelParams{}, 10.0);
    if (cfg.targetDailyKwh) {
        trace = solar::SolarSource::scaleTraceToEnergy(
            trace, *cfg.targetDailyKwh * 1000.0);
    }
    if (cfg.scaleToAvgWatts)
        trace = scaleTraceToWindowAverage(trace, *cfg.scaleToAvgWatts);
    return trace;
}

ExperimentRig::ExperimentRig(const ExperimentConfig &cfg) : cfg_(cfg)
{
    simulation_ = std::make_unique<sim::Simulation>(cfg_.seed);

    SystemConfig system = cfg_.system;
    system.unifiedBuffer = (cfg_.manager == ManagerKind::Baseline);
    system.fastSwitching = (cfg_.manager != ManagerKind::Baseline);

    auto allocator = std::make_shared<NodeAllocator>(
        system.node, system.nodeCount, system.profile);

    auto solar =
        std::make_unique<solar::SolarSource>(buildSolarTrace(cfg_));

    plant_ = std::make_unique<InSituSystem>(
        *simulation_, managerKindName(cfg_.manager), system,
        std::move(solar), makeManager(cfg_, allocator));
    if (cfg_.recordTrace)
        plant_->enableTrace(cfg_.tracePeriod);

    // A factory-made observer is owned by this run (one instance per run,
    // so sweeps stay thread-confined); a raw pointer is the caller's.
    observer_ = cfg_.observer;
    if (cfg_.observerFactory) {
        ownedObserver_ = cfg_.observerFactory();
        observer_ = ownedObserver_.get();
    }
    if (observer_)
        plant_->attachObserver(observer_);

    // An extension (e.g. the src/fault injector) attaches to the live
    // plant before the clock starts; clean runs skip this entirely.
    if (cfg_.extensionFactory)
        extension_ = cfg_.extensionFactory(*plant_, *simulation_);
}

// The destructor must see the complete InSituSystem/extension types, so
// it lives here rather than defaulting in the header.
ExperimentRig::~ExperimentRig() = default;

void
ExperimentRig::runUntil(Seconds t)
{
    simulation_->runUntil(t);
}

ExperimentResult
ExperimentRig::finish()
{
    simulation_->finish();

    ExperimentResult res;
    res.managerName = managerKindName(cfg_.manager);
    res.metrics = plant_->metrics();
    res.log = plant_->dailySummary();
    if (plant_->trace())
        res.trace = *plant_->trace();
    if (observer_) {
        res.invariantViolations = observer_->violationCount();
        res.invariantNotes = observer_->violationMessages();
    }
    res.slo = plant_->sloReport();
    if (extension_)
        extension_->onRunComplete(*plant_, res);
    return res;
}

void
ExperimentRig::save(snapshot::Archive &ar) const
{
    ar.section("experiment_rig");
    simulation_->save(ar);
    plant_->save(ar);
    ar.putBool(observer_ != nullptr);
    if (observer_)
        observer_->saveState(ar);
    ar.putBool(extension_ != nullptr);
    if (extension_)
        extension_->save(ar);
}

void
ExperimentRig::load(snapshot::Archive &ar)
{
    ar.section("experiment_rig");
    // Clock first: component loads validate restored events against it.
    simulation_->load(ar);
    plant_->load(ar);
    if (ar.getBool() != (observer_ != nullptr))
        throw snapshot::SnapshotError(
            "ExperimentRig: observer presence differs from snapshot");
    if (observer_)
        observer_->loadState(ar);
    if (ar.getBool() != (extension_ != nullptr))
        throw snapshot::SnapshotError(
            "ExperimentRig: extension presence differs from snapshot");
    if (extension_)
        extension_->load(ar);
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    ExperimentRig rig(cfg);
    rig.runUntil(cfg.duration);
    return rig.finish();
}

SweepSummary
mergeResults(const std::vector<RunResult> &runs)
{
    SweepSummary s;
    if (runs.empty())
        return s;
    s.runs = runs.size();
    s.minUptime = std::numeric_limits<double>::infinity();
    s.maxUptime = -std::numeric_limits<double>::infinity();
    for (const RunResult &r : runs) {
        if (r.failed) {
            ++s.failedRuns;
            if (s.failures.size() < 20)
                s.failures.push_back(r.label + ": " + r.error);
            continue;
        }
        const Metrics &m = r.result.metrics;
        s.simulatedSeconds += r.simulatedSeconds;
        s.runWallSeconds += r.wallSeconds;
        s.processedGb += m.processedGb;
        s.solarOfferedKwh += m.solarOfferedKwh;
        s.greenUsedKwh += m.greenUsedKwh;
        s.loadKwh += m.loadKwh;
        s.secondaryKwh += m.secondaryKwh;
        s.bufferThroughputAh += m.bufferThroughputAh;
        s.bufferTrips += m.bufferTrips;
        s.emergencyShutdowns += m.emergencyShutdowns;
        s.onOffCycles += m.onOffCycles;
        s.meanUptime += m.uptime;
        s.minUptime = std::min(s.minUptime, m.uptime);
        s.maxUptime = std::max(s.maxUptime, m.uptime);
        s.meanEBufferAvailability += m.eBufferAvailability;
        s.meanPerfPerAh += m.perfPerAh;
        s.meanThroughputGbPerHour += m.throughputGbPerHour;
    }
    const std::size_t completed = s.runs - s.failedRuns;
    if (completed == 0) {
        s.minUptime = 0.0;
        s.maxUptime = 0.0;
        return s;
    }
    const double n = static_cast<double>(completed);
    s.meanUptime /= n;
    s.meanEBufferAvailability /= n;
    s.meanPerfPerAh /= n;
    s.meanThroughputGbPerHour /= n;
    return s;
}

ComparisonResult
runComparison(ExperimentConfig cfg)
{
    ComparisonResult out;
    cfg.manager = ManagerKind::Insure;
    out.insure = runExperiment(cfg);
    cfg.manager = ManagerKind::Baseline;
    out.baseline = runExperiment(cfg);
    return out;
}

ExperimentConfig
seismicExperiment()
{
    ExperimentConfig cfg;
    cfg.system.node = server::xeonNode();
    cfg.system.nodeCount = 4;
    cfg.system.profile = workload::seismicProfile();
    workload::BatchSource::Params batch;
    batch.jobSize = 114.0;
    batch.dailyTimes = {8.5 * units::secPerHour, 16.5 * units::secPerHour};
    cfg.system.batch = batch;
    return cfg;
}

ExperimentConfig
videoExperiment()
{
    ExperimentConfig cfg;
    cfg.system.node = server::xeonNode();
    cfg.system.nodeCount = 4;
    cfg.system.profile = workload::videoProfile();
    workload::StreamSource::Params stream;
    stream.gbPerMinute = 0.21;
    stream.chunkPeriod = 60.0;
    cfg.system.stream = stream;
    return cfg;
}

ExperimentConfig
microExperiment(const std::string &benchmark)
{
    ExperimentConfig cfg;
    cfg.system.node = server::xeonNode();
    cfg.system.nodeCount = 4;
    cfg.system.profile = workload::microBenchmark(benchmark);

    // Size arrivals at 90% of peak rack throughput: the kernels iterate
    // all day but the cluster can catch up when energy allows (the
    // paper iterates the micro benchmarks against the Fig. 15 traces).
    const double peak_gb_per_hour =
        cfg.system.profile.xeonGbPerVmHour * cfg.system.nodeCount *
        cfg.system.node.vmSlots;
    workload::StreamSource::Params stream;
    stream.gbPerMinute = 0.9 * peak_gb_per_hour / 60.0;
    stream.chunkPeriod = 60.0;
    stream.windowStart = 7.0 * units::secPerHour;
    stream.windowEnd = 20.0 * units::secPerHour;
    cfg.system.stream = stream;
    return cfg;
}

ExperimentConfig
interactiveExperiment()
{
    ExperimentConfig cfg;
    cfg.system.node = server::xeonNode();
    cfg.system.nodeCount = 4;
    cfg.system.profile = workload::interactiveProfile();

    // Size the population so the evening peak needs ~90% of the rack's
    // VM slots at the target utilisation: 0.3M users x 40 req/day with
    // the default 0.85 diurnal swing peaks near 260 req/s, i.e. ~7.4 of
    // the 8 Xeon slots. The overnight trough idles down to one VM.
    interactive::RequestParams req;
    req.usersMillions = 0.3;
    cfg.system.interactive = req;
    return cfg;
}

ExperimentConfig
experimentFromConfig(const sim::Config &cfg)
{
    const std::string workload =
        cfg.getString("experiment.workload", "seismic");
    ExperimentConfig out;
    if (workload == "seismic")
        out = seismicExperiment();
    else if (workload == "video")
        out = videoExperiment();
    else if (workload == "interactive")
        out = interactiveExperiment();
    else
        out = microExperiment(workload);

    const std::string manager =
        cfg.getString("experiment.manager", "insure");
    if (manager == "insure") {
        out.manager = ManagerKind::Insure;
    } else if (manager == "baseline") {
        out.manager = ManagerKind::Baseline;
    } else if (manager == "noopt") {
        out.manager = ManagerKind::Insure;
        out.insure = InsureParams::noOpt();
    } else if (manager == "infobattery") {
        out.manager = ManagerKind::InfoBattery;
    } else {
        fatal("experimentFromConfig: unknown manager '%s'",
              manager.c_str());
    }

    out.duration =
        units::days(cfg.getDouble("experiment.days", 1.0));
    out.seed = static_cast<std::uint64_t>(cfg.getInt(
        "experiment.seed", static_cast<long>(kDefaultSeed)));
    out.recordTrace = cfg.getBool("experiment.record_trace", false);

    const std::string day = cfg.getString("solar.day", "sunny");
    if (day == "sunny")
        out.day = solar::DayClass::Sunny;
    else if (day == "cloudy")
        out.day = solar::DayClass::Cloudy;
    else if (day == "rainy")
        out.day = solar::DayClass::Rainy;
    else
        fatal("experimentFromConfig: unknown day '%s'", day.c_str());
    if (cfg.has("solar.kwh"))
        out.targetDailyKwh = cfg.getDouble("solar.kwh");
    if (cfg.has("solar.avg_watts"))
        out.scaleToAvgWatts = cfg.getDouble("solar.avg_watts");

    out.system.nodeCount = static_cast<unsigned>(
        cfg.getInt("system.nodes", 4));
    if (cfg.getBool("system.lowpower", false))
        out.system.node = server::lowPowerNode();
    out.system.cabinetCount = static_cast<unsigned>(
        cfg.getInt("system.cabinets", 3));
    out.system.seriesCount = static_cast<unsigned>(cfg.getInt(
        "system.series", static_cast<long>(out.system.seriesCount)));
    out.system.workerThreads = static_cast<unsigned>(
        cfg.getInt("system.workers", 0));
    out.system.initialSoc =
        cfg.getDouble("system.initial_soc", out.system.initialSoc);
    if (cfg.has("system.secondary_watts")) {
        SecondaryPowerParams sp;
        sp.capacity = cfg.getDouble("system.secondary_watts");
        out.system.secondary = sp;
    }

    const auto unused = cfg.unusedKeys();
    if (!unused.empty()) {
        fatal("experimentFromConfig: unknown key '%s'",
              unused.front().c_str());
    }
    return out;
}

} // namespace insure::core
