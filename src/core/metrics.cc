#include "core/metrics.hh"

namespace insure::core {

double
improvement(double opt, double base)
{
    if (base <= 0.0)
        return opt > 0.0 ? 1.0 : 0.0;
    return (opt - base) / base;
}

double
reductionImprovement(double opt, double base)
{
    if (base <= 0.0)
        return 0.0;
    return (base - opt) / base;
}

} // namespace insure::core
