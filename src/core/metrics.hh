/**
 * @file
 * Evaluation metrics (paper §6.4, Figs. 20/21).
 *
 * Service-related metrics: system uptime, load performance (throughput)
 * and average latency. System-related metrics: e-Buffer energy
 * availability, expected service life and performance per ampere-hour.
 */

#ifndef INSURE_CORE_METRICS_HH
#define INSURE_CORE_METRICS_HH

#include <cstdint>

#include "sim/units.hh"

namespace insure::core {

/** Full-system evaluation metrics for one experiment run. */
struct Metrics {
    // Service-related.
    /** Fraction of work-pending time the cluster was productive. */
    double uptime = 0.0;
    /** Data processed per hour of experiment, GB/h. */
    double throughputGbPerHour = 0.0;
    /** Mean job completion latency, seconds. */
    Seconds meanLatency = 0.0;

    // System-related.
    /** Time-averaged e-Buffer stored energy, fraction of capacity. */
    double eBufferAvailability = 0.0;
    /** Projected battery service life at the observed usage rate, years. */
    double serviceLifeYears = 0.0;
    /**
     * Service life normalised to the workload: the buffer lifetime if the
     * system had to process the full arriving data volume at its observed
     * wear-per-gigabyte efficiency. Unlike the raw projection this does
     * not reward a system that simply fails to process data.
     */
    double workNormalizedLifeYears = 0.0;
    /** Data processed per ampere-hour through the e-Buffer, GB/Ah. */
    double perfPerAh = 0.0;

    // Bookkeeping.
    /** Total data completed, GB. */
    double processedGb = 0.0;
    /** Solar energy offered, kWh. */
    double solarOfferedKwh = 0.0;
    /** Solar energy actually used (direct + stored), kWh. */
    double greenUsedKwh = 0.0;
    /** Server load energy, kWh. */
    double loadKwh = 0.0;
    /** Energy consumed while productive, kWh. */
    double effectiveKwh = 0.0;
    /** Energy drawn from the secondary (backup) feed, kWh. */
    double secondaryKwh = 0.0;
    /** Ah pushed through the buffer. */
    double bufferThroughputAh = 0.0;
    /** Max-min spread of per-cabinet discharge throughput, Ah. */
    double bufferImbalanceAh = 0.0;
    /** Buffer protection trips (hardware disconnects). */
    std::uint64_t bufferTrips = 0;
    /** Server emergency (uncheckpointed) shutdowns. */
    std::uint64_t emergencyShutdowns = 0;
    /** Server on/off power cycles. */
    std::uint64_t onOffCycles = 0;
    /** VM control operations. */
    std::uint64_t vmCtrlOps = 0;
    /** Manager power-control actions. */
    std::uint64_t powerCtrlOps = 0;

    /** Fraction of offered solar energy put to use. */
    double
    solarUtilization() const
    {
        return solarOfferedKwh > 0.0 ? greenUsedKwh / solarOfferedKwh : 0.0;
    }
};

/**
 * Resilience metrics for a fault-injected run (produced by the
 * src/fault ResilienceTracker; absent on clean runs).
 *
 * Detection is credited when the controller quarantines the faulted
 * component; recovery when the system then completes a full failure-free
 * control window. "Unsafe operation" counts seconds during which a
 * faulted battery unit or relay stayed electrically conducting — the
 * window in which a real deployment risks damage.
 */
struct ResilienceMetrics {
    /** Faults injected / cleared (expired duration) during the run. */
    std::uint64_t faultsInjected = 0;
    std::uint64_t faultsCleared = 0;
    /** Faults the controller detected (matching quarantine). */
    std::uint64_t detectedFaults = 0;
    /** Cabinet quarantine events the controller recorded. */
    std::uint64_t quarantines = 0;

    /** Injection -> quarantine, over detected faults, seconds. */
    Seconds meanTimeToDetect = 0.0;
    Seconds maxTimeToDetect = 0.0;
    /** Detection -> first failure-free control window, seconds. */
    Seconds meanTimeToRecover = 0.0;
    Seconds maxTimeToRecover = 0.0;

    /** Seconds the rack was power-failed (load unmet). */
    Seconds outageSeconds = 0.0;
    /** Seconds with work pending but the cluster unproductive. */
    Seconds pendingDownSeconds = 0.0;
    /** Seconds a faulted unit/relay stayed conducting. */
    Seconds unsafeOperationSeconds = 0.0;

    /** Load energy missing vs the demanded load while faulted, kWh. */
    double energyLostKwh = 0.0;
    /** VM-hours of work lost to emergency shutdowns. */
    double lostVmHours = 0.0;
};

/**
 * Relative improvement of @p opt over @p base for a larger-is-better
 * metric: (opt - base) / base. Guards against a zero baseline.
 */
double improvement(double opt, double base);

/**
 * Relative improvement for a smaller-is-better metric (latency):
 * (base - opt) / base.
 */
double reductionImprovement(double opt, double base);

} // namespace insure::core

#endif // INSURE_CORE_METRICS_HH
