/**
 * @file
 * Spatial power management (paper §3.3, Figs. 9 & 10).
 *
 * The spatial manager decides WHICH battery cabinets participate in
 * charging:
 *
 *  1. Offline screening (Fig. 9): at each coarse control interval the
 *     discharge threshold δD = DU + DL * T / TL is refreshed; offline
 *     cabinets whose aggregated discharge AhT[i] is below δD re-enter the
 *     charging group. Over-used cabinets stay offline, balancing wear.
 *
 *  2. Charge batching (Fig. 10): the optimal number of simultaneously
 *     charging cabinets is N = P_G / P_PC — concentrate a small solar
 *     budget on few cabinets so each charges at its peak acceptance rate
 *     instead of trickling all of them.
 *
 * The threshold can optionally be relaxed on demand (paper §3.3 last
 * paragraph): when high server demand would otherwise leave too few
 * eligible cabinets, extra discharge budget is granted, trading a little
 * battery life for throughput.
 */

#ifndef INSURE_CORE_SPATIAL_MANAGER_HH
#define INSURE_CORE_SPATIAL_MANAGER_HH

#include <vector>

#include "core/system_view.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::core {

/** Tuning of the spatial manager. */
struct SpatialParams {
    /** Per-cabinet lifetime discharge budget DL, ampere-hours. */
    AmpHours lifetimeDischargeAh = 8400.0;
    /** Desired battery service life TL, years. */
    double desiredLifetimeYears = 4.0;
    /**
     * Grace allowance: days of discharge budget available on day one, so
     * a freshly deployed system is not starved by a zero threshold.
     */
    double graceDays = 30.0;
    /** Allow threshold relaxation for on-demand acceleration. */
    bool relaxThreshold = true;
    /** Extra budget granted per relaxation, as a fraction of daily budget. */
    double relaxFraction = 0.5;
    /** Minimum cabinets to keep eligible when relaxation is enabled. */
    unsigned minEligible = 1;
};

/** The spatial (which-battery) policy. */
class SpatialManager
{
  public:
    explicit SpatialManager(const SpatialParams &params);

    /**
     * Discharge threshold δD at elapsed deployment time @p now, including
     * any relaxation granted so far.
     */
    AmpHours dischargeThreshold(Seconds now) const;

    /**
     * Fig. 9 screening: indices of cabinets whose aggregated discharge is
     * within budget. When relaxation is enabled and fewer than minEligible
     * cabinets qualify, the threshold is raised until the floor is met.
     */
    std::vector<unsigned> screen(const SystemView &view);

    /**
     * Fig. 10 batch size: optimal number of simultaneously charging
     * cabinets for solar budget @p green_budget (at least 1 when any
     * budget exists).
     */
    unsigned optimalBatchSize(Watts green_budget,
                              Watts peak_charge_power) const;

    /**
     * Order @p candidates by sensed state of charge ascending (charge the
     * low-SoC cabinets first, Fig. 14-a) and truncate to @p n.
     */
    std::vector<unsigned>
    selectForCharging(const std::vector<unsigned> &candidates,
                      const SystemView &view, unsigned n) const;

    /** Relaxations granted so far (ablation statistic). */
    std::uint64_t relaxations() const { return relaxations_; }

    /** Serialize the relaxation state. */
    void save(snapshot::Archive &ar) const;

    /** Restore the relaxation state. */
    void load(snapshot::Archive &ar);

  private:
    SpatialParams params_;
    AmpHours relaxedBudget_ = 0.0;
    std::uint64_t relaxations_ = 0;

    /** Daily discharge budget implied by DL / TL, ampere-hours. */
    AmpHours dailyBudget() const;
};

} // namespace insure::core

#endif // INSURE_CORE_SPATIAL_MANAGER_HH
