/**
 * @file
 * Fixed-configuration power manager for controlled experiments.
 *
 * Reproduces the paper's Table 2/3 methodology: the VM count is pinned
 * (8 vs. 4 VMs for seismic; 8/6/4/2 for video) and the system runs until
 * a fixed energy budget is exhausted — no adaptive management, so the
 * intrinsic trade-off between compute capability and power-cycle overhead
 * is visible.
 */

#ifndef INSURE_CORE_FIXED_MANAGER_HH
#define INSURE_CORE_FIXED_MANAGER_HH

#include "core/power_manager.hh"

namespace insure::core {

/** Pins the VM count; the buffer floats on the bus (no reconfiguration). */
class FixedVmManager : public PowerManager
{
  public:
    /**
     * @param vms VM count to hold whenever work is pending
     * @param restart_backoff hold-down after a power failure, seconds
     */
    explicit FixedVmManager(unsigned vms, Seconds restart_backoff = 900.0);

    const char *name() const override { return "fixed-vm"; }

    ControlActions control(const SystemView &view) override;

  private:
    unsigned vms_;
    Seconds restartBackoff_;
};

} // namespace insure::core

#endif // INSURE_CORE_FIXED_MANAGER_HH
