#include "core/in_situ_system.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::core {

using battery::UnitMode;

namespace {

/**
 * Clamp degenerate topology values to runnable ones. Randomised batch
 * and fuzz configs can produce zero cabinets or series strings; a plant
 * cannot operate without a buffer string, so build the smallest one
 * instead of crashing the whole campaign.
 */
SystemConfig
sanitizedConfig(SystemConfig cfg)
{
    cfg.cabinetCount = std::max(1u, cfg.cabinetCount);
    cfg.seriesCount = std::max(1u, cfg.seriesCount);
    return cfg;
}

} // namespace

InSituSystem::InSituSystem(sim::Simulation &sim, const std::string &name,
                           SystemConfig cfg,
                           std::unique_ptr<solar::SolarSource> solar,
                           std::unique_ptr<PowerManager> manager)
    : sim::Component(sim, name), cfg_(sanitizedConfig(std::move(cfg))),
      solar_(std::move(solar)),
      array_(cfg_.battery, cfg_.cabinetCount, cfg_.seriesCount,
             cfg_.initialSoc),
      registers_(telemetry::RegisterLayout::mapSize(cfg_.cabinetCount)),
      monitor_(array_, registers_),
      plc_(1, registers_),
      link_(std::make_unique<telemetry::CoordinationLink>(plc_, 1)),
      history_(cfg_.cabinetCount),
      cluster_(cfg_.nodeCount, cfg_.node),
      manager_(std::move(manager)),
      storedGauge_(nullptr, name + ".stored", "stored energy fraction"),
      pendingGauge_(nullptr, name + ".pending", "work pending"),
      upPendingGauge_(nullptr, name + ".upPending",
                      "productive while pending"),
      log_(name)
{
    if (!solar_)
        fatal("InSituSystem: solar source is required");
    if (!manager_)
        fatal("InSituSystem: power manager is required");

    array_.setWorkerThreads(cfg_.workerThreads);
    cluster_.setWorkloadUtil(cfg_.profile.powerUtil(cfg_.node.type));

    // Workload streams use ordinal split() in this fixed order — the
    // checked-in golden digests lock the derivation, so new subsystems
    // must NOT insert split() calls here. Anything added later (the
    // fault layer, for one) derives its streams advance-free via
    // Rng::derive with a streams:: tag, which cannot perturb these.
    Rng rng = sim.makeRng();
    // The interactive arrival stream is derive()d first, advance-free:
    // it reads the pre-split root state, so it neither shifts the batch/
    // stream splits below nor depends on which of them are configured.
    if (cfg_.interactive)
        interactive_.emplace(
            *cfg_.interactive,
            rng.derive(streams::kInteractiveArrivals));
    if (cfg_.batch)
        batchSrc_.emplace(*cfg_.batch, rng.split());
    if (cfg_.stream)
        streamSrc_.emplace(*cfg_.stream, rng.split());

    lastCurrents_.assign(cfg_.cabinetCount, 0.0);

    auto &eq = sim.events();
    physicsTask_ = std::make_unique<sim::PeriodicTask>(
        eq, cfg_.physicsTick, sim::EventPriority::Physics,
        [this](Seconds now) { physicsTick(now); });
    telemetryTask_ = std::make_unique<sim::PeriodicTask>(
        eq, cfg_.telemetryPeriod, sim::EventPriority::Telemetry,
        [this](Seconds now) { telemetryTick(now); });
    controlTask_ = std::make_unique<sim::PeriodicTask>(
        eq, cfg_.controlPeriod, sim::EventPriority::Control,
        [this](Seconds now) { controlTick(now); });
}

void
InSituSystem::startup()
{
    // Everything starts in standby with the rack powered down; the first
    // control tick decides what to do.
    array_.setAllModes(UnitMode::Standby);
    physicsTask_->start(cfg_.physicsTick);
    telemetryTask_->start(cfg_.telemetryPeriod);
    controlTask_->start(cfg_.controlPeriod);
    if (traceTask_)
        traceTask_->start(0.0);
}

void
InSituSystem::finalize()
{
    // Fold the interval between each gauge's last sample and the end of
    // the run into its integral, so report-time averages cover the whole
    // run even for levels that were set once and never changed again.
    const Seconds now = sim().now();
    storedGauge_.finalize(now);
    pendingGauge_.finalize(now);
    upPendingGauge_.finalize(now);
}

void
InSituSystem::enableTrace(Seconds period)
{
    if (trace_)
        return;
    trace_.emplace(std::vector<std::string>{
        "time_s", "solar_w", "load_w", "delivered_w", "mean_soc",
        "stored_wh", "vms", "duty", "productive", "cab0_v", "cab1_v",
        "cab2_v"});
    traceTask_ = std::make_unique<sim::PeriodicTask>(
        sim().events(), period, sim::EventPriority::Stats,
        [this](Seconds now) {
            const unsigned n = array_.cabinetCount();
            auto cabv = [&](unsigned i) {
                return i < n ? array_.cabinet(i).openCircuitVoltage()
                             : 0.0;
            };
            trace_->append(
                {now, solar_->availablePower(), cluster_.power(),
                 solar_->availablePower(), array_.meanSoc(),
                 array_.storedEnergyWh(),
                 static_cast<double>(cluster_.activeVms()),
                 cluster_.nodeCount() ? cluster_.node(0).dutyCycle() : 1.0,
                 cluster_.anyProductive() ? 1.0 : 0.0, cabv(0), cabv(1),
                 cabv(2)});
        });
}

void
InSituSystem::attachObserver(SystemObserver *obs)
{
    observer_ = obs;
    // Route mode transitions through the observer: unit 0 of each cabinet
    // sees every transition (Cabinet::setMode propagates to all units),
    // and the unit-level hook filters no-op writes (from == to).
    for (unsigned i = 0; i < array_.cabinetCount(); ++i) {
        battery::BatteryUnit &u = array_.cabinet(i).unit(0);
        if (obs) {
            u.setModeObserver(
                [this, i](UnitMode from, UnitMode to) {
                    observer_->onModeChange(i, from, to, sim().now(),
                                            array_.cabinet(i).soc());
                });
        } else {
            u.setModeObserver(nullptr);
        }
    }
}

Watts
InSituSystem::cabinetPeakChargePower() const
{
    const auto &unit = array_.cabinet(0).unit(0);
    return unit.chargeModel().peakChargePower() *
           array_.cabinet(0).seriesCount();
}

void
InSituSystem::physicsTick(Seconds now)
{
    const Seconds dt = cfg_.physicsTick;
    const Seconds prev = now - dt;

    // Exact pre-tick charge inventory, for the conservation invariant.
    // Fault injections fire between ticks (Stats priority), so any
    // exogenous inventory change since the last tick is credited to the
    // inter-tick window here.
    const AmpHours obsAhBefore =
        observer_ ? array_.totalUnitAh() : 0.0;
    const AmpHours obsExoPre =
        observer_ ? array_.totalExogenousAh() - exoAhSeen_ : 0.0;

    // 1. Workload arrivals.
    if (batchSrc_)
        batchSrc_->step(prev, now, queue_);
    if (streamSrc_)
        streamSrc_->step(prev, now, queue_);

    // 2. Solar supply (the source handles day/trace periodicity).
    solar_->step(now, dt);
    const Watts pg = solar_->availablePower();
    offeredWh_ += units::energyWh(pg, dt);
    log_.addSolar(units::energyWh(pg, dt));
    solarAvgAccumWs_ += pg * dt;
    solarAvgWindow_ += dt;

    // 3. Power flow: direct green first, then the buffer.
    const Watts pl = cluster_.power();
    const Watts direct = std::min(pg, pl);
    const Watts deficit = pl - direct;

    array_.beginTick();

    // PLC-speed reconfiguration: if the online cabinets cannot carry the
    // deficit, promote healthy charging cabinets (highest SoC first) onto
    // the load bus before the voltage collapses.
    if (cfg_.fastSwitching && deficit > 0.0 &&
        array_.maxDischargePower(dt) < deficit) {
        std::vector<unsigned> &charging = fastSwitchScratch_;
        charging.clear();
        for (unsigned i = 0; i < array_.cabinetCount(); ++i) {
            if (array_.cabinet(i).mode() == UnitMode::Charging)
                charging.push_back(i);
        }
        std::sort(charging.begin(), charging.end(),
                  [this](unsigned a, unsigned b) {
                      return array_.cabinet(a).soc() >
                             array_.cabinet(b).soc();
                  });
        for (unsigned idx : charging) {
            if (array_.maxDischargePower(dt) >= deficit)
                break;
            if (array_.cabinet(idx).soc() > cfg_.fastSwitchMinSoc)
                array_.cabinet(idx).setMode(UnitMode::Discharging);
        }
    }

    // dr_ is a member so its vectors keep their capacity tick to tick;
    // the out-param discharge() resets every field either way.
    battery::ArrayDischargeResult &dr = dr_;
    array_.discharge(deficit, dt, dr);
    if (dr.cabinetCurrents.empty()) {
        dr.cabinetCurrents.assign(array_.cabinetCount(), 0.0);
        dr.cabinetAh.assign(array_.cabinetCount(), 0.0);
    }
    lastCurrents_ = dr.cabinetCurrents;
    for (unsigned i = 0; i < array_.cabinetCount(); ++i)
        history_.record(i, dr.cabinetAh[i]);
    throughputAh_ += dr.throughputAh;

    // Hardware protection: tripped cabinets disconnect; in the unified
    // wiring one trip takes the whole string down (paper Fig. 5).
    if (!dr.tripped.empty()) {
        bufferTrips_ += dr.tripped.size();
        if (cfg_.unifiedBuffer) {
            array_.setAllModes(UnitMode::Offline);
        } else {
            for (unsigned idx : dr.tripped)
                array_.cabinet(idx).setMode(UnitMode::Offline);
        }
    }

    // Secondary feed (paper Fig. 7): covers whatever deficit the green
    // supply and the buffer could not. Real gensets have a start-up
    // delay and a minimum run time, so once needed the feed stays warm
    // for a while instead of flapping.
    Watts secondary = 0.0;
    const Watts shortfall =
        std::max(0.0, deficit - dr.deliveredPower);
    if (cfg_.secondary) {
        const Seconds min_run = 600.0;
        if (shortfall > 1.0) {
            if (secondaryRunningSince_ < 0.0)
                secondaryRunningSince_ = now;
            secondaryLastNeeded_ = now;
        } else if (secondaryRunningSince_ >= 0.0 &&
                   now - secondaryLastNeeded_ > min_run) {
            secondaryRunningSince_ = -1.0;
        }
        if (secondaryRunningSince_ >= 0.0 &&
            now - secondaryRunningSince_ >=
                cfg_.secondary->startupTime &&
            shortfall > 1.0) {
            secondary = std::min(shortfall, cfg_.secondary->capacity);
            secondaryWh_ += units::energyWh(secondary, dt);
        }
    }

    // Rack power loss when the buses cannot carry the load.
    const Watts supplied = direct + dr.deliveredPower + secondary;
    const bool failed =
        pl > 1.0 && supplied < pl * cfg_.supplyTolerance;
    if (failed && !powerFailedLastTick_) {
        if (Logger::enabled(LogLevel::Debug)) {
            std::string modes;
            for (unsigned i = 0; i < array_.cabinetCount(); ++i) {
                modes += battery::unitModeName(
                    array_.cabinet(i).mode())[0];
                modes += std::to_string(
                    static_cast<int>(array_.cabinet(i).soc() * 100));
                modes += ' ';
            }
            Logger::log(LogLevel::Debug,
                        "%s: power failure t=%.0f pg=%.0f pl=%.0f "
                        "supplied=%.0f cabinets=[%s]",
                        name().c_str(), now, pg, pl, supplied,
                        modes.c_str());
        }
        cluster_.emergencyShutdownAll();
        ++powerFailures_;
        lastPowerFailure_ = now;
    }
    powerFailedLastTick_ = failed;

    // 4. Charge plan execution with the remaining surplus.
    Watts surplus = std::max(0.0, pg - direct);
    Watts charge_used = 0.0;
    AmpHours charge_stored = 0.0;
    if (surplus > 0.0 && !chargePlan_.cabinets.empty()) {
        if (chargePlan_.splitEvenly) {
            const Watts each = surplus / chargePlan_.cabinets.size();
            for (unsigned idx : chargePlan_.cabinets) {
                const auto r = array_.chargeCabinet(
                    idx, each, dt, cfg_.busCoupledCharging);
                charge_used += r.consumedPower;
                charge_stored += r.storedAh;
            }
        } else {
            for (unsigned idx : chargePlan_.cabinets) {
                if (surplus <= 1.0)
                    break;
                const auto r = array_.chargeCabinet(
                    idx, surplus, dt, cfg_.busCoupledCharging);
                charge_used += r.consumedPower;
                charge_stored += r.storedAh;
                surplus -= r.consumedPower;
            }
        }
    }
    array_.endTick(dt);

    greenUsedWh_ += units::energyWh(
        (failed ? 0.0 : direct) + charge_used, dt);

    // 5. Servers and data processing.
    const auto cs = cluster_.step(dt);
    loadWh_ += cs.energyWh;
    effectiveWh_ += cs.productiveEnergyWh;
    log_.addLoad(cs.energyWh);
    log_.addEffective(cs.productiveEnergyWh);

    const double rate = cfg_.profile.gbPerVmHour(cfg_.node.type);
    queue_.process(now, cs.usefulVmHours * rate);

    // Work lost to uncheckpointed shutdowns must be redone.
    const double lost_vmh = cluster_.lostVmHours();
    if (lost_vmh > lostVmHoursSeen_ + 1e-12) {
        queue_.requeue(now, (lost_vmh - lostVmHoursSeen_) * rate);
        lostVmHoursSeen_ = lost_vmh;
    }

    // 5b. Interactive request stream: runs after the power flow and the
    // cluster step so it sees this tick's resolved VM pool and power
    // state. Uncheckpointed shutdowns (faults, rack power loss) drop the
    // in-flight requests — one per VM slot of each killed node — with
    // exact ground-truth accounting.
    if (interactive_) {
        const std::uint64_t shutdowns = cluster_.emergencyShutdowns();
        if (shutdowns > emergencyShutdownsSeen_) {
            interactive_->dropInFlight((shutdowns -
                                        emergencyShutdownsSeen_) *
                                       cfg_.node.vmSlots);
            emergencyShutdownsSeen_ = shutdowns;
        }
        interactive::RequestStepInputs ri;
        ri.now = now;
        ri.dt = dt;
        const unsigned active = cluster_.activeVms();
        const unsigned pre =
            infoCmd_.mode == interactive::ServeMode::Precompute
                ? std::min(infoCmd_.precomputeVms, active)
                : 0;
        ri.serveVms = active - pre;
        ri.precomputeVms = pre;
        ri.duty =
            cluster_.nodeCount() ? cluster_.node(0).dutyCycle() : 1.0;
        ri.powered = !failed;
        ri.mode = infoCmd_.mode;
        ri.shedMisses = infoCmd_.shedMisses;
        interactive_->step(ri);
    }

    // 6. Gauges.
    if (capacityWhCache_ < 0.0)
        capacityWhCache_ = array_.capacityWh();
    const WattHours cap = capacityWhCache_;
    storedGauge_.set(now, cap > 0.0 ? array_.storedEnergyWh() / cap : 0.0);
    const bool pending = queue_.backlog() > 1e-9;
    const bool productive = cluster_.anyProductive();
    pendingGauge_.set(now, pending ? 1.0 : 0.0);
    upPendingGauge_.set(now, pending && productive ? 1.0 : 0.0);

    if (observer_) {
        TickSample s;
        s.now = now;
        s.dt = dt;
        s.solarPower = pg;
        s.loadPower = pl;
        s.directPower = direct;
        s.bufferDischargePower = dr.deliveredPower;
        s.secondaryPower = secondary;
        s.chargePower = charge_used;
        s.dischargeAh = dr.throughputAh;
        s.chargeStoredAh = charge_stored;
        s.unitAhBefore = obsAhBefore;
        s.unitAhAfter = array_.totalUnitAh();
        const AmpHours exoTotal = array_.totalExogenousAh();
        s.exogenousPreTickAh = obsExoPre;
        s.exogenousInTickAh = exoTotal - exoAhSeen_ - obsExoPre;
        exoAhSeen_ = exoTotal;
        s.powerFailed = failed;
        s.activeVms = cluster_.activeVms();
        s.backlogGb = queue_.backlog();
        s.productive = productive;
        s.array = &array_;
        s.config = &cfg_;
        s.chargePlan = &chargePlan_;
        s.interactive = interactive_ ? &*interactive_ : nullptr;
        observer_->onTick(s);
    }
}

void
InSituSystem::telemetryTick(Seconds now)
{
    monitor_.sample(now, lastCurrents_);

    // Live SLO registers for the digital twin. Deterministic (the
    // tracker is plant state), so the register file stays bit-identical
    // across worker-thread counts and snapshot restores.
    if (interactive_) {
        const interactive::SloTracker &t = interactive_->tracker();
        const double p99_ms = t.percentile(0.99) * 1000.0;
        registers_.write(
            telemetry::RegisterLayout::sloP99Ms,
            static_cast<std::uint16_t>(
                std::lround(std::min(p99_ms, 65535.0))));
        registers_.write(
            telemetry::RegisterLayout::sloQueueDepth,
            static_cast<std::uint16_t>(
                std::min<std::uint64_t>(interactive_->queued(), 65535)));
        const double cap = cfg_.interactive->storeCapacity;
        const double fill =
            cap > 0.0 ? interactive_->storeFill() / cap : 0.0;
        registers_.write(
            telemetry::RegisterLayout::sloStoreFill,
            static_cast<std::uint16_t>(
                std::lround(std::clamp(fill, 0.0, 1.0) * 1000.0)));
        const double miss =
            interactive_->report().deadlineMissRate;
        registers_.write(
            telemetry::RegisterLayout::sloMissRate,
            static_cast<std::uint16_t>(
                std::lround(std::clamp(miss, 0.0, 1.0) * 10000.0)));
    }
}

SystemView
InSituSystem::buildView(Seconds now) const
{
    SystemView view;
    view.now = now;
    view.solarPower = solar_->availablePower();
    view.solarPowerAvg = solarAvgWindow_ > 0.0
                             ? solarAvgAccumWs_ / solarAvgWindow_
                             : view.solarPower;
    view.solarForecastAvg = solar_->forecastAvg(
        std::fmod(now, units::secPerDay), units::hours(4.0));
    view.loadPower = cluster_.power();
    view.seriesPerCabinet = cfg_.seriesCount;
    // The sensed values travel over the Modbus link, like the
    // prototype's coordination node <-> control panel exchange; a failed
    // exchange leaves the controller acting on its last good snapshot.
    const auto readings = link_->readAll(array_.cabinetCount());
    view.cabinets.resize(array_.cabinetCount());
    for (unsigned i = 0; i < array_.cabinetCount(); ++i) {
        auto &cv = view.cabinets[i];
        cv.voltage = readings[i].voltage;
        cv.current = readings[i].current;
        cv.soc = readings[i].soc;
        cv.mode = array_.cabinet(i).mode();
        cv.dischargeThroughputAh = history_.total(i);
        cv.capacityWh = array_.cabinet(i).capacityWh();
        cv.chargeRelayClosed = readings[i].chargeRelayClosed;
        cv.dischargeRelayClosed = readings[i].dischargeRelayClosed;
        cv.fresh = readings[i].fresh;
    }
    view.activeVms = cluster_.activeVms();
    view.totalVmSlots = cluster_.totalVmSlots();
    view.dutyCycle =
        cluster_.nodeCount() ? cluster_.node(0).dutyCycle() : 1.0;
    view.backlog = queue_.backlog();
    view.oldestJobAge = queue_.oldestAge(now);
    view.workloadKind = cfg_.profile.kind;
    view.peakChargePower = cabinetPeakChargePower();
    view.lastPowerFailureAge =
        lastPowerFailure_ >= 0.0 ? now - lastPowerFailure_ : 1e18;
    view.secondaryCapacity =
        cfg_.secondary ? cfg_.secondary->capacity : 0.0;
    if (interactive_)
        view.interactive = interactive_->view(now);
    return view;
}

void
InSituSystem::controlTick(Seconds now)
{
    const SystemView view = buildView(now);
    const ControlActions act = manager_->control(view);

    if (observer_) {
        ControlSample s;
        s.view = &view;
        s.actions = &act;
        observer_->onControl(s);
    }

    // Apply cabinet modes.
    if (act.cabinetModes.size() == array_.cabinetCount()) {
        for (unsigned i = 0; i < array_.cabinetCount(); ++i) {
            if (array_.cabinet(i).mode() != act.cabinetModes[i])
                array_.cabinet(i).setMode(act.cabinetModes[i]);
        }
    }
    chargePlan_ = act.chargePlan;
    infoCmd_ = act.infoBattery;

    // Apply load controls.
    cluster_.setDutyCycle(act.dutyCycle);
    if (act.checkpointShutdown)
        cluster_.setTargetVms(0);
    else
        cluster_.setTargetVms(act.targetVms);

    // Power-control accounting for the daily log.
    const std::uint64_t actions = manager_->powerCtrlActions();
    log_.countPowerCtrl(actions - lastMgrActions_);
    lastMgrActions_ = actions;

    solarAvgAccumWs_ = 0.0;
    solarAvgWindow_ = 0.0;
    lastControl_ = now;
}

Metrics
InSituSystem::metrics() const
{
    const Seconds now = sim().now();
    Metrics m;
    const double pending_time =
        pendingGauge_.integral(now);
    const double up_pending = upPendingGauge_.integral(now);
    m.uptime = pending_time > 0.0 ? up_pending / pending_time : 1.0;
    const double hours = units::toHours(std::max(1.0, now));
    m.throughputGbPerHour = queue_.processedGb() / hours;
    m.meanLatency = queue_.meanEffectiveDelay(now);
    m.eBufferAvailability = storedGauge_.average(now);
    m.serviceLifeYears = array_.projectedLifeYears(now);
    m.perfPerAh =
        queue_.processedGb() / std::max(1.0, throughputAh_);

    // Work-normalised life: wear per processed GB extrapolated to the full
    // arriving volume.
    const double days = now / units::secPerDay;
    const double daily_gb =
        days > 0.0 ? queue_.arrivedGb() / days : 0.0;
    const double calendar = cfg_.battery.calendarLifeYears;
    if (queue_.processedGb() > 1e-9 && daily_gb > 1e-9 &&
        throughputAh_ > 1e-9) {
        const double ah_per_gb = throughputAh_ / queue_.processedGb();
        const double ah_per_day = ah_per_gb * daily_gb;
        const double lifetime_ah =
            cfg_.battery.lifetimeThroughputAh * array_.cabinetCount();
        m.workNormalizedLifeYears =
            std::min(calendar,
                     lifetime_ah / ah_per_day / units::daysPerYear);
    } else {
        m.workNormalizedLifeYears =
            queue_.arrivedGb() > 1e-9 && queue_.processedGb() <= 1e-9
                ? 0.0 // data arrived, none processed: useless buffer
                : calendar;
    }
    m.processedGb = queue_.processedGb();
    m.solarOfferedKwh = offeredWh_ / 1000.0;
    m.greenUsedKwh = greenUsedWh_ / 1000.0;
    m.loadKwh = loadWh_ / 1000.0;
    m.effectiveKwh = effectiveWh_ / 1000.0;
    m.secondaryKwh = secondaryWh_ / 1000.0;
    m.bufferThroughputAh = throughputAh_;
    m.bufferImbalanceAh = history_.imbalance();
    m.bufferTrips = bufferTrips_;
    m.emergencyShutdowns = cluster_.emergencyShutdowns();
    m.onOffCycles = cluster_.onOffCycles();
    m.vmCtrlOps = cluster_.vmControlOps();
    m.powerCtrlOps = manager_->powerCtrlActions();
    return m;
}

telemetry::DailyLogSummary
InSituSystem::dailySummary() const
{
    telemetry::DailyLog log = log_;
    log.finalize(cluster_.onOffCycles(), cluster_.vmControlOps(),
                 monitor_.minUnitVoltage() * cfg_.seriesCount,
                 monitor_.lastMeanVoltage(), monitor_.voltageSigma(),
                 queue_.completedGb());
    return log.summary();
}


void
InSituSystem::save(snapshot::Archive &ar) const
{
    ar.section("in_situ_system");

    // Plant sub-components, construction order.
    solar_->save(ar);
    array_.save(ar);
    registers_.save(ar);
    monitor_.save(ar);
    plc_.save(ar);
    link_->save(ar);
    history_.save(ar);
    cluster_.save(ar);
    queue_.save(ar);
    ar.putBool(batchSrc_.has_value());
    if (batchSrc_)
        batchSrc_->save(ar);
    ar.putBool(streamSrc_.has_value());
    if (streamSrc_)
        streamSrc_->save(ar);
    ar.putBool(interactive_.has_value());
    if (interactive_)
        interactive_->save(ar);
    manager_->save(ar);

    // Controller and accumulator state.
    ar.putSize(chargePlan_.cabinets.size());
    for (unsigned i : chargePlan_.cabinets)
        ar.putU32(i);
    ar.putBool(chargePlan_.splitEvenly);
    ar.putEnum(infoCmd_.mode);
    ar.putU32(infoCmd_.precomputeVms);
    ar.putBool(infoCmd_.shedMisses);
    ar.putU64(emergencyShutdownsSeen_);
    ar.putF64Vec(lastCurrents_);
    ar.putF64(lastControl_);
    ar.putF64(solarAvgAccumWs_);
    ar.putF64(solarAvgWindow_);
    ar.putU64(lastMgrActions_);
    storedGauge_.save(ar);
    pendingGauge_.save(ar);
    upPendingGauge_.save(ar);
    ar.putF64(offeredWh_);
    ar.putF64(greenUsedWh_);
    ar.putF64(loadWh_);
    ar.putF64(effectiveWh_);
    ar.putF64(throughputAh_);
    ar.putF64(secondaryWh_);
    ar.putF64(secondaryRunningSince_);
    ar.putF64(secondaryLastNeeded_);
    ar.putU64(bufferTrips_);
    ar.putU64(powerFailures_);
    ar.putF64(lastPowerFailure_);
    ar.putBool(powerFailedLastTick_);
    ar.putF64(exoAhSeen_);
    ar.putF64(lostVmHoursSeen_);
    log_.save(ar);
    ar.putBool(trace_.has_value());
    if (trace_)
        trace_->save(ar);

    // Periodic drivers: clock phase of each pending fire.
    physicsTask_->save(ar);
    telemetryTask_->save(ar);
    controlTask_->save(ar);
    ar.putBool(traceTask_ != nullptr);
    if (traceTask_)
        traceTask_->save(ar);
}

void
InSituSystem::load(snapshot::Archive &ar)
{
    ar.section("in_situ_system");

    solar_->load(ar);
    array_.load(ar);
    registers_.load(ar);
    monitor_.load(ar);
    plc_.load(ar);
    link_->load(ar);
    history_.load(ar);
    cluster_.load(ar);
    queue_.load(ar);
    if (ar.getBool() != batchSrc_.has_value())
        throw snapshot::SnapshotError(
            "InSituSystem: batch-source presence differs from snapshot");
    if (batchSrc_)
        batchSrc_->load(ar);
    if (ar.getBool() != streamSrc_.has_value())
        throw snapshot::SnapshotError(
            "InSituSystem: stream-source presence differs from snapshot");
    if (streamSrc_)
        streamSrc_->load(ar);
    if (ar.getBool() != interactive_.has_value())
        throw snapshot::SnapshotError(
            "InSituSystem: interactive-workload presence differs from "
            "snapshot");
    if (interactive_)
        interactive_->load(ar);
    manager_->load(ar);

    chargePlan_.cabinets.assign(ar.getSize(), 0);
    for (unsigned &i : chargePlan_.cabinets)
        i = ar.getU32();
    chargePlan_.splitEvenly = ar.getBool();
    infoCmd_.mode = ar.getEnum<interactive::ServeMode>(
        static_cast<std::uint32_t>(interactive::ServeMode::CacheServe));
    infoCmd_.precomputeVms = ar.getU32();
    infoCmd_.shedMisses = ar.getBool();
    emergencyShutdownsSeen_ = ar.getU64();
    lastCurrents_ = ar.getF64Vec();
    lastControl_ = ar.getF64();
    solarAvgAccumWs_ = ar.getF64();
    solarAvgWindow_ = ar.getF64();
    lastMgrActions_ = ar.getU64();
    storedGauge_.load(ar);
    pendingGauge_.load(ar);
    upPendingGauge_.load(ar);
    offeredWh_ = ar.getF64();
    greenUsedWh_ = ar.getF64();
    loadWh_ = ar.getF64();
    effectiveWh_ = ar.getF64();
    throughputAh_ = ar.getF64();
    secondaryWh_ = ar.getF64();
    secondaryRunningSince_ = ar.getF64();
    secondaryLastNeeded_ = ar.getF64();
    bufferTrips_ = ar.getU64();
    powerFailures_ = ar.getU64();
    lastPowerFailure_ = ar.getF64();
    powerFailedLastTick_ = ar.getBool();
    exoAhSeen_ = ar.getF64();
    lostVmHoursSeen_ = ar.getF64();
    log_.load(ar);
    if (ar.getBool()) {
        if (!trace_)
            throw snapshot::SnapshotError(
                "InSituSystem: snapshot has a trace but tracing is not "
                "enabled (call enableTrace before load)");
        trace_->load(ar);
    } else if (trace_) {
        throw snapshot::SnapshotError(
            "InSituSystem: tracing enabled but snapshot has no trace");
    }

    physicsTask_->load(ar);
    telemetryTask_->load(ar);
    controlTask_->load(ar);
    if (ar.getBool()) {
        if (!traceTask_)
            throw snapshot::SnapshotError(
                "InSituSystem: snapshot has a trace task but tracing is "
                "not enabled");
        traceTask_->load(ar);
    }
}
} // namespace insure::core
