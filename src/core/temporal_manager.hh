/**
 * @file
 * Temporal power management (paper §3.4, Fig. 11).
 *
 * The temporal manager decides WHEN and HOW HARD the servers run, so that
 * the buffer discharges at battery-friendly currents:
 *
 *  - if the sensed total discharge current exceeds the threshold, the
 *    server load is capped: batch jobs receive a reduced duty cycle
 *    (driving OS-level DVFS), stream jobs lose a VM;
 *  - if the buffer state of charge falls below the floor, VM state is
 *    checkpointed and servers power down cleanly;
 *  - symmetric grow rules restore duty/VMs when current is comfortably
 *    low and there is backlog to process.
 *
 * Capped discharge keeps the KiBaM available well from collapsing (the
 * recovery effect does the rest), avoiding the low-voltage disconnects
 * that stall the whole unified buffer in the baseline.
 */

#ifndef INSURE_CORE_TEMPORAL_MANAGER_HH
#define INSURE_CORE_TEMPORAL_MANAGER_HH

#include <cstdint>

#include "core/system_view.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::core {

/** Tuning of the temporal manager. */
struct TemporalParams {
    /**
     * Per-online-cabinet discharge current threshold, amperes (the total
     * threshold scales with the number of online cabinets).
     */
    Amperes currentThresholdPerCabinet = 12.0;
    /** Hysteresis: grow only when current is below this fraction of cap. */
    double growFraction = 0.55;
    /** Duty-cycle decrement per capping action (batch). */
    double dutyStep = 0.15;
    /** Minimum duty cycle before resorting to VM reduction. */
    double minDuty = 0.4;
    /** State-of-charge floor triggering checkpoint + shutdown. */
    double socFloor = 0.27;
    /** State of charge required to restart after a floor shutdown. */
    double socRestart = 0.45;
    /** Per-unit voltage floor triggering checkpoint + shutdown, volts. */
    Volts voltageFloorPerUnit = 11.95;
};

/** A load-shaping decision. */
struct TemporalDecision {
    /** New duty cycle. */
    double dutyCycle = 1.0;
    /** Change in VM count (negative = shed). */
    int vmDelta = 0;
    /** Checkpoint and power down the rack. */
    bool checkpointShutdown = false;
    /** True when this decision changed something (counts as an action). */
    bool acted = false;
};

/** The temporal (when/how-hard) policy. */
class TemporalManager
{
  public:
    explicit TemporalManager(const TemporalParams &params);

    /**
     * Evaluate the sensed state and produce a load-shaping decision.
     * @param view sensed system state
     * @param online_cabinets cabinets currently able to supply the load
     * @param total_discharge_current sensed buffer discharge current, A
     * @param min_online_soc lowest state of charge among online cabinets
     * @param min_online_unit_voltage lowest sensed per-unit voltage among
     *        online cabinets (volts; pass a large value when unknown)
     */
    TemporalDecision evaluate(const SystemView &view,
                              unsigned online_cabinets,
                              Amperes total_discharge_current,
                              double min_online_soc,
                              Volts min_online_unit_voltage = 1e9);

    /** Capping actions taken (statistics). */
    std::uint64_t cappingActions() const { return cappings_; }

    /** Grow actions taken. */
    std::uint64_t growActions() const { return grows_; }

    /** Floor shutdowns triggered. */
    std::uint64_t floorShutdowns() const { return shutdowns_; }

    const TemporalParams &params() const { return params_; }

    /** Serialize counters and the floor-halt latch. */
    void save(snapshot::Archive &ar) const;

    /** Restore counters and the floor-halt latch. */
    void load(snapshot::Archive &ar);

  private:
    TemporalParams params_;
    std::uint64_t cappings_ = 0;
    std::uint64_t grows_ = 0;
    std::uint64_t shutdowns_ = 0;
    bool haltedByFloor_ = false;
};

} // namespace insure::core

#endif // INSURE_CORE_TEMPORAL_MANAGER_HH
