/**
 * @file
 * Controller-facing view of the in-situ system and the actuation surface.
 *
 * Power managers never touch the physical models directly: each control
 * period the harness assembles a SystemView from *sensed* telemetry
 * (register-map values, quantised by the transducers) and applies the
 * returned ControlActions to the plant. This mirrors the prototype's
 * separation between the PLC/monitoring tier and the coordination node.
 */

#ifndef INSURE_CORE_SYSTEM_VIEW_HH
#define INSURE_CORE_SYSTEM_VIEW_HH

#include <vector>

#include "battery/battery_unit.hh"
#include "interactive/request_model.hh"
#include "sim/units.hh"
#include "workload/profiles.hh"

namespace insure::core {

/** Sensed state of one battery cabinet. */
struct CabinetView {
    /** Sensed string terminal voltage, volts. */
    Volts voltage = 0.0;
    /** Sensed string current (+ = discharge), amperes. */
    Amperes current = 0.0;
    /** Sensed state of charge, fraction. */
    double soc = 0.0;
    /** Current operating mode. */
    battery::UnitMode mode = battery::UnitMode::Standby;
    /** Aggregated discharge throughput AhT[i], ampere-hours. */
    AmpHours dischargeThroughputAh = 0.0;
    /** Full-charge energy capacity of the cabinet, watt-hours. */
    WattHours capacityWh = 0.0;
    /** Sensed charge-relay contact state (PLC register). */
    bool chargeRelayClosed = false;
    /** Sensed discharge-relay contact state (PLC register). */
    bool dischargeRelayClosed = false;
    /**
     * False when the Modbus exchange behind this snapshot failed and the
     * values are the stale last-good reading. Managers use sustained
     * staleness as a link-health plausibility signal.
     */
    bool fresh = true;
};

/** Sensed system state handed to a power manager each control period. */
struct SystemView {
    /** Current simulated time, seconds. */
    Seconds now = 0.0;
    /** Sensed solar power currently available, watts. */
    Watts solarPower = 0.0;
    /** Average solar power over the last control period, watts. */
    Watts solarPowerAvg = 0.0;
    /** Forecast average solar power over the planning horizon, watts. */
    Watts solarForecastAvg = 0.0;
    /** Rack power draw, watts. */
    Watts loadPower = 0.0;
    /** Per-cabinet sensed state. */
    std::vector<CabinetView> cabinets;
    /** 12 V units in series per cabinet. */
    unsigned seriesPerCabinet = 2;
    /** VMs currently active. */
    unsigned activeVms = 0;
    /** Total VM slots in the rack. */
    unsigned totalVmSlots = 0;
    /** Current duty cycle. */
    double dutyCycle = 1.0;
    /** Pending backlog, gigabytes. */
    GigaBytes backlog = 0.0;
    /** Age of the oldest pending job, seconds. */
    Seconds oldestJobAge = 0.0;
    /** Workload management class. */
    workload::WorkloadKind workloadKind = workload::WorkloadKind::Batch;
    /** Per-unit peak charging power (for the N = P_G / P_PC rule). */
    Watts peakChargePower = 0.0;
    /** Seconds since the last rack power failure (large when none). */
    Seconds lastPowerFailureAge = 1e18;
    /** Capacity of the secondary (backup) feed, watts; 0 when absent. */
    Watts secondaryCapacity = 0.0;
    /** Interactive request-stream state (present=false when unused). */
    interactive::InteractiveView interactive;
};

/** How to distribute surplus solar power across charging cabinets. */
struct ChargePlan {
    /** Cabinets to charge, in priority order. */
    std::vector<unsigned> cabinets;
    /**
     * When true the surplus splits evenly across the listed cabinets
     * (baseline batch charging); otherwise cabinets are filled in order,
     * each taking what it accepts before the next one sees any budget
     * (InSURE concentration).
     */
    bool splitEvenly = false;
};

/** Actions a power manager returns for the coming control period. */
struct ControlActions {
    /** Desired mode per cabinet (same size as SystemView::cabinets). */
    std::vector<battery::UnitMode> cabinetModes;
    /** Charging priority for surplus power. */
    ChargePlan chargePlan;
    /** Requested total VM count. */
    unsigned targetVms = 0;
    /** Requested duty cycle. */
    double dutyCycle = 1.0;
    /** Checkpoint and power down the whole rack cleanly. */
    bool checkpointShutdown = false;
    /** Interactive traffic routing (information battery). */
    interactive::InfoBatteryCommand infoBattery;
};

} // namespace insure::core

#endif // INSURE_CORE_SYSTEM_VIEW_HH
