/**
 * @file
 * A persistent pool of worker threads for deterministic within-run
 * parallelism over the structure-of-arrays pools.
 *
 * The contract that keeps results bit-identical regardless of thread
 * count is on the callers, and it is strict: a job is a set of `parts`
 * and every part must touch only its own slice of state (element-wise
 * kernels over disjoint index ranges, or per-part cells of a dense
 * partial-result array that the caller combines in index order
 * afterwards). Under that contract the schedule — which thread runs
 * which part, and in what order — cannot influence any value, so
 * running with 1, 2 or N threads (or none: the caller executes parts
 * inline when the pool is empty) produces the same bits.
 *
 * Parts are claimed under the pool mutex; callers hand over chunky
 * parts (thousands of units each), so the lock is not contended in any
 * way that matters. The calling thread participates in the job, which
 * both bounds the pool to threads-1 spawned workers and keeps the
 * single-thread configuration allocation- and handoff-free.
 */

#ifndef INSURE_CORE_WORKER_POOL_HH
#define INSURE_CORE_WORKER_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace insure::core {

/** Fixed-size pool of persistent worker threads. */
class WorkerPool
{
  public:
    /**
     * @param threads total concurrency including the calling thread;
     *        values <= 1 spawn no workers (run() executes inline).
     */
    explicit WorkerPool(unsigned threads)
    {
        const unsigned spawn = threads > 1 ? threads - 1 : 0;
        workers_.reserve(spawn);
        for (unsigned i = 0; i < spawn; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Total concurrency (workers + the calling thread). */
    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run @p fn(part) for every part in [0, parts). Blocks until all
     * parts completed; the calling thread participates. Not reentrant.
     */
    void
    run(std::size_t parts, const std::function<void(std::size_t)> &fn)
    {
        if (parts == 0)
            return;
        if (workers_.empty() || parts == 1) {
            for (std::size_t i = 0; i < parts; ++i)
                fn(i);
            return;
        }
        std::unique_lock<std::mutex> lk(m_);
        fn_ = &fn;
        parts_ = parts;
        next_ = 0;
        inFlight_ = 0;
        ++generation_;
        cv_.notify_all();
        while (next_ < parts_) {
            const std::size_t i = next_++;
            ++inFlight_;
            lk.unlock();
            fn(i);
            lk.lock();
            --inFlight_;
        }
        doneCv_.wait(lk, [this] { return inFlight_ == 0; });
        fn_ = nullptr;
    }

  private:
    void
    workerLoop()
    {
        std::unique_lock<std::mutex> lk(m_);
        std::uint64_t seen = 0;
        for (;;) {
            cv_.wait(lk, [&] {
                return stop_ || (fn_ && generation_ != seen &&
                                 next_ < parts_);
            });
            if (stop_)
                return;
            seen = generation_;
            while (fn_ && next_ < parts_) {
                const std::size_t i = next_++;
                ++inFlight_;
                const auto *f = fn_;
                lk.unlock();
                (*f)(i);
                lk.lock();
                --inFlight_;
            }
            if (inFlight_ == 0)
                doneCv_.notify_all();
        }
    }

    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    const std::function<void(std::size_t)> *fn_ = nullptr; // guarded by m_
    std::size_t parts_ = 0;
    std::size_t next_ = 0;
    std::size_t inFlight_ = 0;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

} // namespace insure::core

#endif // INSURE_CORE_WORKER_POOL_HH
