#include "core/node_allocator.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/units.hh"

namespace insure::core {

NodeAllocator::NodeAllocator(const server::NodeParams &node,
                             unsigned node_count,
                             const workload::WorkloadProfile &profile)
    : node_(node), nodeCount_(node_count), profile_(profile)
{
    if (node_count == 0)
        fatal("NodeAllocator: node_count must be positive");
}

unsigned
NodeAllocator::totalSlots() const
{
    return nodeCount_ * node_.vmSlots;
}

Watts
NodeAllocator::powerForVms(unsigned vms, double duty) const
{
    vms = std::min(vms, totalSlots());
    duty = std::clamp(duty, 0.0, 1.0);
    Watts p = 0.0;
    unsigned remaining = vms;
    const double util_factor = profile_.powerUtil(node_.type);
    for (unsigned n = 0; n < nodeCount_ && remaining > 0; ++n) {
        const unsigned take = std::min(remaining, node_.vmSlots);
        remaining -= take;
        const double util = static_cast<double>(take) / node_.vmSlots;
        p += node_.idlePower +
             (node_.peakPower - node_.idlePower) * util * util_factor *
                 duty;
    }
    return p;
}

unsigned
NodeAllocator::vmsForPower(Watts budget, double duty) const
{
    unsigned best = 0;
    for (unsigned vms = 1; vms <= totalSlots(); ++vms) {
        if (powerForVms(vms, duty) <= budget)
            best = vms;
        else
            break;
    }
    return best;
}

double
NodeAllocator::throughputGbPerHour(unsigned vms, double duty) const
{
    return vms * profile_.gbPerVmHour(node_.type) *
           std::clamp(duty, 0.0, 1.0);
}

WattHours
NodeAllocator::energyForJob(GigaBytes gb, unsigned vms) const
{
    if (vms == 0)
        return 0.0;
    const double rate = throughputGbPerHour(vms, 1.0);
    if (rate <= 0.0)
        return 0.0;
    const double hours = gb / rate;
    return powerForVms(vms, 1.0) * hours;
}

unsigned
NodeAllocator::vmsForEnergyBudget(GigaBytes gb, WattHours budget_wh) const
{
    unsigned best = 0;
    for (unsigned vms = 1; vms <= totalSlots(); ++vms) {
        if (energyForJob(gb, vms) <= budget_wh)
            best = vms;
    }
    return best;
}

} // namespace insure::core
