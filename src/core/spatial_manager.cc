#include "core/spatial_manager.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::core {

SpatialManager::SpatialManager(const SpatialParams &params) : params_(params)
{
    if (params_.desiredLifetimeYears <= 0.0)
        fatal("SpatialManager: desiredLifetimeYears must be positive");
}

AmpHours
SpatialManager::dailyBudget()
 const
{
    return params_.lifetimeDischargeAh /
           (params_.desiredLifetimeYears * units::daysPerYear);
}

AmpHours
SpatialManager::dischargeThreshold(Seconds now) const
{
    const double elapsed_days = now / units::secPerDay;
    // δD = DU + DL * T / TL, with DU folded into the grace allowance and
    // any relaxation granted so far.
    return (elapsed_days + params_.graceDays) * dailyBudget() +
           relaxedBudget_;
}

std::vector<unsigned>
SpatialManager::screen(const SystemView &view)
{
    AmpHours threshold = dischargeThreshold(view.now);
    std::vector<unsigned> eligible;
    for (unsigned i = 0; i < view.cabinets.size(); ++i) {
        if (view.cabinets[i].dischargeThroughputAh < threshold)
            eligible.push_back(i);
    }

    while (params_.relaxThreshold && eligible.size() < params_.minEligible &&
           eligible.size() < view.cabinets.size()) {
        // On-demand acceleration: grant extra budget instead of starving
        // the system (paper §3.3, gradual threshold increase).
        relaxedBudget_ += params_.relaxFraction * dailyBudget();
        ++relaxations_;
        threshold = dischargeThreshold(view.now);
        eligible.clear();
        for (unsigned i = 0; i < view.cabinets.size(); ++i) {
            if (view.cabinets[i].dischargeThroughputAh < threshold)
                eligible.push_back(i);
        }
    }
    return eligible;
}

unsigned
SpatialManager::optimalBatchSize(Watts green_budget,
                                 Watts peak_charge_power) const
{
    if (green_budget <= 0.0 || peak_charge_power <= 0.0)
        return 0;
    const double n = green_budget / peak_charge_power;
    return std::max(1u, static_cast<unsigned>(std::floor(n)));
}

std::vector<unsigned>
SpatialManager::selectForCharging(const std::vector<unsigned> &candidates,
                                  const SystemView &view, unsigned n) const
{
    std::vector<unsigned> sorted = candidates;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](unsigned a, unsigned b) {
                         return view.cabinets[a].soc < view.cabinets[b].soc;
                     });
    if (sorted.size() > n)
        sorted.resize(n);
    return sorted;
}


void
SpatialManager::save(snapshot::Archive &ar) const
{
    ar.section("spatial_manager");
    ar.putF64(relaxedBudget_);
    ar.putU64(relaxations_);
}

void
SpatialManager::load(snapshot::Archive &ar)
{
    ar.section("spatial_manager");
    relaxedBudget_ = ar.getF64();
    relaxations_ = ar.getU64();
}

} // namespace insure::core
