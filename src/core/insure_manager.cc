#include "core/insure_manager.hh"

#include "snapshot/archive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::core {

using battery::UnitMode;

namespace {

/** Neutralise the TPM when the temporal ablation is requested. */
TemporalParams
effectiveTemporal(const InsureParams &params)
{
    TemporalParams t = params.temporal;
    if (params.disableTemporal) {
        t.currentThresholdPerCabinet = 1e9;
        t.socFloor = 0.0;
        t.socRestart = 0.0;
        t.voltageFloorPerUnit = 0.0;
    }
    return t;
}

} // namespace

const char *
quarantineReasonName(QuarantineReason r)
{
    switch (r) {
      case QuarantineReason::DeadString:
        return "dead-string";
      case QuarantineReason::RelayMismatch:
        return "relay-mismatch";
      case QuarantineReason::FrozenTelemetry:
        return "frozen-telemetry";
      case QuarantineReason::StaleTelemetry:
        return "stale-telemetry";
    }
    return "unknown";
}

InsureManager::InsureManager(const InsureParams &params,
                             std::shared_ptr<NodeAllocator> allocator)
    : params_(params), spatial_(params.spatial),
      temporal_(effectiveTemporal(params)),
      allocator_(std::move(allocator))
{
    if (!allocator_)
        fatal("InsureManager: allocator is required");
}

Watts
InsureManager::batteryAllowance(const SystemView &view,
                                unsigned online_cabinets) const
{
    if (online_cabinets == 0)
        return 0.0;
    // Friendly discharge: the TPM current threshold per cabinet at the
    // cabinet string voltage, across online cabinets.
    Volts string_v = 24.0;
    double min_soc = 1.0;
    unsigned online_seen = 0;
    for (const auto &c : view.cabinets) {
        if (c.voltage > 1.0)
            string_v = c.voltage;
        if (c.mode == UnitMode::Discharging ||
            c.mode == UnitMode::Standby) {
            min_soc = std::min(min_soc, c.soc);
            ++online_seen;
        }
    }
    if (online_seen == 0)
        min_soc = 0.0;

    // Health scaling: a depleted buffer lends little, so solar surplus
    // preferentially recharges instead of feeding more VMs; a healthy
    // buffer lends its full friendly-current budget (the paper's
    // charge-first morning behaviour, Fig. 16 Region A). The No-Opt
    // ablation uses the buffer aggressively instead (paper §6.2).
    double health = 1.0;
    if (!params_.disableTemporal) {
        const double lo = params_.temporal.socFloor;
        const double hi = 0.75;
        health = std::clamp((min_soc - lo) / std::max(1e-9, hi - lo),
                            0.0, 1.0);
    }

    // Without temporal management there is no friendly-current cap
    // either: the allowance is the rated discharge power.
    const Amperes per_cabinet =
        params_.disableTemporal
            ? 30.0
            : params_.temporal.currentThresholdPerCabinet;

    return health * params_.batteryAssistFraction * online_cabinets *
           per_cabinet * string_v;
}

ControlActions
InsureManager::control(const SystemView &raw_view)
{
    // A secondary feed (backup generator / weak grid tie) counts as
    // dispatchable supply for every decision below.
    SystemView view = raw_view;
    view.solarPower += view.secondaryCapacity;
    view.solarPowerAvg += view.secondaryCapacity;
    view.solarForecastAvg += view.secondaryCapacity;

    ControlActions act;
    act.cabinetModes.resize(view.cabinets.size());
    for (unsigned i = 0; i < view.cabinets.size(); ++i)
        act.cabinetModes[i] = view.cabinets[i].mode;
    act.dutyCycle = view.dutyCycle;

    // ---- 0. Degraded-mode management (telemetry plausibility). ----
    // Quarantined cabinets are forced Offline and drop out of every
    // decision below, so the SPM re-selects charge/discharge sets and
    // the TPM re-derives its thresholds over the surviving strings.
    if (params_.quarantineEnabled) {
        updateQuarantine(view);
        for (unsigned i = 0; i < view.cabinets.size(); ++i) {
            if (isQuarantined(i) &&
                act.cabinetModes[i] != UnitMode::Offline) {
                act.cabinetModes[i] = UnitMode::Offline;
                countActions();
            }
        }
        // With every string quarantined the rack has no trustworthy
        // buffer; if green cannot carry the load either, checkpoint and
        // suspend instead of riding through on an unknown supply.
        if (!view.cabinets.empty() &&
            quarantinedCount_ == view.cabinets.size() &&
            view.solarPowerAvg < view.loadPower) {
            act.checkpointShutdown = true;
            act.targetVms = 0;
            batchActive_ = false;
            countActions();
            return act;
        }
    }

    // ---- 1. Spatial screening (coarse interval, Fig. 9). ----
    if (view.now - lastSpatial_ >= params_.spatialPeriod) {
        lastSpatial_ = view.now;
        if (params_.disableBalancing) {
            eligible_.clear();
            for (unsigned i = 0; i < view.cabinets.size(); ++i)
                eligible_.push_back(i);
        } else {
            eligible_ = spatial_.screen(view);
        }
        for (unsigned i : eligible_) {
            if (isQuarantined(i))
                continue;
            if (act.cabinetModes[i] == UnitMode::Offline) {
                act.cabinetModes[i] =
                    view.cabinets[i].soc >= params_.chargedSoc
                        ? UnitMode::Standby
                        : UnitMode::Charging;
                countActions();
            }
        }
    }

    // ---- 2/3. Mode transitions (Fig. 8). ----
    const bool deficit = view.solarPowerAvg < view.loadPower;
    for (unsigned i = 0; i < view.cabinets.size(); ++i) {
        const auto &cab = view.cabinets[i];
        switch (act.cabinetModes[i]) {
          case UnitMode::Charging:
            // Transition 2/5: charged cabinets go to standby.
            if (cab.soc >= params_.chargedSoc) {
                act.cabinetModes[i] = UnitMode::Standby;
                countActions();
            } else if (deficit && cab.soc > params_.temporal.socFloor) {
                // Green budget became inadequate while charging: bring the
                // cabinet back online to backstop the load.
                act.cabinetModes[i] = UnitMode::Discharging;
                countActions();
            }
            break;
          case UnitMode::Standby:
            // Transition 3: green budget inadequate -> discharge.
            if (deficit) {
                act.cabinetModes[i] = UnitMode::Discharging;
                countActions();
            }
            break;
          case UnitMode::Discharging:
            // Transition 4: SoC depleted -> offline (recharge). The
            // threshold sits below the TPM shutdown floor so the rack can
            // still checkpoint on the way down.
            if (cab.soc <= params_.offlineSoc) {
                act.cabinetModes[i] = UnitMode::Offline;
                countActions();
            } else if (!deficit) {
                // Transition 7: green exceeds demand -> standby.
                act.cabinetModes[i] = UnitMode::Standby;
                countActions();
            }
            break;
          case UnitMode::Offline:
            break;
        }
    }

    // Under meaningful surplus, rotate not-fully-charged standby cabinets
    // onto the charge bus, keeping the strongest one as a load reserve
    // whenever the rack is drawing power (Fig. 14-a behaviour). A
    // marginal surplus below a useful charge rate is not worth the relay
    // churn.
    const Watts rotation_surplus =
        view.solarPowerAvg - view.loadPower;
    if (!deficit && rotation_surplus > 0.3 * view.peakChargePower) {
        int reserve = -1;
        if (view.loadPower > 1.0 || view.backlog > 0.0) {
            double best = -1.0;
            for (unsigned i = 0; i < view.cabinets.size(); ++i) {
                if (act.cabinetModes[i] == UnitMode::Standby &&
                    view.cabinets[i].soc > best) {
                    best = view.cabinets[i].soc;
                    reserve = static_cast<int>(i);
                }
            }
        }
        for (unsigned i = 0; i < view.cabinets.size(); ++i) {
            if (act.cabinetModes[i] == UnitMode::Standby &&
                static_cast<int>(i) != reserve &&
                view.cabinets[i].soc < params_.chargedSoc) {
                act.cabinetModes[i] = UnitMode::Charging;
                countActions();
            }
        }
    }

    // ---- 2b. Charge batching (Fig. 10): concentrate the budget. ----
    std::vector<unsigned> charging_group;
    for (unsigned i = 0; i < view.cabinets.size(); ++i) {
        if (act.cabinetModes[i] == UnitMode::Charging)
            charging_group.push_back(i);
    }
    const Watts surplus =
        std::max(0.0, view.solarPowerAvg - view.loadPower);
    if (params_.disableConcentration) {
        act.chargePlan.cabinets = charging_group;
        act.chargePlan.splitEvenly = true;
    } else {
        const unsigned batch = std::max(
            1u, spatial_.optimalBatchSize(
                    std::max(surplus, view.solarPowerAvg * 0.25),
                    view.peakChargePower));
        act.chargePlan.cabinets =
            spatial_.selectForCharging(charging_group, view, batch);
        act.chargePlan.splitEvenly = false;
    }

    // ---- 4. Temporal management (Fig. 11). ----
    unsigned online = 0;
    Amperes discharge_current = 0.0;
    double min_online_soc = 1.0;
    Volts min_unit_voltage = 1e9;
    const unsigned series = std::max(1u, view.seriesPerCabinet);
    for (unsigned i = 0; i < view.cabinets.size(); ++i) {
        const auto mode = act.cabinetModes[i];
        if (mode == UnitMode::Discharging || mode == UnitMode::Standby) {
            ++online;
            discharge_current += std::max(0.0, view.cabinets[i].current);
            min_online_soc = std::min(min_online_soc,
                                      view.cabinets[i].soc);
            if (view.cabinets[i].voltage > 1.0) {
                min_unit_voltage =
                    std::min(min_unit_voltage,
                             view.cabinets[i].voltage / series);
            }
        }
    }
    const TemporalDecision dec = temporal_.evaluate(
        view, online, discharge_current, min_online_soc,
        min_unit_voltage);
    if (dec.acted)
        countActions();
    act.dutyCycle = dec.dutyCycle;
    if (dec.checkpointShutdown) {
        act.checkpointShutdown = true;
        act.targetVms = 0;
        batchActive_ = false;
        return act;
    }

    // ---- 5. VM sizing (power-aware load matching). ----
    const Watts budget =
        view.solarPowerAvg + batteryAllowance(view, online);

    if (view.workloadKind == workload::WorkloadKind::Batch) {
        // Batch: pick the VM count once per job from the energy budget
        // (Table 2's lesson), then hold it; TPM modulates the duty cycle.
        if (view.backlog <= 0.0) {
            batchActive_ = false;
            batchVms_ = 0;
            plannedBacklog_ = 0.0;
            act.targetVms = 0;
            return act;
        }
        // (Re)size when work first appears and whenever new arrivals
        // grow the backlog past the planned volume -- a fresh job joined
        // the queue (VM counts still never shrink mid-job; scarcity is
        // the power fit's and the TPM's business).
        const bool new_work =
            batchActive_ && view.backlog > plannedBacklog_ + 1.0;
        if (!batchActive_ || new_work) {
            batchActive_ = true;
            plannedBacklog_ = view.backlog;
            // Size the job from stored energy plus the forecast solar
            // over the planning horizon (the paper's controllers assume
            // day-ahead irradiance prediction).
            const Watts forecast = view.solarForecastAvg > 0.0
                                       ? view.solarForecastAvg
                                       : view.solarPowerAvg;
            WattHours stored = 0.0;
            for (unsigned i = 0; i < view.cabinets.size(); ++i) {
                if (isQuarantined(i))
                    continue; // sensed SoC untrustworthy, energy lost
                stored += view.cabinets[i].soc *
                          view.cabinets[i].capacityWh;
            }
            const WattHours expected =
                stored * params_.batteryAssistFraction +
                forecast * params_.batchPlanningHorizonHours;
            unsigned planned =
                allocator_->vmsForEnergyBudget(view.backlog, expected);
            if (planned == 0) {
                // Energy-constrained day: size to the power that can be
                // sustained instead (Table 2: fewer VMs win under a
                // tight budget).
                planned = std::max(
                    1u, allocator_->vmsForPower(
                            forecast +
                                0.5 * batteryAllowance(
                                          view,
                                          static_cast<unsigned>(
                                              view.cabinets.size())),
                            1.0));
            }
            batchVms_ = std::max(batchVms_, planned);
            countActions();
        }
        // Never exceed what the current power budget can carry; with no
        // budget at all, wait (checkpointed) for power to return.
        const unsigned fit =
            allocator_->vmsForPower(budget, act.dutyCycle);
        act.targetVms = std::min(batchVms_, fit);
    } else if (view.workloadKind == workload::WorkloadKind::Interactive) {
        // Interactive: follow the request demand (steady-state rate plus
        // queue drain) within the power budget, honouring the TPM's shed
        // delta. Unlike batch/stream, an empty queue does NOT power the
        // rack down — latency dies long before work disappears — so a
        // powered plant keeps at least one VM serving.
        const unsigned fit =
            allocator_->vmsForPower(budget, act.dutyCycle);
        unsigned demand = view.interactive.demandVms;
        if (view.interactive.present && demand == 0)
            demand = 1;
        int target = static_cast<int>(
            std::min({demand, fit, view.totalVmSlots}));
        if (view.interactive.present && target == 0 && fit > 0)
            target = 1;
        target += std::min(dec.vmDelta, 0);
        act.targetVms =
            static_cast<unsigned>(std::clamp(target, 0,
                                             static_cast<int>(
                                                 view.totalVmSlots)));
    } else {
        // Stream: adjust the VM count within the power budget, honouring
        // the TPM's shed/grow delta. No work means no servers.
        if (view.backlog <= 0.0) {
            act.targetVms = 0;
            return act;
        }
        const unsigned fit =
            allocator_->vmsForPower(budget, act.dutyCycle);
        int target = static_cast<int>(std::min(fit, view.totalVmSlots));
        target = std::min(target,
                          static_cast<int>(view.activeVms) + 1);
        target += std::min(dec.vmDelta, 0);
        act.targetVms =
            static_cast<unsigned>(std::clamp(target, 0,
                                             static_cast<int>(
                                                 view.totalVmSlots)));
    }
    if (view.workloadKind == workload::WorkloadKind::Batch &&
        dec.vmDelta < 0) {
        const int reduced = static_cast<int>(act.targetVms) + dec.vmDelta;
        act.targetVms = static_cast<unsigned>(std::max(0, reduced));
    }
    return act;
}

void
InsureManager::updateQuarantine(const SystemView &view)
{
    if (health_.size() < view.cabinets.size())
        health_.resize(view.cabinets.size());
    for (unsigned i = 0; i < view.cabinets.size(); ++i) {
        CabinetHealth &h = health_[i];
        const CabinetView &cab = view.cabinets[i];
        if (h.quarantined)
            continue; // sticky for the run

        // Dead string: the sensed string voltage is the per-unit sum,
        // and a healthy unit never reads below ~10 V while the rack is
        // up; a sum implying a ~0 V unit means an open circuit (or a
        // dead transducer) — either way the string cannot be trusted
        // on a bus.
        const bool online = cab.mode != UnitMode::Offline;
        const Volts dead_floor = params_.quarantineVoltageFloor *
                                 std::max(1u, view.seriesPerCabinet);
        if (cab.fresh && online && cab.voltage < dead_floor)
            ++h.deadStreak;
        else
            h.deadStreak = 0;

        // Relay mismatch: the sensed contact states must agree with the
        // commanded mode. Sampling can lag a mid-period fast-switch by
        // one period, so a single mismatch is tolerated; a healthy relay
        // is never out of position for two.
        bool relays_ok = true;
        switch (cab.mode) {
          case UnitMode::Offline:
          case UnitMode::Standby:
            relays_ok =
                !cab.chargeRelayClosed && !cab.dischargeRelayClosed;
            break;
          case UnitMode::Charging:
            relays_ok =
                cab.chargeRelayClosed && !cab.dischargeRelayClosed;
            break;
          case UnitMode::Discharging:
            relays_ok =
                !cab.chargeRelayClosed && cab.dischargeRelayClosed;
            break;
        }
        if (cab.fresh && !relays_ok)
            ++h.relayStreak;
        else
            h.relayStreak = 0;

        // Frozen telemetry: while a string actually carries discharge
        // current its sensed SoC and voltage move every period (the SoC
        // register alone steps tens of counts a minute); bit-identical
        // readings mean the registers stopped updating.
        const bool frozen = cab.fresh &&
                            cab.mode == UnitMode::Discharging &&
                            cab.current > 0.5 &&
                            cab.voltage == h.lastVoltage &&
                            cab.current == h.lastCurrent &&
                            cab.soc == h.lastSoc;
        if (frozen)
            ++h.frozenStreak;
        else
            h.frozenStreak = 0;
        h.lastVoltage = cab.voltage;
        h.lastCurrent = cab.current;
        h.lastSoc = cab.soc;

        // Stale link: Modbus exchanges to the cabinet keep failing, so
        // the manager is flying blind on it.
        if (!cab.fresh)
            ++h.staleStreak;
        else
            h.staleStreak = 0;

        QuarantineReason reason = QuarantineReason::DeadString;
        bool trip = false;
        if (h.deadStreak >= params_.quarantinePeriods) {
            reason = QuarantineReason::DeadString;
            trip = true;
        } else if (h.relayStreak >= params_.quarantinePeriods) {
            reason = QuarantineReason::RelayMismatch;
            trip = true;
        } else if (h.frozenStreak >= params_.frozenTelemetryPeriods) {
            reason = QuarantineReason::FrozenTelemetry;
            trip = true;
        } else if (h.staleStreak >= params_.staleLinkPeriods) {
            reason = QuarantineReason::StaleTelemetry;
            trip = true;
        }
        if (trip) {
            h.quarantined = true;
            ++quarantinedCount_;
            quarantineLog_.push_back({view.now, i, reason});
        }
    }
}


void
InsureManager::save(snapshot::Archive &ar) const
{
    PowerManager::save(ar);
    ar.section("insure_manager");
    spatial_.save(ar);
    temporal_.save(ar);
    ar.putF64(lastSpatial_);
    ar.putSize(eligible_.size());
    for (unsigned i : eligible_)
        ar.putU32(i);
    ar.putSize(health_.size());
    for (const CabinetHealth &h : health_) {
        ar.putU32(h.deadStreak);
        ar.putU32(h.relayStreak);
        ar.putU32(h.frozenStreak);
        ar.putU32(h.staleStreak);
        ar.putF64(h.lastVoltage);
        ar.putF64(h.lastCurrent);
        ar.putF64(h.lastSoc);
        ar.putBool(h.quarantined);
    }
    ar.putSize(quarantineLog_.size());
    for (const QuarantineEvent &e : quarantineLog_) {
        ar.putF64(e.at);
        ar.putU32(e.cabinet);
        ar.putEnum(e.reason);
    }
    ar.putU32(quarantinedCount_);
    ar.putU32(batchVms_);
    ar.putF64(plannedBacklog_);
    ar.putBool(batchActive_);
}

void
InsureManager::load(snapshot::Archive &ar)
{
    PowerManager::load(ar);
    ar.section("insure_manager");
    spatial_.load(ar);
    temporal_.load(ar);
    lastSpatial_ = ar.getF64();
    eligible_.assign(ar.getSize(), 0);
    for (unsigned &i : eligible_)
        i = ar.getU32();
    health_.assign(ar.getSize(), CabinetHealth{});
    for (CabinetHealth &h : health_) {
        h.deadStreak = ar.getU32();
        h.relayStreak = ar.getU32();
        h.frozenStreak = ar.getU32();
        h.staleStreak = ar.getU32();
        h.lastVoltage = ar.getF64();
        h.lastCurrent = ar.getF64();
        h.lastSoc = ar.getF64();
        h.quarantined = ar.getBool();
    }
    quarantineLog_.assign(ar.getSize(), QuarantineEvent{});
    for (QuarantineEvent &e : quarantineLog_) {
        e.at = ar.getF64();
        e.cabinet = ar.getU32();
        e.reason = ar.getEnum<QuarantineReason>(
            static_cast<std::uint32_t>(QuarantineReason::StaleTelemetry));
    }
    quarantinedCount_ = ar.getU32();
    batchVms_ = ar.getU32();
    plannedBacklog_ = ar.getF64();
    batchActive_ = ar.getBool();
}

} // namespace insure::core
