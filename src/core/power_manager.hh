/**
 * @file
 * Abstract power-manager interface.
 *
 * Two implementations exist: InsureManager (the paper's joint
 * spatio-temporal scheme over the reconfigurable buffer) and
 * BaselineManager (the state-of-the-art grid-style green-datacenter
 * approach the paper compares against in §6.4: renewable tracking + peak
 * shaving over a unified buffer).
 */

#ifndef INSURE_CORE_POWER_MANAGER_HH
#define INSURE_CORE_POWER_MANAGER_HH

#include <cstdint>

#include "core/system_view.hh"
#include "snapshot/archive.hh"

namespace insure::core {

/** Supply-load coordination policy. */
class PowerManager
{
  public:
    virtual ~PowerManager() = default;

    /** Human-readable policy name. */
    virtual const char *name() const = 0;

    /**
     * Produce the control actions for the next control period from the
     * sensed system state.
     */
    virtual ControlActions control(const SystemView &view) = 0;

    /**
     * Power-control actions issued so far (duty/VM adjustments and mode
     * switches; the Table 6 "Power Ctrl. Times" column).
     */
    std::uint64_t powerCtrlActions() const { return powerCtrlActions_; }

    /**
     * Serialize policy state. Subclasses with decision state extend this
     * and call the base first; the default covers the action counter.
     */
    virtual void
    save(snapshot::Archive &ar) const
    {
        ar.section("power_manager");
        ar.putU64(powerCtrlActions_);
    }

    /** Restore policy state (mirror of save). */
    virtual void
    load(snapshot::Archive &ar)
    {
        ar.section("power_manager");
        powerCtrlActions_ = ar.getU64();
    }

  protected:
    /** Count @p n power-control actions. */
    void countActions(std::uint64_t n = 1) { powerCtrlActions_ += n; }

  private:
    std::uint64_t powerCtrlActions_ = 0;
};

} // namespace insure::core

#endif // INSURE_CORE_POWER_MANAGER_HH
