/**
 * @file
 * The baseline power manager (paper §6.4).
 *
 * Adopts the power-management approach of state-of-the-art grid-connected
 * green data centers (Parasol / iSwitch style): it shaves peak power and
 * tracks the variable renewable supply by sizing the VM count to the solar
 * budget, but it can neither reconfigure the energy buffer nor adapt to
 * off-grid operation:
 *
 *  - the e-Buffer is UNIFIED: all cabinets charge together (budget split
 *    evenly) or discharge together; no per-cabinet modes;
 *  - there is no discharge-current capping and no wear balancing;
 *  - when the buffer trips its protection (voltage/SoC), the whole string
 *    disconnects for recharge and the servers ride on direct solar alone,
 *    usually shutting down (the Fig. 5 behaviour).
 */

#ifndef INSURE_CORE_BASELINE_MANAGER_HH
#define INSURE_CORE_BASELINE_MANAGER_HH

#include <memory>

#include "core/node_allocator.hh"
#include "core/power_manager.hh"

namespace insure::core {

/** Tuning of the baseline policy. */
struct BaselineParams {
    /** SoC that ends a recharge lockout (buffer considered full). */
    double rechargeTargetSoc = 0.90;
    /**
     * SoC protection threshold tripping the unified buffer offline. Sits
     * just above the cell-level discharge floor so the controller (not
     * repeated bus collapses) initiates the recharge.
     */
    double protectSoc = 0.22;
    /** String voltage protection threshold, per 12 V unit. */
    Volts cutoffPerUnit = 11.8;
    /** Peak-shaving cap as a fraction of rack peak power. */
    double peakShaveFraction = 1.0;
    /** Battery assist the tracker assumes available, watts. */
    Watts batteryAssist = 1200.0;
    /** Hold-down time after a rack power failure, seconds. */
    Seconds restartBackoff = 900.0;
};

/** Grid-style green-datacenter management on a standalone system. */
class BaselineManager : public PowerManager
{
  public:
    BaselineManager(const BaselineParams &params,
                    std::shared_ptr<NodeAllocator> allocator);

    const char *name() const override { return "baseline"; }

    ControlActions control(const SystemView &view) override;

    /** True while the unified buffer is in a recharge lockout. */
    bool inLockout() const { return lockout_; }

    /** Lockout episodes entered so far. */
    std::uint64_t lockouts() const { return lockoutCount_; }

    void save(snapshot::Archive &ar) const override;
    void load(snapshot::Archive &ar) override;

  private:
    BaselineParams params_;
    std::shared_ptr<NodeAllocator> allocator_;
    bool lockout_ = false;
    std::uint64_t lockoutCount_ = 0;
};

} // namespace insure::core

#endif // INSURE_CORE_BASELINE_MANAGER_HH
