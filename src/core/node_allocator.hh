/**
 * @file
 * Power-aware VM allocation (the "smart node allocator" of paper Fig. 6).
 *
 * Translates a power budget into a VM count (and vice versa) for a given
 * node model and workload, using the same power formula the cluster
 * implements. Batch workloads additionally get an energy-planning helper
 * that sizes the VM count for a whole job from the expected energy budget,
 * because changing VMs mid-job is impossible (paper §2.3: over-committing
 * a batch job triggers extra checkpoints and can LOWER throughput,
 * Table 2).
 */

#ifndef INSURE_CORE_NODE_ALLOCATOR_HH
#define INSURE_CORE_NODE_ALLOCATOR_HH

#include "server/node_params.hh"
#include "workload/profiles.hh"

namespace insure::core {

/** Sizing policy mapping power to VM counts. */
class NodeAllocator
{
  public:
    /**
     * @param node node model of the rack
     * @param node_count physical machines
     * @param profile workload being served
     */
    NodeAllocator(const server::NodeParams &node, unsigned node_count,
                  const workload::WorkloadProfile &profile);

    /** Rack power if @p vms VMs run at duty cycle @p duty, watts. */
    Watts powerForVms(unsigned vms, double duty) const;

    /**
     * Largest VM count whose power fits within @p budget watts at duty
     * cycle @p duty (0 when even one VM does not fit).
     */
    unsigned vmsForPower(Watts budget, double duty) const;

    /** Processing rate of @p vms VMs at duty @p duty, GB/hour. */
    double throughputGbPerHour(unsigned vms, double duty) const;

    /**
     * Energy needed to process @p gb gigabytes with @p vms VMs at full
     * duty, including idle draw, watt-hours.
     */
    WattHours energyForJob(GigaBytes gb, unsigned vms) const;

    /**
     * Best VM count for a batch job of @p gb gigabytes given an expected
     * energy budget of @p budget_wh: the largest VM count whose job energy
     * fits the budget (more VMs finish faster but burn more power for the
     * same work due to idle overhead amortisation differences).
     * @return 0 when not even one VM fits the budget — the caller should
     *         fall back to power-based sizing (paper Table 2: under a
     *         tight energy budget fewer VMs outperform more).
     */
    unsigned vmsForEnergyBudget(GigaBytes gb, WattHours budget_wh) const;

    /** Total VM slots available. */
    unsigned totalSlots() const;

  private:
    server::NodeParams node_;
    unsigned nodeCount_;
    workload::WorkloadProfile profile_;
};

} // namespace insure::core

#endif // INSURE_CORE_NODE_ALLOCATOR_HH
