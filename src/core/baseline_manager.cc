#include "core/baseline_manager.hh"

#include "snapshot/archive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::core {

using battery::UnitMode;

BaselineManager::BaselineManager(const BaselineParams &params,
                                 std::shared_ptr<NodeAllocator> allocator)
    : params_(params), allocator_(std::move(allocator))
{
    if (!allocator_)
        fatal("BaselineManager: allocator is required");
}

ControlActions
BaselineManager::control(const SystemView &view)
{
    ControlActions act;
    act.cabinetModes.resize(view.cabinets.size());
    act.dutyCycle = 1.0; // no duty-cycle capping in the baseline

    // Unified-buffer health check: minimum SoC and per-unit voltage across
    // the string (one weak cabinet trips the whole buffer).
    double min_soc = 1.0;
    double mean_soc = 0.0;
    bool voltage_trip = false;
    const unsigned series = std::max(1u, view.seriesPerCabinet);
    for (const auto &c : view.cabinets) {
        min_soc = std::min(min_soc, c.soc);
        mean_soc += c.soc;
        if (c.current > 0.5 &&
            c.voltage / series < params_.cutoffPerUnit) {
            voltage_trip = true;
        }
        // Hardware protection may have already disconnected cabinets; the
        // unified controller reacts by entering a recharge lockout.
        if (c.mode == UnitMode::Offline)
            voltage_trip = true;
    }
    mean_soc /= view.cabinets.size();

    if (!lockout_ && (voltage_trip || min_soc < params_.protectSoc)) {
        lockout_ = true;
        ++lockoutCount_;
        countActions();
    }
    if (lockout_ && mean_soc >= params_.rechargeTargetSoc) {
        lockout_ = false;
        countActions();
    }

    // Unified-buffer limitation (paper §2.3): the whole string operates
    // in EITHER charging or discharging mode — it cannot absorb surplus
    // while backstopping the load. Under sustained surplus with an
    // uncharged buffer the string switches to the charge bus and the
    // servers ride on raw solar (the brittle Fig. 5 regime); otherwise it
    // floats on the load bus.
    const bool surplus_mode =
        !lockout_ &&
        view.solarPowerAvg > view.loadPower * 1.1 + 100.0 &&
        mean_soc < params_.rechargeTargetSoc;
    const UnitMode unified = (lockout_ || surplus_mode)
                                 ? UnitMode::Charging
                                 : UnitMode::Standby;
    std::fill(act.cabinetModes.begin(), act.cabinetModes.end(), unified);

    // Batch charging: every cabinet shares the surplus evenly.
    act.chargePlan.splitEvenly = true;
    for (unsigned i = 0; i < view.cabinets.size(); ++i)
        act.chargePlan.cabinets.push_back(i);

    // Renewable tracking + peak shaving for the load.
    Watts budget = view.solarPowerAvg;
    if (lockout_) {
        // Servers ride on direct solar alone; leave a safety margin for
        // irradiance dips within the control period.
        budget *= 0.6;
    } else if (unified == UnitMode::Charging) {
        // Buffer is on the charge bus: the load tracks raw solar with no
        // battery behind it (supply dips within the period hit the rack).
        budget *= 0.9;
    } else {
        budget += params_.batteryAssist;
    }
    const Watts cap =
        params_.peakShaveFraction * allocator_->powerForVms(
                                        allocator_->totalSlots(), 1.0);
    budget = std::min(budget, cap);

    unsigned target = allocator_->vmsForPower(budget, 1.0);
    if (view.interactive.present) {
        // Interactive traffic never "runs out of backlog": track the
        // request demand within the power budget instead.
        target = std::min(target,
                          std::max(1u, view.interactive.demandVms));
    } else if (view.backlog <= 0.0) {
        target = 0;
    }
    // Restart backoff after a power failure (crash-loop protection).
    if (view.lastPowerFailureAge < params_.restartBackoff)
        target = 0;
    if (target != view.activeVms)
        countActions();
    act.targetVms = target;
    return act;
}


void
BaselineManager::save(snapshot::Archive &ar) const
{
    PowerManager::save(ar);
    ar.section("baseline_manager");
    ar.putBool(lockout_);
    ar.putU64(lockoutCount_);
}

void
BaselineManager::load(snapshot::Archive &ar)
{
    PowerManager::load(ar);
    ar.section("baseline_manager");
    lockout_ = ar.getBool();
    lockoutCount_ = ar.getU64();
}

} // namespace insure::core
