/**
 * @file
 * Experiment harness: one-call construction and execution of a full
 * in-situ system run, plus paired InSURE-vs-baseline comparisons on
 * identical solar traces (the paper's trace-replay methodology, §5).
 */

#ifndef INSURE_CORE_EXPERIMENT_HH
#define INSURE_CORE_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/baseline_manager.hh"
#include "core/in_situ_system.hh"
#include "core/insure_manager.hh"
#include "interactive/info_battery.hh"
#include "sim/config.hh"
#include "sim/rng.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::core {

/** Which power manager an experiment uses. */
enum class ManagerKind {
    Insure,
    Baseline,
    /** InSURE plus information-battery speculative load shifting. */
    InfoBattery,
};

/** Printable name of a manager kind. */
const char *managerKindName(ManagerKind k);

struct ExperimentResult;

/**
 * An optional per-run attachment constructed against the live plant
 * (e.g. the src/fault injector). runExperiment keeps it alive for the
 * whole run and calls onRunComplete once the clock stops, so the
 * extension can harvest results. core knows nothing about concrete
 * extensions — higher layers register one via
 * ExperimentConfig::extensionFactory.
 */
class PlantExtension
{
  public:
    virtual ~PlantExtension() = default;

    /** Harvest per-run outputs (e.g. ExperimentResult::resilience). */
    virtual void onRunComplete(const InSituSystem &plant,
                               ExperimentResult &result) = 0;

    /**
     * Serialize extension state for a checkpoint. Default: stateless.
     * Extensions with pending events or counters (the fault injector)
     * override both hooks.
     */
    virtual void save(snapshot::Archive &) const {}

    /** Restore extension state (mirror of save). */
    virtual void load(snapshot::Archive &) {}
};

/** Complete description of one experiment run. */
struct ExperimentConfig {
    /** Policy under test. */
    ManagerKind manager = ManagerKind::Insure;
    /** Plant configuration (workload/profile/sources set by helpers). */
    SystemConfig system;
    /** Weather class of the generated solar day. */
    solar::DayClass day = solar::DayClass::Sunny;
    /** Seed for the solar trace and all stochastic processes. */
    std::uint64_t seed = kDefaultSeed;
    /** Scale the solar trace to this many kWh per day (optional). */
    std::optional<double> targetDailyKwh;
    /**
     * Scale the solar trace so the 7:00-20:00 average equals this many
     * watts (the paper's Fig. 15 trace normalisation; optional).
     */
    std::optional<double> scaleToAvgWatts;
    /** Run length, seconds. */
    Seconds duration = units::secPerDay;
    /** Record a system trace. */
    bool recordTrace = false;
    /** Trace sampling period, seconds. */
    Seconds tracePeriod = 30.0;
    /** InSURE policy tuning (used when manager == Insure). */
    InsureParams insure;
    /** Baseline policy tuning (used when manager == Baseline). */
    BaselineParams baseline;
    /**
     * Information-battery tuning (used when manager == InfoBattery; the
     * wrapped InSURE policy still reads `insure`).
     */
    interactive::InfoBatteryParams infoBattery;
    /**
     * Tick-loop observer for this run (non-owning; must outlive the run).
     * For sweeps executed across worker threads use observerFactory
     * instead, so every run gets its own instance.
     */
    SystemObserver *observer = nullptr;
    /**
     * Creates a per-run observer (e.g. a validate::InvariantChecker).
     * Invoked inside runExperiment; violation counts/messages are
     * harvested into the ExperimentResult after the run. Takes precedence
     * over the raw observer pointer.
     */
    std::function<std::unique_ptr<SystemObserver>()> observerFactory;
    /**
     * Creates a per-run plant extension (see PlantExtension) once the
     * plant is constructed, before the clock starts. Unset on clean runs:
     * runExperiment then takes exactly the code path it always has, so
     * optional subsystems (fault injection lives in src/fault) cost
     * nothing when disabled.
     */
    std::function<std::unique_ptr<PlantExtension>(InSituSystem &,
                                                  sim::Simulation &)>
        extensionFactory;
};

/** Outputs of one run. */
struct ExperimentResult {
    std::string managerName;
    Metrics metrics;
    telemetry::DailyLogSummary log;
    std::optional<sim::Trace> trace;
    /** Invariant violations reported by the run's observer (0 if none). */
    std::uint64_t invariantViolations = 0;
    /** Violation details (bounded; see validate::CheckerOptions). */
    std::vector<std::string> invariantNotes;
    /** Resilience metrics when a fault extension ran (absent otherwise). */
    std::optional<ResilienceMetrics> resilience;
    /** Interactive SLO report (absent when no interactive workload ran). */
    std::optional<interactive::SloReport> slo;
};

/** Paired run of both policies on the same solar trace. */
struct ComparisonResult {
    ExperimentResult insure;
    ExperimentResult baseline;
};

/**
 * One named run in a sweep. The batch runner (src/harness) executes
 * vectors of these concurrently; the config carries everything a run
 * needs, so specs are freely movable across worker threads.
 */
struct RunSpec {
    /** Display label for progress lines and result tables. */
    std::string label;
    /** Full run description, including the seed. */
    ExperimentConfig config;
};

/** Outcome of one sweep run. */
struct RunResult {
    /** Label copied from the spec. */
    std::string label;
    /** The seed the run actually used (after any child-seed derivation). */
    std::uint64_t seed = 0;
    /** Simulated run length, seconds. */
    Seconds simulatedSeconds = 0.0;
    /** Wall-clock execution time of this run, seconds. */
    double wallSeconds = 0.0;
    /**
     * True when the run threw instead of completing (crash-testing
     * campaigns produce these on purpose). `result` is default-initialised
     * and `error` holds the exception message; the sweep itself survives.
     */
    bool failed = false;
    /** Exception message of a failed run (empty otherwise). */
    std::string error;
    /** The experiment outputs (valid only when !failed). */
    ExperimentResult result;
};

/**
 * Aggregate statistics over a set of runs: additive quantities are
 * summed, ratio-style metrics are averaged with min/max extremes. This
 * is the merge step after a parallel sweep — totals are independent of
 * the order runs completed in.
 */
struct SweepSummary {
    std::size_t runs = 0;
    /**
     * Runs that threw instead of completing. Failed runs are excluded
     * from every aggregate below (`runs` still counts them).
     */
    std::size_t failedRuns = 0;
    /** "label: error" lines for failed runs (bounded to the first 20). */
    std::vector<std::string> failures;
    /** Sum of simulated run lengths, seconds. */
    Seconds simulatedSeconds = 0.0;
    /** Sum of per-run wall-clock times (CPU-side cost), seconds. */
    double runWallSeconds = 0.0;

    // Additive totals.
    double processedGb = 0.0;
    double solarOfferedKwh = 0.0;
    double greenUsedKwh = 0.0;
    double loadKwh = 0.0;
    double secondaryKwh = 0.0;
    double bufferThroughputAh = 0.0;
    std::uint64_t bufferTrips = 0;
    std::uint64_t emergencyShutdowns = 0;
    std::uint64_t onOffCycles = 0;

    // Per-run ratio metrics.
    double meanUptime = 0.0;
    double minUptime = 0.0;
    double maxUptime = 0.0;
    double meanEBufferAvailability = 0.0;
    double meanPerfPerAh = 0.0;
    double meanThroughputGbPerHour = 0.0;
};

/** Merge per-run results into aggregate sweep statistics. */
SweepSummary mergeResults(const std::vector<RunResult> &runs);

/**
 * Build the solar power trace an experiment will replay (exposed so
 * benches can inspect or persist it).
 */
sim::Trace buildSolarTrace(const ExperimentConfig &cfg);

/**
 * The assembled experiment held open: simulation + plant + observer +
 * extension, built exactly as runExperiment builds them, but with the
 * clock under caller control. This is the unit the snapshotter drives —
 * advance in chunks with runUntil(), serialize the complete state
 * between chunks with save(), and restore into a freshly built rig of
 * the IDENTICAL config with load() (the construction sequence is fully
 * deterministic in the config, so writer and reader rigs agree on every
 * RNG stream and event key). runExperiment() itself is rig + run-to-end
 * + finish().
 */
class ExperimentRig
{
  public:
    explicit ExperimentRig(const ExperimentConfig &cfg);
    ~ExperimentRig();

    ExperimentRig(const ExperimentRig &) = delete;
    ExperimentRig &operator=(const ExperimentRig &) = delete;

    sim::Simulation &simulation() { return *simulation_; }
    InSituSystem &plant() { return *plant_; }
    const InSituSystem &plant() const { return *plant_; }
    const ExperimentConfig &config() const { return cfg_; }

    /** Advance the clock to absolute simulated time @p t. */
    void runUntil(Seconds t);

    /** Stop the clock, finalize components and harvest the outputs. */
    ExperimentResult finish();

    /**
     * Serialize the full run state: clock, root RNG, plant, observer
     * and extension. Call only between runUntil() chunks (never from
     * inside a dispatching event).
     */
    void save(snapshot::Archive &ar) const;

    /**
     * Restore a snapshot into this freshly constructed rig. The rig
     * must have been built from the same config the snapshot was taken
     * with; startup() is skipped (the restored events replace the
     * initial schedule) and the next runUntil() continues bit-exactly.
     */
    void load(snapshot::Archive &ar);

  private:
    ExperimentConfig cfg_;
    std::unique_ptr<sim::Simulation> simulation_;
    std::unique_ptr<InSituSystem> plant_;
    std::unique_ptr<SystemObserver> ownedObserver_;
    SystemObserver *observer_ = nullptr;
    std::unique_ptr<PlantExtension> extension_;
};

/** Execute one experiment. */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

/** Execute InSURE and the baseline on the identical solar trace. */
ComparisonResult runComparison(ExperimentConfig cfg);

/** Default configuration for the seismic batch case study (Table 2). */
ExperimentConfig seismicExperiment();

/** Default configuration for the video stream case study (Table 3). */
ExperimentConfig videoExperiment();

/**
 * Default configuration for a continuously iterated micro-benchmark
 * (Figs. 17-19): arrivals oversubscribe the rack so work is never scarce.
 */
ExperimentConfig microExperiment(const std::string &benchmark);

/**
 * Default configuration for the interactive request-serving case study:
 * a diurnal request stream sized so the rack's VM slots cover the
 * evening peak, with SLO accounting in the result.
 */
ExperimentConfig interactiveExperiment();

/**
 * Build an experiment from an INI-style configuration (see
 * sim::Config). Recognised keys, all optional:
 *
 *   [experiment] workload = seismic|video|<bench>; manager =
 *   insure|baseline|noopt; days; seed; record_trace
 *   [solar] day = sunny|cloudy|rainy; kwh; avg_watts
 *   [system] nodes; lowpower; cabinets; initial_soc; secondary_watts
 *
 * Unknown keys are fatal (typo protection).
 */
ExperimentConfig experimentFromConfig(const sim::Config &cfg);

} // namespace insure::core

#endif // INSURE_CORE_EXPERIMENT_HH
