/**
 * @file
 * Real-time system monitoring (paper §4, tier 2).
 *
 * The monitor samples every battery cabinet through the voltage/current
 * transducers into the PLC register map. Power managers read the sensed
 * (quantised) values from the registers rather than simulator ground
 * truth, preserving the prototype's sensing path. The monitor also keeps
 * running aggregates used by the daily log (minimum battery voltage,
 * voltage standard deviation, end-of-day voltage — paper Table 6).
 */

#ifndef INSURE_TELEMETRY_MONITOR_HH
#define INSURE_TELEMETRY_MONITOR_HH

#include <optional>
#include <vector>

#include "battery/battery_array.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "telemetry/register_map.hh"
#include "telemetry/transducer.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::telemetry {

/** Samples the battery array into the register map. */
class SystemMonitor
{
  public:
    /**
     * @param array battery array to observe (must outlive monitor)
     * @param map register bank to populate (must outlive monitor)
     */
    SystemMonitor(const battery::BatteryArray &array, RegisterMap &map);

    /**
     * Sample all channels at time @p now with per-cabinet bus currents
     * @p cabinet_currents (positive = discharge; may be empty for idle).
     */
    void sample(Seconds now, const std::vector<Amperes> &cabinet_currents);

    /** Sensed cabinet string voltage, volts (from the registers). */
    Volts sensedVoltage(unsigned cabinet) const;

    /** Sensed cabinet current, amperes. */
    Amperes sensedCurrent(unsigned cabinet) const;

    /** Sensed cabinet state of charge, fraction. */
    double sensedSoc(unsigned cabinet) const;

    /** Minimum per-unit voltage observed so far (Table 6 column). */
    Volts minUnitVoltage() const { return minUnitVoltage_; }

    /** Most recent mean cabinet voltage. */
    Volts lastMeanVoltage() const { return lastMeanVoltage_; }

    /** Std-dev of all voltage samples so far (Table 6 sigma column). */
    double voltageSigma() const { return voltageSamples_.stddev(); }

    /** Number of sampling sweeps performed. */
    std::uint64_t sweeps() const { return sweeps_; }

    /**
     * Fault injection: force the voltage channel of @p cabinet to report
     * @p volts (per-unit) until clearFaults() — a stuck transducer.
     */
    void injectVoltageFault(unsigned cabinet, Volts volts);

    /** Fault injection: force the SoC channel of @p cabinet. */
    void injectSocFault(unsigned cabinet, double soc);

    /**
     * Fault injection: add @p volts of bias to every per-unit voltage
     * reading of @p cabinet (mis-calibrated transducer).
     */
    void injectSensorBias(unsigned cabinet, Volts volts);

    /**
     * Fault injection: add zero-mean Gaussian noise with the given
     * per-unit standard deviation to @p cabinet's voltage readings.
     * Draws come from the stream installed with seedSensorNoise (a
     * dedicated tagged fault stream, so noise never perturbs any other
     * stochastic process).
     */
    void injectSensorNoise(unsigned cabinet, Volts stddev);

    /** Seed the sensor-noise stream (used by injectSensorNoise). */
    void seedSensorNoise(std::uint64_t seed) { noiseRng_ = Rng(seed); }

    /**
     * Fault injection: while set, @p cabinet's sampling sweep skips its
     * register writes entirely — the managers keep reading the stale
     * last-written values (dead sensor head).
     */
    void injectSensorDropout(unsigned cabinet, bool dropped);

    /** Remove all injected sensor faults. */
    void clearFaults();

    /** Serialize sweep statistics, fault overlays and the noise stream. */
    void save(snapshot::Archive &ar) const;

    /** Restore sweep statistics, fault overlays and the noise stream. */
    void load(snapshot::Archive &ar);

  private:
    const battery::BatteryArray &array_;
    RegisterMap &map_;
    Transducer voltageTd_;
    Transducer currentTd_;
    sim::Accumulator voltageSamples_;
    Volts minUnitVoltage_ = 1e9;
    Volts lastMeanVoltage_ = 0.0;
    std::uint64_t sweeps_ = 0;
    std::vector<std::optional<Volts>> voltageFaults_;
    std::vector<std::optional<double>> socFaults_;
    std::vector<Volts> biasFaults_;
    std::vector<Volts> noiseFaults_;
    std::vector<char> dropoutFaults_;
    Rng noiseRng_{0};
};

} // namespace insure::telemetry

#endif // INSURE_TELEMETRY_MONITOR_HH
