#include "telemetry/monitor.hh"

#include "snapshot/archive.hh"

#include <algorithm>

namespace insure::telemetry {

SystemMonitor::SystemMonitor(const battery::BatteryArray &array,
                             RegisterMap &map)
    : array_(array), map_(map),
      voltageTd_(Transducer::voltageChannel()),
      currentTd_(Transducer::currentChannel()),
      voltageSamples_(nullptr, "monitor.voltage", "sampled unit voltages"),
      voltageFaults_(array.cabinetCount()), socFaults_(array.cabinetCount()),
      biasFaults_(array.cabinetCount(), 0.0),
      noiseFaults_(array.cabinetCount(), 0.0),
      dropoutFaults_(array.cabinetCount(), 0)
{
    map_.write(RegisterLayout::cabinetCount,
               static_cast<std::uint16_t>(array_.cabinetCount()));
}

void
SystemMonitor::sample(Seconds now,
                      const std::vector<Amperes> &cabinet_currents)
{
    (void)now;
    ++sweeps_;
    double mean_v = 0.0;
    for (unsigned i = 0; i < array_.cabinetCount(); ++i) {
        const auto &cab = array_.cabinet(i);
        if (dropoutFaults_[i]) {
            // Dead sensor head: no register writes this sweep; the
            // managers keep reading the stale last-written values.
            continue;
        }
        const Amperes current =
            i < cabinet_currents.size() ? cabinet_currents[i] : 0.0;

        // Per-unit voltages go through the 0-50 V channel; the cabinet
        // register stores the sensed string sum. An injected fault pins
        // the channel (stuck transducer); bias/noise faults distort it.
        Volts string_v = 0.0;
        for (unsigned u = 0; u < cab.seriesCount(); ++u) {
            Volts v_true =
                voltageFaults_[i] ? *voltageFaults_[i]
                                  : cab.unit(u).terminalVoltage(current);
            if (biasFaults_[i] != 0.0)
                v_true += biasFaults_[i];
            if (noiseFaults_[i] > 0.0)
                v_true += noiseRng_.normal(0.0, noiseFaults_[i]);
            const Volts v_sensed = voltageTd_.measure(v_true);
            string_v += v_sensed;
            voltageSamples_.sample(v_sensed);
            minUnitVoltage_ = std::min(minUnitVoltage_, v_sensed);
        }
        mean_v += string_v;

        const Amperes i_sensed = currentTd_.measure(current);

        using RL = RegisterLayout;
        map_.writeVolts(RL::cabinetReg(i, RL::voltage), string_v);
        map_.writeAmps(RL::cabinetReg(i, RL::current), i_sensed);
        map_.writeSoc(RL::cabinetReg(i, RL::soc),
                      socFaults_[i] ? *socFaults_[i] : cab.soc());
        map_.write(RL::cabinetReg(i, RL::mode),
                   static_cast<std::uint16_t>(cab.mode()));
        map_.write(RL::cabinetReg(i, RL::chargeRelay),
                   cab.chargeRelay().closed() ? 1 : 0);
        map_.write(RL::cabinetReg(i, RL::dischargeRelay),
                   cab.dischargeRelay().closed() ? 1 : 0);
        map_.write(RL::cabinetReg(i, RL::throughput),
                   static_cast<std::uint16_t>(std::min(
                       65535.0,
                       cab.dischargeThroughputAh() * regscale::ampHours)));
    }
    lastMeanVoltage_ = mean_v / array_.cabinetCount();
}

Volts
SystemMonitor::sensedVoltage(unsigned cabinet) const
{
    using RL = RegisterLayout;
    return map_.readVolts(RL::cabinetReg(cabinet, RL::voltage));
}

Amperes
SystemMonitor::sensedCurrent(unsigned cabinet) const
{
    using RL = RegisterLayout;
    return map_.readAmps(RL::cabinetReg(cabinet, RL::current));
}

void
SystemMonitor::injectVoltageFault(unsigned cabinet, Volts volts)
{
    if (cabinet < voltageFaults_.size())
        voltageFaults_[cabinet] = volts;
}

void
SystemMonitor::injectSocFault(unsigned cabinet, double soc)
{
    if (cabinet < socFaults_.size())
        socFaults_[cabinet] = soc;
}

void
SystemMonitor::injectSensorBias(unsigned cabinet, Volts volts)
{
    if (cabinet < biasFaults_.size())
        biasFaults_[cabinet] = volts;
}

void
SystemMonitor::injectSensorNoise(unsigned cabinet, Volts stddev)
{
    if (cabinet < noiseFaults_.size())
        noiseFaults_[cabinet] = stddev;
}

void
SystemMonitor::injectSensorDropout(unsigned cabinet, bool dropped)
{
    if (cabinet < dropoutFaults_.size())
        dropoutFaults_[cabinet] = dropped ? 1 : 0;
}

void
SystemMonitor::clearFaults()
{
    std::fill(voltageFaults_.begin(), voltageFaults_.end(), std::nullopt);
    std::fill(socFaults_.begin(), socFaults_.end(), std::nullopt);
    std::fill(biasFaults_.begin(), biasFaults_.end(), 0.0);
    std::fill(noiseFaults_.begin(), noiseFaults_.end(), 0.0);
    std::fill(dropoutFaults_.begin(), dropoutFaults_.end(), 0);
}

double
SystemMonitor::sensedSoc(unsigned cabinet) const
{
    using RL = RegisterLayout;
    return map_.readSoc(RL::cabinetReg(cabinet, RL::soc));
}


void
SystemMonitor::save(snapshot::Archive &ar) const
{
    ar.section("monitor");
    voltageSamples_.save(ar);
    ar.putF64(minUnitVoltage_);
    ar.putF64(lastMeanVoltage_);
    ar.putU64(sweeps_);
    ar.putSize(voltageFaults_.size());
    for (const auto &f : voltageFaults_) {
        ar.putBool(f.has_value());
        ar.putF64(f.value_or(0.0));
    }
    ar.putSize(socFaults_.size());
    for (const auto &f : socFaults_) {
        ar.putBool(f.has_value());
        ar.putF64(f.value_or(0.0));
    }
    ar.putF64Vec(biasFaults_);
    ar.putF64Vec(noiseFaults_);
    ar.putSize(dropoutFaults_.size());
    for (char c : dropoutFaults_)
        ar.putBool(c != 0);
    noiseRng_.save(ar);
}

void
SystemMonitor::load(snapshot::Archive &ar)
{
    ar.section("monitor");
    voltageSamples_.load(ar);
    minUnitVoltage_ = ar.getF64();
    lastMeanVoltage_ = ar.getF64();
    sweeps_ = ar.getU64();
    voltageFaults_.assign(ar.getSize(), std::nullopt);
    for (auto &f : voltageFaults_) {
        const bool has = ar.getBool();
        const double v = ar.getF64();
        if (has)
            f = v;
    }
    socFaults_.assign(ar.getSize(), std::nullopt);
    for (auto &f : socFaults_) {
        const bool has = ar.getBool();
        const double v = ar.getF64();
        if (has)
            f = v;
    }
    biasFaults_ = ar.getF64Vec();
    noiseFaults_ = ar.getF64Vec();
    dropoutFaults_.assign(ar.getSize(), 0);
    for (char &c : dropoutFaults_)
        c = ar.getBool() ? 1 : 0;
    noiseRng_.load(ar);
}

} // namespace insure::telemetry
