#include "telemetry/register_map.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::telemetry {

RegisterMap::RegisterMap(std::uint16_t size) : regs_(size, 0)
{
    if (size == 0)
        fatal("RegisterMap: size must be positive");
}

void
RegisterMap::invalidAccess(const char *what, std::uint16_t addr) const
{
    fatal("RegisterMap: %s invalid address %u", what, addr);
}

std::vector<std::uint16_t>
RegisterMap::readBlock(std::uint16_t addr, std::uint16_t count) const
{
    if (!validRange(addr, count))
        fatal("RegisterMap: invalid block read [%u, %u)", addr,
              addr + count);
    return {regs_.begin() + addr, regs_.begin() + addr + count};
}

void
RegisterMap::writeBlock(std::uint16_t addr,
                        const std::vector<std::uint16_t> &values)
{
    if (!validRange(addr, static_cast<std::uint16_t>(values.size())))
        fatal("RegisterMap: invalid block write [%u, %zu)", addr,
              addr + values.size());
    std::copy(values.begin(), values.end(), regs_.begin() + addr);
}

bool
RegisterMap::validRange(std::uint16_t addr, std::uint16_t count) const
{
    return static_cast<std::size_t>(addr) + count <= regs_.size();
}


void
RegisterMap::save(snapshot::Archive &ar) const
{
    ar.section("register_map");
    ar.putSize(regs_.size());
    for (std::uint16_t r : regs_)
        ar.putU32(r);
}

void
RegisterMap::load(snapshot::Archive &ar)
{
    ar.section("register_map");
    if (ar.getSize() != regs_.size())
        throw snapshot::SnapshotError(
            "RegisterMap: register count differs from snapshot");
    for (std::uint16_t &r : regs_)
        r = static_cast<std::uint16_t>(ar.getU32());
}

} // namespace insure::telemetry
