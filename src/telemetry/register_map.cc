#include "telemetry/register_map.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::telemetry {

RegisterMap::RegisterMap(std::uint16_t size) : regs_(size, 0)
{
    if (size == 0)
        fatal("RegisterMap: size must be positive");
}

std::uint16_t
RegisterMap::read(std::uint16_t addr) const
{
    if (addr >= regs_.size())
        fatal("RegisterMap: read from invalid address %u", addr);
    return regs_[addr];
}

void
RegisterMap::write(std::uint16_t addr, std::uint16_t value)
{
    if (addr >= regs_.size())
        fatal("RegisterMap: write to invalid address %u", addr);
    regs_[addr] = value;
}

std::vector<std::uint16_t>
RegisterMap::readBlock(std::uint16_t addr, std::uint16_t count) const
{
    if (!validRange(addr, count))
        fatal("RegisterMap: invalid block read [%u, %u)", addr,
              addr + count);
    return {regs_.begin() + addr, regs_.begin() + addr + count};
}

void
RegisterMap::writeBlock(std::uint16_t addr,
                        const std::vector<std::uint16_t> &values)
{
    if (!validRange(addr, static_cast<std::uint16_t>(values.size())))
        fatal("RegisterMap: invalid block write [%u, %zu)", addr,
              addr + values.size());
    std::copy(values.begin(), values.end(), regs_.begin() + addr);
}

bool
RegisterMap::validRange(std::uint16_t addr, std::uint16_t count) const
{
    return static_cast<std::size_t>(addr) + count <= regs_.size();
}

void
RegisterMap::writeVolts(std::uint16_t addr, double v)
{
    const double scaled = std::clamp(v, 0.0, 655.0) * regscale::volts;
    write(addr, static_cast<std::uint16_t>(std::lround(scaled)));
}

double
RegisterMap::readVolts(std::uint16_t addr) const
{
    return read(addr) / regscale::volts;
}

void
RegisterMap::writeAmps(std::uint16_t addr, double a)
{
    const double shifted =
        std::clamp(a + regscale::ampOffset, 0.0, 655.0) * regscale::amps;
    write(addr, static_cast<std::uint16_t>(std::lround(shifted)));
}

double
RegisterMap::readAmps(std::uint16_t addr) const
{
    return read(addr) / regscale::amps - regscale::ampOffset;
}

void
RegisterMap::writeSoc(std::uint16_t addr, double soc)
{
    const double scaled = std::clamp(soc, 0.0, 1.0) * regscale::soc;
    write(addr, static_cast<std::uint16_t>(std::lround(scaled)));
}

double
RegisterMap::readSoc(std::uint16_t addr) const
{
    return read(addr) / regscale::soc;
}

} // namespace insure::telemetry
