/**
 * @file
 * Analog transducer models.
 *
 * The prototype instruments every battery with a CR Magnetics CR5310
 * voltage transducer (0-50 V in, +/-5 V out) and an HCS 20-10-AP-CL
 * current transducer (+/-10 A in, +/-4 V out), sampled by the PLC's
 * analog-input module (paper Table 4). The model applies range clipping,
 * linear scaling and ADC quantisation so the controllers observe sensed
 * values, not simulator ground truth.
 */

#ifndef INSURE_TELEMETRY_TRANSDUCER_HH
#define INSURE_TELEMETRY_TRANSDUCER_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace insure::telemetry {

/** A linear transducer followed by an ADC. */
class Transducer
{
  public:
    /**
     * @param in_lo lower bound of the measured quantity
     * @param in_hi upper bound of the measured quantity
     * @param adc_bits ADC resolution in bits (PLC module: 12)
     */
    Transducer(double in_lo, double in_hi, unsigned adc_bits = 12);

    /**
     * Convert a physical value to an ADC code (clipped + quantised).
     * Every sensed channel runs through here once per telemetry scan, so
     * encode/decode are inline.
     */
    std::uint16_t
    encode(double value) const
    {
        const double clipped = std::clamp(value, inLo_, inHi_);
        const double frac = (clipped - inLo_) / (inHi_ - inLo_);
        return static_cast<std::uint16_t>(std::lround(frac * levels_));
    }

    /** Convert an ADC code back to the physical quantity. */
    double
    decode(std::uint16_t code) const
    {
        const double frac =
            static_cast<double>(std::min<unsigned>(code, levels_)) /
            levels_;
        return inLo_ + frac * (inHi_ - inLo_);
    }

    /** Round-trip measurement: what the PLC reports for @p value. */
    double measure(double value) const { return decode(encode(value)); }

    /** Smallest representable change of the measured quantity. */
    double resolution() const;

    /** The CR5310-style battery voltage channel (0-50 V). */
    static Transducer voltageChannel();

    /** The HCS 20-10-style battery current channel (+/-40 A). */
    static Transducer currentChannel();

  private:
    double inLo_;
    double inHi_;
    unsigned levels_;
};

} // namespace insure::telemetry

#endif // INSURE_TELEMETRY_TRANSDUCER_HH
