#include "telemetry/history_table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::telemetry {

DischargeHistoryTable::DischargeHistoryTable(unsigned cabinets)
    : totalAh_(cabinets, 0.0), periodAh_(cabinets, 0.0)
{
    if (cabinets == 0)
        fatal("DischargeHistoryTable: need at least one cabinet");
}

void
DischargeHistoryTable::badRecord(unsigned i, AmpHours ah) const
{
    if (i >= totalAh_.size())
        panic("DischargeHistoryTable: cabinet %u out of range", i);
    panic("DischargeHistoryTable: negative discharge %f", ah);
}

AmpHours
DischargeHistoryTable::total(unsigned i) const
{
    if (i >= totalAh_.size())
        panic("DischargeHistoryTable: cabinet %u out of range", i);
    return totalAh_[i];
}

AmpHours
DischargeHistoryTable::grandTotal() const
{
    AmpHours s = 0.0;
    for (auto v : totalAh_)
        s += v;
    return s;
}

AmpHours
DischargeHistoryTable::imbalance() const
{
    const auto [lo, hi] =
        std::minmax_element(totalAh_.begin(), totalAh_.end());
    return *hi - *lo;
}

void
DischargeHistoryTable::beginPeriod()
{
    std::fill(periodAh_.begin(), periodAh_.end(), 0.0);
}

AmpHours
DischargeHistoryTable::periodTotal(unsigned i) const
{
    if (i >= periodAh_.size())
        panic("DischargeHistoryTable: cabinet %u out of range", i);
    return periodAh_[i];
}

} // namespace insure::telemetry
