#include "telemetry/history_table.hh"

#include "snapshot/archive.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::telemetry {

DischargeHistoryTable::DischargeHistoryTable(unsigned cabinets)
    : totalAh_(cabinets, 0.0), periodAh_(cabinets, 0.0)
{
    if (cabinets == 0)
        fatal("DischargeHistoryTable: need at least one cabinet");
}

void
DischargeHistoryTable::badRecord(unsigned i, AmpHours ah) const
{
    if (i >= totalAh_.size())
        panic("DischargeHistoryTable: cabinet %u out of range", i);
    panic("DischargeHistoryTable: negative discharge %f", ah);
}

AmpHours
DischargeHistoryTable::total(unsigned i) const
{
    if (i >= totalAh_.size())
        panic("DischargeHistoryTable: cabinet %u out of range", i);
    return totalAh_[i];
}

AmpHours
DischargeHistoryTable::grandTotal() const
{
    AmpHours s = 0.0;
    for (auto v : totalAh_)
        s += v;
    return s;
}

AmpHours
DischargeHistoryTable::imbalance() const
{
    const auto [lo, hi] =
        std::minmax_element(totalAh_.begin(), totalAh_.end());
    return *hi - *lo;
}

void
DischargeHistoryTable::beginPeriod()
{
    std::fill(periodAh_.begin(), periodAh_.end(), 0.0);
}

AmpHours
DischargeHistoryTable::periodTotal(unsigned i) const
{
    if (i >= periodAh_.size())
        panic("DischargeHistoryTable: cabinet %u out of range", i);
    return periodAh_[i];
}


void
DischargeHistoryTable::save(snapshot::Archive &ar) const
{
    ar.section("history_table");
    ar.putF64Vec(totalAh_);
    ar.putF64Vec(periodAh_);
}

void
DischargeHistoryTable::load(snapshot::Archive &ar)
{
    ar.section("history_table");
    const std::size_t n = totalAh_.size();
    totalAh_ = ar.getF64Vec();
    periodAh_ = ar.getF64Vec();
    if (totalAh_.size() != n || periodAh_.size() != n)
        throw snapshot::SnapshotError(
            "DischargeHistoryTable: cabinet count differs from snapshot");
}

} // namespace insure::telemetry
