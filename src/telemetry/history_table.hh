/**
 * @file
 * Battery discharge-history table.
 *
 * The spatial manager's first screening step compares every cabinet's
 * aggregated discharge AhT[i] against the discharge threshold (paper
 * Fig. 9 / Eq-1). This table is the runtime record it consults; it also
 * retains per-control-period usage for balance diagnostics.
 */

#ifndef INSURE_TELEMETRY_HISTORY_TABLE_HH
#define INSURE_TELEMETRY_HISTORY_TABLE_HH

#include <vector>

#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::telemetry {

/** Per-cabinet cumulative discharge record. */
class DischargeHistoryTable
{
  public:
    /** @param cabinets number of tracked cabinets. */
    explicit DischargeHistoryTable(unsigned cabinets);

    /** Number of tracked cabinets. */
    unsigned size() const
    {
        return static_cast<unsigned>(totalAh_.size());
    }

    /**
     * Add @p ah ampere-hours of discharge for cabinet @p i. Recorded on
     * every discharging physics tick, so the success path is inline.
     */
    void
    record(unsigned i, AmpHours ah)
    {
        if (i >= totalAh_.size() || ah < 0.0)
            badRecord(i, ah);
        totalAh_[i] += ah;
        periodAh_[i] += ah;
    }

    /** Aggregated discharge of cabinet @p i (AhT[i]). */
    AmpHours total(unsigned i) const;

    /** Sum across cabinets. */
    AmpHours grandTotal() const;

    /** Largest minus smallest cabinet total (imbalance measure). */
    AmpHours imbalance() const;

    /**
     * Mark the start of a new control period; per-period counters reset
     * while cumulative totals persist.
     */
    void beginPeriod();

    /** Discharge of cabinet @p i during the current period. */
    AmpHours periodTotal(unsigned i) const;

    /** Serialize the per-cabinet throughput columns. */
    void save(snapshot::Archive &ar) const;

    /** Restore the throughput columns (size-checked). */
    void load(snapshot::Archive &ar);

  private:
    std::vector<AmpHours> totalAh_;
    std::vector<AmpHours> periodAh_;

    [[noreturn]] void badRecord(unsigned i, AmpHours ah) const;
};

} // namespace insure::telemetry

#endif // INSURE_TELEMETRY_HISTORY_TABLE_HH
