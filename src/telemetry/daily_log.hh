/**
 * @file
 * Day-long operation log (paper Table 6).
 *
 * Accumulates the statistics the paper extracts from its day-long logs:
 * load energy, effective (productive) energy, power-control actions,
 * server on/off cycles, VM control actions, and the battery voltage
 * extremes/σ. The experiment harness feeds it once per control period.
 */

#ifndef INSURE_TELEMETRY_DAILY_LOG_HH
#define INSURE_TELEMETRY_DAILY_LOG_HH

#include <cstdint>
#include <string>

#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::telemetry {

/** The Table 6 row produced by one day of operation. */
struct DailyLogSummary {
    std::string label;
    /** Total solar energy offered during the day, kWh. */
    double solarBudgetKwh = 0.0;
    /** Energy consumed by the server load, kWh. */
    double loadKwh = 0.0;
    /** Energy consumed while productive (excludes boot/checkpoint), kWh. */
    double effectiveKwh = 0.0;
    /** Power-control actions (duty/VM adjustments by the managers). */
    std::uint64_t powerCtrlTimes = 0;
    /** Server on/off power cycles. */
    std::uint64_t onOffCycles = 0;
    /** VM management operations. */
    std::uint64_t vmCtrlTimes = 0;
    /** Minimum battery string voltage observed, volts. */
    double minBatteryVoltage = 0.0;
    /** Mean battery string voltage at end of day, volts. */
    double endOfDayVoltage = 0.0;
    /** Standard deviation of sampled battery voltages. */
    double batteryVoltageSigma = 0.0;
    /** Data processed during the day, GB. */
    double processedGb = 0.0;
};

/** Incremental builder for a DailyLogSummary. */
class DailyLog
{
  public:
    explicit DailyLog(std::string label);

    /** Add solar energy offered during a step, watt-hours. */
    void addSolar(WattHours wh) { solarWh_ += wh; }

    /** Add load energy for a step, watt-hours. */
    void addLoad(WattHours wh) { loadWh_ += wh; }

    /** Add productive energy for a step, watt-hours. */
    void addEffective(WattHours wh) { effectiveWh_ += wh; }

    /** Count a power-control action. */
    void countPowerCtrl(std::uint64_t n = 1) { powerCtrl_ += n; }

    /** Fix the end-of-run counters and voltages. */
    void finalize(std::uint64_t on_off_cycles, std::uint64_t vm_ctrl,
                  double min_voltage, double end_voltage, double sigma,
                  double processed_gb);

    /** The completed summary. */
    const DailyLogSummary &summary() const { return summary_; }

    /** Serialize accumulators and the summary under construction. */
    void save(snapshot::Archive &ar) const;

    /** Restore accumulators and the in-progress summary. */
    void load(snapshot::Archive &ar);

  private:
    WattHours solarWh_ = 0.0;
    WattHours loadWh_ = 0.0;
    WattHours effectiveWh_ = 0.0;
    std::uint64_t powerCtrl_ = 0;
    DailyLogSummary summary_;
};

} // namespace insure::telemetry

#endif // INSURE_TELEMETRY_DAILY_LOG_HH
