#include "telemetry/coordination_link.hh"

#include "snapshot/archive.hh"

namespace insure::telemetry {

CoordinationLink::CoordinationLink(ModbusSlave &slave, std::uint8_t unit)
    : slave_(slave), unit_(unit)
{
}

CabinetReading
CoordinationLink::readCabinet(unsigned cabinet)
{
    using RL = RegisterLayout;
    ++requests_;
    if (last_.size() <= cabinet)
        last_.resize(cabinet + 1);

    // Timeout faults: the exchange never completes, no bytes to decode.
    if (dropRemaining_ > 0 ||
        (dropProbability_ > 0.0 && dropRng_.bernoulli(dropProbability_))) {
        if (dropRemaining_ > 0)
            --dropRemaining_;
        ++failures_;
        CabinetReading stale = last_[cabinet];
        stale.fresh = false;
        return stale;
    }

    auto frame = modbus::encodeReadRequest(
        unit_, RL::cabinetReg(cabinet, 0), RL::perCabinet);
    if (corruptRemaining_ > 0) {
        --corruptRemaining_;
        frame[corruptRng_.uniformInt(
            0, static_cast<int>(frame.size()) - 1)] ^= 0x5A;
    }

    auto resp_frame = slave_.service(frame);
    if (truncateRemaining_ > 0 && resp_frame.size() > 2) {
        // Partial frame: the tail (including the CRC) never arrives.
        --truncateRemaining_;
        resp_frame.resize(resp_frame.size() / 2);
    }
    const auto resp = modbus::decodeResponse(resp_frame);
    if (!resp || resp->isException() ||
        resp->values.size() != RL::perCabinet) {
        // Stale data: the caller keeps acting on the last good snapshot.
        ++failures_;
        CabinetReading stale = last_[cabinet];
        stale.fresh = false;
        return stale;
    }

    const auto &v = resp->values;
    CabinetReading r;
    r.voltage = v[RL::voltage] / regscale::volts;
    r.current = v[RL::current] / regscale::amps - regscale::ampOffset;
    r.soc = v[RL::soc] / regscale::soc;
    r.mode = v[RL::mode];
    r.chargeRelayClosed = v[RL::chargeRelay] != 0;
    r.dischargeRelayClosed = v[RL::dischargeRelay] != 0;
    r.throughputAh = v[RL::throughput] / regscale::ampHours;
    r.fresh = true;
    last_[cabinet] = r;
    return r;
}

std::vector<CabinetReading>
CoordinationLink::readAll(unsigned count)
{
    std::vector<CabinetReading> out;
    out.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        out.push_back(readCabinet(i));
    return out;
}

void
CoordinationLink::corruptNextRequests(unsigned n, Rng rng)
{
    corruptRemaining_ = n;
    corruptRng_ = rng;
}

void
CoordinationLink::setRandomDrop(double probability, Rng rng)
{
    dropProbability_ = probability;
    dropRng_ = rng;
}


void
CoordinationLink::save(snapshot::Archive &ar) const
{
    ar.section("coordination_link");
    ar.putSize(last_.size());
    for (const CabinetReading &r : last_) {
        ar.putF64(r.voltage);
        ar.putF64(r.current);
        ar.putF64(r.soc);
        ar.putU32(r.mode);
        ar.putBool(r.chargeRelayClosed);
        ar.putBool(r.dischargeRelayClosed);
        ar.putF64(r.throughputAh);
        ar.putBool(r.fresh);
    }
    ar.putU64(requests_);
    ar.putU64(failures_);
    ar.putU32(corruptRemaining_);
    corruptRng_.save(ar);
    ar.putU32(dropRemaining_);
    ar.putU32(truncateRemaining_);
    ar.putF64(dropProbability_);
    dropRng_.save(ar);
}

void
CoordinationLink::load(snapshot::Archive &ar)
{
    ar.section("coordination_link");
    last_.assign(ar.getSize(), CabinetReading{});
    for (CabinetReading &r : last_) {
        r.voltage = ar.getF64();
        r.current = ar.getF64();
        r.soc = ar.getF64();
        r.mode = static_cast<std::uint16_t>(ar.getU32());
        r.chargeRelayClosed = ar.getBool();
        r.dischargeRelayClosed = ar.getBool();
        r.throughputAh = ar.getF64();
        r.fresh = ar.getBool();
    }
    requests_ = ar.getU64();
    failures_ = ar.getU64();
    corruptRemaining_ = ar.getU32();
    corruptRng_.load(ar);
    dropRemaining_ = ar.getU32();
    truncateRemaining_ = ar.getU32();
    dropProbability_ = ar.getF64();
    dropRng_.load(ar);
}

} // namespace insure::telemetry
