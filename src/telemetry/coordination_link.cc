#include "telemetry/coordination_link.hh"

namespace insure::telemetry {

CoordinationLink::CoordinationLink(ModbusSlave &slave, std::uint8_t unit)
    : slave_(slave), unit_(unit)
{
}

CabinetReading
CoordinationLink::readCabinet(unsigned cabinet)
{
    using RL = RegisterLayout;
    ++requests_;
    if (last_.size() <= cabinet)
        last_.resize(cabinet + 1);

    // Timeout faults: the exchange never completes, no bytes to decode.
    if (dropRemaining_ > 0 ||
        (dropProbability_ > 0.0 && dropRng_.bernoulli(dropProbability_))) {
        if (dropRemaining_ > 0)
            --dropRemaining_;
        ++failures_;
        CabinetReading stale = last_[cabinet];
        stale.fresh = false;
        return stale;
    }

    auto frame = modbus::encodeReadRequest(
        unit_, RL::cabinetReg(cabinet, 0), RL::perCabinet);
    if (corruptRemaining_ > 0) {
        --corruptRemaining_;
        frame[corruptRng_.uniformInt(
            0, static_cast<int>(frame.size()) - 1)] ^= 0x5A;
    }

    auto resp_frame = slave_.service(frame);
    if (truncateRemaining_ > 0 && resp_frame.size() > 2) {
        // Partial frame: the tail (including the CRC) never arrives.
        --truncateRemaining_;
        resp_frame.resize(resp_frame.size() / 2);
    }
    const auto resp = modbus::decodeResponse(resp_frame);
    if (!resp || resp->isException() ||
        resp->values.size() != RL::perCabinet) {
        // Stale data: the caller keeps acting on the last good snapshot.
        ++failures_;
        CabinetReading stale = last_[cabinet];
        stale.fresh = false;
        return stale;
    }

    const auto &v = resp->values;
    CabinetReading r;
    r.voltage = v[RL::voltage] / regscale::volts;
    r.current = v[RL::current] / regscale::amps - regscale::ampOffset;
    r.soc = v[RL::soc] / regscale::soc;
    r.mode = v[RL::mode];
    r.chargeRelayClosed = v[RL::chargeRelay] != 0;
    r.dischargeRelayClosed = v[RL::dischargeRelay] != 0;
    r.throughputAh = v[RL::throughput] / regscale::ampHours;
    r.fresh = true;
    last_[cabinet] = r;
    return r;
}

std::vector<CabinetReading>
CoordinationLink::readAll(unsigned count)
{
    std::vector<CabinetReading> out;
    out.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        out.push_back(readCabinet(i));
    return out;
}

void
CoordinationLink::corruptNextRequests(unsigned n, Rng rng)
{
    corruptRemaining_ = n;
    corruptRng_ = rng;
}

void
CoordinationLink::setRandomDrop(double probability, Rng rng)
{
    dropProbability_ = probability;
    dropRng_ = rng;
}

} // namespace insure::telemetry
