#include "telemetry/transducer.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::telemetry {

Transducer::Transducer(double in_lo, double in_hi, unsigned adc_bits)
    : inLo_(in_lo), inHi_(in_hi)
{
    if (in_hi <= in_lo)
        fatal("Transducer: invalid range [%f, %f]", in_lo, in_hi);
    if (adc_bits == 0 || adc_bits > 16)
        fatal("Transducer: adc_bits must be in [1, 16]");
    levels_ = (1u << adc_bits) - 1;
}

double
Transducer::resolution() const
{
    return (inHi_ - inLo_) / levels_;
}

Transducer
Transducer::voltageChannel()
{
    return Transducer(0.0, 50.0, 12);
}

Transducer
Transducer::currentChannel()
{
    return Transducer(-40.0, 40.0, 12);
}

} // namespace insure::telemetry
