/**
 * @file
 * The coordination node's Modbus master (paper §4, tier 3).
 *
 * The power-and-load coordination node never touches the PLC's register
 * memory directly: it issues Modbus read requests over the network link
 * and decodes the responses. CoordinationLink is that master, bound to a
 * ModbusSlave; every cabinet snapshot the power managers consume travels
 * through a framed, CRC-checked request/response exchange, so a corrupted
 * or dropped frame degrades into stale data rather than wrong data.
 */

#ifndef INSURE_TELEMETRY_COORDINATION_LINK_HH
#define INSURE_TELEMETRY_COORDINATION_LINK_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/units.hh"
#include "telemetry/modbus.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::telemetry {

/** A cabinet snapshot as decoded from the PLC registers. */
struct CabinetReading {
    Volts voltage = 0.0;
    Amperes current = 0.0;
    double soc = 0.0;
    std::uint16_t mode = 0;
    bool chargeRelayClosed = false;
    bool dischargeRelayClosed = false;
    AmpHours throughputAh = 0.0;
    /** False when the exchange failed and the reading is stale. */
    bool fresh = false;
};

/** Modbus master used by the coordination node. */
class CoordinationLink
{
  public:
    /**
     * @param slave the PLC-side endpoint (must outlive the link)
     * @param unit Modbus unit id of the slave
     */
    CoordinationLink(ModbusSlave &slave, std::uint8_t unit = 1);

    /**
     * Read the register block of cabinet @p cabinet. On any framing or
     * CRC failure the previous reading is returned with fresh=false.
     */
    CabinetReading readCabinet(unsigned cabinet);

    /** Read all @p count cabinet blocks. */
    std::vector<CabinetReading> readAll(unsigned count);

    /**
     * Fault injection: corrupt one byte of the next @p n request frames
     * (models a noisy field network).
     */
    void corruptNextRequests(unsigned n, Rng rng);

    /**
     * Fault injection: the next @p n exchanges time out — no response at
     * all, the reading degrades to the stale snapshot (field cable
     * disconnect, RS-485 transceiver dropout).
     */
    void dropNextExchanges(unsigned n) { dropRemaining_ += n; }

    /**
     * Fault injection: truncate the next @p n response frames mid-body
     * (partial frame on the wire); the CRC check rejects them and the
     * reading degrades to the stale snapshot.
     */
    void truncateNextResponses(unsigned n) { truncateRemaining_ += n; }

    /**
     * Fault injection: sustained link degradation — every exchange is
     * independently dropped with probability @p probability, drawn from
     * @p rng (a dedicated tagged fault stream). Probability 0 restores a
     * healthy link.
     */
    void setRandomDrop(double probability, Rng rng);

    /** Exchanges attempted. */
    std::uint64_t requests() const { return requests_; }

    /** Exchanges that failed (no/garbled response). */
    std::uint64_t failures() const { return failures_; }

    /** Serialize cached readings, counters and fault/RNG state. */
    void save(snapshot::Archive &ar) const;

    /** Restore cached readings, counters and fault/RNG state. */
    void load(snapshot::Archive &ar);

  private:
    ModbusSlave &slave_;
    std::uint8_t unit_;
    std::vector<CabinetReading> last_;
    std::uint64_t requests_ = 0;
    std::uint64_t failures_ = 0;
    unsigned corruptRemaining_ = 0;
    Rng corruptRng_{0};
    unsigned dropRemaining_ = 0;
    unsigned truncateRemaining_ = 0;
    double dropProbability_ = 0.0;
    Rng dropRng_{0};
};

} // namespace insure::telemetry

#endif // INSURE_TELEMETRY_COORDINATION_LINK_HH
