/**
 * @file
 * PLC holding-register map.
 *
 * All analog readings processed by the PLC's analog-input module land in
 * 16-bit holding registers (paper §4); the coordination node reads them
 * over Modbus. The map fixes the register layout for the battery array
 * (per-cabinet voltage, current, state of charge, mode, relay states) plus
 * array-level entries, with fixed-point scale factors.
 */

#ifndef INSURE_TELEMETRY_REGISTER_MAP_HH
#define INSURE_TELEMETRY_REGISTER_MAP_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace insure::snapshot {
class Archive;
}

namespace insure::telemetry {

/** Fixed-point scale factors for the register encodings. */
namespace regscale {
/** Volts are stored as V x 100. */
inline constexpr double volts = 100.0;
/** Amperes are stored as (A + 100) x 100 (offset-binary for sign). */
inline constexpr double ampOffset = 100.0;
inline constexpr double amps = 100.0;
/** State of charge stored as fraction x 10000. */
inline constexpr double soc = 10000.0;
/** Ampere-hours stored as Ah x 10. */
inline constexpr double ampHours = 10.0;
} // namespace regscale

/** Register layout constants. */
struct RegisterLayout {
    /** Registers reserved per cabinet. */
    static constexpr std::uint16_t perCabinet = 8;
    /** Base address of cabinet blocks. */
    static constexpr std::uint16_t cabinetBase = 100;

    // Offsets within a cabinet block.
    static constexpr std::uint16_t voltage = 0;
    static constexpr std::uint16_t current = 1;
    static constexpr std::uint16_t soc = 2;
    static constexpr std::uint16_t mode = 3;
    static constexpr std::uint16_t chargeRelay = 4;
    static constexpr std::uint16_t dischargeRelay = 5;
    static constexpr std::uint16_t throughput = 6;

    // Array-level registers.
    static constexpr std::uint16_t arrayBase = 0;
    static constexpr std::uint16_t cabinetCount = 0;
    static constexpr std::uint16_t busVoltage = 1;
    static constexpr std::uint16_t solarPower = 2; // watts
    static constexpr std::uint16_t loadPower = 3;  // watts

    // Interactive SLO block (digital-twin live service state); all zero
    // when the plant runs no interactive workload.
    static constexpr std::uint16_t sloP99Ms = 4;      // milliseconds
    static constexpr std::uint16_t sloQueueDepth = 5; // requests, saturating
    static constexpr std::uint16_t sloStoreFill = 6;  // per-mille of capacity
    static constexpr std::uint16_t sloMissRate = 7;   // fraction x 10000

    /** Address of a cabinet-block register. */
    static constexpr std::uint16_t
    cabinetReg(unsigned cabinet, std::uint16_t offset)
    {
        return static_cast<std::uint16_t>(cabinetBase +
                                          cabinet * perCabinet + offset);
    }

    /**
     * Register-map size fitting @p cabinets cabinet blocks, at least
     * the historical 512 (so small plants keep their layout and
     * snapshot framing). Capped at the 16-bit Modbus address space —
     * the protocol's hard limit of ~8k cabinet blocks; container-scale
     * plants stay within it by using taller series strings.
     */
    static constexpr std::uint16_t
    mapSize(unsigned cabinets)
    {
        const std::uint32_t need =
            cabinetBase + static_cast<std::uint32_t>(cabinets) * perCabinet;
        if (need <= 512u)
            return 512;
        return static_cast<std::uint16_t>(
            need < 65535u ? need : 65535u);
    }
};

/** A bank of 16-bit holding registers. */
class RegisterMap
{
  public:
    /** @param size number of holding registers. */
    explicit RegisterMap(std::uint16_t size = 512);

    /** Number of registers. */
    std::uint16_t size() const
    {
        return static_cast<std::uint16_t>(regs_.size());
    }

    /**
     * Read one register (fatal on out-of-range address). The monitor
     * reads and writes registers on every telemetry scan, so the single
     * accessors are inline with only the failure path out of line.
     */
    std::uint16_t
    read(std::uint16_t addr) const
    {
        if (addr >= regs_.size())
            invalidAccess("read from", addr);
        return regs_[addr];
    }

    /** Write one register (fatal on out-of-range address). */
    void
    write(std::uint16_t addr, std::uint16_t value)
    {
        if (addr >= regs_.size())
            invalidAccess("write to", addr);
        regs_[addr] = value;
    }

    /** Read @p count consecutive registers starting at @p addr. */
    std::vector<std::uint16_t> readBlock(std::uint16_t addr,
                                         std::uint16_t count) const;

    /** Write a block of consecutive registers starting at @p addr. */
    void writeBlock(std::uint16_t addr,
                    const std::vector<std::uint16_t> &values);

    /** True when [addr, addr+count) is a valid register range. */
    bool validRange(std::uint16_t addr, std::uint16_t count) const;

    // Scaled helpers.
    /** Store a voltage. */
    void
    writeVolts(std::uint16_t addr, double v)
    {
        const double scaled = std::clamp(v, 0.0, 655.0) * regscale::volts;
        write(addr, static_cast<std::uint16_t>(std::lround(scaled)));
    }

    /** Load a voltage. */
    double readVolts(std::uint16_t addr) const
    {
        return read(addr) / regscale::volts;
    }

    /** Store a (possibly negative) current. */
    void
    writeAmps(std::uint16_t addr, double a)
    {
        const double shifted =
            std::clamp(a + regscale::ampOffset, 0.0, 655.0) *
            regscale::amps;
        write(addr, static_cast<std::uint16_t>(std::lround(shifted)));
    }

    /** Load a current. */
    double readAmps(std::uint16_t addr) const
    {
        return read(addr) / regscale::amps - regscale::ampOffset;
    }

    /** Store a state-of-charge fraction. */
    void
    writeSoc(std::uint16_t addr, double soc)
    {
        const double scaled = std::clamp(soc, 0.0, 1.0) * regscale::soc;
        write(addr, static_cast<std::uint16_t>(std::lround(scaled)));
    }

    /** Load a state-of-charge fraction. */
    double readSoc(std::uint16_t addr) const
    {
        return read(addr) / regscale::soc;
    }

    /** Serialize the whole register file. */
    void save(snapshot::Archive &ar) const;

    /** Restore the register file (size-checked). */
    void load(snapshot::Archive &ar);

  private:
    std::vector<std::uint16_t> regs_;

    [[noreturn]] void invalidAccess(const char *what,
                                    std::uint16_t addr) const;
};

} // namespace insure::telemetry

#endif // INSURE_TELEMETRY_REGISTER_MAP_HH
