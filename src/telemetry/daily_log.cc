#include "telemetry/daily_log.hh"

namespace insure::telemetry {

DailyLog::DailyLog(std::string label)
{
    summary_.label = std::move(label);
}

void
DailyLog::finalize(std::uint64_t on_off_cycles, std::uint64_t vm_ctrl,
                   double min_voltage, double end_voltage, double sigma,
                   double processed_gb)
{
    summary_.solarBudgetKwh = solarWh_ / 1000.0;
    summary_.loadKwh = loadWh_ / 1000.0;
    summary_.effectiveKwh = effectiveWh_ / 1000.0;
    summary_.powerCtrlTimes = powerCtrl_;
    summary_.onOffCycles = on_off_cycles;
    summary_.vmCtrlTimes = vm_ctrl;
    summary_.minBatteryVoltage = min_voltage;
    summary_.endOfDayVoltage = end_voltage;
    summary_.batteryVoltageSigma = sigma;
    summary_.processedGb = processed_gb;
}

} // namespace insure::telemetry
