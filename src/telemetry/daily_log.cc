#include "telemetry/daily_log.hh"

#include "snapshot/archive.hh"

namespace insure::telemetry {

DailyLog::DailyLog(std::string label)
{
    summary_.label = std::move(label);
}

void
DailyLog::finalize(std::uint64_t on_off_cycles, std::uint64_t vm_ctrl,
                   double min_voltage, double end_voltage, double sigma,
                   double processed_gb)
{
    summary_.solarBudgetKwh = solarWh_ / 1000.0;
    summary_.loadKwh = loadWh_ / 1000.0;
    summary_.effectiveKwh = effectiveWh_ / 1000.0;
    summary_.powerCtrlTimes = powerCtrl_;
    summary_.onOffCycles = on_off_cycles;
    summary_.vmCtrlTimes = vm_ctrl;
    summary_.minBatteryVoltage = min_voltage;
    summary_.endOfDayVoltage = end_voltage;
    summary_.batteryVoltageSigma = sigma;
    summary_.processedGb = processed_gb;
}


void
DailyLog::save(snapshot::Archive &ar) const
{
    ar.section("daily_log");
    ar.putF64(solarWh_);
    ar.putF64(loadWh_);
    ar.putF64(effectiveWh_);
    ar.putU64(powerCtrl_);
    ar.putStr(summary_.label);
    ar.putF64(summary_.solarBudgetKwh);
    ar.putF64(summary_.loadKwh);
    ar.putF64(summary_.effectiveKwh);
    ar.putU64(summary_.powerCtrlTimes);
    ar.putU64(summary_.onOffCycles);
    ar.putU64(summary_.vmCtrlTimes);
    ar.putF64(summary_.minBatteryVoltage);
    ar.putF64(summary_.endOfDayVoltage);
    ar.putF64(summary_.batteryVoltageSigma);
    ar.putF64(summary_.processedGb);
}

void
DailyLog::load(snapshot::Archive &ar)
{
    ar.section("daily_log");
    solarWh_ = ar.getF64();
    loadWh_ = ar.getF64();
    effectiveWh_ = ar.getF64();
    powerCtrl_ = ar.getU64();
    summary_.label = ar.getStr();
    summary_.solarBudgetKwh = ar.getF64();
    summary_.loadKwh = ar.getF64();
    summary_.effectiveKwh = ar.getF64();
    summary_.powerCtrlTimes = ar.getU64();
    summary_.onOffCycles = ar.getU64();
    summary_.vmCtrlTimes = ar.getU64();
    summary_.minBatteryVoltage = ar.getF64();
    summary_.endOfDayVoltage = ar.getF64();
    summary_.batteryVoltageSigma = ar.getF64();
    summary_.processedGb = ar.getF64();
}

} // namespace insure::telemetry
