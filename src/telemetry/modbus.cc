#include "telemetry/modbus.hh"

#include "snapshot/archive.hh"

namespace insure::telemetry {

std::uint16_t
modbusCrc16(const std::uint8_t *data, std::size_t len)
{
    std::uint16_t crc = 0xFFFF;
    for (std::size_t i = 0; i < len; ++i) {
        crc ^= data[i];
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 0x0001)
                crc = (crc >> 1) ^ 0xA001;
            else
                crc >>= 1;
        }
    }
    return crc;
}

namespace modbus {

void
appendCrc(std::vector<std::uint8_t> &frame)
{
    const std::uint16_t crc = modbusCrc16(frame.data(), frame.size());
    // CRC is transmitted low byte first.
    frame.push_back(static_cast<std::uint8_t>(crc & 0xFF));
    frame.push_back(static_cast<std::uint8_t>(crc >> 8));
}

bool
checkCrc(const std::uint8_t *frame, std::size_t len)
{
    if (len < 4)
        return false;
    const std::uint16_t expect = modbusCrc16(frame, len - 2);
    const std::uint16_t got = static_cast<std::uint16_t>(
        frame[len - 2] | (frame[len - 1] << 8));
    return expect == got;
}

namespace {

void
pushU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t
readU16(const std::vector<std::uint8_t> &in, std::size_t pos)
{
    return static_cast<std::uint16_t>((in[pos] << 8) | in[pos + 1]);
}

} // namespace

std::vector<std::uint8_t>
encodeReadRequest(std::uint8_t unit, std::uint16_t addr,
                  std::uint16_t count)
{
    std::vector<std::uint8_t> f{
        unit,
        static_cast<std::uint8_t>(ModbusFunction::ReadHoldingRegisters)};
    pushU16(f, addr);
    pushU16(f, count);
    appendCrc(f);
    return f;
}

std::vector<std::uint8_t>
encodeWriteSingleRequest(std::uint8_t unit, std::uint16_t addr,
                         std::uint16_t value)
{
    std::vector<std::uint8_t> f{
        unit, static_cast<std::uint8_t>(ModbusFunction::WriteSingleRegister)};
    pushU16(f, addr);
    pushU16(f, value);
    appendCrc(f);
    return f;
}

std::vector<std::uint8_t>
encodeWriteMultipleRequest(std::uint8_t unit, std::uint16_t addr,
                           const std::vector<std::uint16_t> &values)
{
    std::vector<std::uint8_t> f{
        unit,
        static_cast<std::uint8_t>(ModbusFunction::WriteMultipleRegisters)};
    pushU16(f, addr);
    pushU16(f, static_cast<std::uint16_t>(values.size()));
    f.push_back(static_cast<std::uint8_t>(values.size() * 2));
    for (auto v : values)
        pushU16(f, v);
    appendCrc(f);
    return f;
}

std::optional<ModbusRequest>
decodeRequest(const std::vector<std::uint8_t> &frame)
{
    if (!checkCrc(frame))
        return std::nullopt;
    if (frame.size() < 8)
        return std::nullopt;

    ModbusRequest req;
    req.unit = frame[0];
    const std::uint8_t fn = frame[1];
    switch (fn) {
      case 0x03:
        if (frame.size() != 8)
            return std::nullopt;
        req.function = ModbusFunction::ReadHoldingRegisters;
        req.address = readU16(frame, 2);
        req.count = readU16(frame, 4);
        return req;
      case 0x06:
        if (frame.size() != 8)
            return std::nullopt;
        req.function = ModbusFunction::WriteSingleRegister;
        req.address = readU16(frame, 2);
        req.values = {readU16(frame, 4)};
        req.count = 1;
        return req;
      case 0x10: {
        if (frame.size() < 9)
            return std::nullopt;
        req.function = ModbusFunction::WriteMultipleRegisters;
        req.address = readU16(frame, 2);
        req.count = readU16(frame, 4);
        const std::uint8_t bytes = frame[6];
        if (bytes != req.count * 2 ||
            frame.size() != static_cast<std::size_t>(9 + bytes))
            return std::nullopt;
        for (std::uint16_t i = 0; i < req.count; ++i)
            req.values.push_back(readU16(frame, 7 + 2 * i));
        return req;
      }
      default:
        // Unknown function: report it so the slave can raise an exception.
        req.function = static_cast<ModbusFunction>(fn);
        return req;
    }
}

std::optional<ModbusResponse>
decodeResponse(const std::vector<std::uint8_t> &frame)
{
    if (!checkCrc(frame))
        return std::nullopt;
    if (frame.size() < 5)
        return std::nullopt;

    ModbusResponse resp;
    resp.unit = frame[0];
    resp.function = frame[1];
    if (resp.function & 0x80) {
        if (frame.size() != 5)
            return std::nullopt;
        resp.exception = static_cast<ModbusException>(frame[2]);
        return resp;
    }
    switch (resp.function) {
      case 0x03: {
        const std::uint8_t bytes = frame[2];
        if (frame.size() != static_cast<std::size_t>(5 + bytes) ||
            bytes % 2 != 0)
            return std::nullopt;
        for (std::uint8_t i = 0; i < bytes / 2; ++i)
            resp.values.push_back(readU16(frame, 3 + 2 * i));
        return resp;
      }
      case 0x06:
      case 0x10:
        if (frame.size() != 8)
            return std::nullopt;
        resp.address = readU16(frame, 2);
        resp.count = readU16(frame, 4);
        return resp;
      default:
        return std::nullopt;
    }
}

} // namespace modbus

ModbusSlave::ModbusSlave(std::uint8_t unit, RegisterMap &map)
    : unit_(unit), map_(map)
{
}

std::vector<std::uint8_t>
ModbusSlave::service(const std::vector<std::uint8_t> &frame)
{
    namespace mb = modbus;

    const auto req = mb::decodeRequest(frame);
    if (!req || req->unit != unit_)
        return {}; // silence: bad CRC or not addressed to us

    ++served_;

    auto exception = [&](ModbusException code) {
        ++exceptions_;
        std::vector<std::uint8_t> f{
            unit_, static_cast<std::uint8_t>(
                       static_cast<std::uint8_t>(req->function) | 0x80),
            static_cast<std::uint8_t>(code)};
        mb::appendCrc(f);
        return f;
    };

    switch (req->function) {
      case ModbusFunction::ReadHoldingRegisters: {
        if (req->count == 0 || req->count > 125)
            return exception(ModbusException::IllegalDataValue);
        if (!map_.validRange(req->address, req->count))
            return exception(ModbusException::IllegalDataAddress);
        const auto values = map_.readBlock(req->address, req->count);
        std::vector<std::uint8_t> f{
            unit_, 0x03, static_cast<std::uint8_t>(values.size() * 2)};
        for (auto v : values) {
            f.push_back(static_cast<std::uint8_t>(v >> 8));
            f.push_back(static_cast<std::uint8_t>(v & 0xFF));
        }
        mb::appendCrc(f);
        return f;
      }
      case ModbusFunction::WriteSingleRegister: {
        if (!map_.validRange(req->address, 1))
            return exception(ModbusException::IllegalDataAddress);
        map_.write(req->address, req->values.front());
        // Echo the request as the response.
        return mb::encodeWriteSingleRequest(unit_, req->address,
                                            req->values.front());
      }
      case ModbusFunction::WriteMultipleRegisters: {
        if (req->count == 0 || req->count > 123)
            return exception(ModbusException::IllegalDataValue);
        if (!map_.validRange(req->address, req->count))
            return exception(ModbusException::IllegalDataAddress);
        map_.writeBlock(req->address, req->values);
        std::vector<std::uint8_t> f{unit_, 0x10};
        f.push_back(static_cast<std::uint8_t>(req->address >> 8));
        f.push_back(static_cast<std::uint8_t>(req->address & 0xFF));
        f.push_back(static_cast<std::uint8_t>(req->count >> 8));
        f.push_back(static_cast<std::uint8_t>(req->count & 0xFF));
        mb::appendCrc(f);
        return f;
      }
      default:
        return exception(ModbusException::IllegalFunction);
    }
}


void
ModbusSlave::save(snapshot::Archive &ar) const
{
    ar.section("modbus_slave");
    ar.putU64(served_);
    ar.putU64(exceptions_);
}

void
ModbusSlave::load(snapshot::Archive &ar)
{
    ar.section("modbus_slave");
    served_ = ar.getU64();
    exceptions_ = ar.getU64();
}
} // namespace insure::telemetry
