/**
 * @file
 * Modbus frame codec and a register-map-backed slave.
 *
 * The prototype's control panel talks to the coordination node over Modbus
 * TCP (paper §4). The codec implements the RTU framing with CRC-16 for
 * function codes 0x03 (read holding registers), 0x06 (write single
 * register) and 0x10 (write multiple registers), plus exception responses,
 * so the sensing path can be exercised and fault-injected end to end.
 */

#ifndef INSURE_TELEMETRY_MODBUS_HH
#define INSURE_TELEMETRY_MODBUS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "telemetry/register_map.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::telemetry {

/** Modbus function codes supported by the slave. */
enum class ModbusFunction : std::uint8_t {
    ReadHoldingRegisters = 0x03,
    WriteSingleRegister = 0x06,
    WriteMultipleRegisters = 0x10,
};

/** Modbus exception codes. */
enum class ModbusException : std::uint8_t {
    IllegalFunction = 0x01,
    IllegalDataAddress = 0x02,
    IllegalDataValue = 0x03,
};

/** A decoded request. */
struct ModbusRequest {
    std::uint8_t unit = 1;
    ModbusFunction function = ModbusFunction::ReadHoldingRegisters;
    std::uint16_t address = 0;
    std::uint16_t count = 0;                 // read / write-multiple
    std::vector<std::uint16_t> values;       // writes
};

/** A decoded response. */
struct ModbusResponse {
    std::uint8_t unit = 1;
    std::uint8_t function = 0;               // high bit set on exception
    std::vector<std::uint16_t> values;       // read responses
    std::uint16_t address = 0;               // write echoes
    std::uint16_t count = 0;
    std::optional<ModbusException> exception;

    /** True when the response is a Modbus exception. */
    bool isException() const { return exception.has_value(); }
};

/** Modbus RTU CRC-16 over a byte span. */
std::uint16_t modbusCrc16(const std::uint8_t *data, std::size_t len);

/** Frame encoding/decoding. */
namespace modbus {

/** Append the RTU CRC (transmitted low byte first) to a frame body. */
void appendCrc(std::vector<std::uint8_t> &frame);

/** True when the trailing two bytes are the CRC of the preceding body. */
bool checkCrc(const std::uint8_t *frame, std::size_t len);

/** Convenience overload. */
inline bool
checkCrc(const std::vector<std::uint8_t> &frame)
{
    return checkCrc(frame.data(), frame.size());
}

/** Encode a read-holding-registers request. */
std::vector<std::uint8_t> encodeReadRequest(std::uint8_t unit,
                                            std::uint16_t addr,
                                            std::uint16_t count);

/** Encode a write-single-register request. */
std::vector<std::uint8_t> encodeWriteSingleRequest(std::uint8_t unit,
                                                   std::uint16_t addr,
                                                   std::uint16_t value);

/** Encode a write-multiple-registers request. */
std::vector<std::uint8_t>
encodeWriteMultipleRequest(std::uint8_t unit, std::uint16_t addr,
                           const std::vector<std::uint16_t> &values);

/** Decode any supported request frame; nullopt on malformed/CRC error. */
std::optional<ModbusRequest>
decodeRequest(const std::vector<std::uint8_t> &frame);

/** Decode a response frame; nullopt on malformed/CRC error. */
std::optional<ModbusResponse>
decodeResponse(const std::vector<std::uint8_t> &frame);

} // namespace modbus

/**
 * A slave device servicing request frames against a RegisterMap (the role
 * of the Weintek control panel + PLC in the prototype).
 */
class ModbusSlave
{
  public:
    /**
     * @param unit this slave's unit id
     * @param map backing register bank (must outlive the slave)
     */
    ModbusSlave(std::uint8_t unit, RegisterMap &map);

    /**
     * Service a raw request frame.
     * @return the raw response frame; empty when the frame is malformed or
     *         addressed to another unit (no response on the wire).
     */
    std::vector<std::uint8_t>
    service(const std::vector<std::uint8_t> &frame);

    /** Requests served (statistics). */
    std::uint64_t requestsServed() const { return served_; }

    /** Exception responses produced. */
    std::uint64_t exceptions() const { return exceptions_; }

    /** Serialize the service counters. */
    void save(snapshot::Archive &ar) const;

    /** Restore the service counters. */
    void load(snapshot::Archive &ar);

  private:
    std::uint8_t unit_;
    RegisterMap &map_;
    std::uint64_t served_ = 0;
    std::uint64_t exceptions_ = 0;
};

} // namespace insure::telemetry

#endif // INSURE_TELEMETRY_MODBUS_HH
