/**
 * @file
 * Structure-of-arrays storage for server-node power/VM state.
 *
 * The cluster steps every node each physics tick and the managers sample
 * rack power several times per tick; at 10k nodes the per-object
 * dispatch (heap node objects, scattered parameter loads, a pow() per
 * power sample) dominates. The pool keeps the state machine and the
 * parameter mirrors in dense arrays and caches pow(frequency, alpha) —
 * a pure function of two slot scalars — so the hot loops stream.
 *
 * ServerNode remains the API as a thin view (pool pointer + slot); a
 * standalone-constructed node owns a private single-slot pool. All
 * arithmetic replicates the per-object expression trees exactly, so the
 * pooled and per-object paths are bit-identical.
 */

#ifndef INSURE_SERVER_NODE_POOL_HH
#define INSURE_SERVER_NODE_POOL_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "server/node_params.hh"
#include "sim/units.hh"

namespace insure::server {

/** Power state of a physical node. */
enum class NodeState {
    Off,
    Booting,
    On,
    ShuttingDown,
};

/** Printable name of a node state. */
const char *nodeStateName(NodeState s);

/** Outcome of advancing a node by one step. */
struct NodeStepResult {
    /** Energy consumed during the step, watt-hours. */
    WattHours energyWh = 0.0;
    /** Energy consumed while doing useful work, watt-hours. */
    WattHours productiveEnergyWh = 0.0;
    /** Useful compute delivered, in VM-hours at nominal frequency. */
    double usefulVmHours = 0.0;
};

/** Dense per-node state shared by all nodes of one owner. */
class NodePool
{
  public:
    NodePool() = default;
    NodePool(const NodePool &) = delete;
    NodePool &operator=(const NodePool &) = delete;

    /** Pre-size the arrays (cluster construction knows the count). */
    void reserve(std::size_t nodes);

    /** Append one node initialised Off from @p params; returns its slot. */
    std::uint32_t addNode(const NodeParams &params);

    std::size_t size() const { return state_.size(); }

    // ---- per-slot state machine --------------------------------------

    NodeState
    state(std::uint32_t i) const
    {
        return static_cast<NodeState>(state_[i]);
    }

    Seconds stateRemaining(std::uint32_t i) const { return stateRem_[i]; }
    Seconds mgmtRemaining(std::uint32_t i) const { return mgmtRem_[i]; }
    unsigned activeVms(std::uint32_t i) const { return activeVms_[i]; }
    double frequency(std::uint32_t i) const { return frequency_[i]; }
    double dutyCycle(std::uint32_t i) const { return dutyCycle_[i]; }
    double workloadUtil(std::uint32_t i) const { return workloadUtil_[i]; }
    std::uint64_t onOffCycles(std::uint32_t i) const { return onOff_[i]; }
    std::uint64_t vmControlOps(std::uint32_t i) const { return vmOps_[i]; }
    std::uint64_t
    emergencyShutdowns(std::uint32_t i) const
    {
        return emergencies_[i];
    }
    double lostVmHours(std::uint32_t i) const { return lostVmHours_[i]; }

    bool
    productive(std::uint32_t i) const
    {
        return state(i) == NodeState::On && mgmtRem_[i] <= 0.0 &&
               activeVms_[i] > 0;
    }

    /** Begin booting (no-op unless Off). */
    void
    powerOn(std::uint32_t i)
    {
        if (state(i) != NodeState::Off)
            return;
        state_[i] = static_cast<std::uint8_t>(NodeState::Booting);
        stateRem_[i] = bootTime_[i];
    }

    /** Begin a clean checkpointing shutdown (no-op unless On/Booting). */
    void
    powerOff(std::uint32_t i)
    {
        if (state(i) == NodeState::Off ||
            state(i) == NodeState::ShuttingDown)
            return;
        state_[i] = static_cast<std::uint8_t>(NodeState::ShuttingDown);
        stateRem_[i] = shutdownTime_[i];
    }

    /** Immediate power loss without checkpoint (see ServerNode). */
    void
    emergencyShutdown(std::uint32_t i)
    {
        if (state(i) == NodeState::Off)
            return;
        if (state(i) == NodeState::On && activeVms_[i] > 0) {
            lostVmHours_[i] +=
                activeVms_[i] * units::toHours(emergencyLossTime_[i]);
        }
        state_[i] = static_cast<std::uint8_t>(NodeState::Off);
        stateRem_[i] = 0.0;
        mgmtRem_[i] = 0.0;
        ++emergencies_[i];
        ++onOff_[i];
    }

    /** Assign VMs (caller clips to the slot count, see ServerNode). */
    void
    setActiveVms(std::uint32_t i, unsigned n)
    {
        if (n == activeVms_[i])
            return;
        activeVms_[i] = n;
        ++vmOps_[i];
        if (state(i) == NodeState::On)
            mgmtRem_[i] = vmMgmtTime_[i];
    }

    /** Store the (caller-clamped) frequency; refreshes the pow cache. */
    void
    setFrequency(std::uint32_t i, double f)
    {
        frequency_[i] = f;
        powCache_[i] = std::pow(f, dvfsAlpha_[i]);
    }

    void setDutyCycle(std::uint32_t i, double d) { dutyCycle_[i] = d; }
    void setWorkloadUtil(std::uint32_t i, double u) { workloadUtil_[i] = u; }

    /** Wedge the node (hung hypervisor). No-op unless On. */
    void
    injectHang(std::uint32_t i, Seconds duration)
    {
        if (state(i) == NodeState::On && duration > 0.0)
            mgmtRem_[i] += duration;
    }

    /**
     * Instantaneous power draw, watts. Identical expression tree to the
     * per-object ServerNode::power(); pow(frequency, alpha) comes from
     * the cache, which is a pure function of the two slot scalars.
     */
    Watts
    power(std::uint32_t i) const
    {
        switch (state(i)) {
          case NodeState::Off:
            return 0.0;
          case NodeState::Booting:
          case NodeState::ShuttingDown:
            // Boot and checkpoint phases run near idle draw.
            return idlePower_[i];
          case NodeState::On:
            break;
        }
        const double util =
            static_cast<double>(activeVms_[i]) / vmSlots_[i];
        const double dyn = (peakPower_[i] - idlePower_[i]) * util *
                           workloadUtil_[i] * powCache_[i] * dutyCycle_[i];
        return idlePower_[i] + dyn;
    }

    /** Advance slot @p i by @p dt seconds, accumulating into @p res. */
    void stepOne(std::uint32_t i, Seconds dt, NodeStepResult &res);

    /** Rack power: power(i) summed in slot order. */
    Watts powerSum() const;

    /** Advance every node in slot order, summing the step results. */
    NodeStepResult stepAll(Seconds dt);

    // ---- snapshot restore (raw stores; counters, remainders) ---------

    void
    restore(std::uint32_t i, NodeState st, Seconds stateRem,
            Seconds mgmtRem, unsigned vms, double freq, double duty,
            double util, std::uint64_t onOff, std::uint64_t vmOps,
            std::uint64_t emergencies, double lostVmHrs)
    {
        state_[i] = static_cast<std::uint8_t>(st);
        stateRem_[i] = stateRem;
        mgmtRem_[i] = mgmtRem;
        activeVms_[i] = vms;
        setFrequency(i, freq); // refreshes the pow cache
        dutyCycle_[i] = duty;
        workloadUtil_[i] = util;
        onOff_[i] = onOff;
        vmOps_[i] = vmOps;
        emergencies_[i] = emergencies;
        lostVmHours_[i] = lostVmHrs;
    }

  private:
    // State machine.
    std::vector<std::uint8_t> state_;
    std::vector<double> stateRem_;
    std::vector<double> mgmtRem_;
    std::vector<std::uint32_t> activeVms_;
    std::vector<double> frequency_;
    std::vector<double> dutyCycle_;
    std::vector<double> workloadUtil_;
    std::vector<double> powCache_; // pow(frequency, dvfsAlpha)
    std::vector<std::uint64_t> onOff_;
    std::vector<std::uint64_t> vmOps_;
    std::vector<std::uint64_t> emergencies_;
    std::vector<double> lostVmHours_;

    // Parameter mirrors used by the hot loops.
    std::vector<double> idlePower_;
    std::vector<double> peakPower_;
    std::vector<std::uint32_t> vmSlots_;
    std::vector<double> dvfsAlpha_;
    std::vector<double> bootTime_;
    std::vector<double> shutdownTime_;
    std::vector<double> vmMgmtTime_;
    std::vector<double> emergencyLossTime_;
};

} // namespace insure::server

#endif // INSURE_SERVER_NODE_POOL_HH
