#include "server/node_pool.hh"

#include <algorithm>

namespace insure::server {

void
NodePool::reserve(std::size_t nodes)
{
    state_.reserve(nodes);
    stateRem_.reserve(nodes);
    mgmtRem_.reserve(nodes);
    activeVms_.reserve(nodes);
    frequency_.reserve(nodes);
    dutyCycle_.reserve(nodes);
    workloadUtil_.reserve(nodes);
    powCache_.reserve(nodes);
    onOff_.reserve(nodes);
    vmOps_.reserve(nodes);
    emergencies_.reserve(nodes);
    lostVmHours_.reserve(nodes);
    idlePower_.reserve(nodes);
    peakPower_.reserve(nodes);
    vmSlots_.reserve(nodes);
    dvfsAlpha_.reserve(nodes);
    bootTime_.reserve(nodes);
    shutdownTime_.reserve(nodes);
    vmMgmtTime_.reserve(nodes);
    emergencyLossTime_.reserve(nodes);
}

std::uint32_t
NodePool::addNode(const NodeParams &params)
{
    const std::uint32_t i = static_cast<std::uint32_t>(size());
    state_.push_back(static_cast<std::uint8_t>(NodeState::Off));
    stateRem_.push_back(0.0);
    mgmtRem_.push_back(0.0);
    activeVms_.push_back(0);
    frequency_.push_back(1.0);
    dutyCycle_.push_back(1.0);
    workloadUtil_.push_back(1.0);
    powCache_.push_back(std::pow(1.0, params.dvfsAlpha));
    onOff_.push_back(0);
    vmOps_.push_back(0);
    emergencies_.push_back(0);
    lostVmHours_.push_back(0.0);
    idlePower_.push_back(params.idlePower);
    peakPower_.push_back(params.peakPower);
    vmSlots_.push_back(params.vmSlots);
    dvfsAlpha_.push_back(params.dvfsAlpha);
    bootTime_.push_back(params.bootTime);
    shutdownTime_.push_back(params.shutdownTime);
    vmMgmtTime_.push_back(params.vmMgmtTime);
    emergencyLossTime_.push_back(params.emergencyLossTime);
    return i;
}

void
NodePool::stepOne(std::uint32_t i, Seconds dt, NodeStepResult &res)
{
    if (dt <= 0.0)
        return;

    Seconds remaining = dt;
    while (remaining > 1e-9) {
        Seconds slice = remaining;
        switch (state(i)) {
          case NodeState::Off:
            // No power, no work; consume the rest of the step.
            remaining = 0.0;
            continue;
          case NodeState::Booting:
            slice = std::min(slice, stateRem_[i]);
            res.energyWh += units::energyWh(idlePower_[i], slice);
            stateRem_[i] -= slice;
            if (stateRem_[i] <= 1e-9)
                state_[i] = static_cast<std::uint8_t>(NodeState::On);
            break;
          case NodeState::ShuttingDown:
            slice = std::min(slice, stateRem_[i]);
            res.energyWh += units::energyWh(idlePower_[i], slice);
            stateRem_[i] -= slice;
            if (stateRem_[i] <= 1e-9) {
                state_[i] = static_cast<std::uint8_t>(NodeState::Off);
                ++onOff_[i];
            }
            break;
          case NodeState::On: {
            if (mgmtRem_[i] > 0.0) {
                slice = std::min(slice, mgmtRem_[i]);
                res.energyWh += units::energyWh(power(i), slice);
                mgmtRem_[i] -= slice;
            } else {
                const WattHours e = units::energyWh(power(i), slice);
                res.energyWh += e;
                if (activeVms_[i] > 0) {
                    res.productiveEnergyWh += e;
                    res.usefulVmHours += activeVms_[i] * frequency_[i] *
                                         dutyCycle_[i] *
                                         units::toHours(slice);
                }
            }
            break;
          }
        }
        remaining -= slice;
    }
}

Watts
NodePool::powerSum() const
{
    Watts p = 0.0;
    for (std::uint32_t i = 0; i < size(); ++i)
        p += power(i);
    return p;
}

NodeStepResult
NodePool::stepAll(Seconds dt)
{
    // Each node steps into a fresh record which is then added field by
    // field — the exact association Cluster::step used per object (a
    // node's sub-step slices sum locally before joining the rack total).
    NodeStepResult res;
    for (std::uint32_t i = 0; i < size(); ++i) {
        NodeStepResult r;
        stepOne(i, dt, r);
        res.energyWh += r.energyWh;
        res.productiveEnergyWh += r.productiveEnergyWh;
        res.usefulVmHours += r.usefulVmHours;
    }
    return res;
}

} // namespace insure::server
