#include "server/node_params.hh"

namespace insure::server {

NodeParams
xeonNode()
{
    NodeParams p;
    p.type = "xeon";
    p.idlePower = 280.0;
    p.peakPower = 450.0;
    p.vmSlots = 2;
    return p;
}

NodeParams
lowPowerNode()
{
    NodeParams p;
    p.type = "lowpower";
    p.idlePower = 18.0;
    p.peakPower = 46.0;
    p.vmSlots = 2;
    // SSD-backed small node: faster suspend/resume.
    p.bootTime = 180.0;
    p.shutdownTime = 180.0;
    p.vmMgmtTime = 120.0;
    return p;
}

} // namespace insure::server
