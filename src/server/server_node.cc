#include "server/server_node.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::server {

const char *
nodeStateName(NodeState s)
{
    switch (s) {
      case NodeState::Off: return "off";
      case NodeState::Booting: return "booting";
      case NodeState::On: return "on";
      case NodeState::ShuttingDown: return "shutting-down";
    }
    return "?";
}

ServerNode::ServerNode(std::string name, NodeParams params)
    : name_(std::move(name)), params_(std::move(params)),
      ownPool_(std::make_unique<NodePool>()), pool_(ownPool_.get()),
      slot_(pool_->addNode(params_))
{
}

ServerNode::ServerNode(std::string name, NodeParams params, NodePool &pool)
    : name_(std::move(name)), params_(std::move(params)), pool_(&pool),
      slot_(pool.addNode(params_))
{
}


void
ServerNode::save(snapshot::Archive &ar) const
{
    ar.section("server_node");
    ar.putEnum(pool_->state(slot_));
    ar.putF64(pool_->stateRemaining(slot_));
    ar.putF64(pool_->mgmtRemaining(slot_));
    ar.putU32(pool_->activeVms(slot_));
    ar.putF64(pool_->frequency(slot_));
    ar.putF64(pool_->dutyCycle(slot_));
    ar.putF64(pool_->workloadUtil(slot_));
    ar.putU64(pool_->onOffCycles(slot_));
    ar.putU64(pool_->vmControlOps(slot_));
    ar.putU64(pool_->emergencyShutdowns(slot_));
    ar.putF64(pool_->lostVmHours(slot_));
}

void
ServerNode::load(snapshot::Archive &ar)
{
    ar.section("server_node");
    const NodeState st = ar.getEnum<NodeState>(
        static_cast<std::uint32_t>(NodeState::ShuttingDown));
    const Seconds stateRem = ar.getF64();
    const Seconds mgmtRem = ar.getF64();
    const unsigned vms = ar.getU32();
    const double freq = ar.getF64();
    const double duty = ar.getF64();
    const double util = ar.getF64();
    const std::uint64_t onOff = ar.getU64();
    const std::uint64_t vmOps = ar.getU64();
    const std::uint64_t emergencies = ar.getU64();
    const double lostVmHrs = ar.getF64();
    pool_->restore(slot_, st, stateRem, mgmtRem, vms, freq, duty, util,
                   onOff, vmOps, emergencies, lostVmHrs);
}

} // namespace insure::server
