#include "server/server_node.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::server {

const char *
nodeStateName(NodeState s)
{
    switch (s) {
      case NodeState::Off: return "off";
      case NodeState::Booting: return "booting";
      case NodeState::On: return "on";
      case NodeState::ShuttingDown: return "shutting-down";
    }
    return "?";
}

ServerNode::ServerNode(std::string name, NodeParams params)
    : name_(std::move(name)), params_(std::move(params))
{
}

void
ServerNode::powerOn()
{
    if (state_ != NodeState::Off)
        return;
    state_ = NodeState::Booting;
    stateRemaining_ = params_.bootTime;
}

void
ServerNode::powerOff()
{
    if (state_ == NodeState::Off || state_ == NodeState::ShuttingDown)
        return;
    state_ = NodeState::ShuttingDown;
    stateRemaining_ = params_.shutdownTime;
}

void
ServerNode::emergencyShutdown()
{
    if (state_ == NodeState::Off)
        return;
    if (state_ == NodeState::On && activeVms_ > 0) {
        lostVmHours_ +=
            activeVms_ * units::toHours(params_.emergencyLossTime);
    }
    state_ = NodeState::Off;
    stateRemaining_ = 0.0;
    mgmtRemaining_ = 0.0;
    ++emergencyShutdowns_;
    ++onOffCycles_;
}

void
ServerNode::setActiveVms(unsigned n)
{
    n = std::min(n, params_.vmSlots);
    if (n == activeVms_)
        return;
    activeVms_ = n;
    ++vmControlOps_;
    if (state_ == NodeState::On)
        mgmtRemaining_ = params_.vmMgmtTime;
}

void
ServerNode::setFrequency(double f)
{
    frequency_ = std::clamp(f, params_.minFrequency, 1.0);
}

void
ServerNode::setDutyCycle(double d)
{
    dutyCycle_ = std::clamp(d, 0.0, 1.0);
}

void
ServerNode::setWorkloadUtil(double u)
{
    workloadUtil_ = std::clamp(u, 0.0, 1.0);
}

NodeStepResult
ServerNode::step(Seconds dt)
{
    NodeStepResult res;
    if (dt <= 0.0)
        return res;

    Seconds remaining = dt;
    while (remaining > 1e-9) {
        Seconds slice = remaining;
        switch (state_) {
          case NodeState::Off:
            // No power, no work; consume the rest of the step.
            remaining = 0.0;
            continue;
          case NodeState::Booting:
            slice = std::min(slice, stateRemaining_);
            res.energyWh += units::energyWh(params_.idlePower, slice);
            stateRemaining_ -= slice;
            if (stateRemaining_ <= 1e-9)
                state_ = NodeState::On;
            break;
          case NodeState::ShuttingDown:
            slice = std::min(slice, stateRemaining_);
            res.energyWh += units::energyWh(params_.idlePower, slice);
            stateRemaining_ -= slice;
            if (stateRemaining_ <= 1e-9) {
                state_ = NodeState::Off;
                ++onOffCycles_;
            }
            break;
          case NodeState::On: {
            if (mgmtRemaining_ > 0.0) {
                slice = std::min(slice, mgmtRemaining_);
                res.energyWh += units::energyWh(power(), slice);
                mgmtRemaining_ -= slice;
            } else {
                const WattHours e = units::energyWh(power(), slice);
                res.energyWh += e;
                if (activeVms_ > 0) {
                    res.productiveEnergyWh += e;
                    res.usefulVmHours += activeVms_ * frequency_ *
                                         dutyCycle_ *
                                         units::toHours(slice);
                }
            }
            break;
          }
        }
        remaining -= slice;
    }
    return res;
}


void
ServerNode::save(snapshot::Archive &ar) const
{
    ar.section("server_node");
    ar.putEnum(state_);
    ar.putF64(stateRemaining_);
    ar.putF64(mgmtRemaining_);
    ar.putU32(activeVms_);
    ar.putF64(frequency_);
    ar.putF64(dutyCycle_);
    ar.putF64(workloadUtil_);
    ar.putU64(onOffCycles_);
    ar.putU64(vmControlOps_);
    ar.putU64(emergencyShutdowns_);
    ar.putF64(lostVmHours_);
}

void
ServerNode::load(snapshot::Archive &ar)
{
    ar.section("server_node");
    state_ = ar.getEnum<NodeState>(
        static_cast<std::uint32_t>(NodeState::ShuttingDown));
    stateRemaining_ = ar.getF64();
    mgmtRemaining_ = ar.getF64();
    activeVms_ = ar.getU32();
    frequency_ = ar.getF64();
    dutyCycle_ = ar.getF64();
    workloadUtil_ = ar.getF64();
    onOffCycles_ = ar.getU64();
    vmControlOps_ = ar.getU64();
    emergencyShutdowns_ = ar.getU64();
    lostVmHours_ = ar.getF64();
}

} // namespace insure::server
