/**
 * @file
 * The in-situ server cluster: a rack of physical nodes with VM placement,
 * cluster-wide power capping and power-state orchestration.
 *
 * VM placement is fill-first: the controller requests a total VM count and
 * the cluster powers nodes on/off to host exactly that many (two slots per
 * prototype node). Power capping applies a uniform duty cycle across the
 * powered nodes (paper §3.4: the OS derives a DVFS schedule from the duty
 * cycle it receives).
 *
 * Node state lives in one NodePool shared across the rack, so the
 * per-tick hot loops (step every node, sum rack power) run over dense
 * arrays; the ServerNode views remain the per-node API.
 */

#ifndef INSURE_SERVER_CLUSTER_HH
#define INSURE_SERVER_CLUSTER_HH

#include <memory>
#include <string>
#include <vector>

#include "server/server_node.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::server {

/** Aggregated result of advancing the whole cluster. */
struct ClusterStepResult {
    /** Energy consumed across all nodes, watt-hours. */
    WattHours energyWh = 0.0;
    /** Energy consumed while doing useful work, watt-hours. */
    WattHours productiveEnergyWh = 0.0;
    /** Useful compute delivered, VM-hours at nominal frequency. */
    double usefulVmHours = 0.0;
};

/** A rack of identical server nodes. */
class Cluster
{
  public:
    /**
     * @param node_count physical machines in the rack
     * @param params node model (applies to every machine)
     */
    Cluster(unsigned node_count, NodeParams params);

    unsigned nodeCount() const
    {
        return static_cast<unsigned>(nodes_.size());
    }

    ServerNode &node(unsigned i) { return *nodes_[i]; }
    const ServerNode &node(unsigned i) const { return *nodes_[i]; }

    /** Total VM slots across the rack. */
    unsigned totalVmSlots() const;

    /** VMs currently assigned across productive and booting nodes. */
    unsigned activeVms() const;

    /** Currently requested VM count. */
    unsigned targetVms() const { return targetVms_; }

    /**
     * Request @p n total VMs. Powers nodes on/off as needed and places
     * VMs fill-first. Nodes already booting count toward capacity.
     */
    void setTargetVms(unsigned n);

    /** Apply a duty cycle to every powered node (power capping). */
    void setDutyCycle(double d);

    /** Apply a DVFS frequency fraction to every powered node. */
    void setFrequency(double f);

    /** Apply a workload power-utilisation factor to every node. */
    void setWorkloadUtil(double u);

    /** Instantaneous rack power, watts. */
    Watts power() const;

    /**
     * Rack power if it were serving @p vms VMs at duty cycle @p duty
     * (planning helper for the temporal manager).
     */
    Watts plannedPower(unsigned vms, double duty) const;

    /** Advance all nodes. */
    ClusterStepResult step(Seconds dt);

    /** Emergency power loss on every node (battery bus collapse). */
    void emergencyShutdownAll();

    /**
     * Fault injection: crash node @p i — uncheckpointed power loss on
     * that node only (kernel panic, PSU failure). Recent work is lost
     * (ServerNode::lostVmHours); the manager's next control decision
     * re-places VMs and reboots the node if it is still wanted.
     */
    void crashNode(unsigned i);

    /** Fault injection: hang node @p i for @p duration seconds. */
    void hangNode(unsigned i, Seconds duration);

    /** True when at least one node is productive. */
    bool anyProductive() const;

    /** Sum of per-node on/off cycles. */
    std::uint64_t onOffCycles() const;

    /** Sum of per-node VM control operations. */
    std::uint64_t vmControlOps() const;

    /** Sum of per-node emergency shutdowns. */
    std::uint64_t emergencyShutdowns() const;

    /** Total useful compute lost to emergencies, VM-hours. */
    double lostVmHours() const;

    /** Serialize every node and the VM target. */
    void save(snapshot::Archive &ar) const;

    /** Restore every node and the VM target. */
    void load(snapshot::Archive &ar);

  private:
    // The pool is heap-owned so node views keep valid pointers when the
    // cluster is moved; declared before the views so it outlives them.
    std::unique_ptr<NodePool> pool_;
    std::vector<std::unique_ptr<ServerNode>> nodes_;
    unsigned targetVms_ = 0;
};

} // namespace insure::server

#endif // INSURE_SERVER_CLUSTER_HH
