/**
 * @file
 * One physical server: power state machine, VM hosting, DVFS duty-cycle
 * power capping, and checkpoint/restore behaviour.
 *
 * Power states follow Off -> Booting -> On -> ShuttingDown -> Off. A clean
 * shutdown checkpoints VM state (work is preserved); an emergency power
 * loss skips the checkpoint and loses recent work. While booting, shutting
 * down or performing VM management the node draws power but produces no
 * useful compute — this overhead is what makes aggressive VM scale-up
 * counter-productive under tight energy budgets (paper Table 2).
 *
 * The state machine lives in a NodePool slot (see node_pool.hh) so the
 * cluster can step all nodes as dense-array loops; this class is the
 * per-node API view. A standalone-constructed node owns a private
 * single-slot pool, so both construction styles behave identically.
 */

#ifndef INSURE_SERVER_SERVER_NODE_HH
#define INSURE_SERVER_SERVER_NODE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "server/node_params.hh"
#include "server/node_pool.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::server {

/** A single physical machine. */
class ServerNode
{
  public:
    ServerNode(std::string name, NodeParams params);

    /** Pooled variant: the state machine lives in a @p pool slot. */
    ServerNode(std::string name, NodeParams params, NodePool &pool);

    const std::string &name() const { return name_; }
    const NodeParams &params() const { return params_; }

    NodeState state() const { return pool_->state(slot_); }

    /** True when the node can host work right now (On, not busy). */
    bool productive() const { return pool_->productive(slot_); }

    /** VMs currently assigned. */
    unsigned activeVms() const { return pool_->activeVms(slot_); }

    /** Begin booting (no-op unless Off). */
    void powerOn() { pool_->powerOn(slot_); }

    /** Begin a clean checkpointing shutdown (no-op unless On/Booting). */
    void powerOff() { pool_->powerOff(slot_); }

    /**
     * Immediate power loss without checkpoint: drops to Off, loses
     * emergencyLossTime seconds' worth of recent work (reported by the
     * next step as negative useful compute is avoided by clamping — the
     * loss is tracked in lostVmHours()).
     */
    void emergencyShutdown() { pool_->emergencyShutdown(slot_); }

    /**
     * Assign @p n VMs (clipped to the slot count). Changing the count on a
     * running node triggers a VM-management busy period.
     */
    void
    setActiveVms(unsigned n)
    {
        pool_->setActiveVms(slot_, std::min(n, params_.vmSlots));
    }

    /** Set the DVFS frequency fraction (clamped to [minFrequency, 1]). */
    void
    setFrequency(double f)
    {
        pool_->setFrequency(slot_,
                            std::clamp(f, params_.minFrequency, 1.0));
    }

    /** Set the duty cycle for power capping (clamped to [0, 1]). */
    void
    setDutyCycle(double d)
    {
        pool_->setDutyCycle(slot_, std::clamp(d, 0.0, 1.0));
    }

    /**
     * Set the workload's power utilisation: the fraction of the dynamic
     * power range a fully-occupied node draws for this workload (e.g.
     * seismic analysis on the Xeon rack runs at ~0.41 of the idle-to-peak
     * range, paper Table 2).
     */
    void
    setWorkloadUtil(double u)
    {
        pool_->setWorkloadUtil(slot_, std::clamp(u, 0.0, 1.0));
    }

    double frequency() const { return pool_->frequency(slot_); }
    double dutyCycle() const { return pool_->dutyCycle(slot_); }
    double workloadUtil() const { return pool_->workloadUtil(slot_); }

    /**
     * Instantaneous power draw, watts. Sampled several times per physics
     * tick (step, telemetry, manager), so the whole computation is inline
     * in the pool.
     */
    Watts power() const { return pool_->power(slot_); }

    /** Advance the node state by @p dt seconds. */
    NodeStepResult
    step(Seconds dt)
    {
        NodeStepResult res;
        pool_->stepOne(slot_, dt, res);
        return res;
    }

    /**
     * Fault injection: wedge the node for @p duration seconds — it keeps
     * drawing power but produces no useful work (a hung hypervisor looks
     * exactly like an over-long management busy period). No-op unless On.
     */
    void injectHang(Seconds duration) { pool_->injectHang(slot_, duration); }

    /** Completed On->Off power cycles. */
    std::uint64_t onOffCycles() const { return pool_->onOffCycles(slot_); }

    /** VM management operations performed. */
    std::uint64_t vmControlOps() const { return pool_->vmControlOps(slot_); }

    /** Emergency (uncheckpointed) shutdowns. */
    std::uint64_t
    emergencyShutdowns() const
    {
        return pool_->emergencyShutdowns(slot_);
    }

    /** Total useful compute lost to emergencies, VM-hours. */
    double lostVmHours() const { return pool_->lostVmHours(slot_); }

    /** Serialize the power/VM state machine and its counters. */
    void save(snapshot::Archive &ar) const;

    /** Restore the state machine and counters. */
    void load(snapshot::Archive &ar);

  private:
    std::string name_;
    NodeParams params_;
    std::unique_ptr<NodePool> ownPool_; // standalone construction only
    NodePool *pool_;
    std::uint32_t slot_;
};

} // namespace insure::server

#endif // INSURE_SERVER_SERVER_NODE_HH
