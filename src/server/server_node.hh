/**
 * @file
 * One physical server: power state machine, VM hosting, DVFS duty-cycle
 * power capping, and checkpoint/restore behaviour.
 *
 * Power states follow Off -> Booting -> On -> ShuttingDown -> Off. A clean
 * shutdown checkpoints VM state (work is preserved); an emergency power
 * loss skips the checkpoint and loses recent work. While booting, shutting
 * down or performing VM management the node draws power but produces no
 * useful compute — this overhead is what makes aggressive VM scale-up
 * counter-productive under tight energy budgets (paper Table 2).
 */

#ifndef INSURE_SERVER_SERVER_NODE_HH
#define INSURE_SERVER_SERVER_NODE_HH

#include <cmath>
#include <cstdint>
#include <string>

#include "server/node_params.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::server {

/** Power state of a physical node. */
enum class NodeState {
    Off,
    Booting,
    On,
    ShuttingDown,
};

/** Printable name of a node state. */
const char *nodeStateName(NodeState s);

/** Outcome of advancing a node by one step. */
struct NodeStepResult {
    /** Energy consumed during the step, watt-hours. */
    WattHours energyWh = 0.0;
    /** Energy consumed while doing useful work, watt-hours. */
    WattHours productiveEnergyWh = 0.0;
    /** Useful compute delivered, in VM-hours at nominal frequency. */
    double usefulVmHours = 0.0;
};

/** A single physical machine. */
class ServerNode
{
  public:
    ServerNode(std::string name, NodeParams params);

    const std::string &name() const { return name_; }
    const NodeParams &params() const { return params_; }

    NodeState state() const { return state_; }

    /** True when the node can host work right now (On, not busy). */
    bool
    productive() const
    {
        return state_ == NodeState::On && mgmtRemaining_ <= 0.0 &&
               activeVms_ > 0;
    }

    /** VMs currently assigned. */
    unsigned activeVms() const { return activeVms_; }

    /** Begin booting (no-op unless Off). */
    void powerOn();

    /** Begin a clean checkpointing shutdown (no-op unless On/Booting). */
    void powerOff();

    /**
     * Immediate power loss without checkpoint: drops to Off, loses
     * emergencyLossTime seconds' worth of recent work (reported by the
     * next step as negative useful compute is avoided by clamping — the
     * loss is tracked in lostVmHours()).
     */
    void emergencyShutdown();

    /**
     * Assign @p n VMs (clipped to the slot count). Changing the count on a
     * running node triggers a VM-management busy period.
     */
    void setActiveVms(unsigned n);

    /** Set the DVFS frequency fraction (clamped to [minFrequency, 1]). */
    void setFrequency(double f);

    /** Set the duty cycle for power capping (clamped to [0, 1]). */
    void setDutyCycle(double d);

    /**
     * Set the workload's power utilisation: the fraction of the dynamic
     * power range a fully-occupied node draws for this workload (e.g.
     * seismic analysis on the Xeon rack runs at ~0.41 of the idle-to-peak
     * range, paper Table 2).
     */
    void setWorkloadUtil(double u);

    double frequency() const { return frequency_; }
    double dutyCycle() const { return dutyCycle_; }
    double workloadUtil() const { return workloadUtil_; }

    /**
     * Instantaneous power draw, watts. Sampled several times per physics
     * tick (step, telemetry, manager), so the whole computation is inline.
     */
    Watts
    power() const
    {
        switch (state_) {
          case NodeState::Off:
            return 0.0;
          case NodeState::Booting:
          case NodeState::ShuttingDown:
            // Boot and checkpoint phases run near idle draw.
            return params_.idlePower;
          case NodeState::On:
            break;
        }
        const double util =
            static_cast<double>(activeVms_) / params_.vmSlots;
        const double dyn =
            (params_.peakPower - params_.idlePower) * util * workloadUtil_ *
            std::pow(frequency_, params_.dvfsAlpha) * dutyCycle_;
        return params_.idlePower + dyn;
    }

    /** Advance the node state by @p dt seconds. */
    NodeStepResult step(Seconds dt);

    /**
     * Fault injection: wedge the node for @p duration seconds — it keeps
     * drawing power but produces no useful work (a hung hypervisor looks
     * exactly like an over-long management busy period). No-op unless On.
     */
    void
    injectHang(Seconds duration)
    {
        if (state_ == NodeState::On && duration > 0.0)
            mgmtRemaining_ += duration;
    }

    /** Completed On->Off power cycles. */
    std::uint64_t onOffCycles() const { return onOffCycles_; }

    /** VM management operations performed. */
    std::uint64_t vmControlOps() const { return vmControlOps_; }

    /** Emergency (uncheckpointed) shutdowns. */
    std::uint64_t emergencyShutdowns() const { return emergencyShutdowns_; }

    /** Total useful compute lost to emergencies, VM-hours. */
    double lostVmHours() const { return lostVmHours_; }

    /** Serialize the power/VM state machine and its counters. */
    void save(snapshot::Archive &ar) const;

    /** Restore the state machine and counters. */
    void load(snapshot::Archive &ar);

  private:
    std::string name_;
    NodeParams params_;
    NodeState state_ = NodeState::Off;
    Seconds stateRemaining_ = 0.0;
    Seconds mgmtRemaining_ = 0.0;
    unsigned activeVms_ = 0;
    double frequency_ = 1.0;
    double dutyCycle_ = 1.0;
    double workloadUtil_ = 1.0;
    std::uint64_t onOffCycles_ = 0;
    std::uint64_t vmControlOps_ = 0;
    std::uint64_t emergencyShutdowns_ = 0;
    double lostVmHours_ = 0.0;
};

} // namespace insure::server

#endif // INSURE_SERVER_SERVER_NODE_HH
