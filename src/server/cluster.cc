#include "server/cluster.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::server {

Cluster::Cluster(unsigned node_count, NodeParams params)
    : pool_(std::make_unique<NodePool>())
{
    if (node_count == 0)
        fatal("Cluster: need at least one node");
    pool_->reserve(node_count);
    nodes_.reserve(node_count);
    for (unsigned i = 0; i < node_count; ++i) {
        nodes_.push_back(std::make_unique<ServerNode>(
            "node" + std::to_string(i), params, *pool_));
    }
}

unsigned
Cluster::totalVmSlots() const
{
    unsigned slots = 0;
    for (const auto &n : nodes_)
        slots += n->params().vmSlots;
    return slots;
}

unsigned
Cluster::activeVms() const
{
    unsigned vms = 0;
    for (const auto &n : nodes_)
        vms += n->activeVms();
    return vms;
}

void
Cluster::setTargetVms(unsigned n)
{
    n = std::min(n, totalVmSlots());
    targetVms_ = n;

    // Fill-first placement: the lowest-indexed nodes host the VMs; any
    // node left without VMs is powered down (cleanly, with checkpoint).
    unsigned remaining = n;
    for (auto &node : nodes_) {
        const unsigned take =
            std::min(remaining, node->params().vmSlots);
        remaining -= take;
        if (take > 0) {
            if (node->state() == NodeState::Off ||
                node->state() == NodeState::ShuttingDown) {
                node->powerOn();
            }
            node->setActiveVms(take);
        } else {
            node->setActiveVms(0);
            if (node->state() == NodeState::On ||
                node->state() == NodeState::Booting) {
                node->powerOff();
            }
        }
    }
}

void
Cluster::setDutyCycle(double d)
{
    for (auto &n : nodes_)
        n->setDutyCycle(d);
}

void
Cluster::setFrequency(double f)
{
    for (auto &n : nodes_)
        n->setFrequency(f);
}

void
Cluster::setWorkloadUtil(double u)
{
    for (auto &n : nodes_)
        n->setWorkloadUtil(u);
}

Watts
Cluster::power() const
{
    // All rack nodes share this cluster's pool, so the sum is one dense
    // loop in slot (= node) order — identical association to the old
    // per-object loop.
    return pool_->powerSum();
}

Watts
Cluster::plannedPower(unsigned vms, double duty) const
{
    vms = std::min(vms, totalVmSlots());
    duty = std::clamp(duty, 0.0, 1.0);
    Watts p = 0.0;
    unsigned remaining = vms;
    for (const auto &n : nodes_) {
        const unsigned take = std::min(remaining, n->params().vmSlots);
        remaining -= take;
        if (take == 0)
            continue;
        const auto &prm = n->params();
        const double util = static_cast<double>(take) / prm.vmSlots;
        p += prm.idlePower +
             (prm.peakPower - prm.idlePower) * util * n->workloadUtil() *
                 std::pow(n->frequency(), prm.dvfsAlpha) * duty;
    }
    return p;
}

ClusterStepResult
Cluster::step(Seconds dt)
{
    const NodeStepResult r = pool_->stepAll(dt);
    ClusterStepResult res;
    res.energyWh = r.energyWh;
    res.productiveEnergyWh = r.productiveEnergyWh;
    res.usefulVmHours = r.usefulVmHours;
    return res;
}

void
Cluster::emergencyShutdownAll()
{
    for (auto &n : nodes_)
        n->emergencyShutdown();
    targetVms_ = 0;
}

void
Cluster::crashNode(unsigned i)
{
    if (i < nodes_.size())
        nodes_[i]->emergencyShutdown();
}

void
Cluster::hangNode(unsigned i, Seconds duration)
{
    if (i < nodes_.size())
        nodes_[i]->injectHang(duration);
}

bool
Cluster::anyProductive() const
{
    for (const auto &n : nodes_) {
        if (n->productive())
            return true;
    }
    return false;
}

std::uint64_t
Cluster::onOffCycles() const
{
    std::uint64_t c = 0;
    for (const auto &n : nodes_)
        c += n->onOffCycles();
    return c;
}

std::uint64_t
Cluster::vmControlOps() const
{
    std::uint64_t c = 0;
    for (const auto &n : nodes_)
        c += n->vmControlOps();
    return c;
}

std::uint64_t
Cluster::emergencyShutdowns() const
{
    std::uint64_t c = 0;
    for (const auto &n : nodes_)
        c += n->emergencyShutdowns();
    return c;
}

double
Cluster::lostVmHours() const
{
    double h = 0.0;
    for (const auto &n : nodes_)
        h += n->lostVmHours();
    return h;
}


void
Cluster::save(snapshot::Archive &ar) const
{
    ar.section("cluster");
    ar.putSize(nodes_.size());
    for (const auto &n : nodes_)
        n->save(ar);
    ar.putU32(targetVms_);
}

void
Cluster::load(snapshot::Archive &ar)
{
    ar.section("cluster");
    if (ar.getSize() != nodes_.size())
        throw snapshot::SnapshotError(
            "Cluster: node count differs from snapshot");
    for (auto &n : nodes_)
        n->load(ar);
    targetVms_ = ar.getU32();
}

} // namespace insure::server
