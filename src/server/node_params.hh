/**
 * @file
 * Server node parameter sets.
 *
 * The prototype cluster is four HP ProLiant rack servers (dual Xeon
 * 3.2 GHz, 16 GB RAM): idle ~280 W, peak ~450 W, two VMs per physical
 * machine (paper §4/§5). Table 7 compares against a low-power Core
 * i7-2720-class node at 42-46 W. On/off power cycles cost about 15 minutes
 * of service interruption and each VM management operation about 5 minutes
 * (paper §2.3, Table 6).
 */

#ifndef INSURE_SERVER_NODE_PARAMS_HH
#define INSURE_SERVER_NODE_PARAMS_HH

#include <string>

#include "sim/units.hh"

namespace insure::server {

/** Static description of one server model. */
struct NodeParams {
    /** Short type tag ("xeon", "lowpower"). */
    std::string type = "xeon";
    /** Idle power draw when on, watts. */
    Watts idlePower = 280.0;
    /** Peak power draw at full utilisation and frequency, watts. */
    Watts peakPower = 450.0;
    /** VM slots per physical machine. */
    unsigned vmSlots = 2;
    /** Boot + VM restore time (half of a 15-minute power cycle). */
    Seconds bootTime = 450.0;
    /** Checkpoint + shutdown time (other half of the cycle). */
    Seconds shutdownTime = 450.0;
    /** Time a VM management operation keeps the node unproductive. */
    Seconds vmMgmtTime = 300.0;
    /** Exponent of the dynamic-power vs. frequency curve. */
    double dvfsAlpha = 2.2;
    /** Lowest DVFS frequency as a fraction of nominal. */
    double minFrequency = 0.5;
    /**
     * Work lost (seconds of compute) when power fails without a clean
     * checkpointed shutdown.
     */
    Seconds emergencyLossTime = 600.0;
};

/** The prototype's HP ProLiant Xeon node. */
NodeParams xeonNode();

/** A state-of-the-art low-power node (paper Table 7). */
NodeParams lowPowerNode();

} // namespace insure::server

#endif // INSURE_SERVER_NODE_PARAMS_HH
