#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::sim {

namespace {

std::string
renderLine(const std::string &name, double value, const std::string &desc)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-40s %14.6g  # %s", name.c_str(),
                  value, desc.c_str());
    return buf;
}

} // namespace

StatBase::StatBase(StatGroup *group, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (group)
        group->registerStat(this);
}

std::string
Counter::render() const
{
    return renderLine(name(), static_cast<double>(value_), desc());
}

double
Accumulator::stddev() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSq_ / count_ - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

std::string
Accumulator::render() const
{
    std::ostringstream os;
    os << renderLine(name() + ".mean", mean(), desc()) << '\n'
       << renderLine(name() + ".min", min(), desc()) << '\n'
       << renderLine(name() + ".max", max(), desc()) << '\n'
       << renderLine(name() + ".count", static_cast<double>(count_), desc());
    return os.str();
}

void
Accumulator::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sumSq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
TimeWeightedGauge::timeWentBackwards(Seconds now) const
{
    panic("TimeWeightedGauge %s: time went backwards (%f < %f)",
          name().c_str(), now, last_);
}

void
TimeWeightedGauge::finalize(Seconds end)
{
    if (!started_ || end <= last_)
        return;
    integral_ += level_ * (end - last_);
    last_ = end;
}

double
TimeWeightedGauge::integral(Seconds now) const
{
    if (!started_)
        return 0.0;
    return integral_ + level_ * std::max(0.0, now - last_);
}

double
TimeWeightedGauge::average(Seconds now) const
{
    if (!started_ || now <= start_)
        return level_;
    return integral(now) / (now - start_);
}

std::string
TimeWeightedGauge::render() const
{
    return renderLine(name() + ".avg", average(last_), desc());
}

void
TimeWeightedGauge::reset()
{
    level_ = 0.0;
    integral_ = 0.0;
    start_ = 0.0;
    last_ = 0.0;
    started_ = false;
}

Histogram::Histogram(StatGroup *group, std::string name, std::string desc,
                     double lo, double hi, std::size_t bins)
    : StatBase(group, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi), bins_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        fatal("Histogram %s: invalid range [%f, %f) x %zu bins",
              this->name().c_str(), lo, hi, bins);
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    const auto idx = static_cast<std::size_t>(
        (v - lo_) / (hi_ - lo_) * bins_.size());
    ++bins_[std::min(idx, bins_.size() - 1)];
}

double
Histogram::quantile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * count_;
    double cum = underflow_;
    if (cum >= target)
        return lo_;
    const double width = (hi_ - lo_) / bins_.size();
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        const double next = cum + bins_[i];
        if (next >= target && bins_[i] > 0) {
            const double frac = (target - cum) / bins_[i];
            return lo_ + width * (i + frac);
        }
        cum = next;
    }
    return hi_;
}

std::string
Histogram::render() const
{
    std::ostringstream os;
    os << renderLine(name() + ".mean", mean(), desc()) << '\n'
       << renderLine(name() + ".count", static_cast<double>(count_), desc())
       << '\n'
       << renderLine(name() + ".p50", quantile(0.5), desc()) << '\n'
       << renderLine(name() + ".p99", quantile(0.99), desc());
    return os.str();
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

void
StatGroup::registerStat(StatBase *stat)
{
    if (find(stat->name()))
        fatal("StatGroup %s: duplicate stat name '%s'", name_.c_str(),
              stat->name().c_str());
    stats_.push_back(stat);
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const auto *s : stats_) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

std::string
StatGroup::report() const
{
    std::ostringstream os;
    os << "---------- " << name_ << " ----------\n";
    for (const auto *s : stats_)
        os << s->render() << '\n';
    return os.str();
}

void
StatGroup::resetAll()
{
    for (auto *s : stats_)
        s->reset();
}

void
Counter::save(snapshot::Archive &ar) const
{
    ar.section("counter");
    ar.putU64(value_);
}

void
Counter::load(snapshot::Archive &ar)
{
    ar.section("counter");
    value_ = ar.getU64();
}

void
Accumulator::save(snapshot::Archive &ar) const
{
    ar.section("accumulator");
    ar.putU64(count_);
    ar.putF64(sum_);
    ar.putF64(sumSq_);
    ar.putF64(min_);
    ar.putF64(max_);
}

void
Accumulator::load(snapshot::Archive &ar)
{
    ar.section("accumulator");
    count_ = ar.getU64();
    sum_ = ar.getF64();
    sumSq_ = ar.getF64();
    min_ = ar.getF64();
    max_ = ar.getF64();
}

void
TimeWeightedGauge::save(snapshot::Archive &ar) const
{
    ar.section("gauge");
    ar.putF64(level_);
    ar.putF64(integral_);
    ar.putF64(start_);
    ar.putF64(last_);
    ar.putBool(started_);
}

void
TimeWeightedGauge::load(snapshot::Archive &ar)
{
    ar.section("gauge");
    level_ = ar.getF64();
    integral_ = ar.getF64();
    start_ = ar.getF64();
    last_ = ar.getF64();
    started_ = ar.getBool();
}

void
Histogram::save(snapshot::Archive &ar) const
{
    ar.section("histogram");
    ar.putSize(bins_.size());
    for (const std::uint64_t b : bins_)
        ar.putU64(b);
    ar.putU64(underflow_);
    ar.putU64(overflow_);
    ar.putU64(count_);
    ar.putF64(sum_);
}

void
Histogram::load(snapshot::Archive &ar)
{
    ar.section("histogram");
    if (ar.getSize() != bins_.size())
        throw snapshot::SnapshotError(
            "Histogram: bin count differs from snapshot");
    for (auto &b : bins_)
        b = ar.getU64();
    underflow_ = ar.getU64();
    overflow_ = ar.getU64();
    count_ = ar.getU64();
    sum_ = ar.getF64();
}

} // namespace insure::sim
