/**
 * @file
 * Discrete-event scheduling core.
 *
 * The simulator advances by executing callbacks ordered by (time, priority,
 * insertion sequence). Components either schedule one-shot events or use
 * PeriodicTask for fixed-interval control loops (the PLC scan cycle, the
 * MPPT perturbation period, workload arrivals, ...).
 */

#ifndef INSURE_SIM_EVENT_QUEUE_HH
#define INSURE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/units.hh"

namespace insure::sim {

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/** Relative execution order for events scheduled at the same instant. */
enum class EventPriority : int {
    /** Physical-model updates (battery integration, solar sampling). */
    Physics = 0,
    /** Sensing/telemetry sampling of physical state. */
    Telemetry = 1,
    /** Control decisions that act on sensed state. */
    Control = 2,
    /** Statistics and trace recording, after the dust settles. */
    Stats = 3,
};

/**
 * Time-ordered queue of callbacks. Not thread-safe; the whole simulator is
 * single-threaded and deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in seconds since simulation start. */
    Seconds now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @return an id usable with cancel().
     */
    EventId schedule(Seconds when, EventPriority prio,
                     std::function<void()> fn);

    /** Schedule @p fn to run @p delay seconds from now. */
    EventId scheduleIn(Seconds delay, EventPriority prio,
                       std::function<void()> fn);

    /**
     * Cancel a pending event. Cancelling an id that already fired, was
     * already cancelled, or was never issued is a safe no-op; a cancelled
     * event never executes.
     */
    void cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const;

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return live_.size(); }

    /**
     * Run events until the queue is empty or simulated time would exceed
     * @p horizon. Time is left at min(horizon, last event time).
     * @return number of events executed.
     */
    std::uint64_t runUntil(Seconds horizon);

    /** Execute at most one event. @return false if none was runnable. */
    bool step();

  private:
    struct Entry {
        Seconds when;
        int prio;
        EventId id;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (prio != o.prio)
                return prio > o.prio;
            return id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    /** Ids scheduled but not yet fired or cancelled. */
    std::unordered_set<EventId> live_;
    /** Cancelled ids whose entries are still inside queue_. */
    std::unordered_set<EventId> cancelled_;
    Seconds now_ = 0.0;
    EventId nextId_ = 1;

    /** Pop the entry for a cancelled id; true if it was cancelled. */
    bool isCancelled(EventId id);
};

/**
 * Helper that reschedules a callback every @p period seconds. The callback
 * may stop the task; stopping from outside is also supported.
 */
class PeriodicTask
{
  public:
    /**
     * @param eq queue driving the task
     * @param period interval between invocations, seconds (> 0)
     * @param prio event priority class
     * @param fn callback, invoked with the current simulated time
     */
    PeriodicTask(EventQueue &eq, Seconds period, EventPriority prio,
                 std::function<void(Seconds)> fn);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    /** Begin ticking; first invocation occurs @p phase seconds from now. */
    void start(Seconds phase = 0.0);

    /** Stop ticking; safe to call from within the callback. */
    void stop();

    /** True while the task is scheduled. */
    bool running() const { return running_; }

    /** The configured tick interval. */
    Seconds period() const { return period_; }

  private:
    EventQueue &eq_;
    Seconds period_;
    EventPriority prio_;
    std::function<void(Seconds)> fn_;
    EventId pendingId_ = 0;
    bool running_ = false;

    void fire();
};

} // namespace insure::sim

#endif // INSURE_SIM_EVENT_QUEUE_HH
