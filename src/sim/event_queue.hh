/**
 * @file
 * Discrete-event scheduling core.
 *
 * The simulator advances by executing callbacks ordered by (time, priority,
 * insertion sequence). Components either schedule one-shot events or use
 * PeriodicTask for fixed-interval control loops (the PLC scan cycle, the
 * MPPT perturbation period, workload arrivals, ...).
 *
 * The hot path is allocation-free in steady state: callables live in a
 * small-buffer-optimised InlineFunction inside a recycled slot pool, the
 * heap holds only POD entries, and liveness/cancellation is tracked with
 * generation-tagged slots instead of hash sets. A PeriodicTask re-arms the
 * slot it is firing from, so a steady periodic tick neither constructs a
 * closure nor touches the allocator.
 */

#ifndef INSURE_SIM_EVENT_QUEUE_HH
#define INSURE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::sim {

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/** Relative execution order for events scheduled at the same instant. */
enum class EventPriority : int {
    /** Physical-model updates (battery integration, solar sampling). */
    Physics = 0,
    /** Sensing/telemetry sampling of physical state. */
    Telemetry = 1,
    /** Control decisions that act on sensed state. */
    Control = 2,
    /** Statistics and trace recording, after the dust settles. */
    Stats = 3,
};

/**
 * Time-ordered queue of callbacks. Not thread-safe; the whole simulator is
 * single-threaded and deterministic.
 */
class EventQueue
{
  public:
    /** Callable type stored per event (inline up to small captures). */
    using Callback = InlineFunction<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in seconds since simulation start. */
    Seconds now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @return an id usable with cancel().
     */
    EventId
    schedule(Seconds when, EventPriority prio, Callback fn)
    {
        if (when < now_)
            scheduledIntoPast(when);
        const std::uint32_t slot = acquireSlot();
        Slot &s = slots_[slot];
        s.fn = std::move(fn);
        ++s.gen;
        s.live = true;
        ++liveCount_;
        queue_.push(Entry{when, makeKey(prio, nextSeq_++), slot, s.gen});
        return makeId(s.gen, slot);
    }

    /** Schedule @p fn to run @p delay seconds from now. */
    EventId
    scheduleIn(Seconds delay, EventPriority prio, Callback fn)
    {
        return schedule(now_ + delay, prio, std::move(fn));
    }

    /**
     * Cancel a pending event. Cancelling an id that already fired, was
     * already cancelled, or was never issued is a safe no-op; a cancelled
     * event never executes.
     */
    void
    cancel(EventId id)
    {
        // Only a live (scheduled, not yet fired) event is affected; an id
        // that already fired, was already cancelled, or was never issued
        // fails the generation check, so stale handles can never suppress
        // an unrelated event. The heap entry stays behind and is skipped
        // when popped.
        const std::uint32_t slot =
            static_cast<std::uint32_t>(id & 0xffffffffu);
        const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
        if (slot >= slots_.size())
            return;
        Slot &s = slots_[slot];
        if (!s.live || s.gen != gen)
            return;
        s.live = false;
        --liveCount_;
        if (slot != executingSlot_) {
            s.fn.reset(); // release captured state promptly
            freeSlots_.push_back(slot);
        }
    }

    /** True when no runnable events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return liveCount_; }

    /**
     * Run events until the queue is empty or simulated time would exceed
     * @p horizon. Time is left at min(horizon, last event time).
     * @return number of events executed.
     */
    std::uint64_t
    runUntil(Seconds horizon)
    {
        std::uint64_t executed = 0;
        while (dispatchOne(horizon))
            ++executed;
        if (now_ < horizon)
            now_ = horizon;
        return executed;
    }

    /** Execute at most one event. @return false if none was runnable. */
    bool
    step()
    {
        return dispatchOne(std::numeric_limits<Seconds>::infinity());
    }

    /**
     * Re-arm the event currently being dispatched to fire again @p delay
     * seconds from now, at priority @p prio, reusing its slot and callable
     * (no closure construction, no allocation). Only valid while inside a
     * callback; the returned id cancels the re-armed firing.
     */
    EventId
    rearmCurrentIn(Seconds delay, EventPriority prio)
    {
        if (executingSlot_ == kNoSlot)
            rearmOutsideDispatch();
        Slot &s = slots_[executingSlot_];
        ++s.gen;
        s.live = true;
        ++liveCount_;
        queue_.push(Entry{now_ + delay, makeKey(prio, nextSeq_++),
                          executingSlot_, s.gen});
        return makeId(s.gen, executingSlot_);
    }

    // --- snapshot support -----------------------------------------
    //
    // Closures are never serialized. Instead, each owning component
    // records the exact (when, key) of its live events via
    // pendingInfo() at save time and re-creates the callback itself at
    // load time via restoreEvent(), which schedules at the *explicit*
    // saved key instead of drawing a fresh sequence number. Because the
    // dispatch order is the strict total order on (when, key), the
    // restored queue pops in exactly the original order even though
    // entries may land on the heap side instead of the sorted run.

    /** Exact position of a pending event in the dispatch order. */
    struct PendingEvent {
        Seconds when = 0.0;
        std::uint64_t key = 0;
    };

    /**
     * The (when, key) of a live pending event, or nullopt if @p id
     * already fired or was cancelled. O(pending); snapshot-time only.
     */
    std::optional<PendingEvent> pendingInfo(EventId id) const;

    /**
     * Re-create a saved event at its exact original dispatch position.
     * Only valid after loadClock() (the key's sequence number must be
     * below the restored clock's nextSeq); throws SnapshotError
     * otherwise.
     */
    EventId restoreEvent(Seconds when, std::uint64_t key, Callback fn);

    /** Serialize the clock (now, next sequence number). */
    void saveClock(snapshot::Archive &ar) const;

    /** Restore the clock; call before any restoreEvent(). */
    void loadClock(snapshot::Archive &ar);

  private:
    static constexpr std::uint32_t kNoSlot = ~0u;

    /**
     * POD heap entry. Execution order is (when, prio, seq); priority and
     * the monotone schedule sequence number are packed into one 64-bit
     * key (prio in the top byte, seq below — seq can never reach 2^56),
     * so ties at the same instant compare with a single integer compare
     * and the entry fits in 24 bytes. (slot, gen) locates the callable
     * and detects stale entries for cancelled or recycled slots.
     */
    struct Entry {
        Seconds when;
        std::uint64_t key;
        std::uint32_t slot;
        std::uint32_t gen;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return key > o.key;
        }
    };

    static std::uint64_t
    makeKey(EventPriority prio, std::uint64_t seq)
    {
        return (static_cast<std::uint64_t>(prio) << 56) | seq;
    }

    /**
     * Priority structure specialised for simulation traffic. Almost all
     * pushes arrive in non-decreasing execution order (periodic re-arms
     * land one period ahead, bulk setup schedules forward in time), so
     * entries are appended to a sorted run vector consumed by cursor:
     * push and pop are then O(1) with perfectly sequential memory
     * access. A push that would break the run's ordering falls back to
     * a 4-ary min-heap, and top()/pop() take whichever front executes
     * first. The pop order is fully determined by the strict total
     * order on (when, key) (seq makes every key unique) and both sides
     * agree on it, so the split never affects execution order.
     */
    class EntryHeap
    {
      public:
        bool
        empty() const
        {
            return runHead_ == run_.size() && heap_.empty();
        }

        std::size_t
        size() const
        {
            return (run_.size() - runHead_) + heap_.size();
        }

        const Entry &
        top() const
        {
            if (runHead_ == run_.size())
                return heap_[0];
            if (heap_.empty() || !before(heap_[0], run_[runHead_]))
                return run_[runHead_];
            return heap_[0];
        }

        void
        push(const Entry &e)
        {
            if (runHead_ == run_.size()) {
                run_.clear();
                runHead_ = 0;
                run_.push_back(e);
            } else if (!before(e, run_.back())) {
                run_.push_back(e);
            } else {
                heap_.push_back(e);
                siftUp(heap_.size() - 1);
            }
        }

        void
        pop()
        {
            if (runHead_ != run_.size() &&
                (heap_.empty() || !before(heap_[0], run_[runHead_]))) {
                ++runHead_;
                if (runHead_ == run_.size()) {
                    run_.clear();
                    runHead_ = 0;
                } else if (runHead_ >= kCompactAt &&
                           runHead_ * 2 >= run_.size()) {
                    // Reclaim the consumed prefix once it dominates the
                    // vector; each erase moves at most as many entries
                    // as the pops that paid for it, so amortised O(1).
                    run_.erase(run_.begin(),
                               run_.begin() +
                                   static_cast<std::ptrdiff_t>(runHead_));
                    runHead_ = 0;
                }
            } else {
                const Entry last = heap_.back();
                heap_.pop_back();
                if (!heap_.empty())
                    siftDown(last);
            }
        }

        /**
         * Locate the live entry for (slot, gen); null when absent.
         * Linear scan — used only by snapshot-time pendingInfo().
         */
        const Entry *
        find(std::uint32_t slot, std::uint32_t gen) const
        {
            for (std::size_t i = runHead_; i < run_.size(); ++i) {
                if (run_[i].slot == slot && run_[i].gen == gen)
                    return &run_[i];
            }
            for (const Entry &e : heap_) {
                if (e.slot == slot && e.gen == gen)
                    return &e;
            }
            return nullptr;
        }

      private:
        static constexpr std::size_t kCompactAt = 1024;

        /** In-order pushes, sorted; consumed from runHead_. */
        std::vector<Entry> run_;
        /** Out-of-order pushes, 4-ary min-heap. */
        std::vector<Entry> heap_;
        std::size_t runHead_ = 0;

        /** True when @p a executes before @p b. */
        static bool before(const Entry &a, const Entry &b)
        {
            return b > a;
        }

        void
        siftUp(std::size_t i)
        {
            const Entry e = heap_[i];
            while (i != 0) {
                const std::size_t p = (i - 1) >> 2;
                if (!before(e, heap_[p]))
                    break;
                heap_[i] = heap_[p];
                i = p;
            }
            heap_[i] = e;
        }

        /** Re-insert @p e starting from the root after a pop. */
        void
        siftDown(const Entry &e)
        {
            const std::size_t n = heap_.size();
            std::size_t i = 0;
            for (;;) {
                const std::size_t c = 4 * i + 1;
                if (c >= n)
                    break;
                std::size_t m = c;
                const std::size_t end = c + 4 < n ? c + 4 : n;
                for (std::size_t j = c + 1; j < end; ++j) {
                    if (before(heap_[j], heap_[m]))
                        m = j;
                }
                if (!before(heap_[m], e))
                    break;
                heap_[i] = heap_[m];
                i = m;
            }
            heap_[i] = e;
        }
    };

    /**
     * Recycled callable storage. A slot's generation increments on every
     * acquisition, so an EventId (gen << 32 | slot) from a previous tenant
     * can never cancel the current one.
     */
    struct Slot {
        Callback fn;
        std::uint32_t gen = 0;
        bool live = false;
    };

    EntryHeap queue_;
    /** Slot storage; deque so callbacks stay put while executing. */
    std::deque<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::size_t liveCount_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint32_t executingSlot_ = kNoSlot;
    Seconds now_ = 0.0;

    static EventId
    makeId(std::uint32_t gen, std::uint32_t slot)
    {
        return (static_cast<EventId>(gen) << 32) | slot;
    }

    std::uint32_t
    acquireSlot()
    {
        if (!freeSlots_.empty()) {
            const std::uint32_t slot = freeSlots_.back();
            freeSlots_.pop_back();
            return slot;
        }
        slots_.emplace_back();
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }

    bool
    dispatchOne(Seconds horizon)
    {
        while (!queue_.empty()) {
            const Entry &top = queue_.top();
            if (top.when > horizon)
                return false;
            const Entry e = top;
            queue_.pop();
            Slot &s = slots_[e.slot];
            if (!s.live || s.gen != e.gen)
                continue; // cancelled, or the slot moved on to a new tenant
            s.live = false;
            --liveCount_;
            now_ = e.when;
            executingSlot_ = e.slot;
            s.fn(); // may schedule, cancel, or re-arm this very slot
            executingSlot_ = kNoSlot;
            // A re-arm (or nothing) happened: only recycle the slot when
            // the callback did not re-register it.
            if (!s.live) {
                s.fn.reset();
                freeSlots_.push_back(e.slot);
            }
            return true;
        }
        return false;
    }

    [[noreturn]] void scheduledIntoPast(Seconds when) const;
    [[noreturn]] void rearmOutsideDispatch() const;
};

/**
 * Helper that reschedules a callback every @p period seconds. The callback
 * may stop the task; stopping from outside is also supported. Steady-state
 * ticking re-arms the queue slot in place (see EventQueue::rearmCurrentIn)
 * instead of scheduling a fresh closure every tick.
 */
class PeriodicTask
{
  public:
    /**
     * @param eq queue driving the task
     * @param period interval between invocations, seconds (> 0)
     * @param prio event priority class
     * @param fn callback, invoked with the current simulated time
     */
    PeriodicTask(EventQueue &eq, Seconds period, EventPriority prio,
                 InlineFunction<void(Seconds)> fn);
    ~PeriodicTask();

    PeriodicTask(const PeriodicTask &) = delete;
    PeriodicTask &operator=(const PeriodicTask &) = delete;

    /** Begin ticking; first invocation occurs @p phase seconds from now. */
    void start(Seconds phase = 0.0);

    /** Stop ticking; safe to call from within the callback. */
    void stop();

    /** True while the task is scheduled. */
    bool running() const { return running_; }

    /** The configured tick interval. */
    Seconds period() const { return period_; }

    /**
     * Serialize the running flag and, when running, the exact pending
     * (when, key) so the next firing lands in the original order.
     */
    void save(snapshot::Archive &ar) const;

    /**
     * Restore: re-creates the pending firing via
     * EventQueue::restoreEvent (the owning queue's clock must already
     * be restored). On the restore path start() is never called.
     */
    void load(snapshot::Archive &ar);

  private:
    EventQueue &eq_;
    Seconds period_;
    EventPriority prio_;
    InlineFunction<void(Seconds)> fn_;
    EventId pendingId_ = 0;
    bool running_ = false;

    void fire();
};

} // namespace insure::sim

#endif // INSURE_SIM_EVENT_QUEUE_HH
