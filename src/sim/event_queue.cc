#include "sim/event_queue.hh"

#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::sim {

void
EventQueue::scheduledIntoPast(Seconds when) const
{
    panic("EventQueue: scheduling into the past (%f < %f)", when, now_);
}

void
EventQueue::rearmOutsideDispatch() const
{
    panic("EventQueue: rearmCurrentIn outside event dispatch");
}

std::optional<EventQueue::PendingEvent>
EventQueue::pendingInfo(EventId id) const
{
    const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slots_.size())
        return std::nullopt;
    const Slot &s = slots_[slot];
    if (!s.live || s.gen != gen)
        return std::nullopt;
    const Entry *e = queue_.find(slot, gen);
    if (e == nullptr)
        return std::nullopt;
    return PendingEvent{e->when, e->key};
}

EventId
EventQueue::restoreEvent(Seconds when, std::uint64_t key, Callback fn)
{
    if (when < now_)
        throw snapshot::SnapshotError(
            "EventQueue::restoreEvent: event before restored clock");
    // The key embeds the original sequence number; it must predate the
    // restored nextSeq_ or a later schedule() could mint a duplicate.
    const std::uint64_t seq = key & ((std::uint64_t{1} << 56) - 1);
    if (seq >= nextSeq_)
        throw snapshot::SnapshotError(
            "EventQueue::restoreEvent: key not issued by restored clock");
    const std::uint32_t slot = acquireSlot();
    Slot &s = slots_[slot];
    s.fn = std::move(fn);
    ++s.gen;
    s.live = true;
    ++liveCount_;
    queue_.push(Entry{when, key, slot, s.gen});
    return makeId(s.gen, slot);
}

void
EventQueue::saveClock(snapshot::Archive &ar) const
{
    ar.section("event_queue.clock");
    ar.putF64(now_);
    ar.putU64(nextSeq_);
}

void
EventQueue::loadClock(snapshot::Archive &ar)
{
    ar.section("event_queue.clock");
    now_ = ar.getF64();
    nextSeq_ = ar.getU64();
}

PeriodicTask::PeriodicTask(EventQueue &eq, Seconds period,
                           EventPriority prio,
                           InlineFunction<void(Seconds)> fn)
    : eq_(eq), period_(period), prio_(prio), fn_(std::move(fn))
{
    if (period_ <= 0.0)
        fatal("PeriodicTask: period must be positive (got %f)", period_);
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start(Seconds phase)
{
    if (running_)
        return;
    running_ = true;
    pendingId_ = eq_.scheduleIn(phase, prio_, [this] { fire(); });
}

void
PeriodicTask::stop()
{
    if (!running_)
        return;
    running_ = false;
    eq_.cancel(pendingId_);
    pendingId_ = 0;
}

void
PeriodicTask::fire()
{
    if (!running_)
        return;
    // Re-arm before invoking so the callback may call stop(); the re-arm
    // reuses the slot this event fired from, so a steady tick performs no
    // allocation and constructs no closure.
    pendingId_ = eq_.rearmCurrentIn(period_, prio_);
    fn_(eq_.now());
}

void
PeriodicTask::save(snapshot::Archive &ar) const
{
    ar.section("periodic_task");
    ar.putBool(running_);
    if (running_) {
        const auto info = eq_.pendingInfo(pendingId_);
        if (!info)
            throw snapshot::SnapshotError(
                "PeriodicTask: running but no pending event to save");
        ar.putF64(info->when);
        ar.putU64(info->key);
    }
}

void
PeriodicTask::load(snapshot::Archive &ar)
{
    ar.section("periodic_task");
    stop();
    if (ar.getBool()) {
        const Seconds when = ar.getF64();
        const std::uint64_t key = ar.getU64();
        running_ = true;
        pendingId_ = eq_.restoreEvent(when, key, [this] { fire(); });
    }
}

} // namespace insure::sim
