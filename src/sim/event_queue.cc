#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace insure::sim {

void
EventQueue::scheduledIntoPast(Seconds when) const
{
    panic("EventQueue: scheduling into the past (%f < %f)", when, now_);
}

void
EventQueue::rearmOutsideDispatch() const
{
    panic("EventQueue: rearmCurrentIn outside event dispatch");
}

PeriodicTask::PeriodicTask(EventQueue &eq, Seconds period,
                           EventPriority prio,
                           InlineFunction<void(Seconds)> fn)
    : eq_(eq), period_(period), prio_(prio), fn_(std::move(fn))
{
    if (period_ <= 0.0)
        fatal("PeriodicTask: period must be positive (got %f)", period_);
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start(Seconds phase)
{
    if (running_)
        return;
    running_ = true;
    pendingId_ = eq_.scheduleIn(phase, prio_, [this] { fire(); });
}

void
PeriodicTask::stop()
{
    if (!running_)
        return;
    running_ = false;
    eq_.cancel(pendingId_);
    pendingId_ = 0;
}

void
PeriodicTask::fire()
{
    if (!running_)
        return;
    // Re-arm before invoking so the callback may call stop(); the re-arm
    // reuses the slot this event fired from, so a steady tick performs no
    // allocation and constructs no closure.
    pendingId_ = eq_.rearmCurrentIn(period_, prio_);
    fn_(eq_.now());
}

} // namespace insure::sim
