#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace insure::sim {

EventId
EventQueue::schedule(Seconds when, EventPriority prio,
                     std::function<void()> fn)
{
    if (when < now_)
        panic("EventQueue: scheduling into the past (%f < %f)", when, now_);
    const EventId id = nextId_++;
    queue_.push(Entry{when, static_cast<int>(prio), id, std::move(fn)});
    live_.insert(id);
    return id;
}

EventId
EventQueue::scheduleIn(Seconds delay, EventPriority prio,
                       std::function<void()> fn)
{
    return schedule(now_ + delay, prio, std::move(fn));
}

void
EventQueue::cancel(EventId id)
{
    // Only ids that are still scheduled move to the cancelled set; an id
    // that already fired, was already cancelled, or was never issued is
    // ignored, so stale handles can never suppress an unrelated event.
    if (live_.erase(id) > 0)
        cancelled_.insert(id);
}

bool
EventQueue::isCancelled(EventId id)
{
    return cancelled_.erase(id) > 0;
}

bool
EventQueue::empty() const
{
    return live_.empty();
}

bool
EventQueue::step()
{
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        if (isCancelled(e.id))
            continue;
        live_.erase(e.id);
        now_ = e.when;
        e.fn();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Seconds horizon)
{
    std::uint64_t executed = 0;
    while (!queue_.empty()) {
        const Entry &top = queue_.top();
        if (top.when > horizon)
            break;
        Entry e = queue_.top();
        queue_.pop();
        if (isCancelled(e.id))
            continue;
        live_.erase(e.id);
        now_ = e.when;
        e.fn();
        ++executed;
    }
    if (now_ < horizon)
        now_ = horizon;
    return executed;
}

PeriodicTask::PeriodicTask(EventQueue &eq, Seconds period,
                           EventPriority prio,
                           std::function<void(Seconds)> fn)
    : eq_(eq), period_(period), prio_(prio), fn_(std::move(fn))
{
    if (period_ <= 0.0)
        fatal("PeriodicTask: period must be positive (got %f)", period_);
}

PeriodicTask::~PeriodicTask()
{
    stop();
}

void
PeriodicTask::start(Seconds phase)
{
    if (running_)
        return;
    running_ = true;
    pendingId_ = eq_.scheduleIn(phase, prio_, [this] { fire(); });
}

void
PeriodicTask::stop()
{
    if (!running_)
        return;
    running_ = false;
    eq_.cancel(pendingId_);
    pendingId_ = 0;
}

void
PeriodicTask::fire()
{
    if (!running_)
        return;
    // Reschedule before invoking so the callback may call stop().
    pendingId_ = eq_.scheduleIn(period_, prio_, [this] { fire(); });
    fn_(eq_.now());
}

} // namespace insure::sim
