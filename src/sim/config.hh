/**
 * @file
 * Minimal INI-style configuration reader.
 *
 * Syntax: `[section]` headers, `key = value` pairs, `#` or `;` comments,
 * blank lines ignored. Keys are addressed as "section.key"; keys before
 * any section header live in the "" section and are addressed bare.
 * Typed getters fall back to a default and record which keys were read,
 * so callers can report unused (likely misspelled) keys.
 */

#ifndef INSURE_SIM_CONFIG_HH
#define INSURE_SIM_CONFIG_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace insure::sim {

/** Parsed configuration file. */
class Config
{
  public:
    Config() = default;

    /** Parse from text. Fatal on malformed lines. */
    static Config parse(const std::string &text);

    /** Parse from a file. Fatal on I/O error. */
    static Config load(const std::string &path);

    /** True when "section.key" exists. */
    bool has(const std::string &key) const;

    /** String value or @p fallback. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;

    /** Double value or @p fallback; fatal if present but not numeric. */
    double getDouble(const std::string &key, double fallback = 0.0) const;

    /** Integer value or @p fallback; fatal if present but not integral. */
    long getInt(const std::string &key, long fallback = 0) const;

    /**
     * Boolean value or @p fallback; accepts true/false/yes/no/on/off/0/1
     * (case-insensitive), fatal otherwise.
     */
    bool getBool(const std::string &key, bool fallback = false) const;

    /** Set a value programmatically (overrides the file). */
    void set(const std::string &key, const std::string &value);

    /** All keys present, sorted. */
    std::vector<std::string> keys() const;

    /** Keys never read by any getter (typo detection), sorted. */
    std::vector<std::string> unusedKeys() const;

  private:
    std::map<std::string, std::string> values_;
    mutable std::set<std::string> used_;
};

} // namespace insure::sim

#endif // INSURE_SIM_CONFIG_HH
