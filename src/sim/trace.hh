/**
 * @file
 * CSV trace recording and replay.
 *
 * TraceWriter records named columns of doubles, one row per sample, and can
 * serialise to a CSV stream/file. TraceReader parses the same format back.
 * Used for solar day traces, battery voltage logs, and bench outputs.
 */

#ifndef INSURE_SIM_TRACE_HH
#define INSURE_SIM_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace insure::sim {

/** In-memory columnar trace with CSV serialisation. */
class Trace
{
  public:
    /** Create a trace with the given column names (first is usually time). */
    explicit Trace(std::vector<std::string> columns);

    /** Column names. */
    const std::vector<std::string> &columns() const { return columns_; }

    /** Number of recorded rows. */
    std::size_t rows() const { return rows_.size(); }

    /**
     * Append one row; must have exactly columns().size() values, and the
     * first column (the interpolation axis) must not decrease. Violations
     * are fatal — a silently unsorted axis would make interpolate()
     * return garbage from its binary search.
     */
    void append(const std::vector<double> &row);

    /** Access row @p r. */
    const std::vector<double> &row(std::size_t r) const { return rows_[r]; }

    /** Index of a named column, or -1. */
    int columnIndex(const std::string &name) const;

    /** All values of a named column. Fatal if the column is absent. */
    std::vector<double> column(const std::string &name) const;

    /** Value at (row, named column). Fatal if the column is absent. */
    double at(std::size_t r, const std::string &name) const;

    /**
     * Linear interpolation of @p name over the first column (which must be
     * non-decreasing). Values outside the range clamp to the end points.
     */
    double interpolate(double x, const std::string &name) const;

    /** Write CSV (header + rows) to a stream. */
    void writeCsv(std::ostream &os) const;

    /** Write CSV to a file path. Fatal on I/O error. */
    void saveCsv(const std::string &path) const;

    /** Parse CSV from a stream. Fatal on malformed input. */
    static Trace readCsv(std::istream &is);

    /** Parse CSV from a file path. Fatal on I/O error. */
    static Trace loadCsv(const std::string &path);

  private:
    std::vector<std::string> columns_;
    std::vector<std::vector<double>> rows_;
};

} // namespace insure::sim

#endif // INSURE_SIM_TRACE_HH
