/**
 * @file
 * CSV trace recording and replay.
 *
 * TraceWriter records named columns of doubles, one row per sample, and can
 * serialise to a CSV stream/file. TraceReader parses the same format back.
 * Used for solar day traces, battery voltage logs, and bench outputs.
 */

#ifndef INSURE_SIM_TRACE_HH
#define INSURE_SIM_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace insure::snapshot {
class Archive;
}

namespace insure::sim {

/** In-memory columnar trace with CSV serialisation. */
class Trace
{
  public:
    /** Create a trace with the given column names (first is usually time). */
    explicit Trace(std::vector<std::string> columns);

    /** Column names. */
    const std::vector<std::string> &columns() const { return columns_; }

    /** Number of recorded rows. */
    std::size_t rows() const { return rows_.size(); }

    /**
     * Append one row; must have exactly columns().size() values, and the
     * first column (the interpolation axis) must not decrease. Violations
     * are fatal — a silently unsorted axis would make interpolate()
     * return garbage from its binary search.
     */
    void append(const std::vector<double> &row);

    /** Access row @p r. */
    const std::vector<double> &row(std::size_t r) const { return rows_[r]; }

    /** Index of a named column, or -1. */
    int columnIndex(const std::string &name) const;

    /** All values of a named column. Fatal if the column is absent. */
    std::vector<double> column(const std::string &name) const;

    /** Value at (row, named column). Fatal if the column is absent. */
    double at(std::size_t r, const std::string &name) const;

    /**
     * Linear interpolation of @p name over the first column (which must be
     * non-decreasing). Values outside the range clamp to the end points.
     */
    double interpolate(double x, const std::string &name) const;

    /**
     * Stateful sampler for repeated interpolation of one column.
     *
     * Simulation components sample traces with a (mostly) monotonically
     * increasing axis value, one query per tick; a Cursor remembers the
     * last bracketing segment so a forward query advances at most a few
     * rows (O(1) amortized over a sweep) instead of binary-searching the
     * whole trace every call. A backward seek (e.g. the day-wrap of a
     * cyclically replayed trace) falls back to the binary search and
     * re-anchors. Results are bit-identical to interpolate().
     *
     * The cursor holds a pointer to the trace: keep the trace alive, and
     * do not remove rows while a cursor is attached (appending is fine).
     */
    class Cursor
    {
      public:
        Cursor() = default;

        /** Attach to @p trace, resolving @p column once. Fatal if absent. */
        Cursor(const Trace &trace, const std::string &column);

        /** Interpolated value at @p x; same clamping as interpolate(). */
        double sample(double x);

        /** Row index of the segment found by the last sample() call. */
        std::size_t position() const { return pos_; }

      private:
        const Trace *trace_ = nullptr;
        int idx_ = -1;
        std::size_t pos_ = 0;
    };

    /** Write CSV (header + rows) to a stream. */
    void writeCsv(std::ostream &os) const;

    /** Write CSV to a file path. Fatal on I/O error. */
    void saveCsv(const std::string &path) const;

    /** Parse CSV from a stream. Fatal on malformed input. */
    static Trace readCsv(std::istream &is);

    /** Parse CSV from a file path. Fatal on I/O error. */
    static Trace loadCsv(const std::string &path);

    /**
     * Serialize the recorded rows (bit-exact doubles; columns are fixed
     * by construction and only checked for count on load).
     */
    void save(snapshot::Archive &ar) const;

    /** Restore the recorded rows, replacing any current contents. */
    void load(snapshot::Archive &ar);

  private:
    std::vector<std::string> columns_;
    std::vector<std::vector<double>> rows_;

    /** Largest row r (≤ rows-2) with rows_[r][0] <= x; requires
     *  front[0] < x < back[0] (callers clamp first). */
    std::size_t lowerSegment(double x) const;

    /** Interpolate column @p idx on the segment [lo, lo+1] at @p x. */
    double interpolateSegment(std::size_t lo, double x, int idx) const;
};

} // namespace insure::sim

#endif // INSURE_SIM_TRACE_HH
