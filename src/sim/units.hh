/**
 * @file
 * Physical unit aliases and conversion helpers used across the InSURE
 * simulation. All quantities are stored as doubles in SI-derived units that
 * match everyday power-system usage (watts, watt-hours, amperes, volts,
 * ampere-hours, seconds).
 */

#ifndef INSURE_SIM_UNITS_HH
#define INSURE_SIM_UNITS_HH

namespace insure {

/** Simulated time in seconds. */
using Seconds = double;
/** Electrical power in watts. */
using Watts = double;
/** Energy in watt-hours. */
using WattHours = double;
/** Current in amperes. */
using Amperes = double;
/** Electric potential in volts. */
using Volts = double;
/** Charge in ampere-hours. */
using AmpHours = double;
/** Data volume in gigabytes. */
using GigaBytes = double;
/** Money in US dollars. */
using Dollars = double;

namespace units {

/** Seconds per hour. */
inline constexpr double secPerHour = 3600.0;
/** Seconds per day. */
inline constexpr double secPerDay = 86400.0;
/** Hours per day. */
inline constexpr double hoursPerDay = 24.0;
/** Days per (average) month. */
inline constexpr double daysPerMonth = 30.44;
/** Days per year. */
inline constexpr double daysPerYear = 365.25;

/** Convert a duration in seconds to hours. */
constexpr double
toHours(Seconds s)
{
    return s / secPerHour;
}

/** Convert a duration in hours to seconds. */
constexpr Seconds
hours(double h)
{
    return h * secPerHour;
}

/** Convert a duration in minutes to seconds. */
constexpr Seconds
minutes(double m)
{
    return m * 60.0;
}

/** Convert a duration in days to seconds. */
constexpr Seconds
days(double d)
{
    return d * secPerDay;
}

/** Energy delivered by @p p watts over @p s seconds, in watt-hours. */
constexpr WattHours
energyWh(Watts p, Seconds s)
{
    return p * toHours(s);
}

/** Charge moved by @p i amperes over @p s seconds, in ampere-hours. */
constexpr AmpHours
chargeAh(Amperes i, Seconds s)
{
    return i * toHours(s);
}

} // namespace units
} // namespace insure

#endif // INSURE_SIM_UNITS_HH
