#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace insure {

LogLevel Logger::minLevel_ = LogLevel::Warn;

void
Logger::setLevel(LogLevel level)
{
    minLevel_ = level;
}

LogLevel
Logger::level()
{
    return minLevel_;
}

bool
Logger::enabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(minLevel_);
}

namespace {

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
vlog(LogLevel level, const char *fmt, va_list args)
{
    std::fprintf(stderr, "[%s] ", levelTag(level));
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
Logger::log(LogLevel level, const char *fmt, ...)
{
    if (!enabled(level))
        return;
    va_list args;
    va_start(args, fmt);
    vlog(level, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!Logger::enabled(LogLevel::Info))
        return;
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::Info, fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (!Logger::enabled(LogLevel::Warn))
        return;
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[fatal] ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[panic] ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
    std::abort();
}

} // namespace insure
