#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace insure {

std::atomic<LogLevel> Logger::minLevel_{LogLevel::Warn};

void
Logger::setLevel(LogLevel level)
{
    minLevel_.store(level, std::memory_order_relaxed);
}

namespace {

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
vlog(LogLevel level, const char *fmt, va_list args)
{
    // Format into a buffer first so the message reaches stderr in one
    // stdio call and cannot interleave with other worker threads.
    char msg[1024];
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), msg);
}

} // namespace

void
Logger::log(LogLevel level, const char *fmt, ...)
{
    if (!enabled(level))
        return;
    va_list args;
    va_start(args, fmt);
    vlog(level, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!Logger::enabled(LogLevel::Info))
        return;
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::Info, fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (!Logger::enabled(LogLevel::Warn))
        return;
    va_list args;
    va_start(args, fmt);
    vlog(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    char msg[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    va_end(args);
    std::fprintf(stderr, "[fatal] %s\n", msg);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    char msg[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    va_end(args);
    std::fprintf(stderr, "[panic] %s\n", msg);
    std::abort();
}

} // namespace insure
