/**
 * @file
 * Minimal gem5-style logging and error-termination helpers.
 *
 * Two failure channels are distinguished, following the gem5 convention:
 *  - panic(): an internal invariant was violated (a bug in this library);
 *    aborts so a debugger or core dump can capture the state.
 *  - fatal(): the user supplied an impossible configuration; exits cleanly
 *    with a non-zero status.
 */

#ifndef INSURE_SIM_LOGGING_HH
#define INSURE_SIM_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <string>

namespace insure {

/** Severity levels for runtime log messages. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global log sink. Messages below the configured threshold are dropped.
 * Thread-safe: the level is atomic and each message is emitted with a
 * single stdio call, so concurrent simulations (the batch runner) may
 * log freely; set the level before spawning workers for a clean cut.
 */
class Logger
{
  public:
    /** Set the minimum level that will be emitted. */
    static void setLevel(LogLevel level);

    /** Current minimum level. Inline: hot loops poll this per tick. */
    static LogLevel
    level()
    {
        return minLevel_.load(std::memory_order_relaxed);
    }

    /** Emit a printf-formatted message at @p level. */
    static void log(LogLevel level, const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /**
     * True if a message at @p level would be emitted. Inline and
     * branch-free (one relaxed load + compare), so per-tick guard
     * checks cost a couple of instructions when logging is off.
     */
    static bool
    enabled(LogLevel level)
    {
        return static_cast<int>(level) >=
               static_cast<int>(minLevel_.load(std::memory_order_relaxed));
    }

  private:
    static std::atomic<LogLevel> minLevel_;
};

/** Informational message for normal operating conditions. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warning about suspicious but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** User-error termination: prints the message and exits with status 1. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal-bug termination: prints the message and aborts. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace insure

#endif // INSURE_SIM_LOGGING_HH
