#include "sim/simulation.hh"

#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::sim {

Component::Component(Simulation &sim, std::string name)
    : sim_(sim), name_(std::move(name))
{
    sim_.registerComponent(this);
}

Simulation::Simulation(std::uint64_t seed) : root_(seed), seed_(seed)
{
}

void
Simulation::registerComponent(Component *c)
{
    if (find(c->name()))
        fatal("Simulation: duplicate component name '%s'",
              c->name().c_str());
    components_.push_back(c);
}

Component *
Simulation::find(const std::string &name) const
{
    for (auto *c : components_) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

void
Simulation::runUntil(Seconds horizon)
{
    if (!started_) {
        started_ = true;
        for (auto *c : components_)
            c->startup();
    }
    executed_ += events_.runUntil(horizon);
}

void
Simulation::finish()
{
    if (finished_)
        return;
    finished_ = true;
    for (auto *c : components_)
        c->finalize();
}

void
Simulation::save(snapshot::Archive &ar) const
{
    ar.section("simulation");
    ar.putU64(seed_);
    events_.saveClock(ar);
    root_.save(ar);
    ar.putBool(started_);
    ar.putBool(finished_);
    ar.putU64(executed_);
}

void
Simulation::load(snapshot::Archive &ar)
{
    ar.section("simulation");
    const std::uint64_t seed = ar.getU64();
    if (seed != seed_)
        throw snapshot::SnapshotError(
            "snapshot was taken with a different root seed");
    events_.loadClock(ar);
    root_.load(ar);
    started_ = ar.getBool();
    finished_ = ar.getBool();
    executed_ = ar.getU64();
}

} // namespace insure::sim
