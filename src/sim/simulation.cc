#include "sim/simulation.hh"

#include "sim/logging.hh"

namespace insure::sim {

Component::Component(Simulation &sim, std::string name)
    : sim_(sim), name_(std::move(name))
{
    sim_.registerComponent(this);
}

Simulation::Simulation(std::uint64_t seed) : root_(seed), seed_(seed)
{
}

void
Simulation::registerComponent(Component *c)
{
    if (find(c->name()))
        fatal("Simulation: duplicate component name '%s'",
              c->name().c_str());
    components_.push_back(c);
}

Component *
Simulation::find(const std::string &name) const
{
    for (auto *c : components_) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

void
Simulation::runUntil(Seconds horizon)
{
    if (!started_) {
        started_ = true;
        for (auto *c : components_)
            c->startup();
    }
    executed_ += events_.runUntil(horizon);
}

void
Simulation::finish()
{
    if (finished_)
        return;
    finished_ = true;
    for (auto *c : components_)
        c->finalize();
}

} // namespace insure::sim
