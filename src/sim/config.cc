#include "sim/config.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace insure::sim {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t a = 0;
    std::size_t b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])))
        ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    return s.substr(a, b - a);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace

Config
Config::parse(const std::string &text)
{
    Config cfg;
    std::istringstream is(text);
    std::string line;
    std::string section;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        // Strip comments (# or ;) outside of values' leading content.
        const std::size_t hash = line.find_first_of("#;");
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("Config: unterminated section at line %zu", lineno);
            section = trim(line.substr(1, line.size() - 2));
            if (section.empty())
                fatal("Config: empty section name at line %zu", lineno);
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("Config: expected 'key = value' at line %zu", lineno);
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("Config: empty key at line %zu", lineno);
        const std::string full =
            section.empty() ? key : section + "." + key;
        cfg.values_[full] = value;
    }
    return cfg;
}

Config
Config::load(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("Config: cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << is.rdbuf();
    return parse(ss.str());
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    used_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    used_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    try {
        std::size_t pos = 0;
        const double v = std::stod(it->second, &pos);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing");
        return v;
    } catch (...) {
        fatal("Config: '%s' is not a number for key '%s'",
              it->second.c_str(), key.c_str());
    }
}

long
Config::getInt(const std::string &key, long fallback) const
{
    used_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    try {
        std::size_t pos = 0;
        const long v = std::stol(it->second, &pos, 0);
        if (pos != it->second.size())
            throw std::invalid_argument("trailing");
        return v;
    } catch (...) {
        fatal("Config: '%s' is not an integer for key '%s'",
              it->second.c_str(), key.c_str());
    }
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    used_.insert(key);
    const auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string v = lower(it->second);
    if (v == "true" || v == "yes" || v == "on" || v == "1")
        return true;
    if (v == "false" || v == "no" || v == "off" || v == "0")
        return false;
    fatal("Config: '%s' is not a boolean for key '%s'",
          it->second.c_str(), key.c_str());
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[k, v] : values_)
        out.push_back(k);
    return out;
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values_) {
        if (!used_.count(k))
            out.push_back(k);
    }
    return out;
}

} // namespace insure::sim
