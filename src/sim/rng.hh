/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic processes (cloud cover, workload jitter, sensor noise) draw
 * from explicitly seeded Rng instances so that every experiment is exactly
 * reproducible. The core generator is xoshiro256**, seeded via SplitMix64.
 */

#ifndef INSURE_SIM_RNG_HH
#define INSURE_SIM_RNG_HH

#include <cstdint>

namespace insure::snapshot {
class Archive;
}

namespace insure {

/**
 * The project-wide default seed (the paper's publication year, ISCA 2015).
 *
 * Every layer that needs a fallback seed — Simulation, ExperimentConfig,
 * the bench sweeps and insure_cli — flows from this single constant, so
 * "the default run" means the same stream of random numbers everywhere.
 */
inline constexpr std::uint64_t kDefaultSeed = 2015;

/**
 * Complete in-flight state of an Rng: the xoshiro256** words plus the
 * Box-Muller spare. Capturing only the seed would silently reset a
 * stream mid-run; state()/setState() round-trip exactly.
 */
struct RngState {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool haveCached = false;
    double cached = 0.0;
};

/**
 * A small, fast, deterministic PRNG (xoshiro256**) with convenience
 * distributions. Copyable; copies continue independent identical streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(std::uint64_t seed = kDefaultSeed);

    /** Construct with a specific seed. */
    static Rng fromSeed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int uniformInt(int lo, int hi);

    /** Standard normal deviate (Box-Muller with caching). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential deviate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Bernoulli trial succeeding with probability @p p. */
    bool bernoulli(double p);

    /** Derive an independent child stream (for per-component seeding). */
    Rng split();

    /**
     * Derive the seed of the next child stream: Rng(splitSeed()) yields
     * exactly the generator split() would return. Used where a seed value
     * must cross an API boundary (e.g. the batch runner handing each run
     * a child seed derived from a master seed).
     */
    std::uint64_t splitSeed();

    /**
     * Derive an independent child stream named by @p tag without
     * advancing this generator. Unlike split(), whose result depends on
     * how many draws preceded it (ordinal derivation), derive() is a pure
     * function of the current state and the tag: inserting new derive()
     * calls between existing ones cannot re-correlate or shift any other
     * stream. Use streamTag("name") (or a streams:: constant) for tags so
     * each subsystem draws from its own namespace.
     */
    Rng derive(std::uint64_t tag) const;

    /** The seed derive(tag) would construct its child stream from. */
    std::uint64_t deriveSeed(std::uint64_t tag) const;

    /** Capture the full in-flight state (snapshot support). */
    RngState state() const;

    /** Restore a previously captured state; the stream continues exactly. */
    void setState(const RngState &st);

    /** Serialize the state into a snapshot archive. */
    void save(snapshot::Archive &ar) const;

    /** Restore the state from a snapshot archive. */
    void load(snapshot::Archive &ar);

  private:
    std::uint64_t s_[4];
    bool haveCached_ = false;
    double cached_ = 0.0;
};

/**
 * Compile-time FNV-1a hash of a stream name, for namespacing Rng::derive
 * tags. Distinct subsystem names yield distinct tags (collisions across
 * the registry below are ruled out by a unit test).
 */
constexpr std::uint64_t
streamTag(const char *name)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (; *name != '\0'; ++name) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*name));
        h *= 0x100000001B3ULL;
    }
    return h;
}

/**
 * Registry of the per-subsystem stream tags in use. Every subsystem that
 * derives a child stream by tag declares its name here, so the collision
 * test in tests/sim/test_rng.cc covers the full set.
 */
namespace streams {
inline constexpr std::uint64_t kWorkloadBatch = streamTag("workload.batch");
inline constexpr std::uint64_t kWorkloadStream = streamTag("workload.stream");
inline constexpr std::uint64_t kSolar = streamTag("solar");
inline constexpr std::uint64_t kFault = streamTag("fault");
inline constexpr std::uint64_t kFaultSchedule = streamTag("fault.schedule");
inline constexpr std::uint64_t kFaultBattery = streamTag("fault.battery");
inline constexpr std::uint64_t kFaultRelay = streamTag("fault.relay");
inline constexpr std::uint64_t kFaultSensor = streamTag("fault.sensor");
inline constexpr std::uint64_t kFaultLink = streamTag("fault.link");
inline constexpr std::uint64_t kFaultServer = streamTag("fault.server");
inline constexpr std::uint64_t kInteractiveArrivals =
    streamTag("interactive.arrivals");
inline constexpr std::uint64_t kChaosSend = streamTag("chaos.send");
inline constexpr std::uint64_t kChaosCorrupt = streamTag("chaos.corrupt");
inline constexpr std::uint64_t kChaosReceive = streamTag("chaos.receive");
inline constexpr std::uint64_t kChaosDisconnect =
    streamTag("chaos.disconnect");
inline constexpr std::uint64_t kChaosConnection =
    streamTag("chaos.connection");
inline constexpr std::uint64_t kDispatchBackoff =
    streamTag("dispatch.backoff");
} // namespace streams

} // namespace insure

#endif // INSURE_SIM_RNG_HH
