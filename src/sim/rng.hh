/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic processes (cloud cover, workload jitter, sensor noise) draw
 * from explicitly seeded Rng instances so that every experiment is exactly
 * reproducible. The core generator is xoshiro256**, seeded via SplitMix64.
 */

#ifndef INSURE_SIM_RNG_HH
#define INSURE_SIM_RNG_HH

#include <cstdint>

namespace insure {

/**
 * A small, fast, deterministic PRNG (xoshiro256**) with convenience
 * distributions. Copyable; copies continue independent identical streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x1A5C2015ULL);

    /** Construct with a specific seed. */
    static Rng fromSeed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int uniformInt(int lo, int hi);

    /** Standard normal deviate (Box-Muller with caching). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential deviate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Bernoulli trial succeeding with probability @p p. */
    bool bernoulli(double p);

    /** Derive an independent child stream (for per-component seeding). */
    Rng split();

  private:
    std::uint64_t s_[4];
    bool haveCached_ = false;
    double cached_ = 0.0;
};

} // namespace insure

#endif // INSURE_SIM_RNG_HH
