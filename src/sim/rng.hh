/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic processes (cloud cover, workload jitter, sensor noise) draw
 * from explicitly seeded Rng instances so that every experiment is exactly
 * reproducible. The core generator is xoshiro256**, seeded via SplitMix64.
 */

#ifndef INSURE_SIM_RNG_HH
#define INSURE_SIM_RNG_HH

#include <cstdint>

namespace insure {

/**
 * The project-wide default seed (the paper's publication year, ISCA 2015).
 *
 * Every layer that needs a fallback seed — Simulation, ExperimentConfig,
 * the bench sweeps and insure_cli — flows from this single constant, so
 * "the default run" means the same stream of random numbers everywhere.
 */
inline constexpr std::uint64_t kDefaultSeed = 2015;

/**
 * A small, fast, deterministic PRNG (xoshiro256**) with convenience
 * distributions. Copyable; copies continue independent identical streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(std::uint64_t seed = kDefaultSeed);

    /** Construct with a specific seed. */
    static Rng fromSeed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int uniformInt(int lo, int hi);

    /** Standard normal deviate (Box-Muller with caching). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential deviate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Bernoulli trial succeeding with probability @p p. */
    bool bernoulli(double p);

    /** Derive an independent child stream (for per-component seeding). */
    Rng split();

    /**
     * Derive the seed of the next child stream: Rng(splitSeed()) yields
     * exactly the generator split() would return. Used where a seed value
     * must cross an API boundary (e.g. the batch runner handing each run
     * a child seed derived from a master seed).
     */
    std::uint64_t splitSeed();

  private:
    std::uint64_t s_[4];
    bool haveCached_ = false;
    double cached_ = 0.0;
};

} // namespace insure

#endif // INSURE_SIM_RNG_HH
