/**
 * @file
 * Lightweight statistics package, loosely modelled on gem5's Stats.
 *
 * Provides Counter (monotone event counts), Accumulator (sum/min/max/mean of
 * samples), TimeWeightedGauge (averages a level over simulated time, used
 * for e.g. "average stored energy"), Histogram (fixed-width bins), and a
 * StatGroup registry that can render everything as a text report.
 */

#ifndef INSURE_SIM_STATS_HH
#define INSURE_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::sim {

class StatGroup;

/** Base class giving every statistic a name and description. */
class StatBase
{
  public:
    /**
     * @param group owning group (registers this stat); may be null
     * @param name short identifier, unique within the group
     * @param desc one-line human description
     */
    StatBase(StatGroup *group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render the value(s) as "name value # desc" line(s). */
    virtual std::string render() const = 0;

    /** Reset to the initial state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonically increasing event counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }

    std::string render() const override;
    void reset() override { value_ = 0; }

    void save(snapshot::Archive &ar) const;
    void load(snapshot::Archive &ar);

  private:
    std::uint64_t value_ = 0;
};

/** Sum / count / min / max / mean over a stream of samples. */
class Accumulator : public StatBase
{
  public:
    using StatBase::StatBase;

    /** Record one sample. Sampled once per physics tick, so inline. */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        sumSq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Population standard deviation of the samples. */
    double stddev() const;

    std::string render() const override;
    void reset() override;

    void save(snapshot::Archive &ar) const;
    void load(snapshot::Archive &ar);

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Averages a piecewise-constant level over simulated time. Call set() every
 * time the level changes; the integral is maintained exactly.
 */
class TimeWeightedGauge : public StatBase
{
  public:
    using StatBase::StatBase;

    /**
     * Record that the level becomes @p v at time @p now. Called once per
     * physics tick for every gauge, so the whole update is inline; only
     * the time-went-backwards failure path stays out of line.
     */
    void
    set(Seconds now, double v)
    {
        if (!started_) {
            started_ = true;
            start_ = now;
            last_ = now;
            level_ = v;
            return;
        }
        if (now < last_)
            timeWentBackwards(now);
        integral_ += level_ * (now - last_);
        last_ = now;
        level_ = v;
    }

    /** Current level. */
    double current() const { return level_; }

    /** Time-weighted mean of the level from the first set() to @p now. */
    double average(Seconds now) const;

    /** Integral of the level (level x seconds) up to @p now. */
    double integral(Seconds now) const;

    /**
     * Fold the tail interval between the last set() and @p end into the
     * stored integral, so render() (which has no notion of "now") reports
     * values that cover the whole run. Called at simulation finalize time;
     * idempotent, and a no-op for times at or before the last sample.
     */
    void finalize(Seconds end);

    std::string render() const override;
    void reset() override;

    void save(snapshot::Archive &ar) const;
    void load(snapshot::Archive &ar);

  private:
    double level_ = 0.0;
    double integral_ = 0.0;
    Seconds start_ = 0.0;
    Seconds last_ = 0.0;
    bool started_ = false;

    [[noreturn]] void timeWentBackwards(Seconds now) const;
};

/** Fixed-width-bin histogram with underflow/overflow buckets. */
class Histogram : public StatBase
{
  public:
    /**
     * @param group owning group
     * @param name identifier
     * @param desc description
     * @param lo lower edge of the first bin
     * @param hi upper edge of the last bin
     * @param bins number of bins (>= 1)
     */
    Histogram(StatGroup *group, std::string name, std::string desc,
              double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    const std::vector<std::uint64_t> &bins() const { return bins_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Approximate p-quantile (0 <= p <= 1) from the binned data. */
    double quantile(double p) const;

    std::string render() const override;
    void reset() override;

    void save(snapshot::Archive &ar) const;
    void load(snapshot::Archive &ar);

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** Named collection of statistics that renders a combined report. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Called by StatBase constructor. */
    void registerStat(StatBase *stat);

    /** All registered stats, in registration order. */
    const std::vector<StatBase *> &stats() const { return stats_; }

    /** Find a stat by name; null if absent. */
    const StatBase *find(const std::string &name) const;

    /** Render all stats as a gem5-style text block. */
    std::string report() const;

    /** Reset every stat in the group. */
    void resetAll();

  private:
    std::string name_;
    std::vector<StatBase *> stats_;
};

} // namespace insure::sim

#endif // INSURE_SIM_STATS_HH
