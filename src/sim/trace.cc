#include "sim/trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure::sim {

Trace::Trace(std::vector<std::string> columns) : columns_(std::move(columns))
{
    if (columns_.empty())
        fatal("Trace: at least one column is required");
}

void
Trace::append(const std::vector<double> &row)
{
    if (row.size() != columns_.size())
        fatal("Trace: row has %zu values, expected %zu", row.size(),
              columns_.size());
    if (!rows_.empty() && row[0] < rows_.back()[0]) {
        fatal("Trace: first column must be non-decreasing "
              "(row %zu: %g < %g)",
              rows_.size(), row[0], rows_.back()[0]);
    }
    rows_.push_back(row);
}

int
Trace::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (columns_[i] == name)
            return static_cast<int>(i);
    }
    return -1;
}

std::vector<double>
Trace::column(const std::string &name) const
{
    const int idx = columnIndex(name);
    if (idx < 0)
        fatal("Trace: no column named '%s'", name.c_str());
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const auto &r : rows_)
        out.push_back(r[idx]);
    return out;
}

double
Trace::at(std::size_t r, const std::string &name) const
{
    const int idx = columnIndex(name);
    if (idx < 0)
        fatal("Trace: no column named '%s'", name.c_str());
    if (r >= rows_.size())
        fatal("Trace: row %zu out of range (%zu rows)", r, rows_.size());
    return rows_[r][idx];
}

std::size_t
Trace::lowerSegment(double x) const
{
    // Binary search over the (sorted) first column. Invariant:
    // rows_[lo][0] <= x < rows_[hi][0], so the final lo is the unique
    // segment whose right edge lies strictly beyond x (duplicates of a
    // timestamp all fall to the left of it).
    std::size_t lo = 0;
    std::size_t hi = rows_.size() - 1;
    while (hi - lo > 1) {
        const std::size_t mid = (lo + hi) / 2;
        if (rows_[mid][0] <= x)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

double
Trace::interpolateSegment(std::size_t lo, double x, int idx) const
{
    const double x0 = rows_[lo][0];
    const double x1 = rows_[lo + 1][0];
    const double y0 = rows_[lo][idx];
    const double y1 = rows_[lo + 1][idx];
    if (x1 <= x0)
        return y0;
    const double t = (x - x0) / (x1 - x0);
    return y0 + t * (y1 - y0);
}

double
Trace::interpolate(double x, const std::string &name) const
{
    const int idx = columnIndex(name);
    if (idx < 0)
        fatal("Trace: no column named '%s'", name.c_str());
    if (rows_.empty())
        fatal("Trace: interpolate on empty trace");
    if (x <= rows_.front()[0])
        return rows_.front()[idx];
    if (x >= rows_.back()[0])
        return rows_.back()[idx];
    return interpolateSegment(lowerSegment(x), x, idx);
}

Trace::Cursor::Cursor(const Trace &trace, const std::string &column)
    : trace_(&trace), idx_(trace.columnIndex(column))
{
    if (idx_ < 0)
        fatal("Trace::Cursor: no column named '%s'", column.c_str());
}

double
Trace::Cursor::sample(double x)
{
    if (trace_ == nullptr)
        fatal("Trace::Cursor: sample() on a detached cursor");
    const auto &rows = trace_->rows_;
    if (rows.empty())
        fatal("Trace::Cursor: sample on empty trace");
    if (x <= rows.front()[0]) {
        pos_ = 0;
        return rows.front()[idx_];
    }
    if (x >= rows.back()[0]) {
        pos_ = rows.size() - 1;
        return rows.back()[idx_];
    }
    // pos_ may point past the in-range segments after an end-point clamp
    // or a backward seek; re-anchor with the binary search, then walk.
    if (pos_ + 1 >= rows.size() || rows[pos_][0] > x)
        pos_ = trace_->lowerSegment(x);
    // Forward walk: with rows[pos_][0] <= x < rows.back()[0] the strictly
    // greater right edge exists, so the walk stops before the last row.
    while (rows[pos_ + 1][0] <= x)
        ++pos_;
    return trace_->interpolateSegment(pos_, x, idx_);
}

void
Trace::writeCsv(std::ostream &os) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i)
        os << (i ? "," : "") << columns_[i];
    os << '\n';
    os.precision(10);
    for (const auto &r : rows_) {
        for (std::size_t i = 0; i < r.size(); ++i)
            os << (i ? "," : "") << r[i];
        os << '\n';
    }
}

void
Trace::saveCsv(const std::string &path) const
{
    // Atomic: a crash mid-write can never leave a truncated CSV behind.
    std::ostringstream os;
    writeCsv(os);
    try {
        snapshot::atomicWriteFile(path, os.str());
    } catch (const snapshot::SnapshotError &e) {
        fatal("Trace: cannot write '%s': %s", path.c_str(), e.what());
    }
}

Trace
Trace::readCsv(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line))
        fatal("Trace: empty CSV input");
    std::vector<std::string> cols;
    {
        std::stringstream ss(line);
        std::string field;
        while (std::getline(ss, field, ','))
            cols.push_back(field);
    }
    Trace t(cols);
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::vector<double> row;
        row.reserve(cols.size());
        std::stringstream ss(line);
        std::string field;
        while (std::getline(ss, field, ',')) {
            try {
                row.push_back(std::stod(field));
            } catch (...) {
                fatal("Trace: bad number '%s' at CSV line %zu",
                      field.c_str(), lineno);
            }
        }
        t.append(row);
    }
    return t;
}

Trace
Trace::loadCsv(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("Trace: cannot open '%s' for reading", path.c_str());
    return readCsv(is);
}

void
Trace::save(snapshot::Archive &ar) const
{
    ar.section("trace");
    ar.putSize(columns_.size());
    ar.putSize(rows_.size());
    for (const auto &row : rows_) {
        for (double v : row)
            ar.putF64(v);
    }
}

void
Trace::load(snapshot::Archive &ar)
{
    ar.section("trace");
    if (ar.getSize() != columns_.size())
        throw snapshot::SnapshotError(
            "Trace: column count differs from snapshot");
    const std::size_t n = ar.getSize();
    rows_.clear();
    rows_.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
        std::vector<double> row(columns_.size());
        for (double &v : row)
            v = ar.getF64();
        rows_.push_back(std::move(row));
    }
}

} // namespace insure::sim
