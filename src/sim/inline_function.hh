/**
 * @file
 * Small-buffer-optimised move-only callable.
 *
 * The event queue schedules hundreds of thousands of callbacks per
 * simulated day; std::function's type erasure is convenient but its heap
 * fallback and two-pointer indirection are measurable there. InlineFunction
 * stores callables up to a fixed capture size inline (no allocation, one
 * indirect call to invoke) and transparently falls back to the heap for
 * oversized captures, so the API stays as general as std::function.
 */

#ifndef INSURE_SIM_INLINE_FUNCTION_HH
#define INSURE_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace insure::sim {

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

/**
 * Move-only callable with @p Capacity bytes of inline storage. Callables
 * whose size or alignment exceed the inline buffer are heap-allocated, so
 * any callable is accepted; the simulator's hot-path lambdas (a captured
 * `this`, a reference or two) always stay inline.
 */
template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    InlineFunction() = default;

    /** Wrap any callable; intentionally implicit, like std::function. */
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&f) // NOLINT(google-explicit-constructor)
    {
        emplace(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Destroy the held callable (if any); leaves the function empty. */
    void
    reset()
    {
        if (ops_) {
            if (ops_->destroy)
                ops_->destroy(&storage_);
            ops_ = nullptr;
        }
    }

    /** True when a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(Args... args) const
    {
        return ops_->invoke(&storage_, std::forward<Args>(args)...);
    }

  private:
    /**
     * Per-type operation table (one static instance per callable type).
     * For trivially copyable inline callables — the event queue's usual
     * diet of pointer-capturing lambdas — move and destroy are null:
     * relocation is a memcpy and destruction a no-op, with no indirect
     * call on either.
     */
    struct Ops {
        R (*invoke)(void *, Args...);
        void (*move)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    template <typename F>
    void
    emplace(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn> && std::is_trivially_copyable_v<Fn>) {
            ::new (static_cast<void *>(&storage_))
                Fn(std::forward<F>(f));
            static const Ops ops = {
                [](void *s, Args... args) -> R {
                    return (*std::launder(reinterpret_cast<Fn *>(s)))(
                        std::forward<Args>(args)...);
                },
                nullptr, // relocate by memcpy
                nullptr, // trivially destructible
            };
            ops_ = &ops;
        } else if constexpr (fitsInline<Fn>) {
            ::new (static_cast<void *>(&storage_))
                Fn(std::forward<F>(f));
            static const Ops ops = {
                [](void *s, Args... args) -> R {
                    return (*std::launder(reinterpret_cast<Fn *>(s)))(
                        std::forward<Args>(args)...);
                },
                [](void *dst, void *src) {
                    Fn *from = std::launder(reinterpret_cast<Fn *>(src));
                    ::new (dst) Fn(std::move(*from));
                    from->~Fn();
                },
                [](void *s) {
                    std::launder(reinterpret_cast<Fn *>(s))->~Fn();
                },
            };
            ops_ = &ops;
        } else {
            // Heap fallback: the buffer holds a single owning pointer.
            ::new (static_cast<void *>(&storage_))
                Fn *(new Fn(std::forward<F>(f)));
            static const Ops ops = {
                [](void *s, Args... args) -> R {
                    return (**std::launder(reinterpret_cast<Fn **>(s)))(
                        std::forward<Args>(args)...);
                },
                [](void *dst, void *src) {
                    Fn **from = std::launder(
                        reinterpret_cast<Fn **>(src));
                    ::new (dst) Fn *(*from);
                    *from = nullptr;
                },
                [](void *s) {
                    delete *std::launder(reinterpret_cast<Fn **>(s));
                },
            };
            ops_ = &ops;
        }
    }

    void
    moveFrom(InlineFunction &other)
    {
        if (other.ops_) {
            if (other.ops_->move)
                other.ops_->move(&storage_, &other.storage_);
            else
                std::memcpy(&storage_, &other.storage_, sizeof(storage_));
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) mutable
        unsigned char storage_[Capacity < sizeof(void *) ? sizeof(void *)
                                                         : Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace insure::sim

#endif // INSURE_SIM_INLINE_FUNCTION_HH
