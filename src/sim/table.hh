/**
 * @file
 * Plain-text table formatting for benchmark reports.
 *
 * Every bench binary reproduces a paper table or figure by printing an
 * aligned text table; TextTable keeps that output consistent.
 */

#ifndef INSURE_SIM_TABLE_HH
#define INSURE_SIM_TABLE_HH

#include <string>
#include <vector>

namespace insure::sim {

/** Simple aligned text table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row of pre-formatted cells (must match header count). */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision significant decimals. */
    static std::string num(double v, int precision = 2);

    /** Format a percentage (0.42 -> "42.0%"). */
    static std::string percent(double frac, int precision = 1);

    /** Format a dollar amount with thousands separators. */
    static std::string dollars(double v);

    /** Render the table with a title line and separators. */
    std::string render(const std::string &title = "") const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace insure::sim

#endif // INSURE_SIM_TABLE_HH
