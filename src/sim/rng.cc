#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"
#include "snapshot/archive.hh"

namespace insure {

namespace {

/** SplitMix64 step, used to expand the user seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

Rng
Rng::fromSeed(std::uint64_t seed)
{
    return Rng(seed);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    if (lo > hi)
        panic("Rng::uniformInt: empty range [%d, %d]", lo, hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
    return lo + static_cast<int>(next() % span);
}

double
Rng::normal()
{
    if (haveCached_) {
        haveCached_ = false;
        return cached_;
    }
    // Box-Muller; u1 is kept away from zero for the logarithm.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    haveCached_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        panic("Rng::exponential: rate must be positive (got %f)", rate);
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(splitSeed());
}

std::uint64_t
Rng::splitSeed()
{
    return next() ^ 0xA3EC4F0E62C3D956ULL;
}

Rng
Rng::derive(std::uint64_t tag) const
{
    return Rng(deriveSeed(tag));
}

std::uint64_t
Rng::deriveSeed(std::uint64_t tag) const
{
    // Pure function of (state, tag): the full 256-bit state is folded
    // with the tag through SplitMix64 finalisers. Unlike splitSeed()
    // this never calls next(), so the parent stream is untouched.
    std::uint64_t x = tag ^ 0xD96EB1A810CAAF5FULL;
    std::uint64_t h = splitmix64(x);
    for (const std::uint64_t s : s_) {
        x ^= s;
        h = rotl(h, 23) ^ splitmix64(x);
    }
    return h;
}

RngState
Rng::state() const
{
    RngState st;
    for (int i = 0; i < 4; ++i)
        st.s[i] = s_[i];
    st.haveCached = haveCached_;
    st.cached = cached_;
    return st;
}

void
Rng::setState(const RngState &st)
{
    for (int i = 0; i < 4; ++i)
        s_[i] = st.s[i];
    haveCached_ = st.haveCached;
    cached_ = st.cached;
}

void
Rng::save(snapshot::Archive &ar) const
{
    ar.section("rng");
    for (const std::uint64_t s : s_)
        ar.putU64(s);
    ar.putBool(haveCached_);
    ar.putF64(cached_);
}

void
Rng::load(snapshot::Archive &ar)
{
    ar.section("rng");
    for (auto &s : s_)
        s = ar.getU64();
    haveCached_ = ar.getBool();
    cached_ = ar.getF64();
}

} // namespace insure
