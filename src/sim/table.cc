#include "sim/table.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace insure::sim {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable: at least one column is required");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("TextTable: row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::percent(double frac, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, frac * 100.0);
    return buf;
}

std::string
TextTable::dollars(double v)
{
    const bool neg = v < 0;
    auto cents = static_cast<long long>(std::llround(std::fabs(v) * 100));
    const long long whole = cents / 100;
    std::string digits = std::to_string(whole);
    std::string grouped;
    int n = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (n && n % 3 == 0)
            grouped.push_back(',');
        grouped.push_back(*it);
        ++n;
    }
    std::string out(grouped.rbegin(), grouped.rend());
    return std::string(neg ? "-$" : "$") + out;
}

std::string
TextTable::render(const std::string &title) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::ostringstream os;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c ? "  " : "");
            os << cells[c];
            os << std::string(widths[c] - cells[c].size(), ' ');
        }
        return os.str();
    };

    std::size_t total = 0;
    for (auto w : widths)
        total += w;
    total += 2 * (widths.size() - 1);

    std::ostringstream os;
    if (!title.empty())
        os << title << '\n';
    os << renderRow(headers_) << '\n';
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        os << renderRow(row) << '\n';
    return os.str();
}

} // namespace insure::sim
