/**
 * @file
 * Top-level simulation container.
 *
 * A Simulation owns the event queue and a registry of named components.
 * Components attach periodic tasks or one-shot events to the queue; the
 * Simulation drives everything to a time horizon and then finalises.
 */

#ifndef INSURE_SIM_SIMULATION_HH
#define INSURE_SIM_SIMULATION_HH

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::sim {

class Simulation;

/**
 * Base class for simulated subsystems. A component is registered with its
 * Simulation at construction, receives startup() once before time advances
 * and finalize() once after the run completes.
 */
class Component
{
  public:
    /**
     * @param sim owning simulation
     * @param name unique hierarchical name (e.g. "battery.unit0")
     */
    Component(Simulation &sim, std::string name);
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    const std::string &name() const { return name_; }

    /** Owning simulation. */
    Simulation &sim() { return sim_; }

    /** Owning simulation (const). */
    const Simulation &sim() const { return sim_; }

    /** Called once before the first event executes. */
    virtual void startup() {}

    /** Called once after the run ends. */
    virtual void finalize() {}

  private:
    Simulation &sim_;
    std::string name_;
};

/** Owns the clock, event queue, root RNG and component registry. */
class Simulation
{
  public:
    /** @param seed root seed; per-component streams derive from it. */
    explicit Simulation(std::uint64_t seed = kDefaultSeed);

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** The event queue driving this simulation. */
    EventQueue &events() { return events_; }

    /** Current simulated time, seconds. */
    Seconds now() const { return events_.now(); }

    /** Derive an independent RNG stream (deterministic order-dependent). */
    Rng makeRng() { return root_.split(); }

    /**
     * The root seed this simulation was constructed with. Subsystems
     * that must not perturb the ordinal makeRng() sequence derive their
     * streams from it with Rng::derive and a streams:: tag instead.
     */
    std::uint64_t seed() const { return seed_; }

    /** Called by Component's constructor. */
    void registerComponent(Component *c);

    /** Look up a component by name; null if absent. */
    Component *find(const std::string &name) const;

    /**
     * Run to @p horizon seconds: issues startup() on first call, executes
     * events, then leaves the clock at the horizon. May be called multiple
     * times with increasing horizons; finalize() fires via finish().
     */
    void runUntil(Seconds horizon);

    /** Invoke finalize() on all components (idempotent). */
    void finish();

    /** Total events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /**
     * Serialize the clock, root RNG stream and run flags. Component
     * state is serialized by the components' owners (the Snapshotter
     * routes the whole plant), not by the registry.
     */
    void save(snapshot::Archive &ar) const;

    /**
     * Restore onto a freshly constructed simulation whose components
     * have been rebuilt from the identical configuration. Marks the
     * run as started *without* re-issuing startup(): every pending
     * event is re-created by its owning component's load() at the
     * exact saved (when, key), so a resumed run dispatches in the
     * original order.
     */
    void load(snapshot::Archive &ar);

  private:
    EventQueue events_;
    Rng root_;
    std::uint64_t seed_ = kDefaultSeed;
    std::vector<Component *> components_;
    bool started_ = false;
    bool finished_ = false;
    std::uint64_t executed_ = 0;
};

} // namespace insure::sim

#endif // INSURE_SIM_SIMULATION_HH
