#include "solar/irradiance.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

namespace insure::solar {

const char *
dayClassName(DayClass c)
{
    switch (c) {
      case DayClass::Sunny: return "sunny";
      case DayClass::Cloudy: return "cloudy";
      case DayClass::Rainy: return "rainy";
    }
    return "?";
}

IrradianceParams
irradianceParamsFor(DayClass c)
{
    IrradianceParams p;
    switch (c) {
      case DayClass::Sunny:
        p.clearDwell = 4200.0;
        p.cloudDwell = 180.0;
        p.cloudTransmittance = 0.70;
        p.cloudSpread = 0.10;
        p.baseTransmittance = 1.0;
        break;
      case DayClass::Cloudy:
        p.clearDwell = 900.0;
        p.cloudDwell = 700.0;
        p.cloudTransmittance = 0.40;
        p.cloudSpread = 0.22;
        p.baseTransmittance = 0.92;
        break;
      case DayClass::Rainy:
        p.clearDwell = 500.0;
        p.cloudDwell = 2200.0;
        p.cloudTransmittance = 0.25;
        p.cloudSpread = 0.12;
        p.baseTransmittance = 0.55;
        break;
    }
    return p;
}

IrradianceModel::IrradianceModel(const IrradianceParams &params, Rng rng)
    : params_(params), rng_(rng)
{
    scheduleTransition(0.0);
}

void
IrradianceModel::scheduleTransition(Seconds now)
{
    const Seconds dwell =
        inCloud_ ? params_.cloudDwell : params_.clearDwell;
    nextTransition_ = now + rng_.exponential(1.0 / std::max(1.0, dwell));
    if (inCloud_) {
        target_ = std::clamp(
            rng_.normal(params_.cloudTransmittance, params_.cloudSpread),
            0.02, 0.95);
    } else {
        target_ = 1.0;
    }
}

double
IrradianceModel::clearSky(Seconds now) const
{
    if (now <= params_.sunrise || now >= params_.sunset)
        return 0.0;
    const double x =
        (now - params_.sunrise) / (params_.sunset - params_.sunrise);
    return std::pow(std::sin(M_PI * x), params_.shape);
}

void
IrradianceModel::step(Seconds now, Seconds dt)
{
    while (now >= nextTransition_) {
        inCloud_ = !inCloud_;
        scheduleTransition(nextTransition_);
    }
    // First-order low-pass toward the current transmittance target.
    const double alpha =
        1.0 - std::exp(-dt / std::max(1.0, params_.smoothing));
    smoothed_ += alpha * (target_ - smoothed_);
    value_ = clearSky(now) * smoothed_ * params_.baseTransmittance;
}


void
IrradianceModel::save(snapshot::Archive &ar) const
{
    ar.section("irradiance");
    rng_.save(ar);
    ar.putBool(inCloud_);
    ar.putF64(nextTransition_);
    ar.putF64(target_);
    ar.putF64(smoothed_);
    ar.putF64(value_);
}

void
IrradianceModel::load(snapshot::Archive &ar)
{
    ar.section("irradiance");
    rng_.load(ar);
    inCloud_ = ar.getBool();
    nextTransition_ = ar.getF64();
    target_ = ar.getF64();
    smoothed_ = ar.getF64();
    value_ = ar.getF64();
}
} // namespace insure::solar
