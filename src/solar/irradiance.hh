/**
 * @file
 * Solar irradiance model: deterministic clear-sky envelope modulated by a
 * stochastic cloud process.
 *
 * The clear-sky envelope is a sine-power day curve between sunrise and
 * sunset. Cloud cover follows a two-state (clear / cloud) continuous-time
 * Markov chain with exponentially distributed dwell times; within a cloud
 * event the transmittance is drawn per event and low-pass filtered, which
 * reproduces both slow overcast days and the fast, deep fluctuations of
 * partly-cloudy days (paper Fig. 15/16 Region E).
 */

#ifndef INSURE_SOLAR_IRRADIANCE_HH
#define INSURE_SOLAR_IRRADIANCE_HH

#include "sim/rng.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::solar {

/** Weather classes used throughout the evaluation (paper Table 6). */
enum class DayClass {
    Sunny,
    Cloudy,
    Rainy,
};

/** Printable name of a day class. */
const char *dayClassName(DayClass c);

/** Parameters of the irradiance process. */
struct IrradianceParams {
    /** Sunrise, seconds after midnight (prototype logs: ~6:54 AM). */
    Seconds sunrise = 6.9 * units::secPerHour;
    /** Sunset, seconds after midnight (~8:00 PM). */
    Seconds sunset = 20.0 * units::secPerHour;
    /** Shape exponent of the day curve (1 = pure sine). */
    double shape = 1.2;
    /** Mean dwell time in the clear state, seconds. */
    Seconds clearDwell = 1800.0;
    /** Mean dwell time in a cloud event, seconds. */
    Seconds cloudDwell = 420.0;
    /** Mean transmittance during a cloud event, in [0, 1]. */
    double cloudTransmittance = 0.45;
    /** Spread of per-event transmittance draws. */
    double cloudSpread = 0.20;
    /** Baseline (all-day) attenuation, in [0, 1]. */
    double baseTransmittance = 1.0;
    /** Low-pass time constant for transmittance changes, seconds. */
    Seconds smoothing = 30.0;
};

/** Preset parameters for a weather class. */
IrradianceParams irradianceParamsFor(DayClass c);

/**
 * Stateful irradiance process. Call step(dt) once per physics tick; the
 * value() is the current irradiance fraction in [0, 1] relative to the
 * clear-sky peak.
 */
class IrradianceModel
{
  public:
    /**
     * @param params process parameters
     * @param rng dedicated random stream (owned copy)
     */
    IrradianceModel(const IrradianceParams &params, Rng rng);

    /** Advance to absolute day time @p now (seconds after midnight). */
    void step(Seconds now, Seconds dt);

    /** Current irradiance fraction in [0, 1]. */
    double value() const { return value_; }

    /** Deterministic clear-sky fraction at @p now, in [0, 1]. */
    double clearSky(Seconds now) const;

    /** Current cloud transmittance target (before smoothing). */
    double transmittanceTarget() const { return target_; }

    /** Serialize the cloud process state and RNG stream. */
    void save(snapshot::Archive &ar) const;

    /** Restore the cloud process state and RNG stream. */
    void load(snapshot::Archive &ar);

  private:
    IrradianceParams params_;
    Rng rng_;
    bool inCloud_ = false;
    Seconds nextTransition_ = 0.0;
    double target_ = 1.0;
    double smoothed_ = 1.0;
    double value_ = 0.0;

    void scheduleTransition(Seconds now);
};

} // namespace insure::solar

#endif // INSURE_SOLAR_IRRADIANCE_HH
