/**
 * @file
 * Perturb & Observe maximum power point tracker.
 *
 * The tracker perturbs the array operating voltage by a fixed step each
 * control period and keeps moving in the direction that increased measured
 * power (paper §6.1, ref. [63]). Around the MPP this oscillates within one
 * step; under fast irradiance swings it transiently mistracks — both appear
 * as the "green peaks" of the paper's Fig. 16 Region B and the losses of
 * Region E.
 */

#ifndef INSURE_SOLAR_MPPT_HH
#define INSURE_SOLAR_MPPT_HH

#include "solar/pv_panel.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::solar {

/** Tracker tuning. */
struct MpptParams {
    /** Voltage perturbation per control period. */
    Volts stepVoltage = 1.5;
    /** Control period, seconds. */
    Seconds period = 1.0;
    /** Initial operating voltage as a fraction of open-circuit voltage. */
    double initialFraction = 0.8;
};

/** P&O tracker bound to a PV panel model. */
class MpptTracker
{
  public:
    /**
     * @param panel electrical model to operate on (must outlive tracker)
     * @param params tuning constants
     */
    MpptTracker(const PvPanel &panel, const MpptParams &params = {});

    /**
     * Run one perturb-observe cycle at irradiance fraction @p g.
     * @return the array output power at the new operating point.
     */
    Watts step(double g);

    /** Current operating voltage. */
    Volts operatingVoltage() const { return voltage_; }

    /** Output power at the last step. */
    Watts outputPower() const { return lastPower_; }

    /**
     * Tracking efficiency at irradiance @p g: output power relative to the
     * true maximum power point (1.0 = perfect).
     */
    double trackingEfficiency(double g) const;

    /** Reset to the initial operating point. */
    void reset();

    /** Serialize the operating point and perturb direction. */
    void save(snapshot::Archive &ar) const;

    /** Restore the operating point and perturb direction. */
    void load(snapshot::Archive &ar);

  private:
    const PvPanel &panel_;
    MpptParams params_;
    Volts voltage_;
    Watts lastPower_ = 0.0;
    double direction_ = 1.0;
};

} // namespace insure::solar

#endif // INSURE_SOLAR_MPPT_HH
