#include "solar/solar_source.hh"

#include "snapshot/archive.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::solar {

SolarSource::SolarSource(DayClass day, Rng rng, PvPanelParams panel,
                         MpptParams mppt)
    : model_(std::make_unique<Model>(day, rng, panel, mppt))
{
}

SolarSource::SolarSource(sim::Trace trace) : trace_(std::move(trace))
{
    if (trace_->columnIndex("power_w") < 0)
        fatal("SolarSource: trace must have a 'power_w' column");
    if (trace_->rows() < 2)
        fatal("SolarSource: trace needs at least two samples");
    // Traces repeat on whole-day boundaries (a one-day trace replays
    // daily; a multi-day campaign trace replays after its last day).
    const Seconds last = trace_->row(trace_->rows() - 1)[0];
    const double days = std::max(1.0, std::ceil(last / units::secPerDay));
    traceSpan_ = days * units::secPerDay;
}

void
SolarSource::attachCursors() const
{
    stepCursor_ = sim::Trace::Cursor(*trace_, "power_w");
    forecastCursor_ = sim::Trace::Cursor(*trace_, "power_w");
    cursorTrace_ = &*trace_;
}

double
SolarSource::irradiance() const
{
    return model_ ? model_->irradiance.value() : 0.0;
}

Watts
SolarSource::forecastAvg(Seconds day_time, Seconds horizon) const
{
    if (horizon <= 0.0)
        return power_;
    const Seconds step = 300.0;
    double sum = 0.0;
    int n = 0;
    for (Seconds t = day_time; t < day_time + horizon; t += step) {
        if (trace_) {
            ensureCursors();
            sum += forecastCursor_.sample(std::fmod(t, traceSpan_));
        } else {
            // Clear-sky envelope at the panel's rated output, attenuated
            // by the currently observed transmittance.
            const Seconds wrapped = std::fmod(t, units::secPerDay);
            const double clear = model_->irradiance.clearSky(wrapped);
            sum += model_->panel.maxPower(
                clear * model_->irradiance.transmittanceTarget());
        }
        ++n;
    }
    return n ? sum / n : power_;
}

double
SolarSource::trackingEfficiency() const
{
    if (!model_)
        return 1.0;
    return model_->mppt.trackingEfficiency(model_->irradiance.value());
}

sim::Trace
SolarSource::generateDayTrace(DayClass day, std::uint64_t seed,
                              PvPanelParams panel, Seconds resolution)
{
    SolarSource src(day, Rng(seed), panel);
    sim::Trace trace({"time_s", "power_w"});
    for (Seconds t = 0.0; t < units::secPerDay; t += resolution) {
        src.step(t, resolution);
        trace.append({t, src.availablePower()});
    }
    return trace;
}

WattHours
SolarSource::traceEnergyWh(const sim::Trace &trace)
{
    WattHours e = 0.0;
    for (std::size_t r = 1; r < trace.rows(); ++r) {
        const double dt = trace.row(r)[0] - trace.row(r - 1)[0];
        const double p =
            0.5 * (trace.at(r, "power_w") + trace.at(r - 1, "power_w"));
        e += units::energyWh(p, dt);
    }
    return e;
}

sim::Trace
SolarSource::scaleTraceToEnergy(const sim::Trace &trace, WattHours target_wh)
{
    const WattHours current = traceEnergyWh(trace);
    if (current <= 0.0)
        fatal("SolarSource: cannot scale a zero-energy trace");
    const double k = target_wh / current;
    sim::Trace out(trace.columns());
    const int pcol = trace.columnIndex("power_w");
    for (std::size_t r = 0; r < trace.rows(); ++r) {
        auto row = trace.row(r);
        row[pcol] *= k;
        out.append(row);
    }
    return out;
}


void
SolarSource::save(snapshot::Archive &ar) const
{
    ar.section("solar_source");
    ar.putBool(model_ != nullptr);
    if (model_) {
        model_->irradiance.save(ar);
        model_->mppt.save(ar);
    }
    ar.putF64(power_);
    ar.putF64(offeredWh_);
}

void
SolarSource::load(snapshot::Archive &ar)
{
    ar.section("solar_source");
    if (ar.getBool() != (model_ != nullptr))
        throw snapshot::SnapshotError(
            "SolarSource: model/trace mode differs from snapshot");
    if (model_) {
        model_->irradiance.load(ar);
        model_->mppt.load(ar);
    }
    power_ = ar.getF64();
    offeredWh_ = ar.getF64();
}
} // namespace insure::solar
