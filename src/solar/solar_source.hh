/**
 * @file
 * The standalone solar power supply: irradiance + PV array + MPPT, or a
 * replayed power trace.
 *
 * The paper evaluates micro-benchmarks by replaying recorded solar traces
 * through the real charger ("high" ~1114 W and "low" ~427 W average over
 * 7:00-20:00, Fig. 15) and runs full-system experiments live. Both modes
 * are supported: Model mode generates power from the weather process;
 * Trace mode replays a (time, power) CSV.
 */

#ifndef INSURE_SOLAR_SOLAR_SOURCE_HH
#define INSURE_SOLAR_SOLAR_SOURCE_HH

#include <cmath>
#include <memory>
#include <optional>

#include "sim/rng.hh"
#include "sim/units.hh"
#include "sim/trace.hh"
#include "solar/irradiance.hh"
#include "solar/mppt.hh"
#include "solar/pv_panel.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::solar {

/** Unified power-supply front-end for the in-situ system. */
class SolarSource
{
  public:
    /** Build a model-driven source for one day of weather class @p day. */
    SolarSource(DayClass day, Rng rng, PvPanelParams panel = {},
                MpptParams mppt = {});

    /** Build a trace-replay source (columns: time_s, power_w). */
    explicit SolarSource(sim::Trace trace);

    /**
     * Advance to absolute simulation time @p now. Model mode is
     * day-periodic; trace mode repeats the trace after its last whole
     * day, so multi-day campaign traces replay correctly. Called every
     * physics tick, so inline.
     */
    void
    step(Seconds now, Seconds dt)
    {
        if (model_) {
            model_->irradiance.step(std::fmod(now, units::secPerDay), dt);
            power_ = model_->mppt.step(model_->irradiance.value());
        } else {
            ensureCursors();
            power_ = stepCursor_.sample(std::fmod(now, traceSpan_));
        }
        offeredWh_ += units::energyWh(power_, dt);
    }

    /** Power currently available from the supply, watts. */
    Watts availablePower() const { return power_; }

    /** Cumulative generated energy offered by the supply, watt-hours. */
    WattHours energyOfferedWh() const { return offeredWh_; }

    /** Irradiance fraction (model mode; 0 in trace mode). */
    double irradiance() const;

    /**
     * Forecast of the average available power over the next @p horizon
     * seconds starting at day time @p day_time. Trace mode integrates the
     * (known) trace — the paper's controllers assume day-ahead irradiance
     * prediction (GreenSlot-style); model mode extrapolates the clear-sky
     * curve scaled by the current cloud transmittance.
     */
    Watts forecastAvg(Seconds day_time, Seconds horizon) const;

    /** MPPT tracking efficiency right now (1.0 in trace mode). */
    double trackingEfficiency() const;

    /**
     * Generate a one-day (time_s, power_w) trace by running the model at
     * @p resolution seconds per sample.
     */
    static sim::Trace generateDayTrace(DayClass day, std::uint64_t seed,
                                       PvPanelParams panel = {},
                                       Seconds resolution = 10.0);

    /**
     * Uniformly rescale a (time_s, power_w) trace so it delivers
     * @p target_wh watt-hours over its duration.
     */
    static sim::Trace scaleTraceToEnergy(const sim::Trace &trace,
                                         WattHours target_wh);

    /** Total energy of a (time_s, power_w) trace, watt-hours. */
    static WattHours traceEnergyWh(const sim::Trace &trace);

    /**
     * Serialize supply state: power, offered-energy counter, and (model
     * mode) the weather process + MPPT operating point. The trace itself
     * is rebuilt from the experiment config on restore; cursors are pure
     * accelerators and re-anchor lazily.
     */
    void save(snapshot::Archive &ar) const;

    /** Restore supply state; the mode must match the snapshot. */
    void load(snapshot::Archive &ar);

  private:
    struct Model {
        IrradianceModel irradiance;
        PvPanel panel;
        MpptTracker mppt;

        Model(DayClass day, Rng rng, PvPanelParams panelParams,
              MpptParams mpptParams)
            : irradiance(irradianceParamsFor(day), rng),
              panel(panelParams), mppt(panel, mpptParams)
        {
        }
    };

    std::unique_ptr<Model> model_;
    std::optional<sim::Trace> trace_;
    Seconds traceSpan_ = units::secPerDay;
    Watts power_ = 0.0;
    WattHours offeredWh_ = 0.0;

    /**
     * Per-caller trace cursors (see sim::Trace::Cursor): step() and
     * forecastAvg() each sweep time mostly forward, so each keeps its own
     * cursor and pays a binary search only on the day-wrap backward seek.
     * Attached lazily so a moved-from/moved-into source re-anchors; the
     * steady-state check is a single pointer compare, so inline.
     */
    void
    ensureCursors() const
    {
        if (cursorTrace_ != &*trace_)
            attachCursors();
    }
    void attachCursors() const;
    mutable sim::Trace::Cursor stepCursor_;
    mutable sim::Trace::Cursor forecastCursor_;
    mutable const sim::Trace *cursorTrace_ = nullptr;
};

} // namespace insure::solar

#endif // INSURE_SOLAR_SOLAR_SOURCE_HH
