#include "solar/mppt.hh"

#include "snapshot/archive.hh"

#include <algorithm>

namespace insure::solar {

MpptTracker::MpptTracker(const PvPanel &panel, const MpptParams &params)
    : panel_(panel), params_(params)
{
    reset();
}

void
MpptTracker::reset()
{
    voltage_ =
        params_.initialFraction * panel_.params().openCircuitVoltage;
    lastPower_ = 0.0;
    direction_ = 1.0;
}

Watts
MpptTracker::step(double g)
{
    // Dead output (night, or parked on the open-circuit rail): drift the
    // operating point back toward the nominal MPP so tracking restarts
    // cleanly at dawn, as real controllers do.
    if (lastPower_ <= 1e-6 && panel_.power(g, voltage_) <= 1e-6) {
        const Volts home =
            params_.initialFraction * panel_.params().openCircuitVoltage;
        voltage_ += std::clamp(home - voltage_, -4.0 * params_.stepVoltage,
                               4.0 * params_.stepVoltage);
        lastPower_ = panel_.power(g, voltage_);
        return lastPower_;
    }

    // Observe power at the perturbed operating point; reverse direction if
    // the last move reduced output.
    const Volts candidate = std::clamp(
        voltage_ + direction_ * params_.stepVoltage, 1.0,
        panel_.params().openCircuitVoltage);
    const Watts p = panel_.power(g, candidate);
    if (p < lastPower_)
        direction_ = -direction_;
    voltage_ = candidate;
    lastPower_ = p;
    return p;
}

double
MpptTracker::trackingEfficiency(double g) const
{
    const Watts ideal = panel_.maxPower(g);
    if (ideal <= 1e-9)
        return 1.0;
    return std::clamp(lastPower_ / ideal, 0.0, 1.0);
}


void
MpptTracker::save(snapshot::Archive &ar) const
{
    ar.section("mppt");
    ar.putF64(voltage_);
    ar.putF64(lastPower_);
    ar.putF64(direction_);
}

void
MpptTracker::load(snapshot::Archive &ar)
{
    ar.section("mppt");
    voltage_ = ar.getF64();
    lastPower_ = ar.getF64();
    direction_ = ar.getF64();
}
} // namespace insure::solar
