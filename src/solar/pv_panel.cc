#include "solar/pv_panel.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::solar {

namespace {

/** Golden-section maximisation of a unimodal function on [lo, hi]. */
template <typename F>
double
goldenMax(F f, double lo, double hi, double tol = 1e-3)
{
    const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
    double a = lo;
    double b = hi;
    double x1 = b - phi * (b - a);
    double x2 = a + phi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    while (b - a > tol) {
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + phi * (b - a);
            f2 = f(x2);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - phi * (b - a);
            f1 = f(x1);
        }
    }
    return (a + b) / 2.0;
}

} // namespace

PvPanel::PvPanel(const PvPanelParams &params) : params_(params)
{
    if (params_.ratedPower <= 0.0 || params_.openCircuitVoltage <= 0.0 ||
        params_.diodeScale <= 0.0)
        fatal("PvPanel: invalid parameters");

    // Calibrate the photocurrent so the true MPP at full irradiance equals
    // the rated power. Power is linear in the current scale, so one pass
    // with a unit photocurrent suffices.
    iscFull_ = 1.0;
    const Watts raw = maxPower(1.0);
    iscFull_ = params_.ratedPower / raw;
}

Amperes
PvPanel::shortCircuitCurrent(double g) const
{
    return iscFull_ * std::clamp(g, 0.0, 1.0);
}

Amperes
PvPanel::current(double g, Volts v) const
{
    g = std::clamp(g, 0.0, 1.0);
    if (g <= 0.0 || v >= params_.openCircuitVoltage * 1.2)
        return 0.0;
    const double i0 =
        iscFull_ /
        (std::exp(params_.openCircuitVoltage / params_.diodeScale) - 1.0);
    const Amperes i =
        iscFull_ * g - i0 * (std::exp(v / params_.diodeScale) - 1.0);
    return std::max(0.0, i);
}

Watts
PvPanel::power(double g, Volts v) const
{
    if (v <= 0.0)
        return 0.0;
    return current(g, v) * v * (1.0 - params_.seriesLoss);
}

Volts
PvPanel::maxPowerVoltage(double g) const
{
    return goldenMax([&](double v) { return power(g, v); }, 0.0,
                     params_.openCircuitVoltage);
}

Watts
PvPanel::maxPower(double g) const
{
    return power(g, maxPowerVoltage(g));
}

} // namespace insure::solar
