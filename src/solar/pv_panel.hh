/**
 * @file
 * Photovoltaic array electrical model.
 *
 * A simplified single-diode characteristic: the photocurrent scales with
 * irradiance while the diode term fixes the voltage knee, giving the
 * familiar I-V and P-V curves with a single maximum power point whose
 * voltage drifts with irradiance. The MPPT (see mppt.hh) operates on this
 * curve; the installed capacity defaults to the prototype's 1.6 kW
 * Grape Solar array.
 */

#ifndef INSURE_SOLAR_PV_PANEL_HH
#define INSURE_SOLAR_PV_PANEL_HH

#include "sim/units.hh"

namespace insure::solar {

/** Electrical parameters of the PV array. */
struct PvPanelParams {
    /** Rated (STC) array power at full irradiance, watts. */
    Watts ratedPower = 1600.0;
    /** Open-circuit voltage at full irradiance. */
    Volts openCircuitVoltage = 120.0;
    /** Diode ideality scale: thermal-voltage equivalent of the array. */
    Volts diodeScale = 4.0;
    /** Series-loss fraction at the maximum power point. */
    double seriesLoss = 0.02;
};

/** The PV array: maps (irradiance fraction, operating voltage) to power. */
class PvPanel
{
  public:
    explicit PvPanel(const PvPanelParams &params = {});

    const PvPanelParams &params() const { return params_; }

    /**
     * Output current at irradiance fraction @p g (0..1) and terminal
     * voltage @p v. Clamped at zero (no reverse conduction).
     */
    Amperes current(double g, Volts v) const;

    /** Output power at irradiance fraction @p g and voltage @p v. */
    Watts power(double g, Volts v) const;

    /** Short-circuit current at irradiance fraction @p g. */
    Amperes shortCircuitCurrent(double g) const;

    /**
     * True maximum power point at irradiance fraction @p g, found by
     * golden-section search (reference for MPPT tracking efficiency).
     */
    Watts maxPower(double g) const;

    /** Voltage of the true maximum power point at irradiance @p g. */
    Volts maxPowerVoltage(double g) const;

  private:
    PvPanelParams params_;
    Amperes iscFull_;
};

} // namespace insure::solar

#endif // INSURE_SOLAR_PV_PANEL_HH
