#include "service/query.hh"

#include <cmath>

#include "snapshot/archive.hh"

namespace insure::service {

namespace {

/**
 * Wire version of the query/reply encodings.
 * v2: optional SLO summary block on the reply.
 */
constexpr std::uint32_t kQueryVersion = 2;

std::vector<std::uint8_t>
toBytes(const snapshot::Archive &ar)
{
    const std::string &p = ar.payload();
    return {p.begin(), p.end()};
}

snapshot::Archive
fromBytes(const std::vector<std::uint8_t> &payload)
{
    return snapshot::Archive::forLoad(
        std::string(payload.begin(), payload.end()));
}

void
requireFinite(double v, const char *field)
{
    if (!std::isfinite(v))
        throw snapshot::SnapshotError(
            std::string("what-if: non-finite field ") + field);
}

void
putOptF64(snapshot::Archive &ar, const std::optional<double> &v)
{
    ar.putBool(v.has_value());
    if (v)
        ar.putF64(*v);
}

std::optional<double>
getOptF64(snapshot::Archive &ar, const char *field)
{
    if (!ar.getBool())
        return std::nullopt;
    const double v = ar.getF64();
    requireFinite(v, field);
    return v;
}

void
requireDrained(snapshot::Archive &ar, const char *what)
{
    if (ar.remaining() != 0)
        throw snapshot::SnapshotError(
            std::string("what-if: trailing bytes after ") + what);
}

} // namespace

std::vector<std::uint8_t>
WhatIfQuery::encode() const
{
    auto ar = snapshot::Archive::forSave();
    ar.section("whatif_query");
    ar.putU32(kQueryVersion);
    ar.putF64(horizonHours);
    putOptF64(ar, dischargeBudgetAh);
    putOptF64(ar, socFloor);
    putOptF64(ar, chargedSoc);
    ar.putBool(minEligible.has_value());
    if (minEligible)
        ar.putU32(*minEligible);
    return toBytes(ar);
}

WhatIfQuery
WhatIfQuery::decode(const std::vector<std::uint8_t> &payload)
{
    auto ar = fromBytes(payload);
    ar.section("whatif_query");
    if (ar.getU32() != kQueryVersion)
        throw snapshot::SnapshotError("what-if: unknown query version");
    WhatIfQuery q;
    q.horizonHours = ar.getF64();
    requireFinite(q.horizonHours, "horizonHours");
    if (q.horizonHours <= 0.0)
        throw snapshot::SnapshotError("what-if: horizon must be positive");
    q.dischargeBudgetAh = getOptF64(ar, "dischargeBudgetAh");
    q.socFloor = getOptF64(ar, "socFloor");
    q.chargedSoc = getOptF64(ar, "chargedSoc");
    if (ar.getBool())
        q.minEligible = ar.getU32();
    requireDrained(ar, "query");
    return q;
}

void
WhatIfQuery::applyTo(core::ExperimentConfig &cfg) const
{
    if (dischargeBudgetAh)
        cfg.insure.spatial.lifetimeDischargeAh = *dischargeBudgetAh;
    if (socFloor)
        cfg.insure.temporal.socFloor = *socFloor;
    if (chargedSoc)
        cfg.insure.chargedSoc = *chargedSoc;
    if (minEligible)
        cfg.insure.spatial.minEligible = *minEligible;
}

std::vector<std::uint8_t>
WhatIfReply::encode() const
{
    auto ar = snapshot::Archive::forSave();
    ar.section("whatif_reply");
    ar.putU32(kQueryVersion);
    ar.putF64(fromSeconds);
    ar.putF64(simulatedHours);
    ar.putF64(uptime);
    ar.putF64(throughputGbPerHour);
    ar.putF64(processedGb);
    ar.putF64(greenUsedKwh);
    ar.putF64(loadKwh);
    ar.putF64(secondaryKwh);
    ar.putF64(bufferThroughputAh);
    ar.putF64(endMeanSoc);
    ar.putU64(bufferTrips);
    ar.putU64(powerFailures);
    putOptF64(ar, sloP99Seconds);
    putOptF64(ar, sloMissRate);
    putOptF64(ar, infoBatteryHitRate);
    return toBytes(ar);
}

WhatIfReply
WhatIfReply::decode(const std::vector<std::uint8_t> &payload)
{
    auto ar = fromBytes(payload);
    ar.section("whatif_reply");
    if (ar.getU32() != kQueryVersion)
        throw snapshot::SnapshotError("what-if: unknown reply version");
    WhatIfReply r;
    r.fromSeconds = ar.getF64();
    r.simulatedHours = ar.getF64();
    r.uptime = ar.getF64();
    r.throughputGbPerHour = ar.getF64();
    r.processedGb = ar.getF64();
    r.greenUsedKwh = ar.getF64();
    r.loadKwh = ar.getF64();
    r.secondaryKwh = ar.getF64();
    r.bufferThroughputAh = ar.getF64();
    r.endMeanSoc = ar.getF64();
    r.bufferTrips = ar.getU64();
    r.powerFailures = ar.getU64();
    r.sloP99Seconds = getOptF64(ar, "sloP99Seconds");
    r.sloMissRate = getOptF64(ar, "sloMissRate");
    r.infoBatteryHitRate = getOptF64(ar, "infoBatteryHitRate");
    requireDrained(ar, "reply");
    return r;
}

std::vector<std::uint8_t>
ServiceError::encode() const
{
    auto ar = snapshot::Archive::forSave();
    ar.section("service_error");
    ar.putEnum(code);
    ar.putStr(message);
    return toBytes(ar);
}

ServiceError
ServiceError::decode(const std::vector<std::uint8_t> &payload)
{
    auto ar = fromBytes(payload);
    ar.section("service_error");
    ServiceError e;
    e.code = ar.getEnum<ServiceErrorCode>(
        static_cast<std::uint32_t>(ServiceErrorCode::QueryExecutionFailed));
    e.message = ar.getStr();
    requireDrained(ar, "error");
    return e;
}

} // namespace insure::service
