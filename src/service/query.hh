/**
 * @file
 * What-if query grammar for the digital-twin service.
 *
 * A what-if query asks the twin: "from the plant's current state, what
 * happens over the next H hours if the policy knobs were set to X?"
 * The server answers by forking a snapshot of the live simulation,
 * applying the overrides to a copy of the run config (policy values
 * only — nothing that changes the construction sequence or snapshot
 * layout), stepping the fork forward and summarising the outcome.
 *
 * Payload encoding reuses the snapshot::Archive byte grammar (section
 * tags, bounds-checked reads): a malformed query fails loudly with a
 * SnapshotError, which the server maps to an Error frame. The encoding
 * is canonical — a query encodes to exactly one byte string — so the
 * encoded bytes double as the result-cache key.
 */

#ifndef INSURE_SERVICE_QUERY_HH
#define INSURE_SERVICE_QUERY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/experiment.hh"

namespace insure::service {

/** Policy overrides + horizon for one what-if simulation. */
struct WhatIfQuery {
    /** Simulate this many hours forward from the snapshot. */
    double horizonHours = 1.0;
    /**
     * Override of the SPM lifetime discharge budget DL, ampere-hours
     * (scales the paper's daily discharge threshold δD).
     */
    std::optional<double> dischargeBudgetAh;
    /** Override of the TPM shutdown SoC floor. */
    std::optional<double> socFloor;
    /** Override of the SoC at which charging cabinets reach standby. */
    std::optional<double> chargedSoc;
    /**
     * Override of the minimum number of cabinets kept discharge-
     * eligible when the SPM relaxes δD (the fast-reaction pool floor).
     */
    std::optional<unsigned> minEligible;

    /** Canonical byte encoding (also the cache-key component). */
    std::vector<std::uint8_t> encode() const;

    /**
     * Decode @p payload; throws snapshot::SnapshotError on malformed
     * bytes, a non-finite/out-of-range field or trailing garbage.
     */
    static WhatIfQuery decode(const std::vector<std::uint8_t> &payload);

    /**
     * Apply the overrides to a copy of the live run config. Only
     * policy *values* change: every field the snapshot fingerprint
     * pins (seed, duration, manager, plant shape, tick) is untouched,
     * so a live snapshot restores cleanly into the forked rig.
     */
    void applyTo(core::ExperimentConfig &cfg) const;

    bool operator==(const WhatIfQuery &o) const = default;
};

/** Outcome summary of one what-if fork. */
struct WhatIfReply {
    /** Simulated time the fork started from, seconds. */
    double fromSeconds = 0.0;
    /** Hours actually simulated (clamped to the configured run end). */
    double simulatedHours = 0.0;
    /** Fraction of work-pending time the cluster was productive. */
    double uptime = 0.0;
    /** Data processed per hour, GB/h. */
    double throughputGbPerHour = 0.0;
    /** Total data completed, GB. */
    double processedGb = 0.0;
    /** Solar energy used (direct + stored), kWh. */
    double greenUsedKwh = 0.0;
    /** Server load energy, kWh. */
    double loadKwh = 0.0;
    /** Energy drawn from the secondary feed, kWh. */
    double secondaryKwh = 0.0;
    /** Ah pushed through the e-Buffer. */
    double bufferThroughputAh = 0.0;
    /** Mean buffer state of charge at the horizon. */
    double endMeanSoc = 0.0;
    /** Buffer protection trips during the fork. */
    std::uint64_t bufferTrips = 0;
    /** Rack power-loss events during the fork. */
    std::uint64_t powerFailures = 0;

    // SLO summary (wire version 2). Present only when the forked run
    // carries an interactive request workload; absent fields decode to
    // nullopt so batch-only replies stay compact.
    /** p99 request latency at the horizon, seconds. */
    std::optional<double> sloP99Seconds;
    /** Deadline-miss rate over finalised requests, [0, 1]. */
    std::optional<double> sloMissRate;
    /** Information-battery cache hit rate, [0, 1]. */
    std::optional<double> infoBatteryHitRate;

    /** Canonical byte encoding. */
    std::vector<std::uint8_t> encode() const;

    /** Decode @p payload; throws snapshot::SnapshotError when malformed. */
    static WhatIfReply decode(const std::vector<std::uint8_t> &payload);

    bool operator==(const WhatIfReply &o) const = default;
};

/** Service-level error codes carried in Error frames. */
enum class ServiceErrorCode : std::uint32_t {
    /** Frame type byte not in the FrameType grammar. */
    UnknownFrameType = 1,
    /** What-if payload failed to decode. */
    MalformedQuery = 2,
    /**
     * The Modbus ADU produced no response (bad inner CRC or a unit id
     * the twin's PLC does not answer for). On a multi-drop serial line
     * this is silence; a request/reply stream reports it explicitly.
     */
    NoModbusResponse = 3,
    /** The what-if fork itself failed (snapshot/config mismatch). */
    QueryExecutionFailed = 4,
};

/** Error payload: code + human-readable detail. */
struct ServiceError {
    ServiceErrorCode code = ServiceErrorCode::UnknownFrameType;
    std::string message;

    std::vector<std::uint8_t> encode() const;
    static ServiceError decode(const std::vector<std::uint8_t> &payload);
};

} // namespace insure::service

#endif // INSURE_SERVICE_QUERY_HH
