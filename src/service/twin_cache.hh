/**
 * @file
 * LRU result cache for what-if queries.
 *
 * Keyed by (snapshot fingerprint, canonical query bytes): the
 * fingerprint is an FNV-1a hash of the complete serialized rig state,
 * so ANY change to the live simulation — a tick advance, a register
 * write through the service — changes the key and a stale result can
 * never be served. Values are the canonical reply payload bytes, which
 * are deterministic in the key, so concurrent fills of the same key
 * write identical bytes. External synchronisation is the caller's job
 * (the TwinServer holds its own mutex across cache calls).
 */

#ifndef INSURE_SERVICE_TWIN_CACHE_HH
#define INSURE_SERVICE_TWIN_CACHE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace insure::service {

/** Build the cache key for @p fingerprint + canonical query bytes. */
inline std::string
whatIfCacheKey(std::uint64_t fingerprint,
               const std::vector<std::uint8_t> &queryBytes)
{
    std::string key(reinterpret_cast<const char *>(&fingerprint),
                    sizeof fingerprint);
    key.append(queryBytes.begin(), queryBytes.end());
    return key;
}

/** A fixed-capacity least-recently-used map of reply payloads. */
class WhatIfCache
{
  public:
    /** @param capacity entries kept; 0 disables caching entirely. */
    explicit WhatIfCache(std::size_t capacity) : capacity_(capacity) {}

    /** Look up @p key, refreshing its recency on a hit. */
    std::optional<std::vector<std::uint8_t>>
    get(const std::string &key)
    {
        const auto it = index_.find(key);
        if (it == index_.end()) {
            ++misses_;
            return std::nullopt;
        }
        ++hits_;
        mru_.splice(mru_.begin(), mru_, it->second);
        return it->second->second;
    }

    /** Insert @p value under @p key, evicting the LRU entry if full. */
    void
    put(const std::string &key, std::vector<std::uint8_t> value)
    {
        if (capacity_ == 0)
            return;
        const auto it = index_.find(key);
        if (it != index_.end()) {
            // Deterministic refill of an existing key (two concurrent
            // misses): the bytes are identical, just refresh recency.
            mru_.splice(mru_.begin(), mru_, it->second);
            return;
        }
        mru_.emplace_front(key, std::move(value));
        index_[key] = mru_.begin();
        if (mru_.size() > capacity_) {
            index_.erase(mru_.back().first);
            mru_.pop_back();
            ++evictions_;
        }
    }

    std::size_t size() const { return mru_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    std::size_t capacity_;
    std::list<std::pair<std::string, std::vector<std::uint8_t>>> mru_;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string,
                            std::vector<std::uint8_t>>>::iterator>
        index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace insure::service

#endif // INSURE_SERVICE_TWIN_CACHE_HH
