/**
 * @file
 * The digital-twin query engine: a live simulation served over the
 * framed transport.
 *
 * A TwinServer holds one ExperimentRig as the "live" plant. The owner
 * advances it in tick chunks with advance() (the tick loop of a
 * long-running service); any number of client handler threads
 * concurrently call handleFrame() / serveStream() to answer:
 *
 *  - ModbusAdu frames: serviced against the live PLC register file by
 *    a service-side ModbusSlave (separate from the plant's internal
 *    PLC endpoint, so read traffic never mutates snapshotted state);
 *  - WhatIfQuery frames: the server lazily serializes the live rig
 *    between ticks (snapshot::serializeRigState), forks the payload
 *    into a fresh rig with the query's policy overrides applied, steps
 *    it to the horizon and replies with a WhatIfReply summary. Results
 *    are cached under (snapshot fingerprint, query bytes): repeated
 *    queries against an unchanged twin hit the cache; any tick advance
 *    or register write changes the fingerprint, so a stale result can
 *    never be served.
 *
 * Determinism: with the live clock standing still, every reply is a
 * pure function of (rig state, request bytes) — a concurrent client
 * mix produces byte-identical responses to a single-threaded replay of
 * the same request log, which is exactly what the concurrency suite
 * asserts. Fork execution runs outside the server lock, so what-if
 * queries from different clients overlap; only snapshotting, register
 * access and cache bookkeeping serialize.
 */

#ifndef INSURE_SERVICE_TWIN_SERVER_HH
#define INSURE_SERVICE_TWIN_SERVER_HH

#include <memory>
#include <mutex>
#include <string>

#include "core/experiment.hh"
#include "service/framing.hh"
#include "service/query.hh"
#include "service/transport.hh"
#include "service/twin_cache.hh"
#include "telemetry/modbus.hh"

namespace insure::service {

/** Tuning of a TwinServer. */
struct TwinServerOptions {
    /** Modbus unit id the service-side slave answers for. */
    std::uint8_t unitId = 1;
    /** What-if result cache capacity (entries; 0 disables). */
    std::size_t cacheCapacity = 64;
    /**
     * Disconnect a client whose stream stays silent this long, seconds
     * (0 = wait forever). Applied per serveStream connection; evicts
     * slow-loris peers — connected, trickling or sending nothing — that
     * would otherwise pin a handler thread for the server's lifetime.
     */
    double idleTimeoutSeconds = 0.0;
    /**
     * Bound each reply send, seconds (0 = block). A client that stops
     * draining its socket forfeits the connection instead of wedging
     * its handler mid-reply.
     */
    double sendTimeoutSeconds = 0.0;
};

/** Monotonic service counters (one consistent sample via stats()). */
struct TwinServerStats {
    /** Modbus ADU frames serviced (including exception responses). */
    std::uint64_t modbusFrames = 0;
    /** What-if queries answered (hits + misses). */
    std::uint64_t whatIfQueries = 0;
    /** What-if queries served from the result cache. */
    std::uint64_t cacheHits = 0;
    /** What-if queries that executed a fork. */
    std::uint64_t cacheMisses = 0;
    /** Error frames produced (malformed/unknown/unanswerable input). */
    std::uint64_t errorFrames = 0;
    /** Live-rig snapshots taken (lazy, at most one per quiescent state). */
    std::uint64_t snapshotsTaken = 0;
    /** Frame CRC failures across finished connections (serveStream). */
    std::uint64_t streamCrcErrors = 0;
    /** Decoder resyncs across finished connections. */
    std::uint64_t streamResyncs = 0;
    /** Inter-frame garbage bytes skipped across finished connections. */
    std::uint64_t streamSkippedBytes = 0;
    /** Connections dropped by the idle/send timeouts. */
    std::uint64_t idleDisconnects = 0;
};

/** A live simulation served as a digital twin. */
class TwinServer
{
  public:
    /**
     * Build the live rig from @p cfg. The config's duration is the
     * serving horizon: advance() and what-if forks are clamped to it,
     * so size it generously for a long-running twin.
     */
    explicit TwinServer(const core::ExperimentConfig &cfg,
                        TwinServerOptions opts = {});

    /** Current live simulated time, seconds. */
    Seconds now();

    /**
     * Advance the live simulation to absolute time @p until (clamped
     * to the configured duration). Single logical writer: call from
     * one tick-loop thread. Takes the server lock for the whole chunk,
     * so requests see tick-boundary states only.
     */
    void advance(Seconds until);

    /**
     * Service one decoded frame and return the encoded reply frame.
     * Thread-safe; every request produces exactly one reply (malformed
     * or unanswerable input yields an Error frame — fail-loud, never
     * silence that would hang a blocking client).
     */
    std::vector<std::uint8_t> handleFrame(const Frame &frame);

    /**
     * Request/reply loop over @p stream until the peer closes. Run one
     * call per connection, each on its own thread. Stream-level frame
     * decoding is per-connection; decode counters merge into stats()
     * when the connection ends.
     */
    void serveStream(ByteStream &stream);

    /**
     * Stop the clock and harvest the live run's outputs (golden
     * checks). The server must not be advanced afterwards.
     */
    core::ExperimentResult finishLive();

    /**
     * Fingerprint of the current live state (takes the lazy snapshot
     * if needed). Changes on every advance() and every register write.
     */
    std::uint64_t snapshotFingerprint();

    /** One consistent sample of the service counters. */
    TwinServerStats stats() const;

    /** The live rig (test and bench inspection). */
    core::ExperimentRig &rig() { return rig_; }
    const core::ExperimentRig &rig() const { return rig_; }

    /** The serving config (what-if forks derive from it). */
    const core::ExperimentConfig &config() const { return cfg_; }

  private:
    /** Ensure snapshot_/fingerprint_ reflect the live state (locked). */
    void refreshSnapshotLocked();

    std::vector<std::uint8_t> handleModbus(const Frame &frame);
    std::vector<std::uint8_t> handleWhatIf(const Frame &frame);
    std::vector<std::uint8_t> errorFrame(ServiceErrorCode code,
                                         const std::string &message);

    core::ExperimentConfig cfg_;
    TwinServerOptions opts_;

    mutable std::mutex mu_;
    core::ExperimentRig rig_;
    telemetry::ModbusSlave slave_;
    std::shared_ptr<const std::string> snapshot_; // null when stale
    std::uint64_t fingerprint_ = 0;
    WhatIfCache cache_;
    TwinServerStats stats_;
};

} // namespace insure::service

#endif // INSURE_SERVICE_TWIN_SERVER_HH
