#include "service/chaos_stream.hh"

#include <algorithm>
#include <chrono>
#include <thread>

namespace insure::service {

bool
ChaosPlan::enabled() const
{
    return corruptPerKb > 0.0 || truncateRate > 0.0 || dropRate > 0.0 ||
           duplicateRate > 0.0 || splitRate > 0.0 || delayRate > 0.0 ||
           stallRate > 0.0 || disconnectPerKb > 0.0 ||
           disconnectAtByte > 0 || receiveCap > 0;
}

ChaosPlan
ChaosPlan::storm(std::uint64_t budget)
{
    ChaosPlan p;
    p.corruptPerKb = 2.0;
    p.truncateRate = 0.08;
    p.dropRate = 0.05;
    p.duplicateRate = 0.08;
    p.splitRate = 0.20;
    p.delayRate = 0.10;
    p.delayMaxSeconds = 0.002;
    p.stallRate = 0.02;
    p.stallSeconds = 0.01;
    p.disconnectPerKb = 0.02;
    p.maxEvents = budget;
    return p;
}

const char *
chaosEventKindName(ChaosEvent::Kind k)
{
    switch (k) {
    case ChaosEvent::Kind::CorruptByte:
        return "corrupt-byte";
    case ChaosEvent::Kind::TruncateSend:
        return "truncate-send";
    case ChaosEvent::Kind::DropSend:
        return "drop-send";
    case ChaosEvent::Kind::DuplicateSend:
        return "duplicate-send";
    case ChaosEvent::Kind::SplitSend:
        return "split-send";
    case ChaosEvent::Kind::Delay:
        return "delay";
    case ChaosEvent::Kind::Stall:
        return "stall";
    case ChaosEvent::Kind::Disconnect:
        return "disconnect";
    }
    return "unknown";
}

void
ChaosLedger::add(const ChaosStats &delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    totals_.corruptedBytes += delta.corruptedBytes;
    totals_.truncatedSends += delta.truncatedSends;
    totals_.droppedSends += delta.droppedSends;
    totals_.duplicatedSends += delta.duplicatedSends;
    totals_.splitSends += delta.splitSends;
    totals_.delays += delta.delays;
    totals_.stalls += delta.stalls;
    totals_.disconnects += delta.disconnects;
    totals_.bytesSent += delta.bytesSent;
    totals_.bytesReceived += delta.bytesReceived;
}

ChaosStats
ChaosLedger::totals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totals_;
}

ChaosStream::ChaosStream(std::unique_ptr<ByteStream> inner,
                         const ChaosPlan &plan, std::uint64_t seed,
                         std::shared_ptr<ChaosLedger> ledger)
    : inner_(std::move(inner)), plan_(plan), ledger_(std::move(ledger)),
      sendRng_(Rng(seed).derive(streams::kChaosSend)),
      corruptRng_(Rng(seed).derive(streams::kChaosCorrupt)),
      recvRng_(Rng(seed).derive(streams::kChaosReceive)),
      disconnectRng_(Rng(seed).derive(streams::kChaosDisconnect))
{
}

ChaosStream::~ChaosStream()
{
    std::lock_guard<std::mutex> lock(mu_);
    flushLedgerLocked();
}

void
ChaosStream::flushLedgerLocked()
{
    if (!ledger_)
        return;
    ChaosStats delta;
    delta.corruptedBytes = stats_.corruptedBytes - flushed_.corruptedBytes;
    delta.truncatedSends = stats_.truncatedSends - flushed_.truncatedSends;
    delta.droppedSends = stats_.droppedSends - flushed_.droppedSends;
    delta.duplicatedSends =
        stats_.duplicatedSends - flushed_.duplicatedSends;
    delta.splitSends = stats_.splitSends - flushed_.splitSends;
    delta.delays = stats_.delays - flushed_.delays;
    delta.stalls = stats_.stalls - flushed_.stalls;
    delta.disconnects = stats_.disconnects - flushed_.disconnects;
    delta.bytesSent = stats_.bytesSent - flushed_.bytesSent;
    delta.bytesReceived = stats_.bytesReceived - flushed_.bytesReceived;
    ledger_->add(delta);
    flushed_ = stats_;
}

bool
ChaosStream::budgetAllows()
{
    return plan_.maxEvents == 0 || stats_.events() < plan_.maxEvents;
}

void
ChaosStream::disconnect(std::uint64_t atByte)
{
    if (disconnected_)
        return;
    disconnected_ = true;
    ++stats_.disconnects;
    log_.push_back({ChaosEvent::Kind::Disconnect, atByte, 0});
    // Closing the inner stream outside the lock would be cleaner, but
    // close() is non-blocking on both transports (shutdown + close /
    // cv notify), so holding mu_ across it cannot deadlock.
    inner_->close();
}

bool
ChaosStream::send(const std::uint8_t *data, std::size_t len)
{
    if (len == 0)
        return inner_->send(data, len);

    // Decide everything under the lock, perform inner I/O outside it.
    std::vector<std::uint8_t> out;
    bool duplicate = false;
    std::size_t splitAt = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const std::uint64_t offset = stats_.bytesSent;
        if (disconnected_)
            return false;

        if (plan_.dropRate > 0.0 && budgetAllows() &&
            sendRng_.bernoulli(plan_.dropRate)) {
            ++stats_.droppedSends;
            log_.push_back({ChaosEvent::Kind::DropSend, offset, len});
            // The caller believes the bytes left; the frames inside
            // them simply never arrive — exactly a lossy path.
            return true;
        }

        out.assign(data, data + len);
        if (len >= 2 && plan_.truncateRate > 0.0 && budgetAllows() &&
            sendRng_.bernoulli(plan_.truncateRate)) {
            const std::size_t keep = static_cast<std::size_t>(
                sendRng_.uniformInt(1, static_cast<int>(len) - 1));
            out.resize(keep);
            ++stats_.truncatedSends;
            log_.push_back({ChaosEvent::Kind::TruncateSend, offset, keep});
        }
        if (plan_.duplicateRate > 0.0 && budgetAllows() &&
            sendRng_.bernoulli(plan_.duplicateRate)) {
            duplicate = true;
            ++stats_.duplicatedSends;
            log_.push_back(
                {ChaosEvent::Kind::DuplicateSend, offset, out.size()});
        }
        if (out.size() >= 2 && plan_.splitRate > 0.0 && budgetAllows() &&
            sendRng_.bernoulli(plan_.splitRate)) {
            splitAt = static_cast<std::size_t>(sendRng_.uniformInt(
                1, static_cast<int>(out.size()) - 1));
            ++stats_.splitSends;
            log_.push_back({ChaosEvent::Kind::SplitSend, offset, splitAt});
        }
        if (plan_.corruptPerKb > 0.0) {
            const double p = plan_.corruptPerKb / 1024.0;
            for (std::size_t i = 0; i < out.size(); ++i) {
                if (!budgetAllows())
                    break;
                if (corruptRng_.bernoulli(p)) {
                    out[i] ^= static_cast<std::uint8_t>(
                        1u << corruptRng_.uniformInt(0, 7));
                    ++stats_.corruptedBytes;
                    log_.push_back({ChaosEvent::Kind::CorruptByte,
                                    offset + i, out[i]});
                }
            }
        }

        stats_.bytesSent += out.size() * (duplicate ? 2 : 1);
        const std::uint64_t total =
            stats_.bytesSent + stats_.bytesReceived;
        if (plan_.disconnectAtByte > 0 &&
            total >= plan_.disconnectAtByte && budgetAllows()) {
            disconnect(total);
        } else if (plan_.disconnectPerKb > 0.0) {
            if (disconnectInBytes_ < 0.0)
                disconnectInBytes_ = 1024.0 *
                    disconnectRng_.exponential(plan_.disconnectPerKb);
            disconnectInBytes_ -= static_cast<double>(out.size());
            if (disconnectInBytes_ <= 0.0 && budgetAllows()) {
                disconnect(total);
            }
        }
        if (disconnected_)
            return false;
    }

    const std::size_t copies = duplicate ? 2u : 1u;
    for (std::size_t c = 0; c < copies; ++c) {
        if (splitAt > 0) {
            if (!inner_->send(out.data(), splitAt) ||
                !inner_->send(out.data() + splitAt, out.size() - splitAt))
                return false;
        } else if (!inner_->send(out.data(), out.size())) {
            return false;
        }
    }
    return true;
}

std::size_t
ChaosStream::receive(std::uint8_t *buf, std::size_t cap)
{
    const std::size_t effCap =
        plan_.receiveCap > 0 ? std::min(cap, plan_.receiveCap) : cap;
    const std::size_t n = inner_->receive(buf, effCap);
    if (n == 0)
        return 0;

    double sleepSeconds = 0.0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const std::uint64_t offset = stats_.bytesReceived;
        stats_.bytesReceived += n;
        if (plan_.corruptPerKb > 0.0) {
            const double p = plan_.corruptPerKb / 1024.0;
            for (std::size_t i = 0; i < n; ++i) {
                if (!budgetAllows())
                    break;
                if (recvRng_.bernoulli(p)) {
                    buf[i] ^= static_cast<std::uint8_t>(
                        1u << recvRng_.uniformInt(0, 7));
                    ++stats_.corruptedBytes;
                    log_.push_back({ChaosEvent::Kind::CorruptByte,
                                    offset + i, buf[i]});
                }
            }
        }
        if (plan_.stallRate > 0.0 && budgetAllows() &&
            recvRng_.bernoulli(plan_.stallRate)) {
            sleepSeconds = plan_.stallSeconds;
            ++stats_.stalls;
            log_.push_back(
                {ChaosEvent::Kind::Stall, offset,
                 static_cast<std::uint64_t>(sleepSeconds * 1e6)});
        } else if (plan_.delayRate > 0.0 && budgetAllows() &&
                   recvRng_.bernoulli(plan_.delayRate)) {
            sleepSeconds = recvRng_.uniform(0.0, plan_.delayMaxSeconds);
            ++stats_.delays;
            log_.push_back(
                {ChaosEvent::Kind::Delay, offset,
                 static_cast<std::uint64_t>(sleepSeconds * 1e6)});
        }
        const std::uint64_t total =
            stats_.bytesSent + stats_.bytesReceived;
        if (plan_.disconnectAtByte > 0 &&
            total >= plan_.disconnectAtByte && budgetAllows()) {
            disconnect(total);
        } else if (plan_.disconnectPerKb > 0.0) {
            if (disconnectInBytes_ < 0.0)
                disconnectInBytes_ = 1024.0 *
                    disconnectRng_.exponential(plan_.disconnectPerKb);
            disconnectInBytes_ -= static_cast<double>(n);
            if (disconnectInBytes_ <= 0.0 && budgetAllows())
                disconnect(total);
        }
    }
    if (sleepSeconds > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleepSeconds));
    // Bytes already read are delivered even when the read disconnected
    // the stream — they were on the wire first; the next receive
    // observes the close.
    return n;
}

bool
ChaosStream::setReceiveDeadline(double seconds)
{
    return inner_->setReceiveDeadline(seconds);
}

bool
ChaosStream::setSendDeadline(double seconds)
{
    return inner_->setSendDeadline(seconds);
}

void
ChaosStream::close()
{
    inner_->close();
    std::lock_guard<std::mutex> lock(mu_);
    flushLedgerLocked();
}

ChaosStats
ChaosStream::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::vector<ChaosEvent>
ChaosStream::eventLog() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return log_;
}

std::unique_ptr<ByteStream>
wrapWithChaos(std::unique_ptr<ByteStream> inner, const ChaosPlan &plan,
              std::uint64_t seed, std::shared_ptr<ChaosLedger> ledger)
{
    if (!plan.enabled())
        return inner;
    return std::make_unique<ChaosStream>(std::move(inner), plan, seed,
                                         std::move(ledger));
}

std::uint64_t
chaosConnectionSeed(std::uint64_t planSeed, std::uint64_t index)
{
    // Tag arithmetic keeps every connection in its own derive
    // namespace; the offset cannot collide the registry tags for any
    // realistic connection count.
    return Rng(planSeed).deriveSeed(streams::kChaosConnection + index);
}

} // namespace insure::service
