#include "service/transport.hh"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace insure::service {

namespace {

/**
 * One direction of the loopback pipe: a byte queue plus its lock. The
 * writer appends, the reader drains; closed is sticky and wakes any
 * blocked reader.
 */
struct PipeHalf {
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::uint8_t> q;
    bool closed = false;
};

class LoopbackStream : public ByteStream
{
  public:
    LoopbackStream(std::shared_ptr<PipeHalf> tx,
                   std::shared_ptr<PipeHalf> rx, std::size_t maxChunk)
        : tx_(std::move(tx)), rx_(std::move(rx)), maxChunk_(maxChunk)
    {
    }

    ~LoopbackStream() override { close(); }

    bool
    send(const std::uint8_t *data, std::size_t len) override
    {
        std::lock_guard<std::mutex> lock(tx_->m);
        if (tx_->closed)
            return false;
        tx_->q.insert(tx_->q.end(), data, data + len);
        tx_->cv.notify_all();
        return true;
    }

    std::size_t
    receive(std::uint8_t *buf, std::size_t cap) override
    {
        std::unique_lock<std::mutex> lock(rx_->m);
        const auto ready = [&] { return !rx_->q.empty() || rx_->closed; };
        if (recvDeadline_ > 0.0) {
            if (!rx_->cv.wait_for(
                    lock, std::chrono::duration<double>(recvDeadline_),
                    ready))
                return 0; // deadline expired: treat the peer as gone
        } else {
            rx_->cv.wait(lock, ready);
        }
        if (rx_->q.empty())
            return 0; // closed and drained
        std::size_t n = std::min(cap, rx_->q.size());
        if (maxChunk_ > 0)
            n = std::min(n, maxChunk_);
        std::copy_n(rx_->q.begin(), n, buf);
        rx_->q.erase(rx_->q.begin(),
                     rx_->q.begin() + static_cast<std::ptrdiff_t>(n));
        return n;
    }

    bool
    setReceiveDeadline(double seconds) override
    {
        std::lock_guard<std::mutex> lock(rx_->m);
        recvDeadline_ = seconds;
        return true;
    }

    // An in-memory queue never back-pressures, so a send deadline is
    // trivially honoured (send never blocks).
    bool setSendDeadline(double) override { return true; }

    void
    close() override
    {
        for (const auto &half : {tx_, rx_}) {
            std::lock_guard<std::mutex> lock(half->m);
            half->closed = true;
            half->cv.notify_all();
        }
    }

  private:
    std::shared_ptr<PipeHalf> tx_;
    std::shared_ptr<PipeHalf> rx_;
    std::size_t maxChunk_;
    double recvDeadline_ = 0.0;
};

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw std::runtime_error("service: " + what + ": " +
                             std::strerror(errno));
}

/** A connected TCP socket owned by the stream. */
class TcpStream : public ByteStream
{
  public:
    explicit TcpStream(int fd) : fd_(fd) {}

    ~TcpStream() override { close(); }

    /**
     * Wait for @p events on the socket, honouring @p deadline seconds
     * (poll, not SO_RCVTIMEO: a per-call timeout is immune to the
     * timeout-resets-on-every-byte trickle a slow-loris peer exploits).
     * @return true when the fd is ready; false on deadline expiry or a
     * closed/errored socket.
     */
    bool
    waitReady(short events, double deadline)
    {
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = events;
        // Millisecond granularity, rounded up so a 0.0005 s deadline
        // still polls with a non-zero wait.
        const int ms = deadline >= 2147483.0
                           ? 2147483000
                           : static_cast<int>(deadline * 1000.0) + 1;
        for (;;) {
            const int r = ::poll(&pfd, 1, ms);
            if (r < 0 && errno == EINTR)
                continue;
            if (r <= 0)
                return false; // timeout or poll failure
            // POLLHUP/POLLERR fall through to recv/send, which then
            // report EOF/error exactly as an undeadlined call would.
            return true;
        }
    }

    bool
    send(const std::uint8_t *data, std::size_t len) override
    {
        // Partial-write loop with EINTR retry: a signal landing
        // mid-transfer (campaign workers install timers and get
        // SIGKILLed siblings' SIGCHLDs) must not shear a frame.
        std::size_t sent = 0;
        while (sent < len) {
            if (sendDeadline_ > 0.0 &&
                !waitReady(POLLOUT, sendDeadline_))
                return false; // congested past the deadline: slow reader
            const ssize_t n = ::send(fd_, data + sent, len - sent,
                                     MSG_NOSIGNAL);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            sent += static_cast<std::size_t>(n);
        }
        return true;
    }

    std::size_t
    receive(std::uint8_t *buf, std::size_t cap) override
    {
        for (;;) {
            if (recvDeadline_ > 0.0 && !waitReady(POLLIN, recvDeadline_))
                return 0; // deadline expired: treat the peer as gone
            const ssize_t n = ::recv(fd_, buf, cap, 0);
            if (n < 0 && errno == EINTR)
                continue;
            return n > 0 ? static_cast<std::size_t>(n) : 0;
        }
    }

    bool
    setReceiveDeadline(double seconds) override
    {
        recvDeadline_ = seconds;
        return true;
    }

    bool
    setSendDeadline(double seconds) override
    {
        sendDeadline_ = seconds;
        return true;
    }

    void
    close() override
    {
        if (fd_ >= 0) {
            ::shutdown(fd_, SHUT_RDWR);
            ::close(fd_);
            fd_ = -1;
        }
    }

  private:
    int fd_;
    double recvDeadline_ = 0.0;
    double sendDeadline_ = 0.0;
};

} // namespace

std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
makeLoopbackPair(std::size_t maxChunk)
{
    auto ab = std::make_shared<PipeHalf>();
    auto ba = std::make_shared<PipeHalf>();
    return {std::make_unique<LoopbackStream>(ab, ba, maxChunk),
            std::make_unique<LoopbackStream>(ba, ab, maxChunk)};
}

std::unique_ptr<ByteStream>
tcpConnect(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("service: bad address " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
        0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        throwErrno("connect");
    }
    return std::make_unique<TcpStream>(fd);
}

TcpListener::TcpListener(std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throwErrno("socket");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof addr) < 0 ||
        ::listen(fd_, 16) < 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        errno = err;
        throwErrno("bind/listen");
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        throwErrno("getsockname");
    port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

std::unique_ptr<ByteStream>
TcpListener::accept()
{
    if (fd_ < 0)
        return nullptr;
    for (;;) {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0 && errno == EINTR)
            continue;
        if (client < 0)
            return nullptr; // listener closed mid-accept
        return std::make_unique<TcpStream>(client);
    }
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace insure::service
