#include "service/twin_client.hh"

#include "snapshot/archive.hh"

namespace insure::service {

namespace mb = telemetry::modbus;

TwinClient::TwinClient(ByteStream &stream, std::uint8_t unitId)
    : stream_(stream), unitId_(unitId)
{
}

Frame
TwinClient::exchange(FrameType type, const std::vector<std::uint8_t> &payload)
{
    if (!stream_.send(encodeFrame(type, payload)))
        throw TwinClientError("twin client: connection closed on send");
    std::uint8_t buf[4096];
    for (;;) {
        if (auto frame = decoder_.next()) {
            if (frame->type == FrameType::Error) {
                ServiceError err = ServiceError::decode(frame->payload);
                throw TwinClientError("twin service error " +
                                      std::to_string(static_cast<unsigned>(
                                          err.code)) +
                                      ": " + err.message);
            }
            return *frame;
        }
        const std::size_t n = stream_.receive(buf, sizeof buf);
        if (n == 0)
            throw TwinClientError("twin client: connection closed "
                                  "awaiting reply");
        decoder_.feed(buf, n);
    }
}

telemetry::ModbusResponse
TwinClient::modbus(const std::vector<std::uint8_t> &adu)
{
    const Frame reply = exchange(FrameType::ModbusAdu, adu);
    if (reply.type != FrameType::ModbusAdu)
        throw TwinClientError("twin client: unexpected reply frame type");
    auto resp = mb::decodeResponse(reply.payload);
    if (!resp)
        throw TwinClientError("twin client: undecodable modbus response");
    return *resp;
}

std::vector<std::uint16_t>
TwinClient::readRegisters(std::uint16_t addr, std::uint16_t count)
{
    const telemetry::ModbusResponse resp =
        modbus(mb::encodeReadRequest(unitId_, addr, count));
    if (resp.isException())
        throw TwinClientError(
            "twin client: modbus exception " +
            std::to_string(static_cast<unsigned>(*resp.exception)));
    return resp.values;
}

void
TwinClient::writeRegister(std::uint16_t addr, std::uint16_t value)
{
    const telemetry::ModbusResponse resp =
        modbus(mb::encodeWriteSingleRequest(unitId_, addr, value));
    if (resp.isException())
        throw TwinClientError(
            "twin client: modbus exception " +
            std::to_string(static_cast<unsigned>(*resp.exception)));
}

WhatIfReply
TwinClient::whatIf(const WhatIfQuery &query)
{
    const Frame reply = exchange(FrameType::WhatIfQuery, query.encode());
    if (reply.type != FrameType::WhatIfReply)
        throw TwinClientError("twin client: unexpected reply frame type");
    try {
        return WhatIfReply::decode(reply.payload);
    } catch (const snapshot::SnapshotError &e) {
        throw TwinClientError(std::string("twin client: bad reply: ") +
                              e.what());
    }
}

} // namespace insure::service
