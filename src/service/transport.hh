/**
 * @file
 * Byte-stream transports for the digital-twin service.
 *
 * The service is framed over an abstract full-duplex byte stream so the
 * same server/client code runs over an in-memory loopback pipe (tests
 * and deterministic benches: no sockets, no kernel timing) and a plain
 * TCP connection (a real long-running service). Streams deliver bytes
 * in order but with arbitrary fragmentation — the frame decoder, not
 * the transport, reassembles messages.
 */

#ifndef INSURE_SERVICE_TRANSPORT_HH
#define INSURE_SERVICE_TRANSPORT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace insure::service {

/** A full-duplex, ordered, fragmenting byte stream. */
class ByteStream
{
  public:
    virtual ~ByteStream() = default;

    /**
     * Write all @p len bytes to the peer.
     * @return false when the peer has closed (bytes discarded).
     */
    virtual bool send(const std::uint8_t *data, std::size_t len) = 0;

    /** Convenience overload. */
    bool send(const std::vector<std::uint8_t> &bytes)
    {
        return send(bytes.data(), bytes.size());
    }

    /**
     * Block until at least one byte is available, then read up to
     * @p cap bytes. @return the number of bytes read; 0 once the peer
     * has closed and every buffered byte has been drained — or, with a
     * receive deadline set, once the deadline expires with nothing to
     * read. The conflation is deliberate: a peer that cannot be heard
     * from within the deadline is treated exactly like a dead one
     * (evict, reconnect or re-dispatch — never wait forever).
     */
    virtual std::size_t receive(std::uint8_t *buf, std::size_t cap) = 0;

    /**
     * Bound the time a single receive() may block (seconds; <= 0
     * clears the deadline). @return false when this transport cannot
     * enforce deadlines (callers must then rely on close() from
     * another thread).
     */
    virtual bool setReceiveDeadline(double) { return false; }

    /**
     * Bound the time a single send() may block on a congested peer
     * (seconds; <= 0 clears). A deadline expiry fails the send — the
     * slow-reader equivalent of a dead peer. @return false when
     * unsupported.
     */
    virtual bool setSendDeadline(double) { return false; }

    /** Close both directions (idempotent; unblocks pending receives). */
    virtual void close() = 0;
};

/**
 * Create a connected in-memory stream pair: bytes sent on one endpoint
 * are received on the other. Thread-safe; both endpoints may be driven
 * from different threads. @p maxChunk, when non-zero, caps the bytes a
 * single receive() returns — it deliberately fragments delivery so
 * tests exercise frame reassembly across arbitrary split points.
 */
std::pair<std::unique_ptr<ByteStream>, std::unique_ptr<ByteStream>>
makeLoopbackPair(std::size_t maxChunk = 0);

/** A connected TCP stream (client side or accepted server side). */
std::unique_ptr<ByteStream> tcpConnect(const std::string &host,
                                       std::uint16_t port);

/**
 * A listening TCP socket on 127.0.0.1. Construct with port 0 for an
 * ephemeral port (see port()). Throws std::runtime_error when the
 * socket cannot be created or bound (e.g. a sandboxed environment).
 */
class TcpListener
{
  public:
    explicit TcpListener(std::uint16_t port = 0);
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** The bound port. */
    std::uint16_t port() const { return port_; }

    /**
     * Block until a client connects; null once the listener is closed.
     */
    std::unique_ptr<ByteStream> accept();

    /** Stop listening (unblocks a pending accept with null). */
    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

} // namespace insure::service

#endif // INSURE_SERVICE_TRANSPORT_HH
