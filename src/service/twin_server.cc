#include "service/twin_server.hh"

#include <algorithm>

#include "battery/battery_array.hh"
#include "snapshot/archive.hh"
#include "snapshot/snapshotter.hh"
#include "sim/units.hh"

namespace insure::service {

namespace {

/**
 * Execute one what-if fork: rebuild a rig from the serving config with
 * the query's overrides applied, restore the live snapshot into it,
 * step to the horizon and summarise. Runs with no server lock held —
 * everything it touches is private to the fork.
 */
WhatIfReply
runFork(const core::ExperimentConfig &serveCfg, const std::string &snapshot,
        const WhatIfQuery &query)
{
    core::ExperimentConfig cfg = serveCfg;
    query.applyTo(cfg);
    core::ExperimentRig fork(cfg);
    snapshot::restoreRigState(fork, snapshot);

    const Seconds from = fork.simulation().now();
    const Seconds target =
        std::min(cfg.duration, from + query.horizonHours * 3600.0);

    // Additive outputs are reported as deltas over the fork window, so
    // a reply describes what the next H hours would do, not the live
    // run's history. Ratio metrics (uptime, throughput) are cumulative
    // as of the horizon — the quantity an operator compares policies by.
    const core::Metrics before = fork.plant().metrics();
    const std::uint64_t failuresBefore = fork.plant().powerFailures();

    fork.runUntil(target);
    const double endSoc = fork.plant().array().meanSoc();
    const std::uint64_t failuresAfter = fork.plant().powerFailures();
    core::ExperimentResult res = fork.finish();

    WhatIfReply reply;
    reply.fromSeconds = from;
    reply.simulatedHours = (target - from) / 3600.0;
    reply.uptime = res.metrics.uptime;
    reply.throughputGbPerHour = res.metrics.throughputGbPerHour;
    reply.processedGb = res.metrics.processedGb - before.processedGb;
    reply.greenUsedKwh = res.metrics.greenUsedKwh - before.greenUsedKwh;
    reply.loadKwh = res.metrics.loadKwh - before.loadKwh;
    reply.secondaryKwh = res.metrics.secondaryKwh - before.secondaryKwh;
    reply.bufferThroughputAh =
        res.metrics.bufferThroughputAh - before.bufferThroughputAh;
    reply.endMeanSoc = endSoc;
    reply.bufferTrips = res.metrics.bufferTrips - before.bufferTrips;
    reply.powerFailures = failuresAfter - failuresBefore;
    if (res.slo) {
        reply.sloP99Seconds = res.slo->p99;
        reply.sloMissRate = res.slo->deadlineMissRate;
        reply.infoBatteryHitRate = res.slo->cacheHitRate;
    }
    return reply;
}

} // namespace

TwinServer::TwinServer(const core::ExperimentConfig &cfg,
                       TwinServerOptions opts)
    : cfg_(cfg), opts_(opts), rig_(cfg_),
      slave_(opts.unitId, rig_.plant().registers()),
      cache_(opts.cacheCapacity)
{
    // What-if forks rebuild a rig from cfg_ and restore the live
    // snapshot into it. A raw (non-owning) observer pointer would make
    // the fork attach — and loadState() onto — the LIVE run's observer
    // object from a worker thread. Require the per-rig factory form.
    if (cfg_.observer != nullptr)
        throw snapshot::SnapshotError(
            "TwinServer: use observerFactory, not a raw observer "
            "pointer (what-if forks need a per-rig instance)");
}

Seconds
TwinServer::now()
{
    std::lock_guard<std::mutex> lk(mu_);
    return rig_.simulation().now();
}

void
TwinServer::advance(Seconds until)
{
    std::lock_guard<std::mutex> lk(mu_);
    const Seconds target = std::min(cfg_.duration, until);
    if (target <= rig_.simulation().now())
        return;
    rig_.runUntil(target);
    snapshot_.reset(); // live state moved: lazy snapshot is stale
}

void
TwinServer::refreshSnapshotLocked()
{
    if (snapshot_)
        return;
    snapshot_ = std::make_shared<const std::string>(
        snapshot::serializeRigState(rig_));
    fingerprint_ = snapshot::rigStateFingerprint(*snapshot_);
    ++stats_.snapshotsTaken;
}

std::uint64_t
TwinServer::snapshotFingerprint()
{
    std::lock_guard<std::mutex> lk(mu_);
    refreshSnapshotLocked();
    return fingerprint_;
}

std::vector<std::uint8_t>
TwinServer::errorFrame(ServiceErrorCode code, const std::string &message)
{
    ServiceError err;
    err.code = code;
    err.message = message;
    return encodeFrame(FrameType::Error, err.encode());
}

std::vector<std::uint8_t>
TwinServer::handleModbus(const Frame &frame)
{
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.modbusFrames;
    const std::vector<std::uint8_t> resp = slave_.service(frame.payload);
    if (resp.empty()) {
        // A serial slave answers bad-CRC or wrong-unit ADUs with
        // silence; silence over a request/reply stream would hang the
        // client, so report it as an explicit error frame instead.
        ++stats_.errorFrames;
        return errorFrame(ServiceErrorCode::NoModbusResponse,
                          "modbus ADU produced no response "
                          "(bad CRC or foreign unit id)");
    }
    // A successful write mutates the live register file, which is part
    // of the serialized plant state: the lazy snapshot is now stale.
    if (resp.size() >= 2) {
        const std::uint8_t fn = resp[1];
        if (fn == 0x06 || fn == 0x10)
            snapshot_.reset();
    }
    return encodeFrame(FrameType::ModbusAdu, resp);
}

std::vector<std::uint8_t>
TwinServer::handleWhatIf(const Frame &frame)
{
    WhatIfQuery query;
    try {
        query = WhatIfQuery::decode(frame.payload);
    } catch (const snapshot::SnapshotError &e) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.errorFrames;
        return errorFrame(ServiceErrorCode::MalformedQuery, e.what());
    }
    // Re-encode canonically: the cache key must not depend on how the
    // client chose to phrase byte-identical semantics.
    const std::vector<std::uint8_t> canonical = query.encode();

    std::shared_ptr<const std::string> snap;
    std::string key;
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.whatIfQueries;
        refreshSnapshotLocked();
        snap = snapshot_;
        key = whatIfCacheKey(fingerprint_, canonical);
        if (auto cached = cache_.get(key)) {
            ++stats_.cacheHits;
            return encodeFrame(FrameType::WhatIfReply, *cached);
        }
        ++stats_.cacheMisses;
    }

    // The fork executes outside the lock: concurrent what-ifs overlap,
    // and the live tick loop is never blocked behind a simulation.
    std::vector<std::uint8_t> replyBytes;
    try {
        replyBytes = runFork(cfg_, *snap, query).encode();
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.errorFrames;
        return errorFrame(ServiceErrorCode::QueryExecutionFailed, e.what());
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        cache_.put(key, replyBytes);
    }
    return encodeFrame(FrameType::WhatIfReply, replyBytes);
}

std::vector<std::uint8_t>
TwinServer::handleFrame(const Frame &frame)
{
    switch (frame.type) {
    case FrameType::ModbusAdu:
        return handleModbus(frame);
    case FrameType::WhatIfQuery:
        return handleWhatIf(frame);
    default: {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.errorFrames;
        return errorFrame(ServiceErrorCode::UnknownFrameType,
                          "frame type not servable by the twin");
    }
    }
}

void
TwinServer::serveStream(ByteStream &stream)
{
    FrameDecoder decoder;
    std::uint8_t buf[4096];
    bool open = true;
    bool timedOut = false;
    // Deadlines make receive() return 0 on an idle peer exactly as it
    // does on EOF — deliberately: a client that cannot be heard from
    // has forfeited its connection (see ByteStream::receive).
    const bool deadlined = opts_.idleTimeoutSeconds > 0.0 &&
                           stream.setReceiveDeadline(
                               opts_.idleTimeoutSeconds);
    if (opts_.sendTimeoutSeconds > 0.0)
        stream.setSendDeadline(opts_.sendTimeoutSeconds);
    while (open) {
        const auto waitStart = std::chrono::steady_clock::now();
        const std::size_t n = stream.receive(buf, sizeof buf);
        if (n == 0) {
            // EOF and deadline expiry are conflated by contract; a
            // voluntary close returns promptly while an expiry takes
            // the whole deadline, which is how they are told apart
            // for accounting.
            const double waited =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - waitStart)
                    .count();
            timedOut =
                deadlined && waited >= 0.9 * opts_.idleTimeoutSeconds;
            break;
        }
        decoder.feed(buf, n);
        while (auto frame = decoder.next()) {
            if (!stream.send(handleFrame(*frame))) {
                open = false;
                timedOut = opts_.sendTimeoutSeconds > 0.0;
                break;
            }
        }
    }
    stream.close();
    std::lock_guard<std::mutex> lk(mu_);
    stats_.streamCrcErrors += decoder.crcErrors();
    stats_.streamResyncs += decoder.resyncs();
    stats_.streamSkippedBytes += decoder.skippedBytes();
    if (timedOut)
        ++stats_.idleDisconnects;
}

core::ExperimentResult
TwinServer::finishLive()
{
    std::lock_guard<std::mutex> lk(mu_);
    snapshot_.reset();
    return rig_.finish();
}

TwinServerStats
TwinServer::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

} // namespace insure::service
