/**
 * @file
 * Deterministic transport chaos injection for the framed service layer.
 *
 * A ChaosStream decorates any ByteStream and adversarially mangles the
 * traffic passing through it: byte corruption, truncated / dropped /
 * duplicated / split writes, bounded delivery delays, mid-stream
 * stalls, and hard disconnects — the failure weather a renewable-
 * powered fleet must treat as the steady state, not the exception.
 * The frame decoder's CRC + resync machinery, the dispatch layer's
 * re-lease/redispatch logic and the worker's reconnect path are what
 * turn this weather back into byte-identical campaign results.
 *
 * Determinism: every chaos decision draws from advance-free
 * Rng::derive streams rooted at a per-connection seed (the same
 * discipline src/fault uses for plant faults), with disjoint streams
 * for the send path, the receive path and disconnect scheduling so a
 * concurrent sender and receiver never interleave draws. Feeding the
 * same byte sequence through the same plan + seed yields the same
 * mangled sequence, which is what lets the FrameDecoder chaos-replay
 * suite pin exact recovery counters.
 *
 * Ground truth: every injected event is counted (ChaosStats) and
 * logged (ChaosEvent records with the transfer offset it struck), so a
 * drill can report honest accounting and a test can compute which
 * frames were intentionally destroyed.
 */

#ifndef INSURE_SERVICE_CHAOS_STREAM_HH
#define INSURE_SERVICE_CHAOS_STREAM_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "service/transport.hh"
#include "sim/rng.hh"

namespace insure::service {

/**
 * What chaos may be injected, and how often. Rates are probabilities
 * per send / per receive; corruption and Poisson disconnects are
 * per-kilobyte hazards so they scale with traffic volume, not call
 * count. A default-constructed plan injects nothing and a ChaosStream
 * built from it is a pure pass-through.
 */
struct ChaosPlan {
    /** Mean corrupted bytes per KB transferred (each a bit flip). */
    double corruptPerKb = 0.0;
    /** Probability a send loses a random-length tail. */
    double truncateRate = 0.0;
    /** Probability a send is dropped whole (frames vanish silently). */
    double dropRate = 0.0;
    /** Probability a send is transmitted twice (duplicated frames). */
    double duplicateRate = 0.0;
    /** Probability a send is sheared into two separate writes. */
    double splitRate = 0.0;
    /** Probability a receive is delayed before delivery. */
    double delayRate = 0.0;
    /** Upper bound of the uniform delay, seconds. */
    double delayMaxSeconds = 0.0;
    /** Probability a receive stalls for the full stallSeconds. */
    double stallRate = 0.0;
    /** Mid-stream stall length, seconds. */
    double stallSeconds = 0.0;
    /** Hard-disconnect hazard per KB transferred (either direction). */
    double disconnectPerKb = 0.0;
    /** Scheduled hard disconnect at this total transfer offset (0=off). */
    std::uint64_t disconnectAtByte = 0;
    /**
     * Chaos budget: total events after which the stream turns clean
     * (0 = unlimited). A bounded budget guarantees a retrying protocol
     * eventually converges, which is what lets drills assert
     * completion instead of racing an infinite storm.
     */
    std::uint64_t maxEvents = 0;
    /** Cap bytes per receive (forced fragmentation; 0 = off). */
    std::size_t receiveCap = 0;

    /** True when this plan can inject anything at all. */
    bool enabled() const;

    /**
     * A moderately hostile preset: corruption, truncation, split and
     * duplicated writes, small delays and a Poisson disconnect hazard,
     * bounded by @p budget events. The drills' default weather.
     */
    static ChaosPlan storm(std::uint64_t budget = 32);
};

/** One injected event, at the byte offset of its direction's stream. */
struct ChaosEvent {
    enum class Kind : std::uint8_t {
        CorruptByte,
        TruncateSend,
        DropSend,
        DuplicateSend,
        SplitSend,
        Delay,
        Stall,
        Disconnect,
    };
    Kind kind = Kind::CorruptByte;
    /** Transfer offset (sent bytes for send events, received for rx). */
    std::uint64_t atByte = 0;
    /** Kind-specific detail (bytes kept, chunk size, delay in usec). */
    std::uint64_t detail = 0;
};

/** Printable name of a chaos event kind. */
const char *chaosEventKindName(ChaosEvent::Kind k);

/** Monotonic chaos counters (one consistent sample via stats()). */
struct ChaosStats {
    std::uint64_t corruptedBytes = 0;
    std::uint64_t truncatedSends = 0;
    std::uint64_t droppedSends = 0;
    std::uint64_t duplicatedSends = 0;
    std::uint64_t splitSends = 0;
    std::uint64_t delays = 0;
    std::uint64_t stalls = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesReceived = 0;

    /** Total injected events (the budget denominator). */
    std::uint64_t events() const
    {
        return corruptedBytes + truncatedSends + droppedSends +
               duplicatedSends + splitSends + delays + stalls +
               disconnects;
    }
};

/**
 * Shared accumulator of chaos ground truth across streams whose
 * lifetimes the observer does not control. The supervisor wraps
 * connections and immediately hands them to the czar, which destroys
 * them as workers retire — a ChaosStream given a ledger flushes its
 * counters into it on close and destruction, so a drill can still
 * report honest totals after every stream is gone. Thread-safe.
 */
class ChaosLedger
{
  public:
    /** Fold @p delta into the totals. */
    void add(const ChaosStats &delta);

    /** One consistent sample of the accumulated totals. */
    ChaosStats totals() const;

  private:
    mutable std::mutex mu_;
    ChaosStats totals_;
};

/**
 * The ByteStream decorator (see file comment). Thread-compatible the
 * same way the wrapped stream is: one sender thread and one receiver
 * thread may operate concurrently. Chaos decisions are made under a
 * shared lock (never held across inner-stream I/O) with per-path RNG
 * streams, so each direction's chaos sequence is independent of the
 * other direction's timing.
 */
class ChaosStream : public ByteStream
{
  public:
    /**
     * Wrap @p inner; all chaos draws derive from @p seed. An optional
     * @p ledger receives this stream's counters when it closes/dies.
     */
    ChaosStream(std::unique_ptr<ByteStream> inner, const ChaosPlan &plan,
                std::uint64_t seed,
                std::shared_ptr<ChaosLedger> ledger = nullptr);

    ~ChaosStream() override;

    bool send(const std::uint8_t *data, std::size_t len) override;
    std::size_t receive(std::uint8_t *buf, std::size_t cap) override;
    bool setReceiveDeadline(double seconds) override;
    bool setSendDeadline(double seconds) override;
    void close() override;

    /** One consistent sample of the chaos counters. */
    ChaosStats stats() const;

    /** The full ground-truth event log so far (copied). */
    std::vector<ChaosEvent> eventLog() const;

  private:
    /** True (and consumes budget) when an event may fire. Lock held. */
    bool budgetAllows();
    /** Hard-close the inner stream, once. */
    void disconnect(std::uint64_t atByte);
    /** Push counters not yet flushed into the ledger. Lock held. */
    void flushLedgerLocked();

    std::unique_ptr<ByteStream> inner_;
    ChaosPlan plan_;
    std::shared_ptr<ChaosLedger> ledger_;

    mutable std::mutex mu_;
    Rng sendRng_;
    Rng corruptRng_;
    Rng recvRng_;
    Rng disconnectRng_;
    ChaosStats stats_;
    std::vector<ChaosEvent> log_;
    /** Bytes until the next Poisson disconnect (<0 = not armed). */
    double disconnectInBytes_ = -1.0;
    bool disconnected_ = false;
    /** Counters already pushed to the ledger (flush sends the delta). */
    ChaosStats flushed_;
};

/**
 * Wrap @p inner in chaos when @p plan is enabled; otherwise return it
 * untouched (the clean path stays allocation- and indirection-free).
 */
std::unique_ptr<ByteStream>
wrapWithChaos(std::unique_ptr<ByteStream> inner, const ChaosPlan &plan,
              std::uint64_t seed,
              std::shared_ptr<ChaosLedger> ledger = nullptr);

/**
 * Per-connection chaos seed: connection @p index of the plan rooted at
 * @p planSeed. Advance-free (Rng::derive), so accepting connections in
 * a different order cannot re-correlate any connection's chaos.
 */
std::uint64_t chaosConnectionSeed(std::uint64_t planSeed,
                                  std::uint64_t index);

} // namespace insure::service

#endif // INSURE_SERVICE_CHAOS_STREAM_HH
