/**
 * @file
 * CRC16-framed byte-stream protocol for the digital-twin service.
 *
 * Modbus RTU delimits frames with silent line time, which does not
 * survive a stream transport (TCP, in-memory pipes). The service layer
 * therefore wraps every message in an explicit frame:
 *
 *   +------+------+--------+--------+----------------+--------+--------+
 *   | 0xA5 | type | len lo | len hi | payload (len)  | crc lo | crc hi |
 *   +------+------+--------+--------+----------------+--------+--------+
 *
 *  - sync byte 0xA5 marks a frame-start candidate;
 *  - type identifies the payload grammar (FrameType);
 *  - len is the payload length, little-endian, at most kMaxFramePayload;
 *  - crc is CRC-16/Modbus (reflected 0xA001 polynomial, init 0xFFFF —
 *    the same telemetry::modbusCrc16 the PLC link uses) over type, len
 *    and payload, transmitted low byte first like Modbus RTU.
 *
 * The FrameDecoder is incremental and resynchronising: bytes arrive in
 * arbitrary fragments, garbage between frames is skipped, and a frame
 * candidate failing its CRC (or declaring an oversized length) causes a
 * rescan from the byte after the sync candidate. A corrupted frame can
 * therefore never desynchronise the stream permanently: every intact
 * frame later in the stream is still recovered. All failures are
 * fail-loud through counters — the decoder itself never throws and
 * never crashes on malformed input.
 */

#ifndef INSURE_SERVICE_FRAMING_HH
#define INSURE_SERVICE_FRAMING_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace insure::service {

/** Frame-start sync byte. */
inline constexpr std::uint8_t kFrameSync = 0xA5;

/** Header bytes before the payload: sync, type, len lo, len hi. */
inline constexpr std::size_t kFrameHeaderSize = 4;

/** Trailing CRC bytes. */
inline constexpr std::size_t kFrameCrcSize = 2;

/**
 * Maximum payload length. A full 125-register Modbus read response is
 * 255 bytes; what-if replies are smaller. The cap bounds decoder memory
 * and makes a corrupted length field fail fast instead of waiting for
 * megabytes that never arrive.
 */
inline constexpr std::size_t kMaxFramePayload = 4096;

/** Payload grammar carried by a frame. */
enum class FrameType : std::uint8_t {
    /** A raw Modbus RTU ADU (request or response, with its own CRC). */
    ModbusAdu = 0x01,
    /** A what-if query (service/query.hh encoding). */
    WhatIfQuery = 0x02,
    /** A what-if reply (service/query.hh encoding). */
    WhatIfReply = 0x03,
    /** Dispatch: worker introduction (dispatch/protocol.hh encoding). */
    Hello = 0x10,
    /** Dispatch: czar-to-worker run lease (dispatch/protocol.hh). */
    Lease = 0x11,
    /** Dispatch: worker-to-czar per-run result (dispatch/protocol.hh). */
    Result = 0x12,
    /** Dispatch: worker liveness beacon (dispatch/protocol.hh). */
    Heartbeat = 0x13,
    /**
     * Dispatch: czar-to-worker orderly shutdown (dispatch/protocol.hh).
     * Distinguishes "campaign over, exit now" from an unexpected
     * stream loss, which a resilient worker answers with reconnect.
     */
    Shutdown = 0x14,
    /** A service-level error report (service/query.hh encoding). */
    Error = 0x7F,
};

/** One decoded frame. */
struct Frame {
    FrameType type = FrameType::Error;
    std::vector<std::uint8_t> payload;

    bool
    operator==(const Frame &o) const
    {
        return type == o.type && payload == o.payload;
    }
};

/** Encode @p payload as a framed message of @p type. */
std::vector<std::uint8_t> encodeFrame(FrameType type,
                                      const std::uint8_t *payload,
                                      std::size_t len);

/** Convenience overload. */
inline std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::vector<std::uint8_t> &payload)
{
    return encodeFrame(type, payload.data(), payload.size());
}

/**
 * Incremental frame decoder. Feed byte fragments as they arrive, drain
 * completed frames with next(). Malformed input is counted, skipped and
 * resynchronised — never thrown and never fatal.
 */
class FrameDecoder
{
  public:
    /** Append @p len raw bytes from the stream and parse. */
    void feed(const std::uint8_t *data, std::size_t len);

    /** Convenience overload. */
    void feed(const std::vector<std::uint8_t> &bytes)
    {
        feed(bytes.data(), bytes.size());
    }

    /** Pop the next completed frame, if any. */
    std::optional<Frame> next();

    /** Completed frames waiting in the queue. */
    std::size_t pending() const { return ready_.size(); }

    /** Frames decoded successfully so far. */
    std::uint64_t framesDecoded() const { return framesDecoded_; }

    /** Sync candidates rejected by the CRC check. */
    std::uint64_t crcErrors() const { return crcErrors_; }

    /** Sync candidates rejected for an oversized declared length. */
    std::uint64_t oversizedFrames() const { return oversized_; }

    /**
     * Byte-level resynchronisations: one per rejected sync candidate
     * (crcErrors() + oversizedFrames()).
     */
    std::uint64_t resyncs() const { return resyncs_; }

    /** Non-sync garbage bytes skipped between frames. */
    std::uint64_t skippedBytes() const { return skipped_; }

    /** Bytes buffered awaiting a complete frame (bounded). */
    std::size_t buffered() const { return buf_.size(); }

  private:
    void parse();

    std::vector<std::uint8_t> buf_;
    std::deque<Frame> ready_;
    std::uint64_t framesDecoded_ = 0;
    std::uint64_t crcErrors_ = 0;
    std::uint64_t oversized_ = 0;
    std::uint64_t resyncs_ = 0;
    std::uint64_t skipped_ = 0;
};

} // namespace insure::service

#endif // INSURE_SERVICE_FRAMING_HH
