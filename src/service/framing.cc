#include "service/framing.hh"

#include <stdexcept>

#include "telemetry/modbus.hh"

namespace insure::service {

std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::uint8_t *payload, std::size_t len)
{
    if (len > kMaxFramePayload)
        throw std::length_error("service: frame payload over limit");
    std::vector<std::uint8_t> f;
    f.reserve(kFrameHeaderSize + len + kFrameCrcSize);
    f.push_back(kFrameSync);
    f.push_back(static_cast<std::uint8_t>(type));
    f.push_back(static_cast<std::uint8_t>(len & 0xFF));
    f.push_back(static_cast<std::uint8_t>(len >> 8));
    f.insert(f.end(), payload, payload + len);
    // CRC over everything after the sync byte, low byte first (the
    // Modbus RTU convention; same 0xA001 reflected polynomial).
    const std::uint16_t crc =
        telemetry::modbusCrc16(f.data() + 1, f.size() - 1);
    f.push_back(static_cast<std::uint8_t>(crc & 0xFF));
    f.push_back(static_cast<std::uint8_t>(crc >> 8));
    return f;
}

void
FrameDecoder::feed(const std::uint8_t *data, std::size_t len)
{
    buf_.insert(buf_.end(), data, data + len);
    parse();
}

std::optional<Frame>
FrameDecoder::next()
{
    if (ready_.empty())
        return std::nullopt;
    Frame f = std::move(ready_.front());
    ready_.pop_front();
    return f;
}

/**
 * Scan the buffer for complete frames. The cursor only ever advances —
 * past a decoded frame, past a rejected sync candidate (one byte, so a
 * later intact frame inside the rejected extent is still found), or
 * past inter-frame garbage — and consumed bytes are discarded, so the
 * buffer is bounded by one maximum frame plus one feed fragment.
 */
void
FrameDecoder::parse()
{
    std::size_t pos = 0;
    const std::size_t size = buf_.size();
    while (pos < size) {
        if (buf_[pos] != kFrameSync) {
            ++pos;
            ++skipped_;
            continue;
        }
        if (size - pos < kFrameHeaderSize)
            break; // incomplete header; wait for more bytes
        const std::size_t len = static_cast<std::size_t>(buf_[pos + 2]) |
                                (static_cast<std::size_t>(buf_[pos + 3])
                                 << 8);
        if (len > kMaxFramePayload) {
            // Corrupted length field: this sync byte cannot start a
            // frame we would ever accept. Resync from the next byte.
            ++oversized_;
            ++resyncs_;
            ++pos;
            continue;
        }
        const std::size_t total = kFrameHeaderSize + len + kFrameCrcSize;
        if (size - pos < total)
            break; // body not fully arrived yet
        const std::uint8_t *body = buf_.data() + pos + 1;
        const std::size_t bodyLen = total - 1 - kFrameCrcSize;
        const std::uint16_t expect =
            telemetry::modbusCrc16(body, bodyLen);
        const std::uint16_t got = static_cast<std::uint16_t>(
            buf_[pos + total - 2] |
            (static_cast<std::uint16_t>(buf_[pos + total - 1]) << 8));
        if (expect != got) {
            ++crcErrors_;
            ++resyncs_;
            ++pos;
            continue;
        }
        Frame f;
        f.type = static_cast<FrameType>(buf_[pos + 1]);
        f.payload.assign(buf_.begin() +
                             static_cast<std::ptrdiff_t>(pos +
                                                         kFrameHeaderSize),
                         buf_.begin() +
                             static_cast<std::ptrdiff_t>(pos + total -
                                                         kFrameCrcSize));
        ready_.push_back(std::move(f));
        ++framesDecoded_;
        pos += total;
    }
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
}

} // namespace insure::service
