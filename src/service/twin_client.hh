/**
 * @file
 * Blocking request/reply client for the digital-twin service.
 *
 * Wraps a ByteStream with frame encoding/decoding and the two service
 * verbs: Modbus register access against the live twin and what-if
 * queries. One client per stream; calls are blocking and must not be
 * issued concurrently on the same client (use one connection per
 * client thread — the server side is fully concurrent).
 */

#ifndef INSURE_SERVICE_TWIN_CLIENT_HH
#define INSURE_SERVICE_TWIN_CLIENT_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "service/framing.hh"
#include "service/query.hh"
#include "service/transport.hh"
#include "telemetry/modbus.hh"

namespace insure::service {

/** Thrown on transport EOF, an Error frame, or a protocol violation. */
class TwinClientError : public std::runtime_error
{
  public:
    explicit TwinClientError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** A blocking client on one service connection. */
class TwinClient
{
  public:
    /**
     * @param stream connected transport (not owned; must outlive the
     *        client)
     * @param unitId Modbus unit id of the twin's PLC endpoint
     */
    explicit TwinClient(ByteStream &stream, std::uint8_t unitId = 1);

    /**
     * Send one frame and block for the next reply frame. Error frames
     * and transport failures raise TwinClientError.
     */
    Frame exchange(FrameType type, const std::vector<std::uint8_t> &payload);

    /** Read @p count holding registers at @p addr from the live twin. */
    std::vector<std::uint16_t> readRegisters(std::uint16_t addr,
                                             std::uint16_t count);

    /** Write one holding register on the live twin. */
    void writeRegister(std::uint16_t addr, std::uint16_t value);

    /** Run @p query against the twin and return the summary. */
    WhatIfReply whatIf(const WhatIfQuery &query);

    /**
     * Exchange a raw Modbus ADU and return the decoded response —
     * exception responses are returned, not thrown (the error-path
     * tests inspect them). Throws only on transport/frame failures.
     */
    telemetry::ModbusResponse
    modbus(const std::vector<std::uint8_t> &adu);

  private:
    ByteStream &stream_;
    std::uint8_t unitId_;
    FrameDecoder decoder_;
};

} // namespace insure::service

#endif // INSURE_SERVICE_TWIN_CLIENT_HH
