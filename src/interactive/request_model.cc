#include "interactive/request_model.hh"

#include <algorithm>
#include <cmath>

#include "snapshot/archive.hh"

namespace insure::interactive {

namespace {

/** Versioned snapshot grammar for the workload block. */
constexpr std::uint32_t kWorkloadVersion = 1;

constexpr double kTwoPi = 6.283185307179586476925286766559;

} // namespace

const char *
serveModeName(ServeMode m)
{
    switch (m) {
      case ServeMode::Live: return "live";
      case ServeMode::Precompute: return "precompute";
      case ServeMode::CacheServe: return "cacheserve";
    }
    return "?";
}

RequestWorkload::RequestWorkload(const RequestParams &params, Rng rng)
    : params_(params), rng_(rng)
{
}

double
RequestWorkload::ratePerSec(Seconds now) const
{
    const double mean = params_.usersMillions * 1e6 *
                        params_.requestsPerUserPerDay / units::secPerDay;
    const double hour =
        std::fmod(now, units::secPerDay) / units::secPerHour;
    const double shape =
        1.0 + params_.diurnalAmplitude *
                  std::cos(kTwoPi * (hour - params_.peakHour) / 24.0);
    return mean * std::max(params_.minShape, shape);
}

std::uint64_t
RequestWorkload::drawPoisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth's product method; the draw count varies with the value,
        // which is fine — the stream state snapshots with the plant.
        const double limit = std::exp(-lambda);
        std::uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= rng_.uniform();
        } while (p > limit);
        return k - 1;
    }
    // Large-lambda normal approximation: one deviate per tick keeps the
    // per-tick draw pattern flat across the busy hours.
    const double n = lambda + std::sqrt(lambda) * rng_.normal();
    if (n <= 0.0)
        return 0;
    return static_cast<std::uint64_t>(std::llround(n));
}

void
RequestWorkload::enqueue(Seconds now, std::uint64_t n)
{
    if (n == 0)
        return;
    // One bucket per tick at most: merge same-timestamp arrivals.
    if (!queue_.empty() && queue_.back().arrival == now)
        queue_.back().count += n;
    else
        queue_.push_back({now, n});
    queuedCount_ += n;
}

std::uint64_t
RequestWorkload::takeFromQueue(std::uint64_t n, Seconds now,
                               Seconds extraLatency, bool record)
{
    std::uint64_t taken = 0;
    while (n > taken && !queue_.empty()) {
        Bucket &front = queue_.front();
        const std::uint64_t cnt = std::min(front.count, n - taken);
        if (record) {
            const Seconds latency =
                (now - front.arrival) + extraLatency;
            tracker_.addServed(latency, cnt,
                               latency > params_.deadline ? cnt : 0);
        } else {
            tracker_.addDroppedFault(cnt);
        }
        front.count -= cnt;
        taken += cnt;
        if (front.count == 0)
            queue_.pop_front();
    }
    queuedCount_ -= taken;
    return taken;
}

void
RequestWorkload::step(const RequestStepInputs &in)
{
    // 1. Arrivals: one Poisson batch from the day-shape curve.
    const double lambda = ratePerSec(in.now) * in.dt;
    const std::uint64_t n = drawPoisson(lambda);
    tracker_.addArrived(n);

    // 2. Store staleness: precomputed responses age out linearly over
    // the TTL (a response computed at dawn is worthless by next dawn).
    const Seconds ttl = params_.storeTtlHours * units::secPerHour;
    if (ttl > 0.0)
        storeFill_ = std::max(0.0, storeFill_ * (1.0 - in.dt / ttl));

    // 3. Route the arrivals.
    const bool cacheServing = in.mode == ServeMode::CacheServe &&
                              in.powered && storeFill_ >= 1.0;
    if (cacheServing) {
        const double fill =
            params_.storeCapacity > 0.0
                ? std::min(1.0, storeFill_ / params_.storeCapacity)
                : 0.0;
        const double hitRate = params_.maxHitRate * fill;
        // Deterministic expected-value hits: a residual accumulator in
        // place of per-request Bernoulli draws, so hit counts are exact
        // integers and the arrival stream advances identically whether
        // or not the store is in play.
        hitCredit_ += static_cast<double>(n) * hitRate;
        std::uint64_t hits = std::min(
            n, static_cast<std::uint64_t>(hitCredit_));
        hits = std::min(hits,
                        static_cast<std::uint64_t>(storeFill_));
        hitCredit_ -= static_cast<double>(hits);
        storeFill_ -= static_cast<double>(hits);
        tracker_.addCachedHit(params_.cacheLatency, hits);
        const std::uint64_t misses = n - hits;
        if (in.shedMisses)
            tracker_.addShed(misses);
        else
            enqueue(in.now, misses);
    } else {
        enqueue(in.now, n);
    }
    if (storeFill_ < 1.0)
        hitCredit_ = std::min(hitCredit_, 1.0);

    // 4. Live service: aggregate M/D/c fast path. Capacity is the VM
    // pool's deterministic request rate; the in-service latency adds the
    // closed-form heavy-traffic wait so reported latencies reflect
    // congestion even though requests are served in per-tick batches.
    if (in.powered && in.serveVms > 0 && params_.serviceTime > 0.0) {
        serveCredit_ +=
            in.serveVms * in.duty * in.dt / params_.serviceTime;
        const double mu = in.duty / params_.serviceTime;
        const double rho = std::clamp(
            ratePerSec(in.now) / (in.serveVms * mu), 0.0, 0.98);
        const Seconds qWait = params_.serviceTime * rho /
                              (2.0 * in.serveVms * (1.0 - rho));
        const auto capacity =
            static_cast<std::uint64_t>(serveCredit_);
        const std::uint64_t done = takeFromQueue(
            capacity, in.now, params_.serviceTime + qWait, true);
        serveCredit_ -= static_cast<double>(done);
        if (queue_.empty())
            serveCredit_ = std::min(serveCredit_, 1.0);
    } else {
        // A dark rack banks no service capacity.
        serveCredit_ = 0.0;
    }

    // 5. Client timeouts bound the queue memory.
    while (!queue_.empty() &&
           in.now - queue_.front().arrival > params_.dropAge) {
        tracker_.addDroppedTimeout(queue_.front().count);
        queuedCount_ -= queue_.front().count;
        queue_.pop_front();
    }

    // 6. Speculative precompute fills the store from surplus energy.
    if (in.mode == ServeMode::Precompute && in.powered &&
        in.precomputeVms > 0) {
        storeFill_ = std::min(
            params_.storeCapacity,
            storeFill_ + in.precomputeVms * in.duty * in.dt *
                             params_.precomputePerVmSec);
    }
}

void
RequestWorkload::dropInFlight(std::uint64_t n)
{
    takeFromQueue(n, 0.0, 0.0, false);
}

InteractiveView
RequestWorkload::view(Seconds now) const
{
    InteractiveView v;
    v.present = true;
    v.arrivalRatePerSec = ratePerSec(now);
    v.queuedRequests = queuedCount_;
    v.oldestAge =
        queue_.empty() ? 0.0 : now - queue_.front().arrival;
    v.storeFill = storeFill_;
    v.storeCapacity = params_.storeCapacity;
    // Demand: VMs holding utilisation at ~70% of capacity for current
    // arrivals, plus enough to drain the standing queue within ~10 s.
    const double steady =
        v.arrivalRatePerSec * params_.serviceTime / 0.7;
    const double drain =
        static_cast<double>(queuedCount_) * params_.serviceTime / 10.0;
    v.demandVms = static_cast<unsigned>(std::ceil(steady + drain));
    return v;
}

void
RequestWorkload::save(snapshot::Archive &ar) const
{
    ar.section("request_workload");
    ar.putU32(kWorkloadVersion);
    rng_.save(ar);
    ar.putSize(queue_.size());
    for (const Bucket &b : queue_) {
        ar.putF64(b.arrival);
        ar.putU64(b.count);
    }
    ar.putU64(queuedCount_);
    ar.putF64(serveCredit_);
    ar.putF64(hitCredit_);
    ar.putF64(storeFill_);
    tracker_.save(ar);
}

void
RequestWorkload::load(snapshot::Archive &ar)
{
    ar.section("request_workload");
    const std::uint32_t version = ar.getU32();
    if (version != kWorkloadVersion)
        throw snapshot::SnapshotError(
            "request workload: version " + std::to_string(version) +
            " != expected " + std::to_string(kWorkloadVersion));
    rng_.load(ar);
    queue_.clear();
    const std::size_t buckets = ar.getSize();
    for (std::size_t i = 0; i < buckets; ++i) {
        Bucket b;
        b.arrival = ar.getF64();
        b.count = ar.getU64();
        queue_.push_back(b);
    }
    queuedCount_ = ar.getU64();
    std::uint64_t check = 0;
    for (const Bucket &b : queue_)
        check += b.count;
    if (check != queuedCount_)
        throw snapshot::SnapshotError(
            "request workload: queued-count mismatch in snapshot");
    serveCredit_ = ar.getF64();
    hitCredit_ = ar.getF64();
    storeFill_ = ar.getF64();
    tracker_.load(ar);
}

} // namespace insure::interactive
