/**
 * @file
 * Latency/SLO accounting for the request-level interactive workload.
 *
 * The SloTracker is the request-stream observer: every served request
 * batch lands in a log-spaced latency histogram together with exact
 * 64-bit request counters (arrived, served, cached hits, shed, dropped),
 * so percentiles and deadline-miss rates are reproducible to the bit —
 * no sampling, no floating accumulation across requests. The tracker is
 * part of the plant state: it snapshots with the system and a restored
 * run reports identical SLO numbers to a straight-through one.
 */

#ifndef INSURE_INTERACTIVE_SLO_TRACKER_HH
#define INSURE_INTERACTIVE_SLO_TRACKER_HH

#include <array>
#include <cstdint>

#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::interactive {

/** Summary of a run's interactive service quality. */
struct SloReport {
    /** Requests that entered the system. */
    std::uint64_t arrived = 0;
    /** Requests served live by the cluster. */
    std::uint64_t served = 0;
    /** Requests answered from the information-battery store. */
    std::uint64_t cachedHits = 0;
    /** Requests shed on arrival (deficit load-shaping). */
    std::uint64_t shed = 0;
    /** Requests dropped after queueing past the timeout. */
    std::uint64_t droppedTimeout = 0;
    /** In-flight requests lost to server faults / power failures. */
    std::uint64_t droppedFault = 0;
    /** Requests still queued at report time. */
    std::uint64_t queued = 0;
    /** Served requests whose latency exceeded the deadline. */
    std::uint64_t missedDeadline = 0;
    /** Latency percentiles over completed requests, seconds. */
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /**
     * Fraction of finalised requests (served, cached, shed or dropped)
     * that violated the SLO: late, shed or lost.
     */
    double deadlineMissRate = 0.0;
    /** cachedHits / (cachedHits + served): the information-battery's
     *  share of all answered requests. */
    double cacheHitRate = 0.0;

    bool operator==(const SloReport &) const = default;
};

/** Exact request accounting plus a log-spaced latency histogram. */
class SloTracker
{
  public:
    /** Histogram bins, log-spaced over [kLatFloor, kLatCeil] seconds. */
    static constexpr unsigned kBins = 64;
    static constexpr double kLatFloor = 1e-3;
    static constexpr double kLatCeil = 3600.0;

    /** Count @p n arrivals. */
    void addArrived(std::uint64_t n) { arrived_ += n; }

    /**
     * Count @p n live-served requests at @p latency seconds; @p missed
     * of them exceeded the deadline.
     */
    void addServed(Seconds latency, std::uint64_t n, std::uint64_t missed);

    /** Count @p n information-battery hits at @p latency seconds. */
    void addCachedHit(Seconds latency, std::uint64_t n);

    /** Count @p n requests shed on arrival. */
    void addShed(std::uint64_t n) { shed_ += n; }

    /** Count @p n requests dropped after ageing past the timeout. */
    void addDroppedTimeout(std::uint64_t n) { droppedTimeout_ += n; }

    /** Count @p n in-flight requests lost to a fault. */
    void addDroppedFault(std::uint64_t n) { droppedFault_ += n; }

    std::uint64_t arrived() const { return arrived_; }
    std::uint64_t served() const { return served_; }
    std::uint64_t cachedHits() const { return cachedHits_; }
    std::uint64_t shed() const { return shed_; }
    std::uint64_t droppedTimeout() const { return droppedTimeout_; }
    std::uint64_t droppedFault() const { return droppedFault_; }
    std::uint64_t missedDeadline() const { return missedDeadline_; }

    /**
     * Build the report; @p queued is the requests still waiting (the
     * workload owns the queue, the tracker only counts finalised ones).
     */
    SloReport report(std::uint64_t queued) const;

    /** Latency of the @p q quantile (0..1) over completed requests. */
    Seconds percentile(double q) const;

    /** Serialize counters + histogram (versioned, fail-loud). */
    void save(snapshot::Archive &ar) const;

    /** Restore counters + histogram (mirror of save). */
    void load(snapshot::Archive &ar);

    bool operator==(const SloTracker &) const = default;

  private:
    void addLatency(Seconds latency, std::uint64_t n);

    std::array<std::uint64_t, kBins> bins_{};
    std::uint64_t arrived_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t cachedHits_ = 0;
    std::uint64_t shed_ = 0;
    std::uint64_t droppedTimeout_ = 0;
    std::uint64_t droppedFault_ = 0;
    std::uint64_t missedDeadline_ = 0;
};

} // namespace insure::interactive

#endif // INSURE_INTERACTIVE_SLO_TRACKER_HH
