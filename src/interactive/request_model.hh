/**
 * @file
 * Deterministic request-level interactive workload (ROADMAP: internet-
 * scale workload realism).
 *
 * Millions of users generate a diurnal stream of small requests; the
 * model draws one Poisson batch per physics tick from a day-shape rate
 * curve and pushes it through an aggregated queueing/service model:
 *
 *  - Arrivals ride an Rng::derive tag stream rooted at the simulation
 *    seed, so adding the workload can never perturb the solar, battery
 *    or fault draws (and vice versa).
 *  - Service is an M/D/c-style closed form over the *aggregate* VM
 *    count: per-tick capacity is served FIFO from arrival-time buckets
 *    and the in-service wait is the classic heavy-traffic correction.
 *    Cost per tick is O(queue buckets), independent of the node count,
 *    which is what lets the model ride the SoA NodePool hot loop at
 *    10k nodes without a per-node queue in sight.
 *  - The "information battery" (Switzer & Pannuto, PAPERS.md): during
 *    energy surplus spare VMs precompute responses into a bounded
 *    store; during deficit arrivals are answered from the store at
 *    cache latency while misses are shed or deferred. The hit model is
 *    a deterministic expected-value accumulator — no RNG draw — so hit
 *    counts are exact integers and independent of worker threading.
 *
 * Every request is accounted exactly (64-bit counters): at any tick
 * arrived == served + cachedHits + shed + dropped + queued, which the
 * InvariantChecker asserts each physics tick.
 */

#ifndef INSURE_INTERACTIVE_REQUEST_MODEL_HH
#define INSURE_INTERACTIVE_REQUEST_MODEL_HH

#include <cstdint>
#include <deque>

#include "interactive/slo_tracker.hh"
#include "sim/rng.hh"
#include "sim/units.hh"

namespace insure::snapshot {
class Archive;
}

namespace insure::interactive {

/** Arrival + service + information-battery model parameters. */
struct RequestParams {
    /** User population, millions. */
    double usersMillions = 2.0;
    /** Mean requests per user per day. */
    double requestsPerUserPerDay = 40.0;
    /**
     * Diurnal modulation depth: rate = mean * (1 + A cos(...)), clamped
     * at minShape. 0 = flat traffic.
     */
    double diurnalAmplitude = 0.85;
    /** Local hour of the traffic peak. */
    double peakHour = 20.0;
    /** Floor of the day-shape factor (overnight trough). */
    double minShape = 0.05;

    /** Deterministic per-request service time, seconds (the D of M/D/c). */
    Seconds serviceTime = 0.02;
    /** SLO latency deadline, seconds. */
    Seconds deadline = 0.25;
    /** Queued requests older than this are dropped (client timeout). */
    Seconds dropAge = 30.0;

    // Information-battery store.
    /** Bounded store size, precomputed responses. */
    double storeCapacity = 2.0e6;
    /** Store fill rate per precompute VM, responses per second. */
    double precomputePerVmSec = 150.0;
    /** Hit-rate ceiling at a full store (popularity skew bound). */
    double maxHitRate = 0.65;
    /** Stored-response useful life, hours (staleness decay). */
    double storeTtlHours = 8.0;
    /** Latency of a store hit, seconds. */
    Seconds cacheLatency = 0.002;

    bool operator==(const RequestParams &) const = default;
};

/** How the manager asks the plant to route interactive traffic. */
enum class ServeMode : std::uint8_t {
    /** Serve arrivals live from the cluster. */
    Live,
    /** Serve live; spare VMs precompute into the store. */
    Precompute,
    /** Deficit: answer from the store, shed/defer misses. */
    CacheServe,
};

/** Printable name of a serve mode. */
const char *serveModeName(ServeMode m);

/** Information-battery actuation attached to ControlActions. */
struct InfoBatteryCommand {
    ServeMode mode = ServeMode::Live;
    /** VMs diverted to precompute (Precompute mode only). */
    unsigned precomputeVms = 0;
    /** Shed cache misses instead of queueing them (CacheServe mode). */
    bool shedMisses = false;

    bool operator==(const InfoBatteryCommand &) const = default;
};

/** Sensed interactive state attached to SystemView. */
struct InteractiveView {
    /** False when the plant runs no interactive workload. */
    bool present = false;
    /** Instantaneous arrival rate, requests per second. */
    double arrivalRatePerSec = 0.0;
    /** Requests waiting in the queue. */
    std::uint64_t queuedRequests = 0;
    /** Age of the oldest queued request, seconds. */
    Seconds oldestAge = 0.0;
    /** Information-battery store fill, responses. */
    double storeFill = 0.0;
    /** Store capacity, responses. */
    double storeCapacity = 0.0;
    /** VMs needed to serve current arrivals and drain the queue. */
    unsigned demandVms = 0;
};

/** Per-tick inputs the plant resolves for the workload. */
struct RequestStepInputs {
    Seconds now = 0.0;
    Seconds dt = 1.0;
    /** VMs serving live traffic this tick. */
    unsigned serveVms = 0;
    /** VMs filling the store this tick (Precompute mode). */
    unsigned precomputeVms = 0;
    /** Cluster duty cycle. */
    double duty = 1.0;
    /** False when the rack is dark (no serving, no precompute). */
    bool powered = true;
    ServeMode mode = ServeMode::Live;
    bool shedMisses = false;
};

/** The aggregated request queue + service + store model. */
class RequestWorkload
{
  public:
    /**
     * @param params model tuning
     * @param rng arrival stream (derive()d from the simulation root)
     */
    RequestWorkload(const RequestParams &params, Rng rng);

    /** Advance one physics tick. */
    void step(const RequestStepInputs &in);

    /**
     * Drop up to @p n queued/in-flight requests (server fault or rack
     * power failure); ground-truth accounted as fault drops.
     */
    void dropInFlight(std::uint64_t n);

    /** Day-shaped arrival rate at time @p now, requests per second. */
    double ratePerSec(Seconds now) const;

    /** Requests currently queued. */
    std::uint64_t queued() const { return queuedCount_; }

    /** Information-battery store fill, responses. */
    double storeFill() const { return storeFill_; }

    /** Sensed view for the control tier. */
    InteractiveView view(Seconds now) const;

    /** The SLO accounting observer. */
    const SloTracker &tracker() const { return tracker_; }

    /** Full run report (tracker counters + live queue). */
    SloReport report() const { return tracker_.report(queuedCount_); }

    /** Serialize queue, store, credits and tracker (fail-loud). */
    void save(snapshot::Archive &ar) const;

    /** Restore (mirror of save). */
    void load(snapshot::Archive &ar);

  private:
    /** One tick's arrivals, FIFO by arrival time. */
    struct Bucket {
        Seconds arrival = 0.0;
        std::uint64_t count = 0;
    };

    std::uint64_t drawPoisson(double lambda);
    void enqueue(Seconds now, std::uint64_t n);
    std::uint64_t takeFromQueue(std::uint64_t n,
                                Seconds now,
                                Seconds extraLatency,
                                bool record);

    RequestParams params_;
    Rng rng_;
    std::deque<Bucket> queue_;
    std::uint64_t queuedCount_ = 0;
    /** Fractional service capacity carried between ticks. */
    double serveCredit_ = 0.0;
    /** Fractional expected cache hits carried between ticks. */
    double hitCredit_ = 0.0;
    double storeFill_ = 0.0;
    SloTracker tracker_;
};

} // namespace insure::interactive

#endif // INSURE_INTERACTIVE_REQUEST_MODEL_HH
