#include "interactive/info_battery.hh"

#include <algorithm>

namespace insure::interactive {

InfoBatteryManager::InfoBatteryManager(
    const InfoBatteryParams &params, const core::InsureParams &insure,
    std::shared_ptr<core::NodeAllocator> allocator)
    : params_(params), inner_(insure, allocator),
      allocator_(std::move(allocator))
{
}

core::ControlActions
InfoBatteryManager::control(const core::SystemView &view)
{
    core::ControlActions act = inner_.control(view);
    // Actions the inner policy issued count toward this manager's
    // Table 6 column; forward only the delta since the last period.
    const std::uint64_t innerNow = inner_.powerCtrlActions();
    countActions(innerNow - lastInner_);
    lastInner_ = innerNow;

    act.infoBattery = InfoBatteryCommand{};
    if (!view.interactive.present)
        return act;

    if (act.checkpointShutdown &&
        view.interactive.storeFill >= params_.minStoreToRide) {
        // Ride the deficit on stored responses instead of suspending:
        // keep a skeleton pool powered at low duty, answer from the
        // store, shed the misses. The e-Buffer still rests.
        act.checkpointShutdown = false;
        act.targetVms =
            std::min(params_.cacheServeVms, view.totalVmSlots);
        act.dutyCycle = params_.cacheServeDuty;
        act.infoBattery.mode = ServeMode::CacheServe;
        act.infoBattery.shedMisses = true;
        countActions();
        return act;
    }

    // Surplus: divert spare slots to precompute ("charge" the store).
    const Watts surplus = view.solarPowerAvg - view.loadPower;
    double socSum = 0.0;
    for (const core::CabinetView &cab : view.cabinets)
        socSum += cab.soc;
    const double meanSoc =
        view.cabinets.empty() ? 0.0
                              : socSum / double(view.cabinets.size());
    const bool storeFull =
        view.interactive.storeFill >= view.interactive.storeCapacity;
    if (!act.checkpointShutdown && surplus > params_.surplusMarginW &&
        meanSoc >= params_.precomputeSoc && !storeFull) {
        const unsigned spareSlots =
            view.totalVmSlots > act.targetVms
                ? view.totalVmSlots - act.targetVms
                : 0;
        const unsigned fit =
            allocator_->vmsForPower(surplus, act.dutyCycle);
        const unsigned pre = std::min(
            {spareSlots, params_.maxPrecomputeVms, fit});
        if (pre > 0) {
            act.infoBattery.mode = ServeMode::Precompute;
            act.infoBattery.precomputeVms = pre;
            // The precompute pool rides on top of the serving pool.
            act.targetVms += pre;
            countActions();
        }
    }
    return act;
}

void
InfoBatteryManager::save(snapshot::Archive &ar) const
{
    PowerManager::save(ar);
    inner_.save(ar);
}

void
InfoBatteryManager::load(snapshot::Archive &ar)
{
    PowerManager::load(ar);
    inner_.load(ar);
    lastInner_ = inner_.powerCtrlActions();
}

} // namespace insure::interactive
