/**
 * @file
 * Information-Battery power manager (Switzer & Pannuto, PAPERS.md).
 *
 * Wraps the InSURE manager and adds speculative load shifting for the
 * interactive workload: when solar runs a surplus and the e-Buffer is
 * healthy, spare VM slots precompute responses into the bounded store
 * ("charging" the information battery); when the temporal manager would
 * checkpoint-suspend the rack, a sufficiently full store lets the rack
 * ride the deficit instead — a skeleton VM pool answers arrivals from
 * the store at cache latency and sheds the misses. Energy is shifted in
 * time as *information* rather than electrochemistry, side by side with
 * the TPM checkpoint path so both are comparable in the same resilience
 * and cost metrics.
 */

#ifndef INSURE_INTERACTIVE_INFO_BATTERY_HH
#define INSURE_INTERACTIVE_INFO_BATTERY_HH

#include <memory>

#include "core/insure_manager.hh"
#include "core/power_manager.hh"
#include "interactive/request_model.hh"

namespace insure::interactive {

/** Tuning of the speculative load-shifting policy. */
struct InfoBatteryParams {
    /** Solar surplus (after load) required before precomputing, watts. */
    Watts surplusMarginW = 50.0;
    /** Mean sensed SoC required before diverting energy to precompute. */
    double precomputeSoc = 0.50;
    /** Cap on VMs diverted to precompute in one control period. */
    unsigned maxPrecomputeVms = 8;
    /** Skeleton VM pool kept up while riding a deficit on the store. */
    unsigned cacheServeVms = 1;
    /** Duty cycle of the skeleton pool during cache-serve. */
    double cacheServeDuty = 0.30;
    /** Store fill below which a deficit is NOT ridden (responses). */
    double minStoreToRide = 1.0e4;

    bool operator==(const InfoBatteryParams &) const = default;
};

/** InSURE plus information-battery speculative load shifting. */
class InfoBatteryManager : public core::PowerManager
{
  public:
    /**
     * @param params load-shifting tuning
     * @param insure tuning of the wrapped InSURE policy
     * @param allocator VM sizing helper (shared with the inner manager)
     */
    InfoBatteryManager(const InfoBatteryParams &params,
                       const core::InsureParams &insure,
                       std::shared_ptr<core::NodeAllocator> allocator);

    const char *name() const override { return "infobattery"; }

    core::ControlActions control(const core::SystemView &view) override;

    /** The wrapped InSURE policy (for tests). */
    const core::InsureManager &inner() const { return inner_; }

    /** Serialize the wrapped policy plus the forwarding cursor. */
    void save(snapshot::Archive &ar) const override;

    /** Restore (mirror of save). */
    void load(snapshot::Archive &ar) override;

  private:
    InfoBatteryParams params_;
    core::InsureManager inner_;
    std::shared_ptr<core::NodeAllocator> allocator_;
    /** Inner action count already forwarded into our own counter. */
    std::uint64_t lastInner_ = 0;
};

} // namespace insure::interactive

#endif // INSURE_INTERACTIVE_INFO_BATTERY_HH
