#include "interactive/slo_tracker.hh"

#include <algorithm>
#include <cmath>

#include "snapshot/archive.hh"

namespace insure::interactive {

namespace {

/** Versioned snapshot grammar for the tracker block. */
constexpr std::uint32_t kTrackerVersion = 1;

/** Natural-log span of the histogram range (compile-time constant). */
double
logSpan()
{
    static const double span =
        std::log(SloTracker::kLatCeil / SloTracker::kLatFloor);
    return span;
}

} // namespace

void
SloTracker::addLatency(Seconds latency, std::uint64_t n)
{
    const double clamped =
        std::clamp(latency, kLatFloor, kLatCeil);
    const double frac = std::log(clamped / kLatFloor) / logSpan();
    const unsigned bin = std::min(
        kBins - 1, static_cast<unsigned>(frac * kBins));
    bins_[bin] += n;
}

void
SloTracker::addServed(Seconds latency, std::uint64_t n,
                      std::uint64_t missed)
{
    served_ += n;
    missedDeadline_ += missed;
    addLatency(latency, n);
}

void
SloTracker::addCachedHit(Seconds latency, std::uint64_t n)
{
    cachedHits_ += n;
    addLatency(latency, n);
}

Seconds
SloTracker::percentile(double q) const
{
    std::uint64_t total = 0;
    for (const std::uint64_t b : bins_)
        total += b;
    if (total == 0)
        return 0.0;
    const double target = q * static_cast<double>(total);
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kBins; ++i) {
        cum += bins_[i];
        if (static_cast<double>(cum) >= target) {
            // Geometric bin midpoint: the histogram is log-spaced, so
            // the midpoint in log space is the unbiased representative.
            const double frac = (i + 0.5) / kBins;
            return kLatFloor * std::exp(frac * logSpan());
        }
    }
    return kLatCeil;
}

SloReport
SloTracker::report(std::uint64_t queued) const
{
    SloReport r;
    r.arrived = arrived_;
    r.served = served_;
    r.cachedHits = cachedHits_;
    r.shed = shed_;
    r.droppedTimeout = droppedTimeout_;
    r.droppedFault = droppedFault_;
    r.queued = queued;
    r.missedDeadline = missedDeadline_;
    r.p50 = percentile(0.50);
    r.p95 = percentile(0.95);
    r.p99 = percentile(0.99);
    const std::uint64_t finalised =
        served_ + cachedHits_ + shed_ + droppedTimeout_ + droppedFault_;
    if (finalised > 0) {
        const std::uint64_t violating =
            missedDeadline_ + shed_ + droppedTimeout_ + droppedFault_;
        r.deadlineMissRate = static_cast<double>(violating) /
                             static_cast<double>(finalised);
    }
    const std::uint64_t answered = served_ + cachedHits_;
    if (answered > 0) {
        r.cacheHitRate = static_cast<double>(cachedHits_) /
                         static_cast<double>(answered);
    }
    return r;
}

void
SloTracker::save(snapshot::Archive &ar) const
{
    ar.section("slo_tracker");
    ar.putU32(kTrackerVersion);
    ar.putU64(arrived_);
    ar.putU64(served_);
    ar.putU64(cachedHits_);
    ar.putU64(shed_);
    ar.putU64(droppedTimeout_);
    ar.putU64(droppedFault_);
    ar.putU64(missedDeadline_);
    for (const std::uint64_t b : bins_)
        ar.putU64(b);
}

void
SloTracker::load(snapshot::Archive &ar)
{
    ar.section("slo_tracker");
    const std::uint32_t version = ar.getU32();
    if (version != kTrackerVersion)
        throw snapshot::SnapshotError(
            "slo tracker: version " + std::to_string(version) +
            " != expected " + std::to_string(kTrackerVersion));
    arrived_ = ar.getU64();
    served_ = ar.getU64();
    cachedHits_ = ar.getU64();
    shed_ = ar.getU64();
    droppedTimeout_ = ar.getU64();
    droppedFault_ = ar.getU64();
    missedDeadline_ = ar.getU64();
    for (std::uint64_t &b : bins_)
        b = ar.getU64();
}

} // namespace insure::interactive
