/**
 * @file
 * Bulk data-movement cost and time models (paper Fig. 1 and Fig. 3-a).
 */

#ifndef INSURE_COST_TRANSMISSION_HH
#define INSURE_COST_TRANSMISSION_HH

#include <string>
#include <vector>

#include "cost/cost_params.hh"

namespace insure::cost {

/** A network link option for Fig. 1-(a). */
struct LinkOption {
    std::string name;
    /** Usable bandwidth, megabits per second. */
    double mbps;
};

/** Typical links from slow WAN uplinks to data-center backbones. */
std::vector<LinkOption> typicalLinks();

/** Hours to move @p terabytes over @p link. */
double transferHours(const LinkOption &link, double terabytes);

/**
 * AWS data-transfer-out pricing (January 2014 tiers): average $ per TB
 * when @p terabytes leave the cloud in one month (Fig. 1-b).
 */
Dollars awsEgressAvgPerTb(double terabytes);

/** Total AWS egress bill for @p terabytes in one month. */
Dollars awsEgressTotal(double terabytes);

/** Cumulative satellite-only transmission cost after @p months. */
Dollars satelliteCost(const SatelliteParams &p, double months);

/** Cumulative cellular-only transmission cost after @p months. */
Dollars cellularCost(const CellularParams &p, double months,
                     double gb_per_day);

/**
 * Fig. 3-(a): cumulative IT-related TCO of the four deployment options
 * after @p months for a site producing @p gb_per_day of raw data.
 * In-situ pre-processing shrinks the backhauled volume to
 * @p insitu_backhaul_fraction of raw.
 */
struct ItTcoRow {
    double years;
    Dollars satelliteOnly;
    Dollars cellularOnly;
    Dollars insituPlusSatellite;
    Dollars insituPlusCellular;
};

/**
 * Compute the Fig. 3-(a) table.
 * @param insitu_capex up-front in-situ system cost
 * @param insitu_annual annual in-situ operating cost
 */
std::vector<ItTcoRow>
itTcoTable(double gb_per_day, Dollars insitu_capex, Dollars insitu_annual,
           double insitu_backhaul_fraction = 0.02,
           const SatelliteParams &sat = {}, const CellularParams &cell = {});

} // namespace insure::cost

#endif // INSURE_COST_TRANSMISSION_HH
