#include "cost/energy_tco.hh"

#include <cmath>

namespace insure::cost {

Dollars
dieselTco(const DieselParams &p, double kw, double kwh_per_day,
          double years)
{
    // Generator is replaced every lifetimeYears (unit count includes the
    // initial purchase).
    const int units =
        1 + static_cast<int>(std::floor((years - 1e-9) / p.lifetimeYears));
    const Dollars capex = units * p.perKw * kw;
    const Dollars fuel =
        p.perKwh * kwh_per_day * units::daysPerYear * years;
    return capex + fuel;
}

Dollars
fuelCellTco(const FuelCellParams &p, Watts watts, double kwh_per_day,
            double years)
{
    const Dollars initial = p.perWatt * watts;
    // Full system replaced at systemLifeYears; stack refreshed at
    // stackLifeYears in between.
    const int systems =
        1 + static_cast<int>(std::floor((years - 1e-9) /
                                        p.systemLifeYears));
    const int stack_events =
        static_cast<int>(std::floor((years - 1e-9) / p.stackLifeYears)) -
        (systems - 1);
    const Dollars capex = systems * initial +
                          std::max(0, stack_events) * initial *
                              p.stackReplaceFraction;
    const Dollars fuel =
        p.perKwh * kwh_per_day * units::daysPerYear * years;
    return capex + fuel;
}

Dollars
solarBatteryTco(const SolarBatteryParams &p, Watts panel_watts,
                AmpHours battery_ah, double years)
{
    const Dollars panels = p.panelPerWatt * panel_watts;
    const Dollars inverter = panels * p.inverterFraction;
    const int battery_sets =
        1 + static_cast<int>(std::floor((years - 1e-9) /
                                        p.batteryLifeYears));
    const Dollars batteries =
        battery_sets * p.batteryPerAh * battery_ah;
    return panels + inverter + batteries;
}

std::vector<EnergyTcoRow>
energyTcoTable(const PrototypeParams &proto)
{
    std::vector<EnergyTcoRow> rows;
    for (double years = 1.0; years <= 11.0; years += 2.0) {
        EnergyTcoRow row;
        row.years = years;
        row.inSitu = solarBatteryTco(proto.solar, proto.pvWatts,
                                     proto.batteryAh, years);
        row.fuelCell = fuelCellTco(FuelCellParams{}, proto.pvWatts,
                                   proto.dailyEnergyKwh, years);
        row.diesel = dieselTco(DieselParams{}, proto.pvWatts / 1000.0,
                               proto.dailyEnergyKwh, years);
        rows.push_back(row);
    }
    return rows;
}

const char *
supplyKindName(SupplyKind k)
{
    switch (k) {
      case SupplyKind::InSure: return "InSURE";
      case SupplyKind::Diesel: return "Diesel";
      case SupplyKind::FuelCell: return "FuelCell";
    }
    return "?";
}

std::vector<CostComponent>
annualDepreciation(SupplyKind kind, const PrototypeParams &proto)
{
    std::vector<CostComponent> out;
    const auto &it = proto.it;

    out.push_back({"Server", proto.serverCount * it.serverCost /
                                 it.serverLifeYears});
    out.push_back({"Cellular", proto.cellular.hardware /
                                   it.infraLifeYears});
    out.push_back({"HVAC", it.hvacCost / it.infraLifeYears});
    out.push_back({"PDU", it.pduCost / it.infraLifeYears});
    out.push_back({"Switch", it.switchCost / it.infraLifeYears});

    switch (kind) {
      case SupplyKind::InSure: {
        const Dollars panels =
            proto.solar.panelPerWatt * proto.pvWatts;
        out.push_back({"Battery",
                       proto.solar.batteryPerAh * proto.batteryAh *
                           proto.solar.batterySystemFactor /
                           proto.solar.batteryLifeYears});
        out.push_back({"PV Panels", panels / proto.solar.panelLifeYears});
        out.push_back({"Inverter", panels * proto.solar.inverterFraction /
                                       it.infraLifeYears});
        break;
      }
      case SupplyKind::Diesel: {
        const DieselParams dg;
        // A continuous-duty genset is oversized ~2x relative to the rack
        // peak so it is not always running at its limit.
        out.push_back({"Generator", dg.perKw * 2.0 * proto.pvWatts /
                                        1000.0 / dg.lifetimeYears});
        out.push_back({"Fuel", dg.perKwh * proto.dailyEnergyKwh *
                                   units::daysPerYear});
        break;
      }
      case SupplyKind::FuelCell: {
        const FuelCellParams fc;
        const Dollars initial = fc.perWatt * proto.pvWatts;
        out.push_back({"Generator",
                       initial / fc.systemLifeYears +
                           initial * fc.stackReplaceFraction /
                               fc.stackLifeYears});
        out.push_back({"Fuel", fc.perKwh * proto.dailyEnergyKwh *
                                   units::daysPerYear});
        break;
      }
    }

    // Maintenance scales with everything above.
    Dollars subtotal = 0.0;
    for (const auto &c : out)
        subtotal += c.annual;
    out.push_back({"Maintenance", subtotal * it.maintenanceFraction});
    return out;
}

Dollars
totalAnnual(const std::vector<CostComponent> &components)
{
    Dollars t = 0.0;
    for (const auto &c : components)
        t += c.annual;
    return t;
}

} // namespace insure::cost
