#include "cost/transmission.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace insure::cost {

std::vector<LinkOption>
typicalLinks()
{
    return {
        {"T1 (1.5 Mbps)", 1.5},   {"10 Mbps", 10.0},
        {"44.7 Mbps (T3)", 44.7}, {"100 Mbps", 100.0},
        {"1 Gbps", 1000.0},       {"10 Gbps", 10000.0},
    };
}

double
transferHours(const LinkOption &link, double terabytes)
{
    if (link.mbps <= 0.0)
        fatal("transferHours: non-positive bandwidth");
    const double megabits = terabytes * 1e6 * 8.0;
    return megabits / link.mbps / 3600.0;
}

namespace {

/** January-2014 AWS transfer-out tiers: (up to TB, $ per GB). */
struct EgressTier {
    double uptoTb;
    double perGb;
};

constexpr EgressTier egressTiers[] = {
    {0.001, 0.00},  // first GB free
    {10.0, 0.120},
    {50.0, 0.090},
    {150.0, 0.070},
    {500.0, 0.050},
    {1e9, 0.040},
};

} // namespace

Dollars
awsEgressTotal(double terabytes)
{
    double remaining = terabytes;
    double prev_cap = 0.0;
    Dollars total = 0.0;
    for (const auto &tier : egressTiers) {
        if (remaining <= 0.0)
            break;
        const double span = tier.uptoTb - prev_cap;
        const double take = std::min(remaining, span);
        total += take * 1000.0 * tier.perGb;
        remaining -= take;
        prev_cap = tier.uptoTb;
    }
    return total;
}

Dollars
awsEgressAvgPerTb(double terabytes)
{
    if (terabytes <= 0.0)
        return 0.0;
    return awsEgressTotal(terabytes) / terabytes;
}

Dollars
satelliteCost(const SatelliteParams &p, double months)
{
    return p.hardware + p.monthlyService * months;
}

Dollars
cellularCost(const CellularParams &p, double months, double gb_per_day)
{
    return p.hardware +
           p.perGb * gb_per_day * months * units::daysPerMonth;
}

std::vector<ItTcoRow>
itTcoTable(double gb_per_day, Dollars insitu_capex, Dollars insitu_annual,
           double insitu_backhaul_fraction, const SatelliteParams &sat,
           const CellularParams &cell)
{
    // Satellite-only rides the flat monthly plan (usage pricing cannot
    // even carry the raw volume); cellular-only pays per GB for the raw
    // stream.
    std::vector<ItTcoRow> rows;
    for (int year = 1; year <= 5; ++year) {
        const double months = year * 12.0;
        ItTcoRow row;
        row.years = year;
        row.satelliteOnly = satelliteCost(sat, months);
        row.cellularOnly = cellularCost(cell, months, gb_per_day);

        const Dollars insitu =
            insitu_capex + insitu_annual * year;
        // Backup satellite plan scales with the residual volume share.
        SatelliteParams backup_sat = sat;
        backup_sat.monthlyService =
            sat.monthlyService * insitu_backhaul_fraction * 9.0;
        row.insituPlusSatellite =
            insitu + satelliteCost(backup_sat, months);
        row.insituPlusCellular =
            insitu + cellularCost(cell, months,
                                  gb_per_day * insitu_backhaul_fraction);
        rows.push_back(row);
    }
    return rows;
}

} // namespace insure::cost
