/**
 * @file
 * Energy-supply TCO models (paper Fig. 3-b, Table 1, Fig. 22).
 */

#ifndef INSURE_COST_ENERGY_TCO_HH
#define INSURE_COST_ENERGY_TCO_HH

#include <string>
#include <vector>

#include "cost/cost_params.hh"

namespace insure::cost {

/**
 * Cumulative cost of a diesel-generator supply after @p years for an
 * installation of @p kw kilowatts delivering @p kwh_per_day (generator
 * replaced at end of life).
 */
Dollars dieselTco(const DieselParams &p, double kw, double kwh_per_day,
                  double years);

/** Cumulative fuel-cell supply cost after @p years. */
Dollars fuelCellTco(const FuelCellParams &p, Watts watts,
                    double kwh_per_day, double years);

/** Cumulative solar + battery supply cost after @p years. */
Dollars solarBatteryTco(const SolarBatteryParams &p, Watts panel_watts,
                        AmpHours battery_ah, double years);

/** Fig. 3-(b) row: energy-related TCO at a given age. */
struct EnergyTcoRow {
    double years;
    Dollars inSitu;   // solar + battery
    Dollars fuelCell;
    Dollars diesel;
};

/** Compute the Fig. 3-(b) series for the prototype installation. */
std::vector<EnergyTcoRow> energyTcoTable(const PrototypeParams &proto = {});

/** One component of the Fig. 22 annual-depreciation breakdown. */
struct CostComponent {
    std::string name;
    Dollars annual;
};

/** Power-supply technology for the Fig. 22 comparison. */
enum class SupplyKind {
    InSure,      // solar + reconfigurable battery
    Diesel,
    FuelCell,
};

/** Printable name of a supply kind. */
const char *supplyKindName(SupplyKind k);

/**
 * Fig. 22: component-wise annual depreciation of the prototype under the
 * given supply technology.
 */
std::vector<CostComponent>
annualDepreciation(SupplyKind kind, const PrototypeParams &proto = {});

/** Sum of a component list. */
Dollars totalAnnual(const std::vector<CostComponent> &components);

} // namespace insure::cost

#endif // INSURE_COST_ENERGY_TCO_HH
