/**
 * @file
 * Cost-model constants (paper Table 1, §2.1, §6.5).
 *
 * All prices are in 2014 US dollars, taken from the paper where given and
 * from its cited sources otherwise:
 *  - satellite: ~$11.5K dish + ~$30K/month service, or $0.14/MB usage;
 *  - cellular: ~$1K gateway + $10/GB;
 *  - diesel: $370/kW CapEx, 5-year life, $0.40/kWh fuel;
 *  - fuel cell: $5/W CapEx, 5-year stack / 10-year system, $0.16/kWh;
 *  - solar + battery: $2/W panels, $2/Ah batteries with a 4-year life.
 */

#ifndef INSURE_COST_COST_PARAMS_HH
#define INSURE_COST_COST_PARAMS_HH

#include "sim/units.hh"

namespace insure::cost {

/** Satellite transmission cost model (paper refs. [20], [45]). */
struct SatelliteParams {
    Dollars hardware = 11500.0;
    Dollars monthlyService = 30000.0;
    Dollars perMb = 0.14;
};

/** Cellular (4G) transmission cost model (paper refs. [46], [47]). */
struct CellularParams {
    Dollars hardware = 1000.0;
    Dollars perGb = 10.0;
};

/** Diesel generator energy cost model (Table 1). */
struct DieselParams {
    Dollars perKw = 370.0;
    double lifetimeYears = 5.0;
    Dollars perKwh = 0.40;
};

/** Fuel-cell energy cost model (Table 1). */
struct FuelCellParams {
    Dollars perWatt = 5.0;
    double stackLifeYears = 5.0;
    double systemLifeYears = 10.0;
    /** Stack replacement cost as a fraction of initial CapEx. */
    double stackReplaceFraction = 0.45;
    Dollars perKwh = 0.16;
};

/** Solar + battery energy cost model (Table 1). */
struct SolarBatteryParams {
    Dollars panelPerWatt = 2.0;
    Dollars batteryPerAh = 2.0;
    double batteryLifeYears = 4.0;
    /** Inverter / charge-controller cost as a fraction of panel cost. */
    double inverterFraction = 0.30;
    double panelLifeYears = 20.0;
    /**
     * Multiplier turning bare cell cost into the installed e-Buffer
     * system cost (cabinet, relay network, PLC, transducers, wiring); the
     * paper reports the 210 Ah e-Buffer at ~9% of InSURE's annual
     * depreciation, which the default reproduces.
     */
    double batterySystemFactor = 3.5;
};

/** IT equipment for the prototype-scale in-situ cluster (§6.5). */
struct ItEquipmentParams {
    /** Commodity rack server unit cost. */
    Dollars serverCost = 2500.0;
    double serverLifeYears = 5.0;
    /** Network switch + KVM. */
    Dollars switchCost = 1000.0;
    /** Power distribution. */
    Dollars pduCost = 750.0;
    /** Containerised HVAC share. */
    Dollars hvacCost = 1500.0;
    double infraLifeYears = 5.0;
    /** Annual maintenance as a fraction of annual depreciation. */
    double maintenanceFraction = 0.12;
};

/** The full prototype bill of materials used in Fig. 22. */
struct PrototypeParams {
    ItEquipmentParams it;
    SolarBatteryParams solar;
    CellularParams cellular;
    unsigned serverCount = 4;
    /** Installed PV capacity, watts. */
    Watts pvWatts = 1600.0;
    /** e-Buffer size, ampere-hours (six 35 Ah units). */
    AmpHours batteryAh = 210.0;
    /** Daily energy delivered to the cluster, kWh (sizing generators). */
    double dailyEnergyKwh = 8.0;
};

} // namespace insure::cost

#endif // INSURE_COST_COST_PARAMS_HH
