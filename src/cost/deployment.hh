/**
 * @file
 * Deployment-scale economics: in-situ system sizing, scale-out under
 * varying sunshine fractions, the in-situ vs. cloud TCO crossover, and the
 * application scenarios (paper Figs. 23, 24, 25).
 */

#ifndef INSURE_COST_DEPLOYMENT_HH
#define INSURE_COST_DEPLOYMENT_HH

#include <string>
#include <vector>

#include "cost/cost_params.hh"

namespace insure::cost {

/** Sizing and pricing model for an in-situ deployment. */
struct DeploymentModel {
    PrototypeParams proto;
    /** Data one server can pre-process per day at full duty, GB. */
    double gbPerServerDay = 100.0;
    /** PV watts required per server at 100% sunshine fraction. */
    Watts pvWattsPerServer = 400.0;
    /** Battery Ah per server at 100% sunshine fraction. */
    AmpHours batteryAhPerServer = 52.5;
    /** Fraction of raw data still backhauled after pre-processing. */
    double backhaulFraction = 0.05;
    /** Cloud-side cost of processing one GB (compute + storage). */
    Dollars cloudComputePerGb = 0.25;

    /**
     * Servers needed to absorb @p gb_per_day given @p sunshine_fraction
     * of nominal insolation (less sun -> fewer productive hours -> more
     * capacity for the same daily volume).
     */
    unsigned serversFor(double gb_per_day, double sunshine_fraction) const;

    /**
     * Total cost of an in-situ deployment handling @p gb_per_day for
     * @p days at @p sunshine_fraction, including hardware replacement on
     * long deployments and cellular backhaul of the residual volume.
     */
    Dollars inSituCost(double gb_per_day, double days,
                       double sunshine_fraction) const;

    /**
     * Total cost of shipping everything to the cloud instead: cellular
     * transmission of the raw volume plus cloud processing.
     */
    Dollars cloudCost(double gb_per_day, double days) const;

    /** Cost saving of in-situ vs. cloud, in [-inf, 1]. */
    double saving(double gb_per_day, double days,
                  double sunshine_fraction) const;

    /**
     * Fig. 24 crossover: the data rate (GB/day) above which in-situ wins,
     * found by bisection over [lo, hi] for a deployment of @p days.
     */
    double crossoverGbPerDay(double days, double sunshine_fraction,
                             double lo = 0.01, double hi = 100.0) const;
};

/** Fig. 23 row: scale-out vs. cloud at one sunshine fraction. */
struct ScaleOutRow {
    double sunshineFraction;
    Dollars scaleOutCost;
    Dollars cloudCost;
};

/**
 * Fig. 23: amortised cost of meeting a fixed processing demand by scaling
 * the in-situ system out as sunshine decreases, vs. relying on the cloud.
 */
std::vector<ScaleOutRow>
scaleOutTable(const DeploymentModel &model, double gb_per_day,
              double days);

/** Fig. 25 application scenario. */
struct Scenario {
    std::string name;
    double gbPerDay;
    double deploymentDays;
    double sunshineFraction;
    /** Saving range the paper quotes, for reference in reports. */
    double paperSavingLo;
    double paperSavingHi;
};

/** The five Fig. 25 scenarios. */
std::vector<Scenario> applicationScenarios();

} // namespace insure::cost

#endif // INSURE_COST_DEPLOYMENT_HH
