#include "cost/deployment.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace insure::cost {

unsigned
DeploymentModel::serversFor(double gb_per_day,
                            double sunshine_fraction) const
{
    if (sunshine_fraction <= 0.0)
        fatal("DeploymentModel: sunshine fraction must be positive");
    const double per_server = gbPerServerDay * sunshine_fraction;
    return std::max(1u, static_cast<unsigned>(
                            std::ceil(gb_per_day / per_server)));
}

Dollars
DeploymentModel::inSituCost(double gb_per_day, double days,
                            double sunshine_fraction) const
{
    const unsigned n = serversFor(gb_per_day, sunshine_fraction);
    const double years = days / units::daysPerYear;
    const auto &it = proto.it;
    const auto &sol = proto.solar;

    // Hardware sized to the fleet; PV scales inversely with sunshine.
    const unsigned server_units =
        n * (1 + static_cast<unsigned>(
                     std::floor(std::max(0.0, years - 1e-9) /
                                it.serverLifeYears)));
    const Dollars servers = server_units * it.serverCost;

    const Watts pv = n * pvWattsPerServer / sunshine_fraction;
    const Dollars panels = sol.panelPerWatt * pv;
    const Dollars inverter = panels * sol.inverterFraction;

    const unsigned battery_sets =
        1 + static_cast<unsigned>(std::floor(
                std::max(0.0, years - 1e-9) / sol.batteryLifeYears));
    const Dollars batteries = battery_sets * sol.batteryPerAh *
                              n * batteryAhPerServer *
                              sol.batterySystemFactor;

    // Shared infrastructure: one set per four servers.
    const unsigned infra_sets = (n + 3) / 4;
    const Dollars infra =
        infra_sets * (it.switchCost + it.pduCost + it.hvacCost +
                      proto.cellular.hardware);

    const Dollars capex = servers + panels + inverter + batteries + infra;
    const Dollars maintenance =
        it.maintenanceFraction * (capex / it.infraLifeYears) * years;

    const Dollars backhaul = proto.cellular.perGb * backhaulFraction *
                             gb_per_day * days;

    return capex + maintenance + backhaul;
}

Dollars
DeploymentModel::cloudCost(double gb_per_day, double days) const
{
    const double volume = gb_per_day * days;
    return proto.cellular.hardware + proto.cellular.perGb * volume +
           cloudComputePerGb * volume;
}

double
DeploymentModel::saving(double gb_per_day, double days,
                        double sunshine_fraction) const
{
    const Dollars cloud = cloudCost(gb_per_day, days);
    if (cloud <= 0.0)
        return 0.0;
    return 1.0 - inSituCost(gb_per_day, days, sunshine_fraction) / cloud;
}

double
DeploymentModel::crossoverGbPerDay(double days, double sunshine_fraction,
                                   double lo, double hi) const
{
    auto diff = [&](double rate) {
        return inSituCost(rate, days, sunshine_fraction) -
               cloudCost(rate, days);
    };
    if (diff(lo) < 0.0)
        return lo; // in-situ already wins at the lower bound
    if (diff(hi) > 0.0)
        return hi; // cloud wins everywhere in range
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (diff(mid) > 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

std::vector<ScaleOutRow>
scaleOutTable(const DeploymentModel &model, double gb_per_day, double days)
{
    std::vector<ScaleOutRow> rows;
    for (double f : {1.0, 0.8, 0.6, 0.4}) {
        ScaleOutRow row;
        row.sunshineFraction = f;
        row.scaleOutCost = model.inSituCost(gb_per_day, days, f);
        row.cloudCost = model.cloudCost(gb_per_day, days);
        rows.push_back(row);
    }
    return rows;
}

std::vector<Scenario>
applicationScenarios()
{
    return {
        {"Seismic Analysis", 130.0, 25.0, 0.80, 0.47, 0.55},
        {"Post-Earthquake Disaster Monitoring", 60.0, 15.0, 0.90, 0.15,
         0.15},
        {"Wildlife Behavior Study", 20.0, 365.0, 0.90, 0.77, 0.93},
        {"Coastal Monitoring", 50.0, 1000.0, 0.90, 0.94, 0.95},
        {"Volcano Surveillance", 300.0, 1000.0, 0.85, 0.94, 0.97},
    };
}

} // namespace insure::cost
